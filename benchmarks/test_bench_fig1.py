"""Fig. 1 — characterisation of the five LC services (paper §III)."""

from repro.experiments.fig1_characterization import render_fig1, run_fig1


def test_bench_fig1_characterization(once, capsys):
    """Tail latency + power of all services across 27 core configs."""
    results = once(run_fig1)
    with capsys.disabled():
        print()
        print(render_fig1(results))
    # The headline claim: each service's best low-power config differs.
    bests = {
        name: per_load[0.8].best_low_power_config().label
        for name, per_load in results.items()
    }
    assert bests["xapian"] == "{2,2,6}"
    assert bests["moses"] == "{6,2,4}"
    assert len(set(bests.values())) >= 3

"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.experiments.ablations import (
    ablate_dds_budget,
    ablate_guards,
    ablate_inference,
    ablate_penalty_weight,
    ablate_training_size,
    ablate_transition_cost,
    ablate_variants,
    render_ablation,
)


def test_bench_ablation_inference(once, capsys):
    """What imperfect (two-sample SGD) inference costs vs an oracle."""
    sgd, oracle = once(ablate_inference)
    with capsys.disabled():
        print()
        print(render_ablation("SGD vs oracle inference", [sgd, oracle]))
    assert oracle.batch_instructions_b >= sgd.batch_instructions_b
    # Inference imperfection costs some throughput but never QoS.
    assert sgd.qos_violations == 0
    assert sgd.batch_instructions_b > 0.7 * oracle.batch_instructions_b


def test_bench_ablation_guards_and_variants(once, capsys):
    """QoS guardbands and historical latency variants."""
    with_guards, without_guards = once(ablate_guards)
    with_variants, without_variants = ablate_variants()
    with capsys.disabled():
        print()
        print(render_ablation("QoS guardbands",
                              [with_guards, without_guards]))
        print()
        print(render_ablation("latency training variants",
                              [with_variants, without_variants]))
    assert with_guards.qos_violations == 0
    assert with_variants.qos_violations == 0
    # Removing either safety mechanism must not *improve* safety.
    removed = (
        without_guards.qos_violations + without_guards.power_violations
        + without_variants.qos_violations + without_variants.power_violations
    )
    kept = (
        with_guards.qos_violations + with_guards.power_violations
        + with_variants.qos_violations + with_variants.power_violations
    )
    assert removed >= kept


def test_bench_ablation_training_size(once, capsys):
    """End-to-end training-set-size effect (§VIII-A2)."""
    rows = once(ablate_training_size)
    with capsys.disabled():
        print()
        print(render_ablation("offline training-set size", rows))
    assert all(r.batch_instructions_b > 0 for r in rows)


def test_bench_ablation_transition_cost(once, capsys):
    """How expensive would per-core reconfiguration have to be to hurt?"""
    rows = once(ablate_transition_cost)
    with capsys.disabled():
        print()
        print(render_ablation("reconfiguration transition cost", rows))
    # CuttleSys's configurations are stable enough that even 10 ms
    # transitions (200x the AnyCore estimate) cost under ~15 %.
    assert rows[-1].batch_instructions_b > 0.8 * rows[0].batch_instructions_b
    assert all(r.qos_violations == 0 for r in rows)


def test_bench_ablation_search(once, capsys):
    """DDS iteration budget and the soft power-penalty weight."""
    budgets = once(ablate_dds_budget)
    penalties = ablate_penalty_weight()
    with capsys.disabled():
        print()
        print("DDS maxIter -> objective:",
              {k: round(v, 3) for k, v in budgets.items()})
        print(render_ablation("power penalty weight", penalties))
    iters = sorted(budgets)
    # More iterations never hurt; the default (40) captures most gains.
    assert budgets[iters[-1]] >= budgets[iters[0]]
    assert budgets[40] >= 0.95 * budgets[iters[-1]]

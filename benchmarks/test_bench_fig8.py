"""Fig. 8 — CuttleSys dynamics: load, power budget, core relocation."""

from repro.experiments.fig8_dynamic import (
    render_fig8,
    run_fig8a,
    run_fig8b,
    run_fig8c,
)


def test_bench_fig8a_varying_load(once, capsys):
    """Diurnal load at a 70 % cap (paper Fig. 8a)."""
    trace = once(run_fig8a, n_slices=20)
    with capsys.disabled():
        print()
        print(render_fig8(trace))
    # QoS violations at most transient (load rises mid-quantum).
    violations = sum(1 for r in trace.p99_over_qos if r > 1.0)
    assert violations <= 3
    # The LC configuration must widen at peak load vs the trough.
    trough_cfg = trace.lc_configs[1]
    peak_idx = trace.loads.index(max(trace.loads))
    assert trace.loads[peak_idx] > trace.loads[1]


def test_bench_fig8b_varying_budget(once, capsys):
    """Power-budget step 90 -> 60 -> 90 % at constant load (Fig. 8b)."""
    trace = once(run_fig8b, n_slices=21)
    with capsys.disabled():
        print()
        print(render_fig8(trace))
    third = len(trace.budget_w) // 3
    import numpy as np
    early = np.mean(trace.batch_gmean_bips[2:third])
    mid = np.mean(trace.batch_gmean_bips[third + 2:2 * third])
    late = np.mean(trace.batch_gmean_bips[2 * third + 2:])
    # Batch throughput drops with the budget and recovers after.
    assert mid < early
    assert late > mid
    # QoS holds throughout the budget swing.
    assert all(r <= 1.05 for r in trace.p99_over_qos)


def test_bench_fig8c_core_relocation(once, capsys):
    """Load surge forcing core reclamation, then yield-back (Fig. 8c)."""
    trace = once(run_fig8c, n_slices=24)
    with capsys.disabled():
        print()
        print(render_fig8(trace))
    surge_start = next(i for i, l in enumerate(trace.loads) if l > 0.9)
    pre = trace.lc_cores[surge_start]
    peak = max(trace.lc_cores[surge_start:])
    assert peak > pre          # cores reclaimed under the surge
    assert trace.lc_cores[-1] < peak  # yielded back after it

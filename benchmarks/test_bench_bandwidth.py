"""Bandwidth-contention study: the missing Flicker-(b) physics."""

import math

from repro.experiments.bandwidth_study import (
    render_bandwidth_study,
    run_bandwidth_study,
)


def test_bench_bandwidth_study(once, capsys):
    """Flicker-(b) vs CuttleSys with the bandwidth model on/off."""
    results = once(run_bandwidth_study, n_slices=10)
    with capsys.disabled():
        print()
        print(render_bandwidth_study(results))
    free = results[math.inf]
    tight = results[60.0]
    # Without contention, neither violates QoS (EXPERIMENTS.md note).
    assert free["flicker-b"].qos_violations == 0
    # With contention, the pinned-wide Flicker methodology overshoots
    # QoS persistently (paper: ~1.5x) while CuttleSys adapts: at most
    # transient exploratory violations and a compliant steady state.
    assert tight["flicker-b"].qos_violations >= 5
    assert tight["flicker-b"].worst_p99_over_qos > 1.2
    assert tight["cuttlesys"].qos_violations <= 3
    assert tight["cuttlesys"].qos_violations < tight["flicker-b"].qos_violations
    # Contention costs everyone throughput.
    assert tight["cuttlesys"].batch_instructions_b < \
        free["cuttlesys"].batch_instructions_b

"""Two LC services on one machine (§VII-A generalisability claim)."""

from repro.experiments.multi_service import (
    render_multi_service,
    run_multi_service,
)


def test_bench_multi_service(once, capsys):
    """xapian + silo colocated with a batch mix under one budget."""
    result = once(run_multi_service)
    with capsys.disabled():
        print()
        print(render_multi_service(result))
    # At most transient exploratory violations across both services.
    assert result.qos_violations <= 2
    # Both services end on narrow, service-appropriate configurations
    # (neither parked on the conservative all-wide fallback).
    for cores, label in result.final_allocations:
        assert cores >= 2
        assert label != "{6,6,6}/4w"
    # Batch jobs still make real progress alongside two services.
    assert result.batch_instructions_b > 20.0

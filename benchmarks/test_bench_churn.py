"""Job-churn study: unseen applications arriving online (§V story)."""

from repro.experiments.churn_study import (
    churn_cost,
    render_churn_study,
    run_churn_study,
)


def test_bench_churn_study(once, capsys):
    """CuttleSys absorbing previously-unseen batch arrivals."""
    outcomes = once(run_churn_study)
    with capsys.disabled():
        print()
        print(render_churn_study(outcomes))
    # Newcomers are re-profiled and placed without QoS damage...
    for outcome in outcomes:
        assert outcome.qos_violations == 0
    # ...at a small throughput cost relative to a stable mix.
    assert churn_cost(outcomes, "cuttlesys") > 0.9
    # The oracle pays churn costs too (phase resets, placement shifts);
    # CuttleSys's extra inference cost stays bounded.
    assert churn_cost(outcomes, "cuttlesys") > \
        churn_cost(outcomes, "oracle-reconfig") - 0.1

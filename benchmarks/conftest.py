"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper and prints
the rows/series the paper reports (captured in ``bench_output.txt``).
Heavy experiments run once per benchmark (``rounds=1``): the interesting
output is the experiment result, not its timing distribution.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner

"""Fig. 9 — prediction error: SGD vs Flicker's RBF surrogate."""

from repro.experiments.fig9_sgd_vs_rbf import render_fig9, run_fig9


def test_bench_fig9_sgd_vs_rbf(once, capsys):
    """SGD (2 samples) vs RBF (3 samples) error distributions."""
    result = once(run_fig9)
    with capsys.disabled():
        print()
        print(render_fig9(result))
    # The paper's claim: with comparable information, RBF's errors are
    # dramatically larger (outliers in the hundreds of percent).
    assert result.rbf_throughput["max_abs"] > 100.0
    assert result.rbf_throughput["max_abs"] > \
        2 * result.sgd_throughput["max_abs"]
    assert result.sgd_power["max_abs"] < result.rbf_power["max_abs"]

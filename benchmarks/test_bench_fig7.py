"""Fig. 7 — per-timeslice instructions under a 70 % cap."""

from repro.experiments.fig7_timeline import render_fig7, run_fig7


def test_bench_fig7_timeline(once, capsys):
    """Instructions per 0.1 s slice for gating / asymmetric / CuttleSys."""
    results = once(run_fig7, n_slices=10)
    with capsys.disabled():
        print()
        print(render_fig7(results))
    # Core gating turns cores off; the others keep them active.
    assert min(results["core-gating"].active_batch_cores) < 16
    assert min(results["asymm-oracle"].active_batch_cores) == 16
    # CuttleSys's steady-state slices beat core gating's.
    cs = sum(results["cuttlesys"].instructions_b[5:])
    cg = sum(results["core-gating"].instructions_b[5:])
    assert cs > cg * 0.95

"""Fig. 5(a)/(b) — SGD reconstruction accuracy boxes."""

from repro.experiments.fig5_accuracy import render_fig5, run_fig5a, run_fig5b


def test_bench_fig5_accuracy(once, capsys):
    """Isolation and colocation error percentiles (paper bands)."""
    isolation = once(run_fig5a)
    colocation = run_fig5b()
    with capsys.disabled():
        print()
        print(render_fig5(isolation, colocation))
    # Paper: 25th/75th within 10 %, 5th/95th within ~20 % (isolation).
    assert abs(isolation.throughput["p25"]) < 10
    assert abs(isolation.throughput["p75"]) < 10
    assert abs(isolation.throughput["p5"]) < 25
    assert abs(isolation.throughput["p95"]) < 25
    # Colocation medians stay near zero (§VIII-B).
    assert abs(colocation.throughput["median"]) < 10

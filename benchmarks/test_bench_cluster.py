"""Rack-level power brokering over CuttleSys sockets (§I's global manager)."""

from repro.experiments.cluster_study import (
    render_cluster_study,
    run_cluster_study,
)


def test_bench_cluster_brokering(once, capsys):
    """Static 50/50 rack split vs dynamic per-quantum brokering."""
    results = once(run_cluster_study, n_slices=20)
    with capsys.disabled():
        print()
        print(render_cluster_study(results))
    static = results["static-50-50"]
    broker = results["broker"]
    # Dynamic brokering harvests the under-populated socket's slack.
    assert broker.rack_instructions_b > static.rack_instructions_b * 1.03
    # The moved budget is visible in socket A's range.
    lo, hi = broker.socket_a_budget_range
    assert hi > lo * 1.1
    # Brokering must not trade QoS for throughput: it never violates
    # more than the static split, and both stay within a cold-start
    # quantum of clean over the 20-slice run.
    assert broker.qos_violations <= static.qos_violations
    assert static.qos_violations <= 1

"""Equal-area comparison: 32 reconfigurable vs 38 fixed cores (§VII)."""

from repro.experiments.area_equivalence import (
    render_area_equivalence,
    run_area_equivalence,
)


def test_bench_area_equivalence(once, capsys):
    """What the 19 % area tax buys back under power caps."""
    results = once(run_area_equivalence)
    with capsys.disabled():
        print()
        print(render_area_equivalence(results))

    def ratio(cap):
        reconf, fixed = results[cap]
        return reconf.batch_instructions_b / fixed.batch_instructions_b

    # At relaxed caps, more fixed cores win (all can be powered)...
    assert ratio(0.9) < 1.0
    # ...but under tight caps the extra silicon goes dark and
    # reconfiguration wins despite 6 fewer cores.
    assert ratio(0.5) > 1.2
    assert ratio(0.5) > ratio(0.7) > ratio(0.9)
    # QoS holds for CuttleSys throughout.
    for cap, (reconf, _) in results.items():
        assert reconf.qos_violations == 0

"""Table II — scheduling overheads, measured on this implementation."""

import numpy as np

from repro.core.dds import DDSSearch
from repro.core.matrices import throughput_rows
from repro.core.objective import SystemObjective
from repro.core.sgd import PQReconstructor
from repro.experiments.table2_overheads import (
    render_table2,
    run_table2,
    run_training_set_sensitivity,
    _profiled_matrix,
)
from repro.sim.coreconfig import N_JOINT_CONFIGS
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel
from repro.workloads.batch import SPEC_APPS, batch_profile


def test_bench_table2_report(once, capsys):
    """The full Table II report plus training-set sensitivity."""
    overheads = once(run_table2)
    sensitivity = run_training_set_sensitivity()
    with capsys.disabled():
        print()
        print(render_table2(overheads, sensitivity))
    assert overheads.sgd_ms < 50.0
    assert overheads.dds_ms < 500.0


def test_bench_sgd_reconstruction(benchmark):
    """Microbenchmark: one 32-row PQ reconstruction (paper: 4.8/3 ms)."""
    matrix, _, _ = _profiled_matrix(n_train=16)
    reconstructor = PQReconstructor()
    benchmark(reconstructor.reconstruct, matrix)


def test_bench_dds_search(benchmark):
    """Microbenchmark: one 16-job DDS search (paper: 1.3 ms)."""
    perf = PerformanceModel()
    power = PowerModel()
    profiles = [batch_profile(n) for n in SPEC_APPS[:16]]
    objective = SystemObjective(
        bips=throughput_rows(profiles, perf),
        power=np.vstack([power.power_row(p) for p in profiles]),
        max_power=100.0,
        max_ways=32,
    )
    searcher = DDSSearch()
    rng = np.random.default_rng(0)

    benchmark(
        searcher.search, objective, n_dims=16, n_confs=N_JOINT_CONFIGS,
        rng=rng,
    )

"""Extension study: reconfiguration vs DVFS across leakage regimes."""

from repro.experiments.dvfs_comparison import (
    render_dvfs_comparison,
    run_dvfs_comparison,
)


def test_bench_dvfs_comparison(once, capsys):
    """§II-A study: DVFS ladders vs core gating vs reconfiguration."""
    nominal = once(run_dvfs_comparison)
    high_leakage = run_dvfs_comparison(leakage_scale=2.5)
    with capsys.disabled():
        print()
        print("leakage x1.0 (today's node):")
        print(render_dvfs_comparison(nominal))
        print()
        print("leakage x2.5 (future node):")
        print(render_dvfs_comparison(high_leakage))
    # Razor-thin voltage margins measurably erode DVFS at tight caps.
    assert nominal.dvfs_headroom_loss(0.5) < 0.95
    # The erosion worsens as leakage grows.
    assert high_leakage.dvfs_headroom_loss(0.5) <= \
        nominal.dvfs_headroom_loss(0.5) + 0.02
    # Reconfiguration dominates whole-core gating at every cap.
    for cap in nominal.caps:
        assert nominal.advantage(cap, over="core-gating") >= 0.95
    assert nominal.advantage(0.5, over="core-gating") > 1.2

"""Scalability study: decision cost and quality vs machine size."""

from repro.experiments.scalability import render_scalability, run_scalability


def test_bench_scalability(once, capsys):
    """CuttleSys across 16/32/48-core machines (paper §I claim)."""
    points = once(run_scalability)
    with capsys.disabled():
        print()
        print(render_scalability(points))
    by_cores = {p.n_cores: p for p in points}
    # Decision quality holds as the machine grows...
    for p in points:
        assert p.quality > 0.7
    # ...and decision cost grows far slower than the configuration
    # space (3x the jobs -> (m*p)^(2B) more configurations, but well
    # under 2x the decision time).
    assert by_cores[48].decision_ms < 2.0 * by_cores[16].decision_ms

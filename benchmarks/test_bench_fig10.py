"""Fig. 10 — DDS vs GA design-space exploration."""

from repro.experiments.fig10_dds_vs_ga import (
    render_fig10,
    run_fig10a,
    run_fig10b,
)


def test_bench_fig10_dds_vs_ga(once, capsys):
    """Exploration clouds (10a) and SGD-DDS vs SGD-GA runs (10b)."""
    a = once(run_fig10a)
    b = run_fig10b(mix_indices=(0, 25), caps=(0.9, 0.7, 0.5), n_slices=8)
    with capsys.disabled():
        print()
        print(render_fig10(a, b))
    # DDS reaches at least as good a point on the frozen problem.
    assert a.dds.best_objective >= a.ga.best_objective * 0.99
    # Across full runs, DDS never loses badly and wins somewhere.
    advantages = [b.advantage(cap) for cap in b.caps]
    assert min(advantages) > 0.9
    assert max(advantages) > 1.0

"""Fig. 5(c) — relative useful work vs power cap (the headline result).

Defaults to one mix per LC service x 5 caps x 6 policies x 10 slices;
set ``REPRO_FULL_SWEEP=1`` in the environment to rerun all 50 mixes.
"""

import os

from repro.experiments.fig5c_powercaps import (
    PAPER_CAPS,
    render_fig5c,
    run_fig5c,
)


def test_bench_fig5c_power_caps(once, capsys):
    """The power-cap sweep of Fig. 5c."""
    if os.environ.get("REPRO_FULL_SWEEP"):
        mix_indices = range(50)
    else:
        mix_indices = (0, 12, 25, 37, 44)
    result = once(run_fig5c, mix_indices=mix_indices, caps=PAPER_CAPS,
                  n_slices=10)
    with capsys.disabled():
        print()
        print(render_fig5c(result))

    # Shape assertions from the paper:
    # (1) at relaxed caps the fixed-core designs hold their own,
    assert result.relative[0.9]["core-gating"] > 0.95
    # (2) CuttleSys overtakes core-level gating at stringent caps,
    assert result.speedup(0.5, "cuttlesys", "core-gating") > 1.1
    assert result.speedup(0.5, "cuttlesys", "core-gating+wp") > 1.1
    # (3) and closes on / passes the oracle-like asymmetric multicore.
    assert result.speedup(0.5, "cuttlesys", "asymm-oracle") > 0.9
    # (4) QoS is satisfied throughout for CuttleSys.
    total_qos = sum(
        result.qos_violations[c]["cuttlesys"] for c in result.caps
    )
    assert total_qos <= 1

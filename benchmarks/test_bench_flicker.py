"""§VIII-E — Flicker comparison: QoS violations and throughput."""

from repro.experiments.flicker_comparison import (
    render_flicker,
    run_flicker_qos,
    run_flicker_throughput,
)


def test_bench_flicker_comparison(once, capsys):
    """Both Flicker methodologies vs CuttleSys."""
    qos = once(run_flicker_qos)
    throughput = run_flicker_throughput(n_slices=8)
    with capsys.disabled():
        print()
        print(render_flicker(qos, throughput))
    # Paper: method (a) violates QoS by over an order of magnitude;
    # method (b) sits much closer to the QoS line than CuttleSys (the
    # paper measures ~1.5x over; our substrate has no memory-bandwidth
    # contention, so (b) lands near-but-under QoS — see EXPERIMENTS.md).
    assert qos.method_a_p99_over_qos > 3.0
    assert qos.method_b_p99_over_qos > qos.cuttlesys_p99_over_qos
    assert qos.cuttlesys_p99_over_qos <= 1.0
    assert qos.method_a_p99_over_qos > qos.method_b_p99_over_qos
    assert throughput.cuttlesys_qos_violations == 0

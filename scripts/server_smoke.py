#!/usr/bin/env python
"""CI smoke test for the scheduler daemon (the ``server-smoke`` job).

Boots ``repro serve`` as a real subprocess, drives the canonical
scripted session from ``tests/server/test_daemon.py`` over TCP —
including a SIGKILL halfway through and a ``--resume`` reboot — and
diffs the daemon's decision stream against the committed golden file.
Any byte of drift fails the job.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/server_smoke.py [OUT_DIR]

OUT_DIR (default ``server_smoke_out``) receives the daemon's state
file and the decision stream; CI uploads it as an artifact.
"""

import os
import signal
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tests" / "server"))

from test_daemon import (  # noqa: E402
    GOLDEN,
    PART_ONE,
    PART_TWO,
    boot_daemon,
    run_commands,
    stop_daemon,
)


def main(argv):
    out_dir = Path(argv[1] if len(argv) > 1 else "server_smoke_out")
    out_dir.mkdir(parents=True, exist_ok=True)

    print("== boot daemon, run first half of the scripted session")
    proc, port = boot_daemon(out_dir, "smoke")
    try:
        responses = run_commands(port, PART_ONE)
    finally:
        print(f"== SIGKILL daemon pid {proc.pid} (no shutdown hook)")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    if not all(r.get("ok") for r in responses):
        print(f"error: first-half command failed: {responses}")
        return 1

    print("== reboot with --resume, run second half")
    proc, port = boot_daemon(out_dir, "smoke-resumed", resume=True)
    try:
        status = run_commands(port, [{"op": "status"}])[0]
        print(f"   resumed at quantum {status['driver']['quantum']}, "
              f"{status['admission']['submitted']} submission(s) on ledger")
        responses = run_commands(port, PART_TWO)
    finally:
        stop_daemon(proc, port)
    if not all(r.get("ok") for r in responses):
        print(f"error: second-half command failed: {responses}")
        return 1

    produced = out_dir / "daemon_dec.jsonl"
    got = produced.read_bytes()
    want = GOLDEN.read_bytes()
    if got != want:
        print(f"error: {produced} diverges from {GOLDEN}")
        for i, (g, w) in enumerate(
            zip(got.splitlines(), want.splitlines())
        ):
            if g != w:
                print(f"  first divergent line {i}:")
                print(f"    got:  {g.decode(errors='replace')}")
                print(f"    want: {w.decode(errors='replace')}")
                break
        return 1
    print(f"== OK: {len(got.splitlines())} decision line(s) "
          "byte-identical to the golden stream across SIGKILL + resume")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

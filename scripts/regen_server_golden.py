#!/usr/bin/env python
"""Regenerate the committed golden decision stream for the daemon.

Runs the canonical scripted session from
``tests/server/test_daemon.py`` (PART_ONE + PART_TWO) against an
in-process :class:`QuantumDriver` — no sockets, but the identical
deterministic path the daemon executes — and rewrites
``tests/server/golden/decision_stream.jsonl``.

Run from the repository root after any intentional change to the
decision-record schema or the scripted session::

    PYTHONPATH=src python scripts/regen_server_golden.py
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tests" / "server"))

from repro.server.driver import QuantumDriver, ServerConfig  # noqa: E402
from repro.server.session import CommandExecutor  # noqa: E402

from test_daemon import MIX, PART_ONE, PART_TWO, SEED  # noqa: E402


def main() -> int:
    golden = REPO_ROOT / "tests" / "server" / "golden"
    golden.mkdir(parents=True, exist_ok=True)
    decisions = golden / "decision_stream.jsonl"
    driver = QuantumDriver(ServerConfig(
        mix=MIX, seed=SEED, max_quanta=50,
        decisions_path=str(decisions),
    ))
    executor = CommandExecutor(driver)
    for command in [*PART_ONE, *PART_TWO]:
        response = executor.execute(dict(command))
        if not response.get("ok"):
            raise SystemExit(f"scripted command failed: {response}")
    print(f"wrote {driver.decision_count} decision line(s) to {decisions}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

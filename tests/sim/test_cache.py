"""Tests for miss-rate curves and the way-partition ledger."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.cache import (
    SHARED_HALF_WAY_PENALTY,
    MissRateCurve,
    WayPartition,
)

curves = st.builds(
    MissRateCurve,
    peak=st.floats(1.0, 50.0),
    floor=st.floats(0.0, 1.0),
    half_ways=st.floats(0.5, 10.0),
)


class TestMissRateCurve:
    def test_no_cache_gives_peak(self):
        curve = MissRateCurve(peak=20.0, floor=2.0, half_ways=2.0)
        assert curve.mpki(0.0) == pytest.approx(20.0)

    def test_half_ways_halves_capacity_misses(self):
        curve = MissRateCurve(peak=20.0, floor=2.0, half_ways=2.0)
        assert curve.mpki(2.0) == pytest.approx(2.0 + 18.0 / 2.0)
        assert curve.mpki(4.0) == pytest.approx(2.0 + 18.0 / 4.0)

    @given(curves, st.floats(0.0, 30.0), st.floats(0.0, 30.0))
    def test_monotone_decreasing(self, curve, a, b):
        lo, hi = sorted((a, b))
        assert curve.mpki(hi) <= curve.mpki(lo) + 1e-12

    @given(curves, st.floats(0.0, 30.0))
    def test_never_below_floor(self, curve, ways):
        assert curve.mpki(ways) >= curve.floor - 1e-12

    @given(curves, st.floats(0.0, 30.0))
    def test_shared_penalty_inflates(self, curve, ways):
        plain = curve.mpki(ways)
        shared = curve.mpki(ways, shared=True)
        assert shared >= plain
        capacity = plain - curve.floor
        assert shared == pytest.approx(
            curve.floor + capacity * SHARED_HALF_WAY_PENALTY
        )

    def test_utility_positive_for_growth(self):
        curve = MissRateCurve(peak=20.0, floor=2.0, half_ways=2.0)
        assert curve.utility(1.0, 4.0) > 0
        assert curve.utility(4.0, 1.0) < 0
        assert curve.utility(2.0, 2.0) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MissRateCurve(peak=1.0, floor=2.0, half_ways=1.0)
        with pytest.raises(ValueError):
            MissRateCurve(peak=1.0, floor=-0.1, half_ways=1.0)
        with pytest.raises(ValueError):
            MissRateCurve(peak=1.0, floor=0.5, half_ways=0.0)
        curve = MissRateCurve(peak=5.0, floor=1.0, half_ways=2.0)
        with pytest.raises(ValueError):
            curve.mpki(-1.0)


class TestWayPartition:
    def test_assign_and_read_back(self):
        part = WayPartition(total_ways=32)
        part.assign("a", 4.0)
        part.assign("b", 0.5)
        assert part.ways_of("a") == 4.0
        assert part.ways_of("b") == 0.5
        assert part.ways_of("missing") == 0.0
        assert part.allocated == pytest.approx(4.5)
        assert part.free_ways == pytest.approx(27.5)

    def test_reassignment_replaces(self):
        part = WayPartition(total_ways=8)
        part.assign("a", 4.0)
        part.assign("a", 2.0)
        assert part.allocated == pytest.approx(2.0)

    def test_over_budget_rejected(self):
        part = WayPartition(total_ways=4)
        part.assign("a", 4.0)
        with pytest.raises(ValueError):
            part.assign("b", 0.5)
        # Failed assignment must not corrupt state.
        assert part.allocated == pytest.approx(4.0)

    def test_zero_assign_releases(self):
        part = WayPartition(total_ways=4)
        part.assign("a", 2.0)
        part.assign("a", 0.0)
        assert part.ways_of("a") == 0.0
        assert "a" not in part.allocations

    def test_release_is_idempotent(self):
        part = WayPartition(total_ways=4)
        part.assign("a", 2.0)
        part.release("a")
        part.release("a")
        assert part.allocated == 0.0

    def test_negative_rejected(self):
        part = WayPartition(total_ways=4)
        with pytest.raises(ValueError):
            part.assign("a", -1.0)
        with pytest.raises(ValueError):
            WayPartition(total_ways=0)

    def test_half_way_sharing_pairs_in_order(self):
        part = WayPartition(total_ways=32)
        part.assign("a", 0.5)
        part.assign("b", 0.5)
        part.assign("c", 0.5)
        assert part.is_shared("a")
        assert part.is_shared("b")
        assert not part.is_shared("c")  # odd one out owns its way

    def test_full_way_holders_never_shared(self):
        part = WayPartition(total_ways=32)
        part.assign("a", 1.0)
        part.assign("b", 0.5)
        assert not part.is_shared("a")
        assert not part.is_shared("b")

    def test_physical_ways_pairs_halves(self):
        part = WayPartition(total_ways=32)
        for name in "abcd":
            part.assign(name, 0.5)
        part.assign("e", 2.0)
        assert part.physical_ways_used() == pytest.approx(2.0 + 2.0)
        part.assign("f", 0.5)
        assert part.physical_ways_used() == pytest.approx(2.0 + math.ceil(5 / 2))

"""Tests for the bottleneck CPI performance model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.cache import MissRateCurve
from repro.sim.coreconfig import CORE_CONFIGS, N_JOINT_CONFIGS, CoreConfig
from repro.sim.perf import AppProfile, PerformanceModel, width_penalty


def make_profile(**overrides):
    defaults = dict(
        name="test",
        base_cpi=0.6,
        fe_sens=0.2,
        be_sens=0.3,
        ls_sens=0.15,
        miss_curve=MissRateCurve(peak=10.0, floor=2.0, half_ways=3.0),
    )
    defaults.update(overrides)
    return AppProfile(**defaults)


class TestWidthPenalty:
    def test_zero_at_six_wide(self):
        assert width_penalty(6) == pytest.approx(0.0)

    def test_monotone_in_narrowing(self):
        assert width_penalty(2) > width_penalty(4) > width_penalty(6)

    def test_convex_shape(self):
        # Dropping 6->4 must cost much less than 4->2.
        assert width_penalty(2) - width_penalty(4) > width_penalty(4)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            width_penalty(0)


class TestAppProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_profile(base_cpi=0.0)
        with pytest.raises(ValueError):
            make_profile(fe_sens=-0.1)
        with pytest.raises(ValueError):
            make_profile(activity=0.0)
        with pytest.raises(ValueError):
            make_profile(activity=2.5)

    def test_frozen(self):
        profile = make_profile()
        with pytest.raises(AttributeError):
            profile.base_cpi = 1.0


class TestPerformanceModel:
    def test_cpi_floor_is_base_plus_memory(self, perf):
        profile = make_profile()
        cpi = perf.cpi(profile, CoreConfig.widest(), cache_ways=4.0)
        mem = profile.miss_curve.mpki(4.0) / 1000 * 200 * profile.mem_blocking
        assert cpi == pytest.approx(profile.base_cpi + mem)

    @given(st.sampled_from(CORE_CONFIGS), st.sampled_from([0.5, 1.0, 2.0, 4.0]))
    def test_cpi_positive_everywhere(self, config, ways):
        perf = PerformanceModel()
        assert perf.cpi(make_profile(), config, ways) > 0

    def test_cpi_monotone_in_each_section(self, perf):
        profile = make_profile()
        for section in ("fe", "be", "ls"):
            for narrow, wide in ((2, 4), (4, 6)):
                kwargs_narrow = dict(fe=6, be=6, ls=6)
                kwargs_wide = dict(fe=6, be=6, ls=6)
                kwargs_narrow[section] = narrow
                kwargs_wide[section] = wide
                assert perf.cpi(
                    profile, CoreConfig(**kwargs_narrow), 4.0
                ) > perf.cpi(profile, CoreConfig(**kwargs_wide), 4.0)

    def test_cpi_monotone_in_cache_ways(self, perf):
        profile = make_profile()
        config = CoreConfig(4, 4, 4)
        cpis = [perf.cpi(profile, config, w) for w in (0.5, 1.0, 2.0, 4.0)]
        assert cpis == sorted(cpis, reverse=True)

    def test_shared_way_hurts(self, perf):
        profile = make_profile()
        config = CoreConfig(4, 4, 4)
        assert perf.cpi(profile, config, 0.5, shared_way=True) > perf.cpi(
            profile, config, 0.5
        )

    def test_narrow_ls_exposes_more_memory_stalls(self, perf):
        # An app with zero section sensitivities but memory traffic
        # still slows down when LS narrows (lost MLP).
        profile = make_profile(fe_sens=0.0, be_sens=0.0, ls_sens=0.0)
        assert perf.cpi(profile, CoreConfig(6, 6, 2), 4.0) > perf.cpi(
            profile, CoreConfig(6, 6, 6), 4.0
        )

    def test_bips_is_frequency_over_cpi(self, perf):
        profile = make_profile()
        config = CoreConfig(4, 2, 6)
        expected = perf.effective_frequency_ghz / perf.cpi(profile, config, 2.0)
        assert perf.bips(profile, config, 2.0) == pytest.approx(expected)

    def test_reconfigurable_frequency_penalty(self):
        reconf = PerformanceModel(reconfigurable=True)
        fixed = PerformanceModel(reconfigurable=False)
        assert reconf.effective_frequency_ghz == pytest.approx(
            4.0 * (1 - 0.0167)
        )
        assert fixed.effective_frequency_ghz == pytest.approx(4.0)
        profile = make_profile()
        config = CoreConfig.widest()
        ratio = fixed.bips(profile, config, 4.0) / reconf.bips(
            profile, config, 4.0
        )
        assert ratio == pytest.approx(1.0 / (1 - 0.0167))

    def test_bips_row_shape_and_consistency(self, perf):
        profile = make_profile()
        row = perf.bips_row(profile)
        assert row.shape == (N_JOINT_CONFIGS,)
        assert np.all(row > 0)
        # Widest config with 4 ways must be the global maximum.
        assert np.argmax(row) == N_JOINT_CONFIGS - 1

    def test_cpi_row_is_reciprocal_relation(self, perf):
        profile = make_profile()
        bips = perf.bips_row(profile)
        cpi = perf.cpi_row(profile)
        assert np.allclose(bips * cpi, perf.effective_frequency_ghz)

    def test_section_sensitivity_differentiates_apps(self, perf):
        # A BE-bound app must lose more from narrowing BE than an
        # LS-bound app does, and vice versa.
        be_bound = make_profile(be_sens=0.6, ls_sens=0.05)
        ls_bound = make_profile(be_sens=0.05, ls_sens=0.6)
        narrow_be = CoreConfig(6, 2, 6)
        narrow_ls = CoreConfig(6, 6, 2)
        wide = CoreConfig.widest()

        def slowdown(profile, config):
            return perf.cpi(profile, config, 4.0) / perf.cpi(profile, wide, 4.0)

        assert slowdown(be_bound, narrow_be) > slowdown(ls_bound, narrow_be)
        assert slowdown(ls_bound, narrow_ls) > slowdown(be_bound, narrow_ls)

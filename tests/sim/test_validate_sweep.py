"""Randomized sweeps over Machine._validate / Assignment invariants,
plus the non-finite guard on the machine's measurement noise.

Seeded ``numpy`` RNG rather than hypothesis: the sweep is a fixed,
replayable sample of the invalid-assignment space (over-budget cache
ways, wrong batch vectors, impossible core counts), checking the
simulator rejects every point before any state mutates.
"""

import math

import numpy as np
import pytest

from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig, JointConfig
from repro.sim.machine import Assignment, LCAllocation

LC_WIDE = JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1])


def random_joint(rng):
    return JointConfig.from_index(int(rng.integers(108)))


class TestNoisyGuard:
    """Satellite: Machine._noisy must not propagate garbage or burn RNG."""

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_in_nan_out(self, quiet_machine, bad):
        assert math.isnan(quiet_machine._noisy(bad, 0.02))

    def test_non_finite_does_not_consume_rng(self, small_machine):
        state_before = small_machine._rng.bit_generator.state
        small_machine._noisy(math.nan, 0.02)
        assert small_machine._rng.bit_generator.state == state_before
        # A finite value does draw (sanity check of the comparison).
        small_machine._noisy(1.0, 0.02)
        assert small_machine._rng.bit_generator.state != state_before

    def test_zero_short_circuits(self, small_machine):
        assert small_machine._noisy(0.0, 0.02) == 0.0

    def test_finite_values_stay_finite(self, small_machine):
        rng = np.random.default_rng(0)
        for value in rng.uniform(1e-6, 1e6, size=64):
            assert math.isfinite(small_machine._noisy(float(value), 0.05))


class TestValidateSweep:
    """Satellite: randomized invalid assignments are always rejected."""

    def test_over_budget_cache_ways_rejected(self, quiet_machine):
        rng = np.random.default_rng(42)
        n = len(quiet_machine.batch_profiles)
        budget = quiet_machine.params.llc_ways
        rejected = 0
        for _ in range(50):
            # Draw per-job allocations until the total really overflows
            # the LLC (LC takes 4 ways; jobs draw from the big end).
            ways = rng.choice([2.0, 4.0], size=n)
            assignment = Assignment(
                lc_cores=16,
                lc_config=LC_WIDE,
                batch_configs=tuple(
                    JointConfig(CoreConfig.narrowest(), w) for w in ways
                ),
            )
            if assignment.cache_ways_used() <= budget:
                continue
            rejected += 1
            with pytest.raises(ValueError, match="LLC ways"):
                quiet_machine.run_slice(assignment, 0.5)
        assert rejected > 0  # the sweep actually sampled invalid points

    def test_wrong_batch_vector_length_rejected(self, quiet_machine):
        rng = np.random.default_rng(43)
        n = len(quiet_machine.batch_profiles)
        for _ in range(20):
            wrong = int(rng.integers(0, 2 * n + 1))
            if wrong == n:
                continue
            assignment = Assignment(
                lc_cores=16,
                lc_config=LC_WIDE,
                batch_configs=tuple(
                    JointConfig(CoreConfig.narrowest(), 0.5)
                    for _ in range(wrong)
                ),
            )
            with pytest.raises(ValueError, match="batch"):
                quiet_machine.run_slice(assignment, 0.5)

    def test_lc_cores_beyond_machine_rejected(self, quiet_machine):
        rng = np.random.default_rng(44)
        n = len(quiet_machine.batch_profiles)
        n_cores = quiet_machine.params.n_cores
        for _ in range(20):
            cores = int(rng.integers(n_cores + 1, 4 * n_cores))
            assignment = Assignment(
                lc_cores=cores,
                lc_config=LC_WIDE,
                batch_configs=(None,) * n,
            )
            with pytest.raises(ValueError, match="exceed total cores"):
                quiet_machine.run_slice(assignment, 0.5)

    def test_extra_lc_cores_count_toward_total(self, quiet_machine):
        n = len(quiet_machine.batch_profiles)
        n_cores = quiet_machine.params.n_cores
        assignment = Assignment(
            lc_cores=n_cores,
            lc_config=LC_WIDE,
            batch_configs=(None,) * n,
            extra_lc=(LCAllocation(cores=1, config=LC_WIDE),),
        )
        with pytest.raises(ValueError):
            quiet_machine.run_slice(assignment, 0.5)

    def test_negative_counts_rejected_at_construction(self):
        rng = np.random.default_rng(45)
        for _ in range(20):
            bad = -int(rng.integers(1, 100))
            with pytest.raises(ValueError):
                Assignment(
                    lc_cores=bad, lc_config=LC_WIDE, batch_configs=()
                )
            with pytest.raises(ValueError):
                LCAllocation(cores=bad, config=LC_WIDE)

    def test_valid_random_assignments_accepted(self, quiet_machine):
        # The dual sweep: assignments inside every budget always run.
        rng = np.random.default_rng(46)
        n = len(quiet_machine.batch_profiles)
        budget = quiet_machine.params.llc_ways
        accepted = 0
        for _ in range(30):
            lc_cores = int(rng.integers(1, 17))
            configs = [
                random_joint(rng) if rng.random() < 0.7 else None
                for _ in range(n)
            ]
            assignment = Assignment(
                lc_cores=lc_cores,
                lc_config=LC_WIDE,
                batch_configs=tuple(configs),
            )
            if assignment.cache_ways_used() > budget:
                continue
            measurement = quiet_machine.run_slice(assignment, 0.5)
            assert math.isfinite(measurement.total_power)
            accepted += 1
        assert accepted > 0

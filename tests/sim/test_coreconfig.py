"""Tests for the reconfigurable-core configuration space."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.coreconfig import (
    CACHE_ALLOCS,
    CORE_CONFIGS,
    JOINT_CONFIGS,
    N_CACHE_ALLOCS,
    N_CORE_CONFIGS,
    N_JOINT_CONFIGS,
    SECTION_WIDTHS,
    CoreConfig,
    JointConfig,
    iter_core_configs,
    iter_joint_configs,
)

widths = st.sampled_from(SECTION_WIDTHS)


class TestCoreConfig:
    def test_space_size(self):
        assert N_CORE_CONFIGS == 27
        assert len(CORE_CONFIGS) == 27
        assert len(set(CORE_CONFIGS)) == 27

    def test_narrowest_is_index_zero(self):
        assert CoreConfig.narrowest().index == 0
        assert CoreConfig.narrowest() == CoreConfig(2, 2, 2)

    def test_widest_is_last_index(self):
        assert CoreConfig.widest().index == 26
        assert CoreConfig.widest() == CoreConfig(6, 6, 6)

    @given(widths, widths, widths)
    def test_index_round_trip(self, fe, be, ls):
        config = CoreConfig(fe, be, ls)
        assert CoreConfig.from_index(config.index) == config

    def test_indices_are_dense(self):
        assert sorted(c.index for c in CORE_CONFIGS) == list(range(27))

    @pytest.mark.parametrize("bad", [0, 1, 3, 5, 7, 8, -2])
    def test_invalid_width_rejected(self, bad):
        with pytest.raises(ValueError):
            CoreConfig(bad, 2, 2)
        with pytest.raises(ValueError):
            CoreConfig(2, bad, 2)
        with pytest.raises(ValueError):
            CoreConfig(2, 2, bad)

    @pytest.mark.parametrize("index", [-1, 27, 100])
    def test_invalid_index_rejected(self, index):
        with pytest.raises(ValueError):
            CoreConfig.from_index(index)

    def test_label_format(self):
        assert CoreConfig(6, 2, 4).label == "{6,2,4}"
        assert str(CoreConfig(2, 2, 2)) == "{2,2,2}"

    def test_widths_tuple(self):
        assert CoreConfig(4, 6, 2).widths() == (4, 6, 2)

    def test_ordering_is_by_widths(self):
        assert CoreConfig(2, 2, 2) < CoreConfig(2, 2, 4)
        assert CoreConfig(4, 2, 2) > CoreConfig(2, 6, 6)

    def test_hashable_and_usable_as_key(self):
        mapping = {config: config.index for config in CORE_CONFIGS}
        assert len(mapping) == 27

    def test_iter_matches_constant(self):
        assert list(iter_core_configs()) == list(CORE_CONFIGS)


class TestJointConfig:
    def test_space_size(self):
        assert N_JOINT_CONFIGS == 108
        assert len(JOINT_CONFIGS) == 108
        assert N_CACHE_ALLOCS == 4

    @given(st.integers(0, N_JOINT_CONFIGS - 1))
    def test_index_round_trip(self, index):
        joint = JointConfig.from_index(index)
        assert joint.index == index

    def test_cache_interleaving(self):
        # Cache allocations vary fastest within a core configuration.
        first_four = [JointConfig.from_index(i).cache_ways for i in range(4)]
        assert first_four == list(CACHE_ALLOCS)
        assert all(
            JointConfig.from_index(i).core == CoreConfig.narrowest()
            for i in range(4)
        )

    @pytest.mark.parametrize("bad_ways", [0.0, 0.25, 3.0, 8.0, -1.0])
    def test_invalid_ways_rejected(self, bad_ways):
        with pytest.raises(ValueError):
            JointConfig(CoreConfig.widest(), bad_ways)

    @pytest.mark.parametrize("index", [-1, 108, 500])
    def test_invalid_index_rejected(self, index):
        with pytest.raises(ValueError):
            JointConfig.from_index(index)

    def test_cache_index(self):
        for i, ways in enumerate(CACHE_ALLOCS):
            assert JointConfig(CoreConfig.widest(), ways).cache_index == i

    def test_label(self):
        joint = JointConfig(CoreConfig(6, 2, 4), 0.5)
        assert joint.label == "{6,2,4}/0.5w"
        assert str(JointConfig(CoreConfig(2, 2, 2), 2.0)) == "{2,2,2}/2w"

    def test_iter_matches_constant(self):
        assert list(iter_joint_configs()) == list(JOINT_CONFIGS)

    def test_all_unique(self):
        assert len(set(JOINT_CONFIGS)) == 108

"""Tests for the McPAT-substitute power model."""

import numpy as np
import pytest

from repro.sim.cache import MissRateCurve
from repro.sim.coreconfig import CORE_CONFIGS, N_CACHE_ALLOCS, CoreConfig
from repro.sim.perf import AppProfile
from repro.sim.power import PowerModel, PowerParams


@pytest.fixture
def profile():
    return AppProfile(
        name="p",
        base_cpi=0.6,
        fe_sens=0.2,
        be_sens=0.3,
        ls_sens=0.15,
        miss_curve=MissRateCurve(peak=10.0, floor=2.0, half_ways=3.0),
        activity=1.0,
    )


class TestPowerParams:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PowerParams(fe_dynamic=-0.1)
        with pytest.raises(ValueError):
            PowerParams(llc_leakage_per_way=-1.0)


class TestPowerModel:
    def test_power_monotone_in_width(self, power, profile):
        for narrow, wide in ((CoreConfig(2, 2, 2), CoreConfig(4, 4, 4)),
                             (CoreConfig(4, 4, 4), CoreConfig(6, 6, 6)),
                             (CoreConfig(2, 6, 6), CoreConfig(6, 6, 6))):
            assert power.core_power(profile, narrow) < power.core_power(
                profile, wide
            )

    def test_utilization_scales_dynamic_only(self, power, profile):
        config = CoreConfig.widest()
        idle = power.core_power(profile, config, utilization=0.0)
        busy = power.core_power(profile, config, utilization=1.0)
        assert 0 < idle < busy
        # Idle power is pure leakage: independent of activity.
        lazy = AppProfile(
            name="lazy",
            base_cpi=profile.base_cpi,
            fe_sens=profile.fe_sens,
            be_sens=profile.be_sens,
            ls_sens=profile.ls_sens,
            miss_curve=profile.miss_curve,
            activity=0.5,
        )
        assert power.core_power(lazy, config, utilization=0.0) == pytest.approx(
            idle
        )

    def test_utilization_validation(self, power, profile):
        with pytest.raises(ValueError):
            power.core_power(profile, CoreConfig.widest(), utilization=1.5)
        with pytest.raises(ValueError):
            power.core_power(profile, CoreConfig.widest(), utilization=-0.1)

    def test_reconfig_energy_penalty(self, profile):
        reconf = PowerModel(reconfigurable=True)
        fixed = PowerModel(reconfigurable=False)
        config = CoreConfig(4, 2, 6)
        ratio = reconf.core_power(profile, config) / fixed.core_power(
            profile, config
        )
        assert ratio == pytest.approx(1.18)

    def test_superlinear_dynamic_scaling(self, profile):
        """Narrowing saves proportionally more dynamic power than width."""
        power = PowerModel(reconfigurable=False)
        # With superlinear scaling, a {2,2,2} core must burn less than
        # 1/3 of the section power of a {6,6,6} core (plus overheads).
        p = power.params
        small = power.core_power(profile, CoreConfig.narrowest())
        big = power.core_power(profile, CoreConfig.widest())
        overhead = p.other_dynamic * profile.activity + p.other_leakage
        section_small = small - overhead
        section_big = big - overhead
        assert section_small / section_big < 1.0 / 3.0

    def test_gated_power_small(self, power, profile):
        assert power.gated_core_power() < 0.2
        assert power.gated_core_power() < power.core_power(
            profile, CoreConfig.narrowest(), utilization=0.0
        )

    def test_llc_power_scales_with_ways(self):
        assert PowerModel(llc_ways=32).llc_power() == pytest.approx(
            2 * PowerModel(llc_ways=16).llc_power()
        )

    def test_power_row_constant_across_cache_allocs(self, power, profile):
        """Paper formulation: P_{i,j} depends on the core config only."""
        row = power.power_row(profile)
        grouped = row.reshape(len(CORE_CONFIGS), N_CACHE_ALLOCS)
        for core_block in grouped:
            assert np.allclose(core_block, core_block[0])

    def test_power_row_positive_and_ordered(self, power, profile):
        row = power.power_row(profile)
        assert np.all(row > 0)
        widest = row[-1]
        narrowest = row[0]
        assert widest > narrowest

    def test_activity_scales_power(self, power):
        def prof(act):
            return AppProfile(
                name="a",
                base_cpi=0.6,
                fe_sens=0.1,
                be_sens=0.1,
                ls_sens=0.1,
                miss_curve=MissRateCurve(peak=5.0, floor=1.0, half_ways=2.0),
                activity=act,
            )

        assert power.core_power(prof(1.2), CoreConfig.widest()) > \
            power.core_power(prof(0.8), CoreConfig.widest())

"""Tests for the memory-bandwidth contention model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.coreconfig import CoreConfig, JointConfig
from repro.sim.machine import Assignment, Machine, MachineParams
from repro.sim.memory import LINE_BYTES, MemoryDemand, MemorySystem
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import lc_service


def demand(core_s=1e-10, mem_s=5e-11, mpki=5.0, cap=math.inf):
    return MemoryDemand(
        core_seconds=core_s,
        mem_seconds=mem_s,
        misses_per_unit=mpki / 1000.0,
        rate_cap=cap,
    )


class TestMemoryDemand:
    def test_rate_shrinks_with_multiplier(self):
        d = demand()
        assert d.rate(2.0) < d.rate(1.0)

    def test_rate_cap_binds(self):
        d = demand(cap=1000.0)
        assert d.rate(1.0) == 1000.0

    def test_bandwidth_formula(self):
        d = demand(mpki=10.0)
        assert d.bandwidth(1.0) == pytest.approx(
            d.rate(1.0) * 0.01 * LINE_BYTES
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryDemand(0.0, 1e-10, 0.005)
        with pytest.raises(ValueError):
            MemoryDemand(1e-10, -1e-10, 0.005)
        with pytest.raises(ValueError):
            MemoryDemand(1e-10, 1e-10, -0.1)


class TestMemorySystem:
    def test_disabled_by_default(self):
        system = MemorySystem()
        assert not system.enabled
        assert system.solve([demand()] * 100) == 1.0

    def test_light_load_no_inflation(self):
        system = MemorySystem(peak_bandwidth_gbps=1000.0)
        assert system.solve([demand()]) == pytest.approx(1.0, abs=0.05)

    def test_heavy_load_inflates(self):
        system = MemorySystem(peak_bandwidth_gbps=10.0)
        heavy = [demand(mpki=30.0) for _ in range(16)]
        assert system.solve(heavy) > 1.2

    @given(st.floats(10.0, 500.0), st.integers(1, 32))
    @settings(max_examples=30)
    def test_multiplier_at_least_one(self, bandwidth, n):
        system = MemorySystem(peak_bandwidth_gbps=bandwidth)
        assert system.solve([demand() for _ in range(n)]) >= 1.0

    def test_more_jobs_more_contention(self):
        system = MemorySystem(peak_bandwidth_gbps=30.0)
        few = system.solve([demand(mpki=20.0) for _ in range(4)])
        many = system.solve([demand(mpki=20.0) for _ in range(16)])
        assert many > few

    def test_multiplier_at_monotone(self):
        system = MemorySystem(peak_bandwidth_gbps=50.0)
        assert system.multiplier_at(0.8) > system.multiplier_at(0.3)
        assert system.multiplier_at(0.0) == 1.0

    def test_utilization_bounded_by_fixed_point(self):
        system = MemorySystem(peak_bandwidth_gbps=20.0)
        heavy = [demand(mpki=30.0) for _ in range(16)]
        m = system.solve(heavy)
        rho = system.utilization(heavy, m)
        # Throttling keeps demand near/below the peak at the fixed point.
        assert rho < 1.3

    def test_empty_demands(self):
        assert MemorySystem(peak_bandwidth_gbps=10.0).solve([]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySystem(peak_bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            MemorySystem(queue_factor=-1.0)
        with pytest.raises(ValueError):
            MemorySystem(max_utilization=1.0)
        with pytest.raises(ValueError):
            MemorySystem(iterations=0)


class TestMachineIntegration:
    def build(self, bandwidth):
        _, test = train_test_split()
        profiles = [batch_profile(n) for n in (test * 2)[:16]]
        return Machine(
            lc_service=lc_service("xapian"),
            batch_profiles=profiles,
            params=MachineParams(
                peak_memory_bandwidth_gbps=bandwidth,
                profiling_noise=0.0, slice_noise=0.0, phase_drift=0.0,
            ),
            seed=3,
        )

    def assignment(self):
        wide = JointConfig(CoreConfig.widest(), 1.0)
        return Assignment(
            lc_cores=16,
            lc_config=JointConfig(CoreConfig.widest(), 4.0),
            batch_configs=tuple(wide for _ in range(16)),
        )

    def test_contention_slows_everything(self):
        free = self.build(math.inf).run_slice(self.assignment(), 0.8)
        tight = self.build(50.0).run_slice(self.assignment(), 0.8)
        assert tight.memory_stall_multiplier > 1.0
        assert free.memory_stall_multiplier == 1.0
        assert tight.total_batch_instructions < free.total_batch_instructions
        assert tight.lc_p99 > free.lc_p99

    def test_narrow_configs_reduce_contention(self):
        machine = self.build(50.0)
        narrow = JointConfig(CoreConfig.narrowest(), 1.0)
        low = Assignment(
            lc_cores=16,
            lc_config=JointConfig(CoreConfig.widest(), 4.0),
            batch_configs=tuple(narrow for _ in range(16)),
        )
        wide_run = machine.run_slice(self.assignment(), 0.8)
        narrow_run = machine.run_slice(low, 0.8)
        assert narrow_run.memory_stall_multiplier < \
            wide_run.memory_stall_multiplier

    def test_disabled_has_unit_multiplier(self):
        m = self.build(math.inf).run_slice(self.assignment(), 0.8)
        assert m.memory_stall_multiplier == 1.0

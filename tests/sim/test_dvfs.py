"""Tests for the DVFS model."""

import pytest

from repro.sim.cache import MissRateCurve
from repro.sim.coreconfig import CoreConfig
from repro.sim.dvfs import (
    DVFSLevel,
    DVFSModel,
    legacy_ladder,
    razor_thin_ladder,
)
from repro.sim.perf import AppProfile


def profile(mem_heavy=False):
    if mem_heavy:
        curve = MissRateCurve(peak=35.0, floor=10.0, half_ways=6.0)
        return AppProfile("mem", 0.7, 0.08, 0.1, 0.2, curve,
                          mem_blocking=0.55, activity=0.8)
    curve = MissRateCurve(peak=2.0, floor=0.8, half_ways=1.5)
    return AppProfile("cpu", 0.5, 0.3, 0.4, 0.1, curve,
                      mem_blocking=0.3, activity=1.1)


@pytest.fixture
def model():
    return DVFSModel(legacy_ladder())


class TestLadders:
    def test_both_ladders_descend_in_frequency(self):
        for ladder in (legacy_ladder(), razor_thin_ladder()):
            freqs = [lvl.frequency_ghz for lvl in ladder]
            assert freqs == sorted(freqs, reverse=True)

    def test_same_frequencies_different_voltages(self):
        legacy = legacy_ladder()
        razor = razor_thin_ladder()
        assert [l.frequency_ghz for l in legacy] == \
            [r.frequency_ghz for r in razor]
        # Razor-thin: lowest level keeps voltage near nominal.
        assert razor[-1].vdd > legacy[-1].vdd

    def test_level_validation(self):
        with pytest.raises(ValueError):
            DVFSLevel(0.0, 0.8)
        with pytest.raises(ValueError):
            DVFSLevel(2.0, 0.0)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            DVFSModel(())
        with pytest.raises(ValueError):
            DVFSModel((DVFSLevel(2.0, 0.6), DVFSLevel(3.0, 0.7)))


class TestPerformance:
    def test_bips_decreases_with_level(self, model):
        p = profile()
        bips = [model.bips(p, lvl, 2.0) for lvl in range(model.n_levels())]
        assert bips == sorted(bips, reverse=True)

    def test_memory_bound_jobs_lose_less(self, model):
        cpu = profile()
        mem = profile(mem_heavy=True)
        bottom = model.n_levels() - 1

        def retention(p):
            return model.bips(p, bottom, 2.0) / model.bips(p, 0, 2.0)

        assert retention(mem) > retention(cpu)

    def test_nominal_matches_fixed_perf_model(self, model):
        p = profile()
        direct = model.perf.bips(p, CoreConfig(6, 6, 6), 2.0)
        assert model.bips(p, 0, 2.0) == pytest.approx(direct, rel=1e-9)

    def test_level_bounds(self, model):
        with pytest.raises(ValueError):
            model.bips(profile(), -1, 2.0)
        with pytest.raises(ValueError):
            model.bips(profile(), model.n_levels(), 2.0)


class TestPower:
    def test_power_decreases_with_level(self, model):
        p = profile()
        watts = [
            model.core_power(p, lvl) for lvl in range(model.n_levels())
        ]
        assert watts == sorted(watts, reverse=True)

    def test_legacy_saves_more_than_razor(self):
        p = profile()
        legacy = DVFSModel(legacy_ladder())
        razor = DVFSModel(razor_thin_ladder())
        bottom = legacy.n_levels() - 1
        assert legacy.core_power(p, bottom) < razor.core_power(p, bottom)

    def test_nominal_matches_power_model(self, model):
        p = profile()
        direct = model.power.core_power(p, CoreConfig(6, 6, 6))
        assert model.core_power(p, 0) == pytest.approx(direct, rel=1e-9)

    def test_utilization_scaling(self, model):
        p = profile()
        assert model.core_power(p, 2, utilization=0.3) < \
            model.core_power(p, 2, utilization=1.0)

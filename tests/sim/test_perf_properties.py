"""Property-based invariants of the performance model.

Hypothesis generates arbitrary valid application profiles and checks
the structural properties every scheduler in this repo relies on:
monotonicity in widths and cache, positivity, consistency between the
scalar and row APIs, and the core/memory split.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import MissRateCurve
from repro.sim.coreconfig import (
    CACHE_ALLOCS,
    CORE_CONFIGS,
    JOINT_CONFIGS,
    CoreConfig,
)
from repro.sim.perf import AppProfile, PerformanceModel
from repro.sim.power import PowerModel

perf = PerformanceModel()
power = PowerModel()


@st.composite
def profiles(draw):
    peak = draw(st.floats(0.5, 40.0))
    return AppProfile(
        name="hyp",
        base_cpi=draw(st.floats(0.3, 1.5)),
        fe_sens=draw(st.floats(0.0, 0.8)),
        be_sens=draw(st.floats(0.0, 0.8)),
        ls_sens=draw(st.floats(0.0, 0.8)),
        miss_curve=MissRateCurve(
            peak=peak,
            floor=draw(st.floats(0.0, 1.0)) * peak,
            half_ways=draw(st.floats(0.5, 10.0)),
        ),
        mem_blocking=draw(st.floats(0.1, 0.7)),
        ls_mlp_sens=draw(st.floats(0.0, 0.5)),
        activity=draw(st.floats(0.5, 1.5)),
    )


configs = st.sampled_from(CORE_CONFIGS)
ways = st.sampled_from(CACHE_ALLOCS)


class TestPerfInvariants:
    @given(profiles(), configs, ways)
    @settings(max_examples=80)
    def test_cpi_positive_and_split_consistent(self, profile, config, w):
        core, mem = perf.cpi_split(profile, config, w)
        assert core > 0
        assert mem >= 0
        assert perf.cpi(profile, config, w) == pytest.approx(core + mem)

    @given(profiles(), ways)
    @settings(max_examples=60)
    def test_widest_config_is_fastest(self, profile, w):
        best = perf.bips(profile, CoreConfig.widest(), w)
        for config in (CoreConfig(4, 4, 4), CoreConfig.narrowest(),
                       CoreConfig(6, 2, 6), CoreConfig(2, 6, 4)):
            assert perf.bips(profile, config, w) <= best + 1e-12

    @given(profiles(), configs)
    @settings(max_examples=60)
    def test_more_cache_never_hurts(self, profile, config):
        bips = [perf.bips(profile, config, w) for w in sorted(CACHE_ALLOCS)]
        assert all(b <= a + 1e-12 for b, a in zip(bips, bips[1:]))

    @given(profiles(), configs, ways)
    @settings(max_examples=60)
    def test_memory_multiplier_slows_down(self, profile, config, w):
        base = perf.bips(profile, config, w)
        slowed = perf.bips(profile, config, w, mem_multiplier=2.0)
        assert slowed <= base + 1e-12
        # A pure-compute profile is immune.
        if profile.miss_curve.mpki(w) == 0:
            assert slowed == pytest.approx(base)

    @given(profiles())
    @settings(max_examples=30)
    def test_row_matches_scalar_api(self, profile):
        row = perf.bips_row(profile)
        for joint in (JOINT_CONFIGS[0], JOINT_CONFIGS[53], JOINT_CONFIGS[107]):
            assert row[joint.index] == pytest.approx(
                perf.bips(profile, joint.core, joint.cache_ways)
            )

    @given(profiles(), configs, ways)
    @settings(max_examples=40)
    def test_shared_way_never_helps(self, profile, config, w):
        assert perf.bips(profile, config, w, shared_way=True) <= \
            perf.bips(profile, config, w) + 1e-12


class TestPowerInvariants:
    @given(profiles(), configs)
    @settings(max_examples=60)
    def test_power_positive_and_bounded(self, profile, config):
        watts = power.core_power(profile, config)
        assert 0 < watts < 20

    @given(profiles(), configs, st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_utilization_monotone(self, profile, config, util):
        busy = power.core_power(profile, config, utilization=1.0)
        partial = power.core_power(profile, config, utilization=util)
        idle = power.core_power(profile, config, utilization=0.0)
        assert idle - 1e-12 <= partial <= busy + 1e-12

    @given(profiles())
    @settings(max_examples=40)
    def test_widest_core_burns_most(self, profile):
        row = power.power_row(profile)
        assert np.argmax(row) >= row.size - 4  # a widest-core column
        assert row[-1] == np.max(row)

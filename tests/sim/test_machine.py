"""Tests for the timeslice-level machine simulator."""

import numpy as np
import pytest

from repro.sim.coreconfig import CoreConfig, JointConfig
from repro.sim.machine import Assignment, Machine, MachineParams
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import lc_service

WIDE = JointConfig(CoreConfig.widest(), 1.0)
NARROW = JointConfig(CoreConfig.narrowest(), 1.0)


def uniform_assignment(machine, joint=None, lc_cores=16, **kwargs):
    joint = joint if joint is not None else NARROW
    return Assignment(
        lc_cores=lc_cores,
        lc_config=JointConfig(CoreConfig.widest(), 4.0),
        batch_configs=tuple(joint for _ in machine.batch_profiles),
        **kwargs,
    )


class TestMachineParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineParams(n_cores=0)
        with pytest.raises(ValueError):
            MachineParams(timeslice_s=0)
        with pytest.raises(ValueError):
            MachineParams(sample_s=0.2, timeslice_s=0.1)
        with pytest.raises(ValueError):
            MachineParams(phase_persistence=1.0)


class TestAssignment:
    def test_lc_config_required_when_cores(self):
        with pytest.raises(ValueError):
            Assignment(lc_cores=4, lc_config=None, batch_configs=(NARROW,))

    def test_active_batch_indices(self):
        a = Assignment(
            lc_cores=0,
            lc_config=None,
            batch_configs=(NARROW, None, WIDE, None),
        )
        assert a.active_batch_indices == (0, 2)

    def test_cache_ways_pairing(self):
        half = JointConfig(CoreConfig.narrowest(), 0.5)
        two = JointConfig(CoreConfig.narrowest(), 2.0)
        a = Assignment(
            lc_cores=2,
            lc_config=JointConfig(CoreConfig.widest(), 4.0),
            batch_configs=(half, half, half, two),
        )
        # 4 (LC) + ceil(3/2)=2 (halves) + 2 = 8.
        assert a.cache_ways_used() == pytest.approx(8.0)


class TestRunSlice:
    def test_instruction_accounting(self, quiet_machine):
        assignment = uniform_assignment(quiet_machine)
        m = quiet_machine.run_slice(assignment, load=0.5)
        # instructions = BIPS * 1e9 * timeslice.
        expected = m.batch_bips * 1e9 * quiet_machine.params.timeslice_s
        assert np.allclose(m.batch_instructions, expected)
        assert m.total_batch_instructions > 0

    def test_gated_jobs_do_no_work(self, quiet_machine):
        configs = [NARROW] * 16
        configs[3] = None
        configs[7] = None
        a = Assignment(
            lc_cores=16,
            lc_config=JointConfig(CoreConfig.widest(), 4.0),
            batch_configs=tuple(configs),
        )
        m = quiet_machine.run_slice(a, load=0.5)
        assert m.batch_bips[3] == 0.0
        assert m.batch_bips[7] == 0.0
        assert m.batch_instructions[3] == 0.0

    def test_time_multiplexing_on_core_relocation(self, quiet_machine):
        # 17 LC cores leave 15 cores for 16 active jobs.
        a = uniform_assignment(quiet_machine, lc_cores=17)
        m = quiet_machine.run_slice(a, load=0.5)
        full = quiet_machine.true_batch_bips(0, NARROW)
        assert m.batch_bips[0] == pytest.approx(full * 15 / 16, rel=1e-6)

    def test_lc_measurements_present(self, quiet_machine):
        m = quiet_machine.run_slice(uniform_assignment(quiet_machine), 0.8)
        assert m.lc_p99 > 0
        assert m.lc_queries_served > 0
        assert m.lc_instructions > 0
        assert 0 < m.lc_utilization <= 1
        assert m.lc_core_power > 0

    def test_no_lc(self, quiet_machine):
        a = Assignment(
            lc_cores=0,
            lc_config=None,
            batch_configs=tuple(NARROW for _ in range(16)),
        )
        m = quiet_machine.run_slice(a, load=0.0)
        assert m.lc_p99 == 0.0
        assert m.lc_instructions == 0.0

    def test_power_includes_llc_and_lc(self, quiet_machine):
        m = quiet_machine.run_slice(uniform_assignment(quiet_machine), 0.8)
        floor = quiet_machine.power.llc_power() + 16 * m.lc_core_power
        assert m.total_power > floor

    def test_wider_configs_burn_more_power(self, quiet_machine):
        lo = quiet_machine.run_slice(uniform_assignment(quiet_machine), 0.5)
        hi = quiet_machine.run_slice(
            uniform_assignment(quiet_machine, joint=WIDE), 0.5
        )
        assert hi.total_power > lo.total_power

    def test_clock_advances(self, quiet_machine):
        t0 = quiet_machine.time_s
        quiet_machine.run_slice(uniform_assignment(quiet_machine), 0.5)
        assert quiet_machine.time_s == pytest.approx(
            t0 + quiet_machine.params.timeslice_s
        )

    def test_cache_budget_enforced(self, quiet_machine):
        four = JointConfig(CoreConfig.narrowest(), 4.0)
        a = uniform_assignment(quiet_machine, joint=four)  # 16*4+4 > 32
        with pytest.raises(ValueError):
            quiet_machine.run_slice(a, 0.5)

    def test_shared_llc_skips_cache_budget(self, quiet_machine):
        four = JointConfig(CoreConfig.narrowest(), 4.0)
        a = uniform_assignment(quiet_machine, joint=four, shared_llc=True)
        m = quiet_machine.run_slice(a, 0.5)
        assert m.total_batch_instructions > 0

    def test_shared_llc_slower_than_partitioned(self, quiet_machine):
        two = JointConfig(CoreConfig.narrowest(), 1.0)
        part = quiet_machine.run_slice(uniform_assignment(quiet_machine, joint=two), 0.5)
        shared = quiet_machine.run_slice(
            uniform_assignment(quiet_machine, joint=two, shared_llc=True), 0.5
        )
        # 32/17*0.75 ~ 1.41 effective ways with contention penalty vs a
        # dedicated 1.0 way: close, but the point is it runs validly.
        assert shared.total_batch_instructions > 0
        assert part.total_batch_instructions > 0

    def test_wrong_job_count_rejected(self, quiet_machine):
        a = Assignment(
            lc_cores=16,
            lc_config=JointConfig(CoreConfig.widest(), 4.0),
            batch_configs=(NARROW,) * 3,
        )
        with pytest.raises(ValueError):
            quiet_machine.run_slice(a, 0.5)


class TestProfiling:
    def test_sample_shapes(self, small_machine):
        sample = small_machine.profile(load=0.8)
        assert sample.batch_bips_hi.shape == (16,)
        assert sample.batch_bips_lo.shape == (16,)
        assert np.all(sample.batch_bips_hi > sample.batch_bips_lo)
        assert np.all(sample.batch_power_hi > sample.batch_power_lo)
        assert sample.hi_joint_index == WIDE.index
        assert sample.lo_joint_index == NARROW.index

    def test_noise_is_seed_deterministic(self):
        _, test_names = train_test_split()
        profiles = [batch_profile(n) for n in (test_names * 2)[:16]]

        def build():
            return Machine(
                lc_service=lc_service("xapian"),
                batch_profiles=profiles,
                seed=5,
            )

        a = build().profile(0.8)
        b = build().profile(0.8)
        assert np.allclose(a.batch_bips_hi, b.batch_bips_hi)

    def test_noiseless_profile_matches_truth(self, quiet_machine):
        sample = quiet_machine.profile(0.8)
        truth = quiet_machine.true_batch_bips(0, WIDE)
        assert sample.batch_bips_hi[0] == pytest.approx(truth)

    def test_profile_configs_generalises(self, quiet_machine):
        joints = [WIDE, NARROW, JointConfig(CoreConfig(4, 4, 4), 1.0)]
        bips, power, lc_power = quiet_machine.profile_configs(joints, 0.8)
        assert bips.shape == (3, 16)
        assert power.shape == (3, 16)
        assert lc_power.shape == (3,)
        with pytest.raises(ValueError):
            quiet_machine.profile_configs([], 0.8)


class TestPhasesAndReference:
    def test_phases_change_truth_over_time(self, small_machine):
        before = small_machine.true_batch_bips(0, WIDE)
        for _ in range(20):
            small_machine.run_slice(
                uniform_assignment(small_machine), load=0.5
            )
        after = small_machine.true_batch_bips(0, WIDE)
        assert before != after

    def test_quiet_machine_has_stable_truth(self, quiet_machine):
        before = quiet_machine.true_batch_bips(0, WIDE)
        for _ in range(5):
            quiet_machine.run_slice(uniform_assignment(quiet_machine), 0.5)
        assert quiet_machine.true_batch_bips(0, WIDE) == pytest.approx(before)

    def test_reference_max_power_scale(self, small_machine):
        reference = small_machine.reference_max_power()
        # 32 cores at a few watts each plus the LLC.
        assert 60 < reference < 300

    def test_describe_mentions_key_parameters(self, small_machine):
        text = small_machine.describe()
        assert "32-core" in text
        assert "32-way" in text
        assert "4.0 GHz" in text


class TestDESLatencyMode:
    def build(self, mode):
        _, test_names = train_test_split()
        profiles = [batch_profile(n) for n in (test_names * 2)[:16]]
        return Machine(
            lc_service=lc_service("xapian"),
            batch_profiles=profiles,
            params=MachineParams(latency_mode=mode),
            seed=9,
        )

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            MachineParams(latency_mode="exact")

    def test_des_p99_close_to_analytical(self):
        analytical = self.build("analytical")
        des = self.build("des")
        a = Assignment(
            lc_cores=16,
            lc_config=JointConfig(CoreConfig.widest(), 4.0),
            batch_configs=tuple(
                JointConfig(CoreConfig.narrowest(), 1.0) for _ in range(16)
            ),
        )
        p99_a = analytical.run_slice(a, 0.8).lc_p99
        p99_d = des.run_slice(a, 0.8).lc_p99
        assert p99_d == pytest.approx(p99_a, rel=0.5)
        assert p99_d > 0

    def test_des_has_sampling_noise(self):
        des = self.build("des")
        a = Assignment(
            lc_cores=16,
            lc_config=JointConfig(CoreConfig.widest(), 4.0),
            batch_configs=tuple(
                JointConfig(CoreConfig.narrowest(), 1.0) for _ in range(16)
            ),
        )
        values = {des.run_slice(a, 0.8).lc_p99 for _ in range(3)}
        assert len(values) == 3  # every slice is a fresh sample

    def test_des_zero_load(self):
        des = self.build("des")
        a = Assignment(
            lc_cores=16,
            lc_config=JointConfig(CoreConfig.widest(), 4.0),
            batch_configs=tuple(
                JointConfig(CoreConfig.narrowest(), 1.0) for _ in range(16)
            ),
        )
        assert des.run_slice(a, 0.0).lc_p99 == 0.0


class TestReconfigurationTransitions:
    def test_first_slice_has_no_transitions(self, quiet_machine):
        m = quiet_machine.run_slice(uniform_assignment(quiet_machine), 0.5)
        assert m.reconfigurations == 0

    def test_stable_assignment_pays_nothing(self, quiet_machine):
        a = uniform_assignment(quiet_machine)
        first = quiet_machine.run_slice(a, 0.5)
        second = quiet_machine.run_slice(a, 0.5)
        assert second.reconfigurations == 0
        assert second.batch_bips[0] == pytest.approx(first.batch_bips[0])

    def test_core_change_counts_and_costs(self, quiet_machine):
        quiet_machine.run_slice(uniform_assignment(quiet_machine), 0.5)
        stable = quiet_machine.run_slice(
            uniform_assignment(quiet_machine), 0.5
        )
        changed = quiet_machine.run_slice(
            uniform_assignment(quiet_machine, joint=WIDE), 0.5
        )
        assert changed.reconfigurations == 16
        # Back to the narrow config: another full transition, and the
        # throughput dips relative to the stable narrow slice.
        back = quiet_machine.run_slice(uniform_assignment(quiet_machine), 0.5)
        assert back.reconfigurations == 16
        factor = 1 - (
            quiet_machine.params.reconfig_transition_s
            / quiet_machine.params.timeslice_s
        )
        assert back.batch_bips[0] == pytest.approx(
            stable.batch_bips[0] * factor, rel=1e-6
        )

    def test_cache_only_change_is_free(self, quiet_machine):
        quiet_machine.run_slice(uniform_assignment(quiet_machine), 0.5)
        half_way = JointConfig(CoreConfig.narrowest(), 0.5)
        m = quiet_machine.run_slice(
            uniform_assignment(quiet_machine, joint=half_way), 0.5
        )
        assert m.reconfigurations == 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            MachineParams(reconfig_transition_s=-1.0)
        with pytest.raises(ValueError):
            MachineParams(reconfig_transition_s=0.2, timeslice_s=0.1)

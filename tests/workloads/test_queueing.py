"""Tests for the analytical M/G/k model and the discrete-event validator."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.queueing import (
    DiscreteEventQueue,
    MGkQueue,
    erlang_c,
    mixture_p99,
)


class TestErlangC:
    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_single_server_equals_rho(self):
        # M/M/1: P(wait) = rho.
        assert erlang_c(1, 0.3) == pytest.approx(0.3)
        assert erlang_c(1, 0.9) == pytest.approx(0.9)

    def test_known_multi_server_value(self):
        # Classic table value: k=2, offered load 1.0 -> P(wait) = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0, rel=1e-6)

    def test_saturation_returns_one(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 10.0) == 1.0

    @given(st.integers(1, 64), st.floats(0.01, 0.99))
    def test_bounded_probability(self, servers, rho):
        p = erlang_c(servers, rho * servers)
        assert 0.0 <= p <= 1.0

    @given(st.floats(0.1, 0.9))
    def test_more_servers_less_waiting(self, rho):
        # At equal per-server utilization, pooling reduces waiting.
        assert erlang_c(16, rho * 16) <= erlang_c(2, rho * 2) + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -1.0)


class TestMGkQueue:
    def queue(self, rho=0.5, scv=1.0, servers=16, service=0.001):
        return MGkQueue(
            arrival_rate=rho * servers / service,
            service_time_mean=service,
            service_scv=scv,
            servers=servers,
        )

    def test_utilization(self):
        q = self.queue(rho=0.7)
        assert q.utilization == pytest.approx(0.7)

    def test_p99_at_least_service_quantile(self):
        q = self.queue(rho=0.2)
        assert q.p99_latency() >= q._service_quantile(0.99) - 1e-12

    @given(st.floats(0.05, 0.9), st.floats(0.05, 0.9))
    @settings(max_examples=40)
    def test_p99_monotone_in_load(self, a, b):
        lo, hi = sorted((a, b))
        assert self.queue(rho=hi).p99_latency() >= \
            self.queue(rho=lo).p99_latency() - 1e-9

    def test_p99_explodes_near_saturation(self):
        calm = self.queue(rho=0.5).p99_latency()
        hot = self.queue(rho=0.98).p99_latency()
        assert hot > 2 * calm

    def test_overload_grows_with_backlog(self):
        over1 = self.queue(rho=1.2).p99_latency()
        over2 = self.queue(rho=2.0).p99_latency()
        assert over2 > over1 > self.queue(rho=0.9).p99_latency()

    def test_higher_variability_higher_tail(self):
        smooth = self.queue(rho=0.8, scv=0.3).p99_latency()
        bursty = self.queue(rho=0.8, scv=2.0).p99_latency()
        assert bursty > smooth

    def test_mean_latency_exceeds_service_time(self):
        q = self.queue(rho=0.7)
        assert q.mean_latency() > q.service_time_mean

    def test_zero_arrivals(self):
        q = MGkQueue(0.0, 0.001, 1.0, 4)
        assert q.mean_wait() == 0.0
        assert q.p99_latency() == pytest.approx(q._service_quantile(0.99))

    def test_validation(self):
        with pytest.raises(ValueError):
            MGkQueue(-1.0, 0.001, 1.0, 4)
        with pytest.raises(ValueError):
            MGkQueue(1.0, 0.0, 1.0, 4)
        with pytest.raises(ValueError):
            MGkQueue(1.0, 0.001, -1.0, 4)
        with pytest.raises(ValueError):
            MGkQueue(1.0, 0.001, 1.0, 0)

    def test_deterministic_service_quantile(self):
        q = MGkQueue(10.0, 0.001, 0.0, 4)
        assert q._service_quantile(0.99) == pytest.approx(0.001)


class TestDiscreteEventValidation:
    """The DES validates the analytical approximation (DESIGN.md)."""

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_p99_agreement_moderate_loads(self, rho):
        servers = 16
        service = 0.001
        analytical = MGkQueue(
            arrival_rate=rho * servers / service,
            service_time_mean=service,
            service_scv=1.0,
            servers=servers,
        ).p99_latency()
        des = DiscreteEventQueue(
            arrival_rate=rho * servers / service,
            service_time_mean=service,
            service_scv=1.0,
            servers=servers,
        )
        rng = np.random.default_rng(42)
        empirical = np.median(
            [des.p99_latency(duration=3.0, rng=rng) for _ in range(5)]
        )
        assert analytical == pytest.approx(empirical, rel=0.35)

    def test_des_mean_matches_analytical(self):
        servers = 8
        service = 0.002
        rho = 0.7
        q = MGkQueue(rho * servers / service, service, 1.0, servers)
        des = DiscreteEventQueue(
            rho * servers / service, service, 1.0, servers
        )
        rng = np.random.default_rng(7)
        sojourns = des.simulate(duration=5.0, rng=rng)
        assert np.mean(sojourns) == pytest.approx(q.mean_latency(), rel=0.25)

    def test_des_deterministic_given_rng(self):
        des = DiscreteEventQueue(1000.0, 0.001, 1.0, 4)
        a = des.p99_latency(1.0, np.random.default_rng(3))
        b = des.p99_latency(1.0, np.random.default_rng(3))
        assert a == b

    def test_no_arrivals(self):
        des = DiscreteEventQueue(0.0, 0.001, 1.0, 4)
        assert des.simulate(1.0, np.random.default_rng(0)).size == 0
        assert des.p99_latency(1.0, np.random.default_rng(0)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteEventQueue(-1.0, 0.001, 1.0, 4)
        with pytest.raises(ValueError):
            DiscreteEventQueue(1.0, 0.001, 1.0, 4).simulate(
                0.0, np.random.default_rng(0)
            )


class TestMixtureP99:
    def test_single_regime_is_identity(self):
        assert mixture_p99([1.0], [0.005]) == pytest.approx(0.005, rel=1e-3)

    def test_small_bad_fraction_dominates_tail(self):
        # 10% of queries in a regime 20x worse: the mixture p99 must be
        # far above the good regime's p99, near half the bad one's.
        p = mixture_p99([0.9, 0.1], [0.001, 0.020])
        assert p > 0.005
        assert p < 0.020

    def test_tiny_bad_fraction_matters_less(self):
        big = mixture_p99([0.9, 0.1], [0.001, 0.020])
        small = mixture_p99([0.99, 0.01], [0.001, 0.020])
        assert small < big

    def test_monotone_in_bad_p99(self):
        worse = mixture_p99([0.9, 0.1], [0.001, 0.050])
        better = mixture_p99([0.9, 0.1], [0.001, 0.010])
        assert worse > better

    def test_validation(self):
        with pytest.raises(ValueError):
            mixture_p99([0.5, 0.4], [0.001, 0.002])  # doesn't sum to 1
        with pytest.raises(ValueError):
            mixture_p99([1.0], [0.0])
        with pytest.raises(ValueError):
            mixture_p99([], [])
        with pytest.raises(ValueError):
            mixture_p99([0.5, 0.5], [0.001])

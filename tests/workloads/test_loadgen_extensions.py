"""Tests for the extended load-trace constructors."""

import pytest

from repro.workloads.loadgen import LoadTrace


class TestFlashCrowd:
    def test_phases(self):
        trace = LoadTrace.flash_crowd(base=0.3, peak=1.2, start=0.5,
                                      duration=0.4, decay=0.1)
        assert trace.load_at(0.0) == 0.3
        assert trace.load_at(0.49) == 0.3
        assert trace.load_at(0.5) == 1.2
        assert trace.load_at(0.89) == 1.2

    def test_decay_returns_to_base(self):
        trace = LoadTrace.flash_crowd(base=0.3, peak=1.2, start=0.5,
                                      duration=0.4, decay=0.1)
        just_after = trace.load_at(0.95)
        later = trace.load_at(2.0)
        assert 0.3 < just_after < 1.2
        assert later == pytest.approx(0.3, abs=0.01)

    def test_decay_is_monotone(self):
        trace = LoadTrace.flash_crowd()
        t0 = trace.load_at(1.0)
        t1 = trace.load_at(1.2)
        t2 = trace.load_at(1.5)
        assert t0 >= t1 >= t2

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTrace.flash_crowd(base=1.5, peak=1.0)
        with pytest.raises(ValueError):
            LoadTrace.flash_crowd(duration=0.0)
        with pytest.raises(ValueError):
            LoadTrace.flash_crowd(decay=0.0)


class TestFromSamples:
    def test_replay_semantics(self):
        trace = LoadTrace.from_samples([0.1, 0.5, 0.9], dt=0.1)
        assert trace.load_at(0.0) == 0.1
        assert trace.load_at(0.05) == 0.1
        assert trace.load_at(0.1) == 0.5
        assert trace.load_at(0.25) == 0.9

    def test_last_sample_holds(self):
        trace = LoadTrace.from_samples([0.1, 0.5], dt=0.1)
        assert trace.load_at(100.0) == 0.5

    def test_negative_time_uses_first(self):
        trace = LoadTrace.from_samples([0.1, 0.5], dt=0.1)
        assert trace.load_at(-1.0) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTrace.from_samples([], dt=0.1)
        with pytest.raises(ValueError):
            LoadTrace.from_samples([0.1], dt=0.0)
        with pytest.raises(ValueError):
            LoadTrace.from_samples([-0.1], dt=0.1)


class TestScaled:
    def test_multiplies(self):
        trace = LoadTrace.constant(0.4).scaled(2.0)
        assert trace.load_at(0.0) == pytest.approx(0.8)

    def test_compose_with_diurnal(self):
        base = LoadTrace.diurnal(low=0.2, high=0.8, period=1.0)
        scaled = base.scaled(0.5)
        assert scaled.load_at(0.5) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTrace.constant(0.5).scaled(-1.0)

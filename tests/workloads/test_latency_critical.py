"""Tests for the TailBench-like latency-critical services."""

import pytest

from repro.sim.coreconfig import CORE_CONFIGS, CoreConfig
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel
from repro.workloads.latency_critical import (
    CALIBRATION_CORES,
    KNEE_UTILIZATION,
    LC_SERVICE_NAMES,
    lc_service,
    make_services,
    service_variants,
)

#: Fig. 1's lowest-power QoS-meeting config at 80 % load, per service.
PAPER_BEST_CONFIGS = {
    "xapian": CoreConfig(2, 2, 6),
    "masstree": CoreConfig(4, 2, 4),
    "imgdnn": CoreConfig(4, 2, 4),
    "moses": CoreConfig(6, 2, 4),
    "silo": CoreConfig(2, 2, 4),
}

#: Paper §VII-A knee loads (QPS on 16 cores).
PAPER_MAX_QPS = {
    "xapian": 22000,
    "masstree": 17000,
    "imgdnn": 8000,
    "moses": 8000,
    "silo": 24000,
}


class TestCalibration:
    def test_five_services(self):
        services = make_services()
        assert set(services) == set(LC_SERVICE_NAMES)
        assert len(LC_SERVICE_NAMES) == 5

    @pytest.mark.parametrize("name", LC_SERVICE_NAMES)
    def test_max_qps_matches_paper(self, name):
        assert lc_service(name).max_qps == PAPER_MAX_QPS[name]

    @pytest.mark.parametrize("name", LC_SERVICE_NAMES)
    def test_knee_utilization(self, name, perf):
        """At 100 % load on 16 widest cores, utilization sits at the knee."""
        service = lc_service(name)
        util = service.utilization(
            perf, CoreConfig.widest(), 4.0, load=1.0,
            n_cores=CALIBRATION_CORES,
        )
        assert util == pytest.approx(KNEE_UTILIZATION, rel=1e-6)

    @pytest.mark.parametrize("name", LC_SERVICE_NAMES)
    def test_paper_best_config_at_80pct_load(self, name, perf):
        """The lowest-power QoS config at 80 % load matches Fig. 1."""
        service = lc_service(name)
        power_model = PowerModel()
        best, best_power = None, float("inf")
        for config in CORE_CONFIGS:
            latency = service.tail_latency(perf, config, 4.0, 0.8, 16)
            if latency > service.qos_latency_s:
                continue
            util = min(1.0, service.utilization(perf, config, 4.0, 0.8, 16))
            watts = power_model.core_power(
                service.profile, config, utilization=util
            )
            if watts < best_power:
                best, best_power = config, watts
        assert best == PAPER_BEST_CONFIGS[name]

    @pytest.mark.parametrize("name", LC_SERVICE_NAMES)
    def test_low_load_allows_lower_configs(self, name, perf):
        """At 20 % load, strictly more configurations meet QoS (Fig. 1)."""
        service = lc_service(name)

        def feasible(load):
            return sum(
                1
                for config in CORE_CONFIGS
                if service.tail_latency(perf, config, 4.0, load, 16)
                <= service.qos_latency_s
            )

        assert feasible(0.2) > feasible(0.8)

    def test_back_end_never_matters(self, perf):
        """All five services are nearly BE-insensitive (Fig. 1: BE=2)."""
        for name in LC_SERVICE_NAMES:
            profile = lc_service(name).profile
            assert profile.be_sens < 0.1
            assert profile.be_sens < profile.fe_sens + profile.ls_sens


class TestServiceBehaviour:
    def test_latency_monotone_in_load(self, perf):
        service = lc_service("xapian")
        config = CoreConfig.widest()
        latencies = [
            service.tail_latency(perf, config, 4.0, load, 16)
            for load in (0.2, 0.5, 0.8, 1.0)
        ]
        assert latencies == sorted(latencies)

    def test_latency_monotone_in_cores(self, perf):
        service = lc_service("masstree")
        config = CoreConfig(4, 2, 4)
        more = service.tail_latency(perf, config, 4.0, 0.8, 24)
        fewer = service.tail_latency(perf, config, 4.0, 0.8, 12)
        assert more <= fewer

    def test_meets_qos_consistent_with_latency(self, perf):
        service = lc_service("silo")
        config = CoreConfig.widest()
        assert service.meets_qos(perf, config, 4.0, 0.5, 16)
        narrow = CoreConfig.narrowest()
        overloaded = service.meets_qos(perf, narrow, 0.5, 1.0, 4)
        assert not overloaded

    def test_qps_at_load(self):
        service = lc_service("moses")
        assert service.qps_at_load(0.5) == pytest.approx(4000.0)
        with pytest.raises(ValueError):
            service.qps_at_load(-0.1)

    def test_unknown_service(self):
        with pytest.raises(KeyError):
            lc_service("memcached")

    def test_validation(self):
        service = lc_service("silo")
        with pytest.raises(ValueError):
            type(service)(
                profile=service.profile,
                work_instructions=-1.0,
                service_scv=1.0,
                max_qps=100.0,
                qos_latency_s=0.01,
            )


class TestServiceVariants:
    def test_deterministic(self):
        a = service_variants("xapian", 3, seed=1)
        b = service_variants("xapian", 3, seed=1)
        assert [v.work_instructions for v in a] == [
            v.work_instructions for v in b
        ]

    def test_distinct_from_base_and_each_other(self):
        base = lc_service("xapian")
        variants = service_variants("xapian", 4, seed=1)
        assert len(variants) == 4
        sens = {v.profile.ls_sens for v in variants}
        assert len(sens) == 4
        assert base.profile.ls_sens not in sens

    def test_variants_keep_archetype_shape(self):
        """A xapian variant stays LS-dominated, a moses variant FE-heavy."""
        for variant in service_variants("xapian", 3, seed=2):
            assert variant.profile.ls_sens > variant.profile.fe_sens
        for variant in service_variants("moses", 3, seed=2):
            assert variant.profile.fe_sens > variant.profile.ls_sens

    def test_names_are_suffixed(self):
        variants = service_variants("silo", 2, seed=0)
        assert [v.name for v in variants] == ["silo-v0", "silo-v1"]

    def test_zero_variants(self):
        assert service_variants("silo", 0) == ()

    def test_validation(self):
        with pytest.raises(KeyError):
            service_variants("nope", 1)
        with pytest.raises(ValueError):
            service_variants("silo", -1)
        with pytest.raises(ValueError):
            service_variants("silo", 1, jitter=1.5)


class TestPerfModelCaching:
    def test_cache_keyed_on_model(self):
        default = lc_service("xapian")
        fixed = lc_service("xapian", PerformanceModel(reconfigurable=False))
        # Different calibration models give different work calibration.
        assert default.work_instructions != fixed.work_instructions
        # Same model object -> same cached service.
        assert lc_service("xapian") is default

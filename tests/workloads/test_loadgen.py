"""Tests for load traces."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.loadgen import LoadTrace


class TestConstant:
    @given(st.floats(0.0, 2.0))
    def test_constant_everywhere(self, load):
        trace = LoadTrace.constant(load)
        for t in (0.0, 0.5, 100.0):
            assert trace.load_at(t) == load

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace.constant(-0.1)


class TestDiurnal:
    def test_starts_at_trough(self):
        trace = LoadTrace.diurnal(low=0.2, high=0.8, period=1.0)
        assert trace.load_at(0.0) == pytest.approx(0.2)

    def test_peaks_at_half_period(self):
        trace = LoadTrace.diurnal(low=0.2, high=0.8, period=1.0)
        assert trace.load_at(0.5) == pytest.approx(0.8)

    def test_periodic(self):
        trace = LoadTrace.diurnal(low=0.2, high=0.8, period=2.0)
        assert trace.load_at(0.3) == pytest.approx(trace.load_at(2.3))

    @given(st.floats(0.0, 10.0))
    def test_bounded(self, t):
        trace = LoadTrace.diurnal(low=0.1, high=0.9, period=1.0)
        assert 0.1 - 1e-9 <= trace.load_at(t) <= 0.9 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTrace.diurnal(low=0.9, high=0.2)
        with pytest.raises(ValueError):
            LoadTrace.diurnal(period=0.0)


class TestSteps:
    def test_piecewise_semantics(self):
        trace = LoadTrace.steps([(0.0, 0.2), (1.0, 0.9), (2.0, 0.4)])
        assert trace.load_at(0.0) == 0.2
        assert trace.load_at(0.99) == 0.2
        assert trace.load_at(1.0) == 0.9
        assert trace.load_at(1.5) == 0.9
        assert trace.load_at(2.0) == 0.4
        assert trace.load_at(99.0) == 0.4

    def test_before_first_step_uses_first_level(self):
        trace = LoadTrace.steps([(1.0, 0.5)])
        assert trace.load_at(0.0) == 0.5

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace.steps([(1.0, 0.5), (0.5, 0.2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace.steps([])


class TestSamplesAndClamping:
    def test_samples(self):
        trace = LoadTrace.steps([(0.0, 0.1), (1.0, 0.7)])
        assert trace.samples([0.0, 1.0, 2.0]) == (0.1, 0.7, 0.7)

    def test_negative_fn_clamped(self):
        trace = LoadTrace(fn=lambda t: math.sin(t) - 2.0)
        assert trace.load_at(0.0) == 0.0

    def test_description_present(self):
        assert "diurnal" in LoadTrace.diurnal().description
        assert "constant" in LoadTrace.constant(0.5).description
        assert "steps" in LoadTrace.steps([(0.0, 0.5)]).description

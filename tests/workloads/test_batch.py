"""Tests for the SPEC-like batch workload population."""

import pytest

from repro.sim.perf import AppProfile
from repro.workloads.batch import (
    ARCHETYPES,
    SPEC_APPS,
    SPEC_ARCHETYPE,
    batch_profile,
    all_batch_profiles,
    rng_for,
    synthetic_population,
    train_test_split,
)


class TestSpecPopulation:
    def test_all_28_benchmarks_present(self):
        assert len(SPEC_APPS) == 28
        assert "mcf" in SPEC_APPS
        assert "povray" in SPEC_APPS

    def test_every_benchmark_has_archetype(self):
        for name in SPEC_APPS:
            assert SPEC_ARCHETYPE[name] in ARCHETYPES

    def test_profiles_deterministic(self):
        a = batch_profile("mcf")
        b = batch_profile("mcf")
        assert a is b  # cached
        assert a.base_cpi == batch_profile("mcf").base_cpi

    def test_profiles_are_valid_app_profiles(self):
        for profile in all_batch_profiles():
            assert isinstance(profile, AppProfile)
            assert profile.base_cpi > 0

    def test_distinct_apps_get_distinct_parameters(self):
        names = list(SPEC_APPS)
        cpis = {batch_profile(n).base_cpi for n in names}
        assert len(cpis) > len(names) // 2

    def test_memory_bound_apps_have_high_mpki(self):
        mcf = batch_profile("mcf")  # memory-bound archetype
        namd = batch_profile("namd")  # FP compute archetype
        assert mcf.miss_curve.peak > namd.miss_curve.peak

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            batch_profile("nosuchapp")

    def test_archetype_draw_in_ranges(self):
        for archetype in ARCHETYPES:
            profile = archetype.draw(f"probe-{archetype.name}")
            lo, hi = archetype.base_cpi
            assert lo <= profile.base_cpi <= hi
            lo, hi = archetype.fe_sens
            assert lo <= profile.fe_sens <= hi
            assert profile.miss_curve.floor <= profile.miss_curve.peak


class TestTrainTestSplit:
    def test_default_sizes(self):
        train, test = train_test_split()
        assert len(train) == 16
        assert len(test) == 12

    def test_disjoint_and_complete(self):
        train, test = train_test_split()
        assert not set(train) & set(test)
        assert set(train) | set(test) == set(SPEC_APPS)

    def test_deterministic_given_seed(self):
        assert train_test_split(seed=5) == train_test_split(seed=5)
        assert train_test_split(seed=5) != train_test_split(seed=6)

    def test_custom_size(self):
        train, test = train_test_split(n_train=8)
        assert len(train) == 8
        assert len(test) == 20

    @pytest.mark.parametrize("n", [0, 28, 99])
    def test_invalid_sizes(self, n):
        with pytest.raises(ValueError):
            train_test_split(n_train=n)


class TestSyntheticPopulation:
    def test_size_and_determinism(self):
        a = synthetic_population(10, seed=1)
        b = synthetic_population(10, seed=1)
        assert len(a) == 10
        assert [p.name for p in a] == [p.name for p in b]
        assert [p.base_cpi for p in a] == [p.base_cpi for p in b]

    def test_different_seed_different_population(self):
        a = synthetic_population(10, seed=1)
        b = synthetic_population(10, seed=2)
        assert [p.base_cpi for p in a] != [p.base_cpi for p in b]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            synthetic_population(0)


class TestRngFor:
    def test_stable_across_calls(self):
        assert rng_for("x").integers(1000) == rng_for("x").integers(1000)

    def test_salt_changes_stream(self):
        a = rng_for("x", salt="a").integers(10**9)
        b = rng_for("x", salt="b").integers(10**9)
        assert a != b

"""Tests for explicit service-time distribution shapes."""

import numpy as np
import pytest

from repro.workloads.queueing import (
    DiscreteEventQueue,
    MGkQueue,
    ServiceDistribution,
)


class TestServiceDistribution:
    def test_deterministic(self):
        d = ServiceDistribution(kind="deterministic")
        assert d.quantile(0.99, mean=2.0) == 2.0
        samples = d.sample(100, 2.0, np.random.default_rng(0))
        assert np.all(samples == 2.0)

    def test_lognormal_mean_preserved(self):
        d = ServiceDistribution(kind="lognormal", scv=1.5)
        samples = d.sample(200_000, 3.0, np.random.default_rng(1))
        assert np.mean(samples) == pytest.approx(3.0, rel=0.02)

    def test_bimodal_mean_and_scv(self):
        d = ServiceDistribution(kind="bimodal", scv=2.0, long_fraction=0.05)
        samples = d.sample(400_000, 1.0, np.random.default_rng(2))
        assert np.mean(samples) == pytest.approx(1.0, rel=0.02)
        scv = np.var(samples) / np.mean(samples) ** 2
        assert scv == pytest.approx(2.0, rel=0.1)

    def test_bimodal_q99_is_long_class(self):
        d = ServiceDistribution(kind="bimodal", scv=2.0, long_fraction=0.05)
        q99 = d.quantile(0.99, mean=1.0)
        q50 = d.quantile(0.5, mean=1.0)
        assert q99 > 3 * q50  # the tail is the long-query class

    def test_long_ratio_solved_monotonically(self):
        low = ServiceDistribution(kind="bimodal", scv=1.0)
        high = ServiceDistribution(kind="bimodal", scv=4.0)
        assert high.long_ratio > low.long_ratio > 1.0

    def test_explicit_long_ratio_respected(self):
        d = ServiceDistribution(kind="bimodal", scv=1.0, long_ratio=10.0)
        assert d.long_ratio == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceDistribution(kind="pareto")
        with pytest.raises(ValueError):
            ServiceDistribution(scv=-1.0)
        with pytest.raises(ValueError):
            ServiceDistribution(long_fraction=0.0)
        d = ServiceDistribution()
        with pytest.raises(ValueError):
            d.quantile(1.5, 1.0)
        with pytest.raises(ValueError):
            d.quantile(0.75, 1.0)  # unsupported lognormal quantile


class TestQueueIntegration:
    def test_analytical_uses_distribution_quantile(self):
        bimodal = MGkQueue(
            arrival_rate=100.0, service_time_mean=0.001, service_scv=2.0,
            servers=16,
            distribution=ServiceDistribution(kind="bimodal", scv=2.0),
        )
        lognormal = MGkQueue(
            arrival_rate=100.0, service_time_mean=0.001, service_scv=2.0,
            servers=16,
        )
        assert bimodal.p99_latency() != lognormal.p99_latency()

    def test_des_matches_analytical_bimodal(self):
        dist = ServiceDistribution(kind="bimodal", scv=2.0)
        servers, mean = 16, 0.001
        rho = 0.5
        analytical = MGkQueue(
            rho * servers / mean, mean, 2.0, servers, distribution=dist
        ).p99_latency()
        des = DiscreteEventQueue(
            rho * servers / mean, mean, 2.0, servers, distribution=dist
        )
        empirical = np.median(
            [des.p99_latency(3.0, np.random.default_rng(s)) for s in range(5)]
        )
        assert analytical == pytest.approx(empirical, rel=0.4)

"""Tests for the paper's workload mixes."""

import pytest

from repro.workloads.batch import train_test_split
from repro.workloads.latency_critical import LC_SERVICE_NAMES
from repro.workloads.mixes import APPS_PER_MIX, Mix, paper_mixes


class TestPaperMixes:
    def test_fifty_mixes(self):
        mixes = paper_mixes()
        assert len(mixes) == 50

    def test_ten_per_service(self):
        mixes = paper_mixes()
        for name in LC_SERVICE_NAMES:
            assert sum(1 for m in mixes if m.lc_name == name) == 10

    def test_sixteen_apps_each(self):
        for mix in paper_mixes():
            assert len(mix.batch_names) == APPS_PER_MIX

    def test_only_test_benchmarks_used(self):
        _, test_names = train_test_split()
        allowed = set(test_names)
        for mix in paper_mixes():
            assert set(mix.batch_names) <= allowed

    def test_deterministic(self):
        assert paper_mixes(seed=3) == paper_mixes(seed=3)
        assert paper_mixes(seed=3) != paper_mixes(seed=4)

    def test_mixes_differ_from_each_other(self):
        mixes = paper_mixes()
        assert len({m.batch_names for m in mixes}) > 40

    def test_label(self):
        mix = paper_mixes()[0]
        assert mix.lc_name in mix.label
        assert "16 batch" in mix.label

    def test_custom_sizes(self):
        mixes = paper_mixes(mixes_per_service=2, apps_per_mix=4)
        assert len(mixes) == 10
        assert all(len(m.batch_names) == 4 for m in mixes)


class TestMixValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Mix(lc_name="xapian", batch_names=())

"""Tests for counters, histograms, and decision records."""

import math

import numpy as np
import pytest

from repro.experiments.reporting import relative_error_percent
from repro.telemetry.metrics import (
    Counter,
    DecisionRecord,
    Histogram,
    MetricsRegistry,
    signed_error_percent,
)


class TestCounter:
    def test_counts_up(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_summary_percentiles(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["p50"] == pytest.approx(50.5)
        assert s["p95"] == pytest.approx(95.05)
        assert s["p99"] == pytest.approx(99.01)

    def test_matches_numpy_percentile(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 3.0, size=257)
        h = Histogram("x")
        for v in samples:
            h.observe(float(v))
        for q in (50, 95, 99):
            assert h.percentile(q) == pytest.approx(
                float(np.percentile(samples, q))
            )

    def test_nan_dropped(self):
        h = Histogram("x")
        h.observe(float("nan"))
        h.observe(1.0)
        assert h.count == 1

    def test_empty_summary_is_nan(self):
        s = Histogram("x").summary()
        assert s["count"] == 0
        assert math.isnan(s["p50"])


class TestSignedError:
    def test_matches_fig5_error_definition(self):
        """Telemetry errors use the exact formula of the Fig. 5
        accuracy experiment (experiments.reporting)."""
        predicted = np.array([1.1, 0.9, 2.0])
        truth = np.array([1.0, 1.0, 1.0])
        expected = relative_error_percent(predicted, truth)
        got = [
            signed_error_percent(p, t) for p, t in zip(predicted, truth)
        ]
        assert got == pytest.approx(list(expected))

    def test_nan_when_not_comparable(self):
        assert math.isnan(signed_error_percent(1.0, 0.0))
        assert math.isnan(signed_error_percent(0.0, 1.0))


class TestDecisionRecord:
    def _record(self):
        return DecisionRecord(
            quantum=3,
            predicted_bips=(1.1, math.nan, 2.0),
            measured_bips=(1.0, 1.5, 2.0),
            predicted_p99_s=(0.005,),
            measured_p99_s=(0.004,),
            predicted_power_w=110.0,
            measured_power_w=100.0,
        )

    def test_bips_errors_skip_nan(self):
        errors = self._record().bips_errors_percent()
        assert errors == pytest.approx([10.0, 0.0])

    def test_p99_and_power_errors(self):
        rec = self._record()
        assert rec.p99_errors_percent() == pytest.approx([25.0])
        assert rec.power_error_percent() == pytest.approx(10.0)

    def test_registry_folds_into_histograms(self):
        registry = MetricsRegistry()
        registry.record_decision(self._record())
        assert len(registry.decisions) == 1
        bips = registry.histograms["prediction_error.bips_pct"]
        assert bips.count == 2
        assert all(v >= 0 for v in bips.samples)
        signed = registry.histograms["prediction_error.p99_signed_pct"]
        assert signed.samples == pytest.approx([25.0])
        power = registry.histograms["prediction_error.power_pct"]
        assert power.samples == pytest.approx([10.0])

    def test_registry_as_dict_roundtrips_to_json(self):
        import json

        registry = MetricsRegistry()
        registry.counter("qos_violations").inc(2)
        registry.gauge("power_w").set(101.5)
        registry.record_decision(self._record())
        snapshot = registry.as_dict()
        text = json.dumps(snapshot)  # must be serialisable
        back = json.loads(text)
        assert back["counters"]["qos_violations"] == 2
        assert back["n_decisions"] == 1


class TestRegistryAccessors:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

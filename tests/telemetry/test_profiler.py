"""Tests for the deterministic virtual-cost profiler.

The call tree must aggregate spans by name path with correct
inclusive/exclusive attribution, the operation-counter surface must be
byte-identical across runs and shard orders (the CI diff contract),
and the folded-stack / Chrome-trace exports must be loadable.
"""

import io
import json

import pytest

from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import build_machine_for_mix, run_policy
from repro.telemetry import Telemetry, merge_jsonl, read_jsonl, write_jsonl
from repro.telemetry.profiler import (
    build_profile,
    chrome_trace_from_profile,
    folded_stacks,
    iter_nodes,
    phase_summary,
    profile_telemetry,
    render_phase_table,
    render_profile_table,
    write_folded,
    write_profile_chrome_trace,
)
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


def span(sid, name, dur_us, parent=-1, cat="", **args):
    return {
        "type": "span", "id": sid, "name": name, "cat": cat,
        "start_us": 0.0, "dur_us": float(dur_us),
        "parent": parent, "args": args,
    }


#: quantum(100) -> decide(60) -> dds.search(40, 10 evals)
#: plus a second quantum instance merged into the same paths.
SPANS = [
    span(1, "quantum", 100.0),
    span(2, "decide", 60.0, parent=1),
    span(3, "dds.search", 40.0, parent=2, evaluations=10),
    span(4, "quantum", 80.0),
    span(5, "decide", 50.0, parent=4),
    span(6, "dds.search", 30.0, parent=5, evaluations=7),
]


def session(seed=7, n_slices=2):
    machine = build_machine_for_mix(paper_mixes()[0], seed=seed)
    policy = CuttleSysPolicy.for_machine(machine, seed=seed)
    telemetry = Telemetry()
    run_policy(
        machine, policy, LoadTrace.constant(0.8),
        power_cap_fraction=0.7, n_slices=n_slices, telemetry=telemetry,
    )
    return telemetry


def records_of(telemetry):
    buffer = io.StringIO()
    write_jsonl(telemetry, buffer)
    buffer.seek(0)
    return read_jsonl(buffer)


class TestBuildProfile:
    def test_tree_shape_and_attribution(self):
        root = build_profile(SPANS)
        assert set(root.children) == {"quantum"}
        quantum = root.children["quantum"]
        assert quantum.count == 2
        assert quantum.inclusive_us == pytest.approx(180.0)
        # 100-60 plus 80-50 of self time.
        assert quantum.exclusive_us == pytest.approx(70.0)
        decide = quantum.children["decide"]
        assert decide.exclusive_us == pytest.approx(40.0)
        search = decide.children["dds.search"]
        assert search.ops == {"evaluations": 17}
        assert search.exclusive_us == pytest.approx(70.0)

    def test_non_span_records_ignored(self):
        root = build_profile(
            SPANS + [{"type": "counter", "name": "x.y", "value": 3}]
        )
        assert set(root.children) == {"quantum"}

    def test_units_merge_by_name_path(self):
        tagged = [{**s, "unit": "u1"} for s in SPANS[:3]] + [
            {**s, "unit": "u2"} for s in SPANS[3:]
        ]
        merged = build_profile(tagged)
        split = build_profile(SPANS)
        assert render_profile_table(
            merged, ops_only=True
        ) == render_profile_table(split, ops_only=True)


class TestExports:
    def test_folded_stacks_weights(self):
        root = build_profile(SPANS)
        ops = folded_stacks(root, weight="ops")
        assert "quantum;decide;dds.search 17\n" == ops
        count = folded_stacks(root, weight="count")
        assert "quantum 2" in count
        excl = folded_stacks(root, weight="exclusive_us")
        assert "quantum;decide 40" in excl
        with pytest.raises(ValueError):
            folded_stacks(root, weight="inclusive_us")

    def test_chrome_trace_shape(self):
        root = build_profile(SPANS)
        events = chrome_trace_from_profile(root)
        assert events[0]["ph"] == "M"
        timed = events[1:]
        assert [e["name"] for e in timed] == [
            "quantum", "decide", "dds.search",
        ]
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        assert timed[-1]["args"]["evaluations"] == 17

    def test_file_writers(self, tmp_path):
        root = build_profile(SPANS)
        folded = tmp_path / "profile.folded"
        assert write_folded(root, folded, weight="ops") == 1
        assert folded.read_text().endswith(" 17\n")
        trace = tmp_path / "trace.json"
        assert write_profile_chrome_trace(root, trace) == 4
        payload = json.loads(trace.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == 4


class TestDeterminism:
    def test_ops_table_is_byte_identical_across_runs(self):
        tables = [
            render_profile_table(
                profile_telemetry(session()), ops_only=True
            )
            for _ in range(2)
        ]
        assert tables[0] == tables[1]
        assert "evaluations=" in tables[0]

    def test_ops_table_is_shard_order_independent(self):
        # merge_jsonl output is content-ordered, so the profile of a
        # fleet-merged log cannot depend on which worker finished
        # first — the --jobs byte-identity CI gate in miniature.
        shard_a = records_of(session(seed=7))
        shard_b = records_of(session(seed=11))
        first = merge_jsonl([("a", shard_a), ("b", shard_b)])
        second = merge_jsonl([("b", shard_b), ("a", shard_a)])
        assert render_profile_table(
            build_profile(first), ops_only=True
        ) == render_profile_table(build_profile(second), ops_only=True)

    def test_folded_ops_stacks_stable(self):
        assert folded_stacks(
            profile_telemetry(session()), weight="ops"
        ) == folded_stacks(profile_telemetry(session()), weight="ops")


class TestPhaseSummary:
    def test_real_session_phase_rows(self):
        root = profile_telemetry(session())
        rows = {entry["phase"]: entry for entry in phase_summary(root)}
        assert "sgd.reconstruct" in rows
        assert "dds.search" in rows
        assert "controller.overhead" in rows
        assert rows["dds.search"]["ops"]["evaluations"] > 0
        assert rows["sgd.reconstruct"]["ops"]["iterations"] > 0
        # Controller overhead is pure bookkeeping: no metered ops.
        assert rows["controller.overhead"]["ops"] == {}

    def test_render_phase_table(self):
        table = render_phase_table(profile_telemetry(session()))
        assert table.startswith("phase costs")
        assert "sgd.reconstruct" in table
        assert "dds.search" in table
        assert "controller.overhead" in table

"""Tests for the self-contained HTML dashboard renderer.

The golden snapshot pins the full output for the committed fixture log
(``data/run_fixture.jsonl``, a real 2-unit scalability run): the
dashboard is a pure function of the records, so any rendering change
must consciously regenerate the golden file::

    PYTHONPATH=src python -c "from repro.telemetry import *; \
        open('tests/telemetry/data/dashboard_golden.html','w').write(\
        render_dashboard(read_jsonl('tests/telemetry/data/run_fixture.jsonl')))"
"""

import re
import xml.etree.ElementTree as ET
from pathlib import Path

import pytest

from repro.telemetry import read_jsonl, render_dashboard

DATA = Path(__file__).parent / "data"
FIXTURE = DATA / "run_fixture.jsonl"
GOLDEN = DATA / "dashboard_golden.html"


@pytest.fixture(scope="module")
def fixture_records():
    return read_jsonl(FIXTURE)


@pytest.fixture(scope="module")
def html(fixture_records):
    return render_dashboard(fixture_records)


class TestGoldenSnapshot:
    def test_matches_committed_golden(self, html):
        assert html == GOLDEN.read_text(), (
            "dashboard output changed; regenerate the golden file if "
            "intentional (see module docstring)"
        )

    def test_pure_function_of_records(self, fixture_records, html):
        assert render_dashboard(list(fixture_records)) == html


class TestSelfContained:
    def test_no_external_assets(self, html):
        assert not re.search(r"https?://", html)
        assert "<script" not in html
        assert "url(" not in html
        assert "@import" not in html

    def test_single_complete_document(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<html") == 1
        assert html.rstrip().endswith("</html>")


class TestContent:
    def test_timeline_and_power_charts_present(self, html):
        assert "Tail latency per quantum" in html
        assert "Chip power per quantum" in html
        assert "Per-unit decision throughput" in html
        for unit in ("scale/16c/cuttlesys", "scale/16c/oracle"):
            assert unit in html

    def test_predicted_vs_measured_error_band(self, html):
        assert "measured" in html and "predicted" in html
        assert 'class="band"' in html

    def test_stat_tiles(self, html):
        for label in ("decision quanta", "QoS violations",
                      "power violations", "drift events",
                      "fleet retries", "serial fallbacks",
                      "dropped live events"):
            assert label in html

    def test_dark_mode_is_selected_not_flipped(self, html):
        assert "prefers-color-scheme: dark" in html

    def test_svgs_are_well_formed(self, html):
        svgs = re.findall(r"<svg.*?</svg>", html, re.S)
        assert len(svgs) >= 2
        for svg in svgs:
            ET.fromstring(svg)

    def test_geometry_stays_in_viewport(self, html):
        for points in re.findall(r'points="([^"]+)"', html):
            for pair in points.split():
                x, y = (float(v) for v in pair.split(","))
                assert -1 <= x <= 641 and -1 <= y <= 221

    def test_title_is_escaped(self):
        html = render_dashboard([], title="<b>&evil</b>")
        assert "<b>" not in html.split("<body", 1)[1]
        assert "&lt;b&gt;&amp;evil&lt;/b&gt;" in html

    def test_empty_log_renders_empty_state(self):
        html = render_dashboard([])
        assert "no decision records" in html
        assert html.startswith("<!DOCTYPE html>")

"""Tests for the decision-provenance flight recorder.

The recorder must capture the full causal chain of each quantum —
reconstruction diagnostics, the summarised candidate set, ladder and
budget readings, safety state — deterministically (virtual-time
quantities only) and bounded (top-K candidates, capped record count),
and the records must survive the JSONL round trip and render as the
``repro explain`` report.
"""

import io

import numpy as np
import pytest

from repro.core.objective import SystemObjective
from repro.core.runtime import CuttleSysPolicy
from repro.core.controller import ControllerConfig
from repro.experiments.harness import build_machine_for_mix, run_policy
from repro.telemetry import Telemetry, read_jsonl, render_prometheus, write_jsonl
from repro.telemetry.provenance import (
    ProvenanceRecorder,
    candidate_provenance,
    classify_candidates,
    provenance_key,
    provenance_records_from_jsonl,
    render_explain,
)
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


def _run(n_slices=3, budget=None, seed=7, telemetry=None):
    machine = build_machine_for_mix(paper_mixes()[0], seed=seed)
    policy = CuttleSysPolicy.for_machine(
        machine, seed=seed,
        config=ControllerConfig(seed=seed, decision_budget=budget),
    )
    run = run_policy(
        machine, policy, LoadTrace.constant(0.8),
        power_cap_fraction=0.7, n_slices=n_slices, telemetry=telemetry,
    )
    return run, policy


class TestRecorder:
    def test_bound_drops_are_counted_never_silent(self):
        recorder = ProvenanceRecorder(max_records=2)
        assert recorder.record({"quantum": 0})
        assert recorder.record({"quantum": 1})
        assert not recorder.record({"quantum": 2})
        assert recorder.dropped == 1
        assert len(recorder.records) == 2

    def test_for_quantum_and_clear(self):
        recorder = ProvenanceRecorder()
        recorder.begin_quantum(4)
        assert recorder.quantum == 4
        recorder.record({"quantum": 4, "mode": "normal"})
        assert recorder.for_quantum(4)["mode"] == "normal"
        assert recorder.for_quantum(5) is None
        recorder.clear()
        assert recorder.records == [] and recorder.quantum is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ProvenanceRecorder(top_k=0)
        with pytest.raises(ValueError):
            ProvenanceRecorder(max_records=0)


class TestClassifyCandidates:
    def _objective(self):
        rng = np.random.default_rng(3)
        n_jobs, n_confs = 4, 6
        return SystemObjective(
            bips=rng.uniform(0.5, 2.0, (n_jobs, n_confs)),
            power=rng.uniform(2.0, 9.0, (n_jobs, n_confs)),
            max_power=60.0,
            max_ways=10.0,
            reserved_power=5.0,
            reserved_ways=2.0,
            ways_by_config=np.array([0.5, 1.0, 2.0, 4.0, 0.5, 3.0]),
        )

    def test_matches_objective_arithmetic(self):
        objective = self._objective()
        rng = np.random.default_rng(11)
        xs = rng.integers(0, 6, size=(32, 4))
        power, ways, over_power, over_ways = classify_candidates(
            objective, xs
        )
        for i, x in enumerate(xs):
            assert power[i] == pytest.approx(objective.total_power(x))
            assert ways[i] == pytest.approx(objective.total_ways(x))
            feasible = objective.is_feasible(x)
            assert bool(~(over_power[i] | over_ways[i])) == feasible

    def test_summary_is_bounded_and_deterministic(self):
        objective = self._objective()
        rng = np.random.default_rng(5)
        explored = [
            (rng.integers(0, 6, size=4), float(v))
            for v in rng.uniform(0.0, 3.0, 20)
        ]
        first = candidate_provenance(objective, explored, top_k=5)
        second = candidate_provenance(objective, explored, top_k=5)
        assert first == second
        assert len(first["top_candidates"]) == 5
        values = [c["objective"] for c in first["top_candidates"]]
        assert values == sorted(values, reverse=True)
        # Aggregate counts cover the whole explored set, not just top-K.
        rej = first["rejections"]
        assert rej["feasible"] + max(
            rej["power_over_cap"], rej["cache_over_ways"]
        ) >= rej["feasible"]
        assert rej["feasible"] <= len(explored)
        for cand in first["top_candidates"]:
            assert cand["reason"] in (
                "feasible", "power_over_cap", "cache_over_ways",
                "power_over_cap+cache_over_ways",
            )
            assert cand["feasible"] == (cand["reason"] == "feasible")

    def test_empty_explored(self):
        summary = candidate_provenance(self._objective(), [], top_k=5)
        assert summary["top_candidates"] == []
        assert summary["rejections"]["feasible"] == 0


class TestRunIntegration:
    def test_one_record_per_quantum(self):
        telemetry = Telemetry()
        _run(n_slices=3, telemetry=telemetry)
        recorder = telemetry.provenance
        assert [r["quantum"] for r in recorder.records] == [0, 1, 2]
        assert recorder.dropped == 0
        counters = telemetry.metrics.as_dict()["counters"]
        assert counters["provenance.records"] == 3
        assert "provenance.dropped" not in counters
        for record in recorder.records:
            assert record["type"] == "provenance"
            assert record["mode"] == "normal"
            assert record["search"]["searcher"] == "dds"
            assert record["search"]["top_candidates"]
            assert record["budget"]["limit"] is None
            assert record["reconstruction"]["bips"]["iterations"] > 0

    def test_budgeted_run_records_ladder_and_prices(self):
        telemetry = Telemetry()
        _run(n_slices=2, budget=2000, telemetry=telemetry)
        record = telemetry.provenance.records[0]
        assert record["mode"] == "reduced_dds"
        assert record["rungs"] == ["reduced_dds"]
        assert record["budget"]["limit"] == 2000
        assert record["budget"]["full_search_cost"] > 2000
        assert record["budget"]["reduced_search_cost"] < 2000
        assert record["search"]["searcher"] == "reduced_dds"

    def test_records_are_json_and_deterministic(self):
        keys = []
        for _ in range(2):
            telemetry = Telemetry()
            _run(n_slices=2, telemetry=telemetry)
            keys.append([
                provenance_key(r) for r in telemetry.provenance.records
            ])
        assert keys[0] == keys[1]

    def test_jsonl_round_trip(self):
        telemetry = Telemetry()
        _run(n_slices=2, telemetry=telemetry)
        buffer = io.StringIO()
        write_jsonl(telemetry, buffer)
        buffer.seek(0)
        records = provenance_records_from_jsonl(read_jsonl(buffer))
        assert [r["quantum"] for r in records] == [0, 1]
        assert [provenance_key(r) for r in records] == [
            provenance_key(r) for r in telemetry.provenance.records
        ]

    def test_disabled_session_records_nothing(self):
        telemetry = Telemetry(enabled=False)
        _run(n_slices=2, telemetry=telemetry)
        assert telemetry.provenance is None


class TestRenderExplain:
    def test_report_covers_the_causal_chain(self):
        telemetry = Telemetry()
        _run(n_slices=2, budget=2000, telemetry=telemetry)
        report = render_explain(telemetry.provenance.records[0])
        assert "decision provenance — quantum 0" in report
        assert "mode: reduced_dds" in report
        assert "ladder pricing" in report
        assert "reconstruction[bips]" in report
        assert "top candidates:" in report
        assert "degradation rungs this quantum: reduced_dds" in report
        assert "safety: safe_mode=no" in report
        assert "chosen: objective=" in report

    def test_minimal_record_renders(self):
        report = render_explain({"quantum": 7, "mode": "safe_mode"})
        assert "quantum 7" in report
        assert "mode: safe_mode" in report
        assert "budget: unlimited" in report


class TestPrometheusDegradation:
    def test_degradation_counters_exported(self):
        telemetry = Telemetry()
        _run(n_slices=2, budget=2000, telemetry=telemetry)
        text = render_prometheus(telemetry.metrics)
        assert "repro_controller_degradation_rungs_total 2" in text
        assert "repro_controller_degradation_reduced_dds_total 2" in text

"""Tests for the generated metrics reference.

The registry in ``repro.telemetry.metrics_doc`` is the single source
of truth for metric documentation: the committed table in
``docs/observability.md`` must match its rendered output byte for
byte, and the TEL404 lint rule keeps the live tree from registering
names the registry does not know.
"""

from pathlib import Path

from repro.telemetry.metrics_doc import (
    METRICS_REFERENCE,
    documented_names,
    render_metrics_reference,
)

DOC = Path(__file__).resolve().parents[2] / "docs" / "observability.md"
BEGIN = "<!-- metrics-reference:begin (generated; do not edit by hand) -->"
END = "<!-- metrics-reference:end -->"


class TestRegistry:
    def test_names_unique(self):
        names = [doc.name for doc in METRICS_REFERENCE]
        assert len(names) == len(set(names))

    def test_kinds_valid(self):
        assert {doc.kind for doc in METRICS_REFERENCE} <= {
            "counter", "gauge", "histogram",
        }

    def test_rows_complete(self):
        for doc in METRICS_REFERENCE:
            assert doc.name and doc.unit and doc.description
            assert doc.module.startswith("repro.")
            # Tables mangle unescaped pipes.
            assert "|" not in doc.description

    def test_documented_names_covers_registry(self):
        assert documented_names() == frozenset(
            doc.name for doc in METRICS_REFERENCE
        )

    def test_render_sorted_by_name(self):
        lines = render_metrics_reference().splitlines()[2:]
        assert lines == sorted(lines)


class TestDocsSync:
    def test_committed_table_matches_rendered(self):
        text = DOC.read_text()
        start = text.index(BEGIN) + len(BEGIN)
        end = text.index(END)
        committed = text[start:end].strip("\n")
        assert committed == render_metrics_reference().rstrip("\n"), (
            "docs/observability.md metrics reference is stale; "
            "regenerate it from render_metrics_reference()"
        )

"""Exporter round-trips: what we write, tools (and we) can read back."""

import io
import json
import math

from repro.telemetry import (
    DecisionRecord,
    Telemetry,
    decision_records_from_jsonl,
    read_jsonl,
    write_jsonl,
)


def _session() -> Telemetry:
    telemetry = Telemetry()
    with telemetry.span("quantum", category="harness", quantum=0):
        with telemetry.span("sgd.reconstruct") as span:
            span.set(iterations=17)
        with telemetry.span("dds.search") as span:
            span.set(evaluations=1234)
    telemetry.instant("reconfigure", jobs=3)
    telemetry.counter("harness.qos_violations").inc(2)
    telemetry.metrics.gauge("harness.power_w").set(88.25)
    telemetry.metrics.histogram("slice.lc_p99_ms").observe(2.25)
    telemetry.record_decision(DecisionRecord(
        quantum=0,
        predicted_bips=(1.5, math.nan, 2.5),
        measured_bips=(1.4, math.nan, 2.6),
        predicted_p99_s=(0.004,),
        measured_p99_s=(0.005,),
        predicted_power_w=math.nan,
        measured_power_w=90.0,
    ))
    return telemetry


class TestChromeTraceRoundTrip:
    def test_is_valid_json_with_required_keys(self):
        telemetry = _session()
        buffer = io.StringIO()
        n = telemetry.write_chrome_trace(buffer)
        payload = json.loads(buffer.getvalue())
        events = payload["traceEvents"]
        assert len(events) == n
        timed = [e for e in events if e["ph"] in ("X", "i")]
        assert timed, "no timed events exported"
        for event in timed:
            assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        complete = [e for e in events if e["ph"] == "X"]
        assert complete and all("dur" in e for e in complete)
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_metadata_leads_and_events_are_time_ordered(self):
        telemetry = _session()
        buffer = io.StringIO()
        telemetry.write_chrome_trace(buffer)
        events = json.loads(buffer.getvalue())["traceEvents"]
        assert events[0]["ph"] == "M"
        timestamps = [e["ts"] for e in events[1:]]
        assert timestamps == sorted(timestamps)

    def test_span_args_survive(self):
        telemetry = _session()
        buffer = io.StringIO()
        telemetry.write_chrome_trace(buffer)
        events = json.loads(buffer.getvalue())["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["sgd.reconstruct"]["args"]["iterations"] == 17
        assert by_name["dds.search"]["args"]["evaluations"] == 1234


class TestJsonlDecisionRoundTrip:
    def test_write_read_rebuild_is_lossless(self):
        telemetry = _session()
        buffer = io.StringIO()
        write_jsonl(telemetry, buffer)
        buffer.seek(0)
        rebuilt = decision_records_from_jsonl(read_jsonl(buffer))
        assert len(rebuilt) == 1
        original = telemetry.metrics.decisions[0]
        got = rebuilt[0]
        assert got.quantum == original.quantum
        for field in ("predicted_bips", "measured_bips",
                      "predicted_p99_s", "measured_p99_s"):
            orig_t = getattr(original, field)
            got_t = getattr(got, field)
            assert len(got_t) == len(orig_t)
            for a, b in zip(got_t, orig_t):
                assert (math.isnan(a) and math.isnan(b)) or a == b
        assert math.isnan(got.predicted_power_w)
        assert got.measured_power_w == original.measured_power_w

    def test_reexport_is_stable(self):
        """write -> read -> rebuild -> re-export reproduces the
        decision lines byte-for-byte (the lossless-cycle contract)."""
        telemetry = _session()
        first = io.StringIO()
        write_jsonl(telemetry, first)
        first.seek(0)
        rebuilt = decision_records_from_jsonl(read_jsonl(first))

        twin = Telemetry()
        for record in rebuilt:
            twin.metrics.decisions.append(record)
        second = io.StringIO()
        write_jsonl(twin, second)

        def decision_lines(text):
            return [line for line in text.splitlines()
                    if '"type": "decision"' in line]

        assert decision_lines(first.getvalue()) == \
            decision_lines(second.getvalue())

    def test_rebuild_ignores_other_line_types(self):
        telemetry = _session()
        buffer = io.StringIO()
        n_lines = write_jsonl(telemetry, buffer)
        buffer.seek(0)
        records = read_jsonl(buffer)
        assert len(records) == n_lines
        assert len(decision_records_from_jsonl(records)) == 1

    def test_errors_recompute_identically_after_round_trip(self):
        telemetry = _session()
        buffer = io.StringIO()
        write_jsonl(telemetry, buffer)
        buffer.seek(0)
        got = decision_records_from_jsonl(read_jsonl(buffer))[0]
        original = telemetry.metrics.decisions[0]
        assert got.bips_errors_percent() == original.bips_errors_percent()
        assert got.p99_errors_percent() == original.p99_errors_percent()

"""Tests for the JSONL / Chrome trace / report exporters."""

import io
import json
import math

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.exporters import (
    chrome_trace_events,
    read_jsonl,
    render_jsonl_report,
)
from repro.telemetry.metrics import DecisionRecord


def _session() -> Telemetry:
    telemetry = Telemetry()
    with telemetry.span("quantum", category="harness", index=0):
        with telemetry.span("sgd", category="controller"):
            pass
        with telemetry.span("search", category="controller",
                            explorer="dds"):
            pass
    telemetry.instant("job_churn", slot=2)
    telemetry.counter("qos_violations").inc(3)
    telemetry.metrics.gauge("power_w").set(99.5)
    telemetry.metrics.histogram("slice.lc_p99_ms").observe(4.2)
    telemetry.record_decision(DecisionRecord(
        quantum=0,
        predicted_bips=(1.0, math.nan),
        measured_bips=(1.1, 0.0),
        predicted_p99_s=(0.005,),
        measured_p99_s=(0.0048,),
        predicted_power_w=100.0,
        measured_power_w=98.0,
    ))
    return telemetry


class TestChromeTrace:
    def test_schema_is_valid_trace_event_json(self, tmp_path):
        """The exported file must satisfy the Chrome trace_event JSON
        object format: a traceEvents array of events carrying ph/ts/pid
        (and dur for complete events), all numeric in microseconds."""
        telemetry = _session()
        path = tmp_path / "trace.json"
        n = telemetry.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        assert isinstance(payload, dict)
        events = payload["traceEvents"]
        assert len(events) == n
        phases = {e["ph"] for e in events}
        assert "X" in phases  # complete events
        assert "i" in phases  # the churn instant
        for event in events:
            assert isinstance(event["name"], str)
            assert event["ph"] in ("X", "i", "M")
            assert isinstance(event["pid"], int)
            if event["ph"] == "X":
                assert isinstance(event["ts"], (int, float))
                assert isinstance(event["dur"], (int, float))
                assert event["dur"] >= 0
                assert isinstance(event["tid"], int)
            if event["ph"] == "i":
                assert event["s"] in ("t", "p", "g")

    def test_nesting_encoded_by_containment(self):
        """chrome://tracing infers nesting from time containment on one
        pid/tid; child X events must lie inside their parents."""
        telemetry = _session()
        events = [e for e in chrome_trace_events(telemetry)
                  if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        quantum = by_name["quantum"]
        for child in ("sgd", "search"):
            e = by_name[child]
            assert e["ts"] >= quantum["ts"]
            assert e["ts"] + e["dur"] <= quantum["ts"] + quantum["dur"]
            assert e["tid"] == quantum["tid"]

    def test_args_are_json_clean(self):
        telemetry = _session()
        text = json.dumps(chrome_trace_events(telemetry))
        back = json.loads(text)
        search = [e for e in back if e["name"] == "search"][0]
        assert search["args"]["explorer"] == "dds"


class TestJsonl:
    def test_roundtrip(self):
        telemetry = _session()
        buffer = io.StringIO()
        lines = telemetry.write_jsonl(buffer)
        buffer.seek(0)
        records = read_jsonl(buffer)
        assert len(records) == lines
        kinds = {r["type"] for r in records}
        assert kinds == {
            "span", "instant", "counter", "gauge", "histogram", "decision",
        }
        spans = [r for r in records if r["type"] == "span"]
        assert {s["name"] for s in spans} == {"quantum", "sgd", "search"}
        decision = [r for r in records if r["type"] == "decision"][0]
        # NaN entries are serialised as null, keeping the file valid JSON.
        assert decision["predicted_bips"][1] is None

    def test_jsonl_report_renders(self):
        telemetry = _session()
        buffer = io.StringIO()
        telemetry.write_jsonl(buffer)
        buffer.seek(0)
        text = render_jsonl_report(read_jsonl(buffer))
        assert "span durations" in text
        assert "qos_violations" in text
        assert "decision records: 1" in text


class TestReports:
    def test_metrics_report_contains_all_sections(self):
        telemetry = _session()
        text = telemetry.report()
        assert "qos_violations" in text
        assert "prediction_error.power_pct" in text
        assert "span durations" in text
        assert "decision records: 1" in text

    def test_report_without_tracer_section_when_disabled(self):
        telemetry = Telemetry(enabled=False)
        telemetry.counter("x").inc()
        text = telemetry.report()
        assert "span durations" not in text
        # The disabled session's registry is the shared no-op fast
        # path: instrument calls are accepted but record nothing.
        assert telemetry.metrics.counters == {}
        assert "x" not in text

    def test_decisions_csv(self):
        telemetry = _session()
        buffer = io.StringIO()
        rows = telemetry.decisions_to_csv(buffer)
        assert rows == 1
        lines = buffer.getvalue().strip().splitlines()
        header = lines[0].split(",")
        assert "predicted_power_w" in header
        assert "power_err_pct" in header
        values = lines[1].split(",")
        err = float(values[header.index("power_err_pct")])
        expected = (100.0 - 98.0) / 98.0 * 100.0
        assert err == pytest.approx(expected, abs=1e-4)  # %.6g rounding


class TestDisabledSession:
    def test_disabled_session_records_no_spans(self):
        telemetry = Telemetry(enabled=False)
        with telemetry.span("x"):
            pass
        assert telemetry.enabled is False
        assert list(telemetry.tracer.spans) == []
        buffer = io.StringIO()
        assert telemetry.write_chrome_trace(buffer) == 1  # metadata only

"""End-to-end telemetry: harness + policy + machine + controller.

Covers the PR's acceptance criteria: a CuttleSys run with telemetry
enabled produces a valid Chrome trace with nested spans for
profile/SGD/DDS/reconfigure inside each quantum, plus a metrics report
with prediction-error percentiles; counters track churn and core
reclamation.
"""

import json

import pytest

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import run_policy
from repro.telemetry import Telemetry
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.loadgen import LoadTrace

FAST_DDS = DDSParams(initial_random_points=20, max_iter=10,
                     points_per_iteration=4, n_threads=4)


def fast_policy(machine, seed=3):
    return CuttleSysPolicy.for_machine(
        machine, seed=seed, config=ControllerConfig(dds=FAST_DDS, seed=seed)
    )


class TestRunWithTelemetry:
    @pytest.fixture()
    def session(self, quiet_machine):
        telemetry = Telemetry()
        policy = fast_policy(quiet_machine)
        run_policy(
            quiet_machine, policy, LoadTrace.constant(0.8),
            power_cap_fraction=0.7, n_slices=4, telemetry=telemetry,
        )
        return telemetry

    def test_all_fig3_phases_traced(self, session):
        names = {s.name for s in session.tracer.spans}
        assert {
            "quantum", "decide", "observe",             # harness
            "machine.profile", "slice", "reconfigure",  # machine
            "sgd", "lc_scan", "search", "power_fallback",  # controller
            "sgd.reconstruct", "dds.search",            # leaf phases
        } <= names

    def test_phases_nest_inside_each_quantum(self, session):
        quanta = [s for s in session.tracer.spans if s.name == "quantum"]
        assert len(quanta) == 4
        for quantum in quanta:
            inside = {c.name for c in session.tracer.children_of(quantum)}
            assert {"machine.profile", "sgd", "search",
                    "reconfigure"} <= inside
            assert quantum.depth == 0

    def test_decision_records_one_per_quantum(self, session):
        assert len(session.metrics.decisions) == 4
        assert [r.quantum for r in session.metrics.decisions] == [0, 1, 2, 3]

    def test_prediction_errors_within_fig5_scale(self, session):
        """On the noise-free machine, measured values ARE the ground
        truth, so the online error histograms measure reconstruction
        accuracy exactly as Fig. 5 does offline.  The paper reports
        median |error| under ~10 % for throughput; allow slack for the
        tiny 4-quantum run."""
        bips = session.metrics.histograms["prediction_error.bips_pct"]
        assert bips.count > 0
        assert bips.percentile(50) < 25.0
        power = session.metrics.histograms["prediction_error.power_pct"]
        assert power.count > 0
        assert power.percentile(50) < 25.0

    def test_chrome_trace_is_valid(self, session, tmp_path):
        path = tmp_path / "run.json"
        session.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        x_events = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in x_events} >= {
            "quantum", "sgd", "dds.search", "machine.profile",
            "reconfigure",
        }

    def test_report_has_error_percentiles(self, session):
        text = session.report()
        assert "prediction_error.bips_pct" in text
        assert "p95" in text and "p99" in text


class TestCounters:
    def test_churn_counter_increments(self, quiet_machine):
        telemetry = Telemetry()
        policy = fast_policy(quiet_machine)
        train_names, _ = train_test_split()
        pool = [batch_profile(n) for n in train_names[:4]]
        run = run_policy(
            quiet_machine, policy, LoadTrace.constant(0.6),
            n_slices=5, churn_period=2, churn_pool=pool,
            telemetry=telemetry,
        )
        expected = len(run.churn_events)
        assert expected == 2  # slices 2 and 4
        assert telemetry.metrics.counters["harness.job_churn"].value == expected
        churn_instants = [
            i for i in telemetry.tracer.instants if i.name == "job_churn"
        ]
        assert len(churn_instants) == expected

    def test_reclamation_counter_increments(self, small_machine):
        """Warm up at moderate load then slam to saturation: the
        controller must reclaim cores and count each event."""
        telemetry = Telemetry()
        policy = fast_policy(small_machine)
        policy.attach_telemetry(telemetry)
        controller = policy.controller
        machine = small_machine
        budget = machine.reference_max_power()

        def step(load):
            sample = machine.profile(load, lc_cores=controller.lc_cores)
            controller.ingest_profiling(sample)
            assignment = controller.decide(load, budget)
            controller.ingest_measurement(
                machine.run_slice(assignment, load)
            )

        for _ in range(3):
            step(0.8)
        before = controller.lc_cores
        for _ in range(4):
            step(1.3)
        reclaimed_cores = controller.lc_cores - before
        assert reclaimed_cores > 0
        counter = telemetry.metrics.counters["controller.core_reclamations"]
        assert counter.value >= reclaimed_cores

    def test_qos_violation_counter_matches_run(self, small_machine):
        telemetry = Telemetry()
        policy = fast_policy(small_machine)
        run = run_policy(
            small_machine, policy, LoadTrace.constant(0.8),
            power_cap_fraction=0.6, n_slices=5, telemetry=telemetry,
        )
        counted = telemetry.metrics.counters.get("harness.qos_violations")
        value = counted.value if counted is not None else 0
        assert value == run.qos_violations()

    def test_reconfiguration_counter_matches_measurements(
        self, quiet_machine
    ):
        telemetry = Telemetry()
        policy = fast_policy(quiet_machine)
        run = run_policy(
            quiet_machine, policy, LoadTrace.constant(0.8),
            n_slices=4, telemetry=telemetry,
        )
        total = sum(m.reconfigurations for m in run.measurements)
        assert telemetry.metrics.counters["harness.reconfigurations"].value == total


class TestStepTimingsCompat:
    def test_timings_derive_from_spans(self, quiet_machine):
        """StepTimings and the trace report the same numbers — one
        measurement path."""
        telemetry = Telemetry()
        policy = fast_policy(quiet_machine)
        run_policy(
            quiet_machine, policy, LoadTrace.constant(0.8),
            n_slices=2, telemetry=telemetry,
        )
        controller = policy.controller
        search_durations = telemetry.tracer.durations_s("search")
        assert len(controller.timings) == 2
        for timing, span_s in zip(controller.timings, search_durations):
            assert timing.search_s == pytest.approx(span_s)

    def test_timings_still_recorded_without_telemetry(self, quiet_machine):
        policy = fast_policy(quiet_machine)
        run_policy(
            quiet_machine, policy, LoadTrace.constant(0.8), n_slices=1,
        )
        assert policy.controller.timings[0].sgd_s > 0
        assert policy.controller.timings[0].search_s > 0


class TestBaselinePolicies:
    def test_baseline_gets_measured_only_records(self, small_machine):
        """Any Policy benefits: baselines without predictions still get
        quantum spans and measured-side decision records."""
        from repro.baselines import CoreGatingPolicy

        telemetry = Telemetry()
        run_policy(
            small_machine, CoreGatingPolicy(), LoadTrace.constant(0.6),
            n_slices=2, telemetry=telemetry,
        )
        assert len(telemetry.metrics.decisions) == 2
        names = {s.name for s in telemetry.tracer.spans}
        assert {"quantum", "decide", "observe", "slice"} <= names
        # No predicted side -> no prediction-error histograms.
        assert "prediction_error.bips_pct" not in telemetry.metrics.histograms

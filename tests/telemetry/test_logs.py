"""Tests for the stdlib logging wiring."""

import io
import logging

from repro.logs import (
    ROOT,
    configure,
    get_logger,
    install_null_handler,
    verbosity_to_level,
)


def _cleanup():
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_normalises_names(self):
        assert get_logger("core.controller").name == "repro.core.controller"
        assert get_logger("repro.sim").name == "repro.sim"
        assert get_logger().name == "repro"

    def test_library_import_installs_null_handler(self):
        import repro  # noqa: F401  (import side effect under test)

        root = logging.getLogger(ROOT)
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )

    def test_install_null_handler_idempotent_enough(self):
        install_null_handler()
        # No exception, and records are swallowed without config.
        get_logger("core.controller").warning("quiet")


class TestVerbosity:
    def test_mapping(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(9) == logging.DEBUG


class TestConfigure:
    def test_configure_routes_records(self):
        stream = io.StringIO()
        configure(verbosity=1, stream=stream)
        try:
            get_logger("experiments.harness").info("hello %d", 7)
            assert "hello 7" in stream.getvalue()
            assert "repro.experiments.harness" in stream.getvalue()
        finally:
            _cleanup()

    def test_configure_does_not_stack_handlers(self):
        try:
            configure(verbosity=1, stream=io.StringIO())
            configure(verbosity=2, stream=io.StringIO())
            root = logging.getLogger(ROOT)
            streams = [
                h for h in root.handlers
                if isinstance(h, logging.StreamHandler)
                and not isinstance(h, logging.NullHandler)
            ]
            assert len(streams) == 1
            assert root.level == logging.DEBUG
        finally:
            _cleanup()

"""The prediction-accuracy auditor: errors, drift, QoS attribution."""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams
from repro.core.runtime import CuttleSysPolicy
from repro.baselines import CoreGatingPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    run_policy,
)
from repro.telemetry import (
    AuditConfig,
    DriftTracker,
    Telemetry,
    median_error_pct,
    render_accuracy_report,
)
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

FAST_DDS = DDSParams(initial_random_points=20, max_iter=10,
                     points_per_iteration=4, n_threads=4)


def fast_policy(machine, seed=3):
    return CuttleSysPolicy.for_machine(
        machine, seed=seed, config=ControllerConfig(dds=FAST_DDS, seed=seed)
    )


class TestDriftTracker:
    def test_first_sample_seeds_both_trackers(self):
        tracker = DriftTracker()
        assert tracker.update(10.0) is False
        assert tracker.fast == pytest.approx(10.0)
        assert tracker.slow == pytest.approx(10.0)

    def test_no_flag_during_warmup(self):
        tracker = DriftTracker(warmup=3)
        # Even an enormous jump inside the warmup window stays silent.
        assert tracker.update(5.0) is False
        assert tracker.update(500.0) is False
        assert tracker.update(500.0) is False

    def test_flags_on_sustained_jump_after_warmup(self):
        tracker = DriftTracker(alpha=0.5, factor=2.0, floor=2.0, warmup=2)
        for _ in range(4):
            assert tracker.update(8.0) is False
        flagged = [tracker.update(80.0) for _ in range(3)]
        assert any(flagged)
        assert tracker.fast > tracker.slow

    def test_floor_suppresses_tiny_absolute_errors(self):
        tracker = DriftTracker(factor=2.0, floor=5.0, warmup=1)
        tracker.update(0.2)
        tracker.update(0.2)
        # 0.2 % -> 1 % error is a 5x relative rise but stays under the
        # floor*factor = 10 % line: noise, not degradation.
        assert tracker.update(1.0) is False

    def test_nan_samples_are_ignored(self):
        tracker = DriftTracker()
        tracker.update(10.0)
        assert tracker.update(math.nan) is False
        assert tracker.samples == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftTracker(alpha=0.0)
        with pytest.raises(ValueError):
            DriftTracker(factor=1.0)
        with pytest.raises(ValueError):
            AuditConfig(ewma_alpha=2.0)
        with pytest.raises(ValueError):
            AuditConfig(drift_warmup=0)


class TestAuditedRun:
    @pytest.fixture(scope="class")
    def audited(self):
        """Mix 0 (xapian + 16 batch jobs) with the auditor attached."""
        machine = build_machine_for_mix(paper_mixes()[0], seed=7)
        policy = CuttleSysPolicy.for_machine(machine, seed=7)
        telemetry = Telemetry()
        telemetry.enable_accuracy_audit()
        run = run_policy(
            machine, policy, LoadTrace.constant(0.8),
            n_slices=6, telemetry=telemetry,
        )
        return telemetry, run

    def test_median_errors_consistent_with_fig4(self, audited):
        """The paper reports ~5-12 % reconstruction error (Fig. 4);
        the online audit of a default run must land in that regime."""
        telemetry, _ = audited
        for metric in ("bips", "power", "lc_p99"):
            median = median_error_pct(telemetry, metric)
            assert math.isfinite(median), metric
            assert median < 20.0, (metric, median)

    def test_all_warm_quanta_audited(self, audited):
        telemetry, run = audited
        counters = telemetry.metrics.counters
        audited_n = counters["accuracy.audited_quanta"].value
        skipped_n = counters.get("accuracy.unaudited_quanta")
        skipped_n = skipped_n.value if skipped_n else 0
        assert audited_n + skipped_n == len(run.measurements)
        # Only the cold-start quantum lacks a reconstruction.
        assert skipped_n <= 1
        assert audited_n >= 5

    def test_per_app_histograms_present(self, audited):
        telemetry, _ = audited
        names = [
            n for n in telemetry.metrics.histograms
            if n.startswith("accuracy.app.")
        ]
        assert len(names) >= 16

    def test_report_renders(self, audited):
        telemetry, _ = audited
        text = render_accuracy_report(telemetry)
        assert "quanta audited: " in text
        assert "bips" in text and "lc_p99" in text
        assert "drift flags:" in text

    def test_no_drift_on_steady_run(self, audited):
        telemetry, _ = audited
        assert telemetry.auditor.drift_events == []

    def test_audit_flows_through_jsonl_exporter(self, audited):
        import io

        from repro.telemetry import read_jsonl, write_jsonl

        telemetry, _ = audited
        buffer = io.StringIO()
        write_jsonl(telemetry, buffer)
        buffer.seek(0)
        names = {
            r["name"] for r in read_jsonl(buffer)
            if r["type"] in ("counter", "histogram")
        }
        assert "accuracy.audited_quanta" in names
        assert "accuracy.bips_err_pct" in names


class TestDriftDetection:
    def test_injected_phase_jump_flags_drift(self, quiet_machine):
        """An abrupt phase shift invalidates the profiled matrices; the
        auditor must flag the reconstruction-error rise."""
        telemetry = Telemetry()
        auditor = telemetry.enable_accuracy_audit()
        policy = fast_policy(quiet_machine)
        run_policy(
            quiet_machine, policy, LoadTrace.constant(0.6),
            n_slices=6, telemetry=telemetry,
        )
        assert auditor.drift_events == []
        # Inject the drift scenario: every batch app jumps to a phase
        # the controller has never profiled.
        quiet_machine._log_phase[:] += 1.2
        run_policy(
            quiet_machine, policy, LoadTrace.constant(0.6),
            n_slices=4, telemetry=telemetry,
        )
        assert auditor.drift_events, "phase jump not flagged"
        assert any(e.metric == "bips" for e in auditor.drift_events)
        flags = telemetry.metrics.counters["accuracy.drift.flags"].value
        assert flags == len(auditor.drift_events)
        event = auditor.drift_events[0]
        assert event.fast_pct > event.slow_pct

    def test_baseline_policy_counts_as_unaudited(self, quiet_machine):
        telemetry = Telemetry()
        auditor = telemetry.enable_accuracy_audit()
        run_policy(
            quiet_machine, CoreGatingPolicy(), LoadTrace.constant(0.6),
            n_slices=3, telemetry=telemetry,
        )
        counters = telemetry.metrics.counters
        assert counters["accuracy.unaudited_quanta"].value == 3
        assert "accuracy.audited_quanta" not in counters
        assert auditor.drift_events == []


class TestQosAttribution:
    @pytest.fixture()
    def auditor(self):
        telemetry = Telemetry()
        return telemetry.enable_accuracy_audit()

    def _measurement(self, p99, cores=4, load=0.5):
        return SimpleNamespace(
            assignment=SimpleNamespace(lc_cores=cores, extra_lc=()),
            lc_p99=p99,
            lc_load=load,
            extra_lc_p99=(),
            extra_lc_loads=(),
        )

    def _feasible_qos(self, machine, cores=4, load=0.5):
        truth = machine.oracle_lc_latency_row(load, cores, 0)
        finite = truth[np.isfinite(truth)]
        assert finite.size
        return float(finite.min()) * 1.5

    def test_infeasible(self, auditor, quiet_machine):
        qos = 1e-9  # no configuration can ever meet this
        auditor.audit_measurement(
            quiet_machine, self._measurement(p99=1.0), quantum=0, qos_s=qos,
        )
        counters = auditor.telemetry.metrics.counters
        assert counters["accuracy.qos_attrib.infeasible"].value == 1

    def test_search_failure_without_prediction(self, auditor, quiet_machine):
        qos = self._feasible_qos(quiet_machine)
        auditor.audit_measurement(
            quiet_machine, self._measurement(p99=qos * 2), quantum=0,
            qos_s=qos, policy=None,
        )
        counters = auditor.telemetry.metrics.counters
        assert counters["accuracy.qos_attrib.search_failure"].value == 1

    def test_misprediction_when_controller_predicted_safe(
        self, auditor, quiet_machine
    ):
        qos = self._feasible_qos(quiet_machine)
        policy = SimpleNamespace(
            last_prediction=SimpleNamespace(p99_s=(qos * 0.5,))
        )
        auditor.audit_measurement(
            quiet_machine, self._measurement(p99=qos * 2), quantum=0,
            qos_s=qos, policy=policy,
        )
        counters = auditor.telemetry.metrics.counters
        assert counters["accuracy.qos_attrib.misprediction"].value == 1

    def test_meeting_qos_attributes_nothing(self, auditor, quiet_machine):
        qos = self._feasible_qos(quiet_machine)
        auditor.audit_measurement(
            quiet_machine, self._measurement(p99=qos * 0.5), quantum=0,
            qos_s=qos,
        )
        counters = auditor.telemetry.metrics.counters
        assert not any(k.startswith("accuracy.qos_attrib") for k in counters)

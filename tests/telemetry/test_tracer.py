"""Tests for the span/event tracer."""

import time

import pytest

from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer, tracer_of


class TestSpans:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.002)
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.name == "work"
        assert span.duration_s >= 0.002
        assert span.end_ns == span.start_ns + span.duration_ns

    def test_nesting_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["leaf"].depth == 2
        assert by_name["outer"].parent == -1
        assert by_name["inner"].parent == by_name["outer"].id
        assert by_name["leaf"].parent == by_name["inner"].id

    def test_children_close_before_parents(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        # Completion order: child first.
        assert [s.name for s in tracer.spans] == ["child", "parent"]
        parent = tracer.spans[1]
        child = tracer.spans[0]
        assert child.start_ns >= parent.start_ns
        assert child.end_ns <= parent.end_ns

    def test_children_of_uses_time_containment(self):
        tracer = Tracer()
        with tracer.span("quantum"):
            with tracer.span("sgd"):
                pass
            with tracer.span("search"):
                pass
        with tracer.span("quantum"):
            with tracer.span("sgd"):
                pass
        first = [s for s in tracer.spans if s.name == "quantum"][0]
        names = sorted(c.name for c in tracer.children_of(first))
        assert names == ["search", "sgd"]

    def test_sibling_spans_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert all(s.depth == 0 and s.parent == -1 for s in tracer.spans)

    def test_span_args_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("search", explorer="dds") as span:
            span.set(evaluations=123)
        assert tracer.spans[0].args == {"explorer": "dds",
                                        "evaluations": 123}

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert len(tracer.spans) == 1
        assert tracer.spans[0].duration_ns >= 0
        # The stack is clean for the next span.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].depth == 0

    def test_durations_s_filters_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("sgd"):
                pass
        with tracer.span("other"):
            pass
        assert len(tracer.durations_s("sgd")) == 3
        assert tracer.durations_s("missing") == []

    def test_instants(self):
        tracer = Tracer()
        tracer.instant("churn", slot=3)
        assert len(tracer.instants) == 1
        assert tracer.instants[0].name == "churn"
        assert tracer.instants[0].args == {"slot": 3}

    def test_clear_resets_everything(self):
        tracer = Tracer()
        with tracer.span("x"):
            tracer.instant("y")
        tracer.clear()
        assert tracer.spans == []
        assert tracer.instants == []
        with tracer.span("fresh"):
            pass
        assert tracer.spans[0].id == 0


class TestNullTracer:
    def test_span_is_shared_singleton(self):
        a = NULL_TRACER.span("x")
        b = NULL_TRACER.span("y", category="z", arg=1)
        assert a is b  # no allocation on the disabled path

    def test_noop_context_manager(self):
        with NULL_TRACER.span("x") as span:
            span.set(key="value")
        assert NULL_TRACER.spans == []
        assert span.duration_s == 0.0

    def test_records_nothing(self):
        NULL_TRACER.instant("evt")
        assert NULL_TRACER.instants == []
        assert NULL_TRACER.durations_s("evt") == []
        assert NULL_TRACER.enabled is False

    def test_disabled_overhead_is_small(self):
        """The no-op path must be within an order of magnitude of a
        bare function call — guards the <5 % benchmark criterion."""
        tracer = NULL_TRACER
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("hot"):
                pass
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 5e-6  # 5 µs is generous; typically ~100 ns


class TestTracerOf:
    def test_none_gives_null(self):
        assert tracer_of(None) is NULL_TRACER

    def test_tracer_passes_through(self):
        tracer = Tracer()
        assert tracer_of(tracer) is tracer
        assert tracer_of(NULL_TRACER) is NULL_TRACER

    def test_session_like_object(self):
        class Session:
            def __init__(self):
                self.tracer = Tracer()

        session = Session()
        assert tracer_of(session) is session.tracer

    def test_unrelated_object_gives_null(self):
        assert tracer_of(object()) is NULL_TRACER
        assert isinstance(tracer_of(42), NullTracer)

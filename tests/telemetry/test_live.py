"""Tests for live streaming telemetry: windows, backpressure, merge.

The load-bearing property is byte-equivalence: the aggregator's
incremental merge over per-unit shards must serialise *identically* to
the post-hoc ``merge_jsonl`` over the same shards, whatever order the
units complete in.  Everything else (rolling windows, drop accounting,
the status view) is operator-facing and lossy by design.
"""

import json
import math
import queue

import pytest

from repro.telemetry import merge_jsonl, render_prometheus
from repro.telemetry.live import (
    CallbackSink,
    LiveAggregator,
    LiveEmitter,
    RollingWindow,
    current_emitter,
    emit,
    install_emitter,
    offer,
    render_live_status,
)


def decision(quantum: int, power: float) -> dict:
    return {
        "type": "decision",
        "quantum": quantum,
        "predicted_bips": [1.0, None],
        "measured_bips": [1.1, None],
        "predicted_p99_s": [0.05],
        "measured_p99_s": [0.06],
        "predicted_power_w": power,
        "measured_power_w": power + 1.0,
    }


SHARD_B = [
    {"type": "span", "name": "decide", "start_s": 0.0, "duration_s": 0.5},
    {"type": "counter", "name": "dds_evaluations", "value": 40},
    {"type": "counter", "name": "power_sum_w", "value": 0.1},
    {"type": "gauge", "name": "power_w", "value": 81.0},
    decision(1, 80.0),
    decision(3, 82.0),
]

SHARD_A = [
    {"type": "instant", "name": "accuracy.drift", "at_s": 0.2},
    {"type": "counter", "name": "dds_evaluations", "value": 2},
    {"type": "counter", "name": "power_sum_w", "value": 0.2},
    {"type": "histogram", "name": "p99_ms", "value": [1.0, 2.0]},
    decision(0, 70.0),
    decision(2, 71.0),
]


class TestRollingWindow:
    def test_empty_window_is_nan(self):
        window = RollingWindow("w", size=4)
        assert math.isnan(window.last)
        assert math.isnan(window.mean())
        assert math.isnan(window.percentile(99))
        assert window.rate() == 0.0

    def test_ages_out_old_samples_but_keeps_lifetime_count(self):
        window = RollingWindow("w", size=2)
        for value in (1.0, 2.0, 3.0):
            window.observe(value)
        assert len(window) == 2
        assert window.total == 3
        assert window.mean() == pytest.approx(2.5)
        assert window.last == 3.0

    def test_nan_samples_are_dropped(self):
        window = RollingWindow("w", size=4)
        window.observe(float("nan"))
        assert len(window) == 0 and window.total == 0

    def test_percentiles_interpolate(self):
        window = RollingWindow("w", size=8)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(value)
        assert window.percentile(50) == pytest.approx(2.5)
        assert window.percentile(0) == 1.0
        assert window.percentile(100) == 4.0

    def test_rate_counts_nonzero_fraction(self):
        window = RollingWindow("w", size=4)
        for value in (0.0, 1.0, 1.0, 0.0):
            window.observe(value)
        assert window.rate() == pytest.approx(0.5)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            RollingWindow("w", size=0)


class TestOffer:
    def test_accepts_until_full_then_drops_with_callback(self):
        q: "queue.Queue" = queue.Queue(maxsize=2)
        dropped = []
        assert offer(q, {"n": 1}, dropped.append)
        assert offer(q, {"n": 2}, dropped.append)
        assert not offer(q, {"n": 3}, dropped.append)
        assert dropped == [{"n": 3}]
        assert q.qsize() == 2

    def test_never_raises_without_callback(self):
        q: "queue.Queue" = queue.Queue(maxsize=1)
        assert offer(q, 1)
        assert not offer(q, 2)


class TestEmitter:
    def test_stamps_unit_and_worker_and_counts(self):
        events = []
        emitter = LiveEmitter(CallbackSink(events.append),
                              unit_id="u/1", worker="w-0")
        assert emitter.emit("quantum", index=0)
        assert events == [
            {"index": 0, "kind": "quantum", "unit": "u/1", "worker": "w-0"}
        ]
        assert emitter.emitted == 1 and emitter.dropped == 0

    def test_backpressure_counts_drops(self):
        q: "queue.Queue" = queue.Queue(maxsize=2)
        emitter = LiveEmitter(q, unit_id="u/1")
        sent = [emitter.emit("quantum", index=i) for i in range(5)]
        assert sent == [True, True, False, False, False]
        assert emitter.emitted == 2 and emitter.dropped == 3

    def test_install_restores_prior(self):
        events = []
        emitter = LiveEmitter(CallbackSink(events.append), unit_id="u")
        assert current_emitter() is None
        assert emit("quantum") is False  # no-op without an emitter
        prior = install_emitter(emitter)
        try:
            assert prior is None
            assert current_emitter() is emitter
            assert emit("quantum", index=1)
        finally:
            install_emitter(prior)
        assert current_emitter() is None
        assert [e["kind"] for e in events] == ["quantum"]


class TestIncrementalMergeEquivalence:
    def assert_equivalent(self, shards):
        posthoc = merge_jsonl(shards)
        for order in (shards, list(reversed(shards))):
            aggregator = LiveAggregator()
            for unit_id, records in order:
                aggregator.ingest(unit_id, records)
            streamed = aggregator.merged_records()
            assert streamed == posthoc
            # Byte-identical once serialised, not merely equal.
            assert (
                [json.dumps(r, sort_keys=True) for r in streamed]
                == [json.dumps(r, sort_keys=True) for r in posthoc]
            )

    def test_two_shards_any_ingestion_order(self):
        self.assert_equivalent([("unit-a", SHARD_A), ("unit-b", SHARD_B)])

    def test_float_counter_fold_order_matches(self):
        # 0.1 + 0.2 != 0.2 + 0.1 + 0.0 in decimal-printed floats; the
        # incremental fold must visit units in sorted order from int 0
        # exactly like merge_jsonl.
        shards = [
            ("z", [{"type": "counter", "name": "c", "value": 0.1}]),
            ("a", [{"type": "counter", "name": "c", "value": 0.2}]),
            ("m", [{"type": "counter", "name": "c", "value": 0.3}]),
        ]
        self.assert_equivalent(shards)

    def test_duplicate_unit_raises(self):
        aggregator = LiveAggregator()
        aggregator.ingest("unit-a", SHARD_A)
        with pytest.raises(ValueError, match="duplicate unit id"):
            aggregator.ingest("unit-a", SHARD_A)

    def test_mid_run_merge_covers_ingested_units(self):
        aggregator = LiveAggregator()
        aggregator.ingest("unit-b", SHARD_B)
        partial = aggregator.merged_records()
        assert partial == merge_jsonl([("unit-b", SHARD_B)])
        aggregator.ingest("unit-a", SHARD_A)
        assert aggregator.merged_records() == merge_jsonl(
            [("unit-a", SHARD_A), ("unit-b", SHARD_B)]
        )

    def test_drift_instants_surface_in_rolling_state(self):
        aggregator = LiveAggregator()
        aggregator.ingest("unit-a", SHARD_A)
        assert len(aggregator.drift_events) == 1
        assert aggregator.drift_events[0]["name"] == "accuracy.drift"


class TestEventIngestion:
    def quantum(self, index, p99=9.0, power=80.0, budget=100.0,
                qos=False, power_violated=False, predicted=82.0):
        return {
            "kind": "quantum", "unit": "u/1", "worker": "w-0",
            "index": index, "lc_p99_ms": p99, "power_w": power,
            "budget_w": budget, "qos_violated": qos,
            "power_violated": power_violated,
            "predicted_power_w": predicted,
        }

    def test_quantum_events_feed_windows_and_tallies(self):
        aggregator = LiveAggregator()
        aggregator.ingest_event(self.quantum(0))
        aggregator.ingest_event(self.quantum(1, qos=True,
                                             power_violated=True))
        assert aggregator.quanta == 2
        assert aggregator.qos_violations == 1
        assert aggregator.power_violations == 1
        assert aggregator.window("quantum.lc_p99_ms").total == 2
        assert aggregator.window("quantum.headroom_pct").last == (
            pytest.approx(20.0)
        )
        assert aggregator.window("accuracy.power_err_pct").last == (
            pytest.approx(2.5)
        )

    def test_unit_lifecycle_and_drop_accounting(self):
        aggregator = LiveAggregator()
        aggregator.ingest_event(
            {"kind": "unit_started", "unit": "u/1", "worker": "w-0"}
        )
        assert aggregator.units["u/1"]["state"] == "running"
        aggregator.ingest_event(
            {"kind": "unit_finished", "unit": "u/1", "worker": "w-0",
             "ok": True, "dropped": 3}
        )
        assert aggregator.units["u/1"]["state"] == "done"
        assert aggregator.dropped_events == 3
        aggregator.record_drop(2)
        assert aggregator.dropped_events == 5

    def test_retry_and_fallback_tallies(self):
        aggregator = LiveAggregator()
        aggregator.ingest_event(
            {"kind": "unit_retry", "unit": "u/1", "worker": "w-0",
             "attempt": 2}
        )
        aggregator.ingest_event({"kind": "serial_fallback"})
        assert aggregator.retries == 1
        assert aggregator.serial_fallbacks == 1
        assert aggregator.workers["w-0"]["retries"] == 1
        assert aggregator.units["u/1"]["state"] == "retrying"

    def test_failed_unit_renders_in_status(self):
        aggregator = LiveAggregator()
        aggregator.ingest_event(
            {"kind": "unit_finished", "unit": "u/1", "ok": False,
             "dropped": 0}
        )
        text = render_live_status(aggregator)
        assert "1 FAILED" in text
        assert "[failed" in text


class TestReplay:
    def test_replay_matches_streamed_totals(self):
        merged = merge_jsonl(
            [("unit-a", SHARD_A), ("unit-b", SHARD_B)]
        ) + [
            {"type": "counter", "name": "harness.qos_violations",
             "value": 2},
            {"type": "counter", "name": "fleet.retries", "value": 1},
            {"type": "counter", "name": "live.dropped_events",
             "value": 4},
        ]
        aggregator = LiveAggregator().replay(merged)
        assert aggregator.quanta == 4
        assert aggregator.qos_violations == 2
        assert aggregator.retries == 1
        assert aggregator.dropped_events == 4
        assert aggregator.window("quantum.lc_p99_ms").total == 4
        assert sorted(aggregator.units) == ["unit-a", "unit-b"]

    def test_status_view_is_deterministic(self):
        merged = merge_jsonl([("unit-a", SHARD_A)])
        first = render_live_status(LiveAggregator().replay(merged))
        second = render_live_status(LiveAggregator().replay(merged))
        assert first == second
        assert "live fleet status" in first
        assert "unit-a" in first


class TestPrometheus:
    def test_renders_counters_from_records(self):
        merged = merge_jsonl([("unit-a", SHARD_A), ("unit-b", SHARD_B)])
        text = render_prometheus(merged)
        assert text.endswith("\n")
        assert "# TYPE repro_dds_evaluations_total counter" in text
        assert "repro_dds_evaluations_total 42" in text

    def test_snapshot_is_json_serialisable(self):
        aggregator = LiveAggregator()
        aggregator.ingest("unit-a", SHARD_A)
        aggregator.ingest_event(
            {"kind": "quantum", "unit": "u", "index": 0,
             "lc_p99_ms": 5.0, "power_w": 80.0, "budget_w": 100.0}
        )
        json.dumps(aggregator.snapshot())

"""Tests for merging per-unit JSONL telemetry shards into one log.

The fleet runs units in worker processes that each produce their own
telemetry; ``merge_jsonl`` must yield an order that depends on record
content only — never on which worker finished first.
"""

import io
import json

import pytest

from repro.telemetry import (
    decision_records_from_jsonl,
    merge_jsonl,
    read_jsonl,
    write_jsonl,
)


def decision(quantum: int, power: float) -> dict:
    return {
        "type": "decision",
        "quantum": quantum,
        "predicted_bips": [1.0, None],
        "measured_bips": [1.1, None],
        "predicted_p99_s": [0.05],
        "measured_p99_s": [0.06],
        "predicted_power_w": power,
        "measured_power_w": power + 1.0,
    }


SHARD_B = [
    {"type": "span", "name": "decide", "start_s": 0.0, "duration_s": 0.5},
    {"type": "counter", "name": "dds_evaluations", "value": 40},
    {"type": "counter", "name": "sgd_iterations", "value": 3},
    {"type": "gauge", "name": "power_w", "value": 81.0},
    decision(1, 80.0),
    decision(3, 82.0),
]

SHARD_A = [
    {"type": "instant", "name": "fault", "at_s": 0.2},
    {"type": "counter", "name": "dds_evaluations", "value": 2},
    {"type": "gauge", "name": "power_w", "value": 79.5},
    decision(0, 70.0),
    decision(2, 71.0),
]


class TestMergeOrder:
    def test_units_sorted_and_tagged(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        traces = [r for r in merged if r["type"] in ("span", "instant")]
        assert [r["unit"] for r in traces] == ["a", "b"]

    def test_decisions_sorted_by_quantum_then_unit(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        decisions = [r for r in merged if r["type"] == "decision"]
        assert [(r["quantum"], r["unit"]) for r in decisions] == [
            (0, "a"), (1, "b"), (2, "a"), (3, "b"),
        ]

    def test_counters_summed_per_name(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        counters = {
            r["name"]: r["value"] for r in merged if r["type"] == "counter"
        }
        assert counters == {"dds_evaluations": 42, "sgd_iterations": 3}

    def test_gauges_sorted_by_name_then_unit(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        gauges = [r for r in merged if r["type"] == "gauge"]
        assert [(r["name"], r["unit"]) for r in gauges] == [
            ("power_w", "a"), ("power_w", "b"),
        ]

    def test_completion_order_does_not_matter(self):
        first = merge_jsonl([("a", SHARD_A), ("b", SHARD_B)])
        second = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        assert first == second

    def test_duplicate_unit_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            merge_jsonl([("a", SHARD_A), ("a", SHARD_B)])


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "merged.jsonl"
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)], path)
        assert read_jsonl(path) == merged
        # Every line is standalone JSON (greppable / streamable).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_shards_readable_from_paths(self, tmp_path):
        paths = []
        for unit_id, shard in (("a", SHARD_A), ("b", SHARD_B)):
            p = tmp_path / f"{unit_id}.jsonl"
            with open(p, "w") as handle:
                for rec in shard:
                    handle.write(json.dumps(rec) + "\n")
            paths.append((unit_id, str(p)))
        from_paths = merge_jsonl(paths)
        in_memory = merge_jsonl([("a", SHARD_A), ("b", SHARD_B)])
        assert from_paths == in_memory

    def test_decision_records_rebuild_in_quantum_order(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        records = decision_records_from_jsonl(merged)
        assert [r.quantum for r in records] == [0, 1, 2, 3]
        assert records[1].predicted_power_w == 80.0
        # JSON nulls come back as NaN, per the exporter contract.
        assert records[0].predicted_bips[1] != records[0].predicted_bips[1]


class TestFleetMergedTrace:
    """Real sessions sharded, merged, and fed to the trace consumers."""

    @pytest.fixture(scope="class")
    def merged(self):
        from repro.core.runtime import CuttleSysPolicy
        from repro.experiments.harness import (
            build_machine_for_mix,
            run_policy,
        )
        from repro.telemetry import Telemetry
        from repro.workloads.loadgen import LoadTrace
        from repro.workloads.mixes import paper_mixes

        shards = []
        for unit_id, seed in (("mix0/s7", 7), ("mix0/s11", 11)):
            machine = build_machine_for_mix(paper_mixes()[0], seed=seed)
            policy = CuttleSysPolicy.for_machine(machine, seed=seed)
            telemetry = Telemetry()
            run_policy(
                machine, policy, LoadTrace.constant(0.8),
                power_cap_fraction=0.7, n_slices=2, telemetry=telemetry,
            )
            buffer = io.StringIO()
            write_jsonl(telemetry, buffer)
            buffer.seek(0)
            shards.append((unit_id, read_jsonl(buffer)))
        return merge_jsonl(shards)

    def test_spans_unit_labelled_and_time_sorted_per_unit(self, merged):
        spans = [r for r in merged if r["type"] == "span"]
        assert spans, "real sessions must produce spans"
        assert {s["unit"] for s in spans} == {"mix0/s11", "mix0/s7"}
        # Traces group per sorted unit id; within one unit the spans
        # keep their recorded (monotonic) clock.
        units = [s["unit"] for s in spans]
        assert units == sorted(units)
        for unit in set(units):
            starts = [
                s["start_us"] for s in spans if s["unit"] == unit
            ]
            # Spans are recorded in completion order; their start
            # stamps are still bounded by the session clock.
            assert min(starts) >= 0.0
            assert max(
                s["start_us"] + s["dur_us"] for s in spans
                if s["unit"] == unit
            ) >= max(starts)

    def test_decisions_round_trip_through_records(self, merged):
        records = decision_records_from_jsonl(merged)
        assert [r.quantum for r in records] == [0, 0, 1, 1]
        assert all(r.measured_power_w > 0 for r in records)

    def test_merged_log_profiles_into_one_chrome_trace(self, merged):
        from repro.telemetry.profiler import (
            build_profile,
            chrome_trace_from_profile,
        )

        events = chrome_trace_from_profile(build_profile(merged))
        assert events[0]["ph"] == "M"
        timed = events[1:]
        names = {e["name"] for e in timed}
        # One merged tree for both units: a single quantum root.
        assert sum(1 for e in timed if e["name"] == "quantum") == 1
        assert "dds.search" in names
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        assert all(e["dur"] >= 0 for e in timed)

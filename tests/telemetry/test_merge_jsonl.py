"""Tests for merging per-unit JSONL telemetry shards into one log.

The fleet runs units in worker processes that each produce their own
telemetry; ``merge_jsonl`` must yield an order that depends on record
content only — never on which worker finished first.
"""

import json

import pytest

from repro.telemetry import (
    decision_records_from_jsonl,
    merge_jsonl,
    read_jsonl,
)


def decision(quantum: int, power: float) -> dict:
    return {
        "type": "decision",
        "quantum": quantum,
        "predicted_bips": [1.0, None],
        "measured_bips": [1.1, None],
        "predicted_p99_s": [0.05],
        "measured_p99_s": [0.06],
        "predicted_power_w": power,
        "measured_power_w": power + 1.0,
    }


SHARD_B = [
    {"type": "span", "name": "decide", "start_s": 0.0, "duration_s": 0.5},
    {"type": "counter", "name": "dds_evaluations", "value": 40},
    {"type": "counter", "name": "sgd_iterations", "value": 3},
    {"type": "gauge", "name": "power_w", "value": 81.0},
    decision(1, 80.0),
    decision(3, 82.0),
]

SHARD_A = [
    {"type": "instant", "name": "fault", "at_s": 0.2},
    {"type": "counter", "name": "dds_evaluations", "value": 2},
    {"type": "gauge", "name": "power_w", "value": 79.5},
    decision(0, 70.0),
    decision(2, 71.0),
]


class TestMergeOrder:
    def test_units_sorted_and_tagged(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        traces = [r for r in merged if r["type"] in ("span", "instant")]
        assert [r["unit"] for r in traces] == ["a", "b"]

    def test_decisions_sorted_by_quantum_then_unit(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        decisions = [r for r in merged if r["type"] == "decision"]
        assert [(r["quantum"], r["unit"]) for r in decisions] == [
            (0, "a"), (1, "b"), (2, "a"), (3, "b"),
        ]

    def test_counters_summed_per_name(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        counters = {
            r["name"]: r["value"] for r in merged if r["type"] == "counter"
        }
        assert counters == {"dds_evaluations": 42, "sgd_iterations": 3}

    def test_gauges_sorted_by_name_then_unit(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        gauges = [r for r in merged if r["type"] == "gauge"]
        assert [(r["name"], r["unit"]) for r in gauges] == [
            ("power_w", "a"), ("power_w", "b"),
        ]

    def test_completion_order_does_not_matter(self):
        first = merge_jsonl([("a", SHARD_A), ("b", SHARD_B)])
        second = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        assert first == second

    def test_duplicate_unit_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            merge_jsonl([("a", SHARD_A), ("a", SHARD_B)])


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "merged.jsonl"
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)], path)
        assert read_jsonl(path) == merged
        # Every line is standalone JSON (greppable / streamable).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_shards_readable_from_paths(self, tmp_path):
        paths = []
        for unit_id, shard in (("a", SHARD_A), ("b", SHARD_B)):
            p = tmp_path / f"{unit_id}.jsonl"
            with open(p, "w") as handle:
                for rec in shard:
                    handle.write(json.dumps(rec) + "\n")
            paths.append((unit_id, str(p)))
        from_paths = merge_jsonl(paths)
        in_memory = merge_jsonl([("a", SHARD_A), ("b", SHARD_B)])
        assert from_paths == in_memory

    def test_decision_records_rebuild_in_quantum_order(self):
        merged = merge_jsonl([("b", SHARD_B), ("a", SHARD_A)])
        records = decision_records_from_jsonl(merged)
        assert [r.quantum for r in records] == [0, 1, 2, 3]
        assert records[1].predicted_power_w == 80.0
        # JSON nulls come back as NaN, per the exporter contract.
        assert records[0].predicted_bips[1] != records[0].predicted_bips[1]

"""Tests for the Flicker baseline (3MM3 + RBF + GA)."""

import pytest

from repro.baselines.flicker import FlickerMethod, FlickerPolicy
from repro.core.ga import GAParams
from repro.sim.coreconfig import CoreConfig

FAST_GA = GAParams(population=12, generations=5)


class TestFlickerPolicy:
    def test_lc_pinned_wide(self, quiet_machine):
        policy = FlickerPolicy(ga=FAST_GA)
        budget = quiet_machine.reference_max_power() * 0.8
        assignment = policy.decide(quiet_machine, 0.8, budget)
        assert assignment.lc_config.core == CoreConfig.widest()
        assert assignment.lc_cores == 16

    def test_no_cache_partitioning(self, quiet_machine):
        policy = FlickerPolicy(ga=FAST_GA)
        assignment = policy.decide(
            quiet_machine, 0.8, quiet_machine.reference_max_power()
        )
        assert assignment.shared_llc

    def test_power_fallback_gates(self, quiet_machine):
        policy = FlickerPolicy(ga=FAST_GA)
        assignment = policy.decide(quiet_machine, 0.8, 40.0)
        gated = sum(1 for c in assignment.batch_configs if c is None)
        assert gated > 0

    def test_assignment_is_runnable(self, quiet_machine):
        policy = FlickerPolicy(ga=FAST_GA)
        budget = quiet_machine.reference_max_power() * 0.7
        assignment = policy.decide(quiet_machine, 0.8, budget)
        measurement = quiet_machine.run_slice(assignment, 0.8)
        assert measurement.total_batch_instructions > 0
        policy.observe(measurement)

    def test_profiling_fractions(self):
        a = FlickerPolicy(method=FlickerMethod.PROFILE_ALL)
        b = FlickerPolicy(method=FlickerMethod.PIN_LC)
        assert sum(a.profiling_fractions()) == pytest.approx(0.9)
        assert sum(b.profiling_fractions()) == pytest.approx(0.09)

    def test_overheads_reflect_method(self):
        a = FlickerPolicy(method=FlickerMethod.PROFILE_ALL)
        b = FlickerPolicy(method=FlickerMethod.PIN_LC)
        assert a.overhead_fraction > b.overhead_fraction > 0.05

    def test_names(self):
        assert "profile_all" in FlickerPolicy(
            method=FlickerMethod.PROFILE_ALL
        ).name
        assert "pin_lc" in FlickerPolicy(method=FlickerMethod.PIN_LC).name

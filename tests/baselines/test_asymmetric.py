"""Tests for the asymmetric-multicore baselines."""


from repro.baselines.asymmetric import (
    BIG,
    SMALL,
    AsymmetricOraclePolicy,
    StaticAsymmetricPolicy,
)


class TestOracle:
    def test_only_big_and_small_cores(self, quiet_machine):
        policy = AsymmetricOraclePolicy()
        budget = quiet_machine.reference_max_power() * 0.7
        assignment = policy.decide(quiet_machine, 0.8, budget)
        for config in assignment.batch_configs:
            if config is not None:
                assert config.core in (BIG, SMALL)

    def test_meets_power_budget(self, quiet_machine):
        policy = AsymmetricOraclePolicy()
        for cap in (0.8, 0.6, 0.5):
            budget = quiet_machine.reference_max_power() * cap
            assignment = policy.decide(quiet_machine, 0.8, budget)
            measurement = quiet_machine.run_slice(assignment, 0.8)
            assert measurement.total_power <= budget * 1.02

    def test_meets_qos(self, quiet_machine):
        policy = AsymmetricOraclePolicy()
        budget = quiet_machine.reference_max_power() * 0.7
        assignment = policy.decide(quiet_machine, 0.8, budget)
        measurement = quiet_machine.run_slice(assignment, 0.8)
        assert measurement.lc_p99 <= quiet_machine.lc_service.qos_latency_s

    def test_generous_budget_prefers_big_cores(self, quiet_machine):
        policy = AsymmetricOraclePolicy()
        assignment = policy.decide(quiet_machine, 0.8, 1e9)
        big_count = sum(
            1 for c in assignment.batch_configs
            if c is not None and c.core == BIG
        )
        assert big_count == len(assignment.batch_configs)

    def test_tight_budget_prefers_small_cores(self, quiet_machine):
        policy = AsymmetricOraclePolicy()
        budget = quiet_machine.reference_max_power() * 0.5
        assignment = policy.decide(quiet_machine, 0.8, budget)
        small_count = sum(
            1 for c in assignment.batch_configs
            if c is not None and c.core == SMALL
        )
        assert small_count > 8

    def test_lc_on_big_when_needed(self, quiet_machine):
        # xapian at 80% load cannot meet QoS on {2,2,2} cores.
        policy = AsymmetricOraclePolicy()
        budget = quiet_machine.reference_max_power() * 0.7
        assignment = policy.decide(quiet_machine, 0.8, budget)
        assert assignment.lc_config.core == BIG

    def test_zero_overhead(self):
        assert AsymmetricOraclePolicy().overhead_fraction == 0.0


class TestStatic5050:
    def test_batch_always_on_small(self, quiet_machine):
        policy = StaticAsymmetricPolicy()
        budget = quiet_machine.reference_max_power()
        assignment = policy.decide(quiet_machine, 0.8, budget)
        for config in assignment.batch_configs:
            if config is not None:
                assert config.core == SMALL

    def test_lc_owns_big_half(self, quiet_machine):
        policy = StaticAsymmetricPolicy()
        assignment = policy.decide(
            quiet_machine, 0.8, quiet_machine.reference_max_power()
        )
        assert assignment.lc_cores == 16
        assert assignment.lc_config.core == BIG

    def test_tight_budget_gates_small_cores(self, quiet_machine):
        policy = StaticAsymmetricPolicy()
        budget = quiet_machine.reference_max_power() * 0.45
        assignment = policy.decide(quiet_machine, 0.8, budget)
        gated = sum(1 for c in assignment.batch_configs if c is None)
        assert gated > 0

    def test_never_beats_oracle(self, quiet_machine):
        """The oracle dominates the static design by construction."""
        budget = quiet_machine.reference_max_power() * 0.8
        static = StaticAsymmetricPolicy().decide(quiet_machine, 0.8, budget)
        oracle = AsymmetricOraclePolicy().decide(quiet_machine, 0.8, budget)
        m_static = quiet_machine.run_slice(static, 0.8)
        m_oracle = quiet_machine.run_slice(oracle, 0.8)
        assert (
            m_oracle.total_batch_instructions
            >= m_static.total_batch_instructions * 0.99
        )

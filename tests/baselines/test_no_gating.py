"""Tests for the no-gating normalisation baseline."""

import pytest

from repro.baselines.no_gating import NoGatingPolicy
from repro.sim.coreconfig import CoreConfig


class TestNoGating:
    def test_everything_widest(self, quiet_machine):
        policy = NoGatingPolicy()
        assignment = policy.decide(quiet_machine, 0.8, 10.0)
        assert all(
            c.core == CoreConfig.widest() for c in assignment.batch_configs
        )
        assert assignment.lc_config.core == CoreConfig.widest()
        assert assignment.shared_llc

    def test_budget_ignored(self, quiet_machine):
        policy = NoGatingPolicy()
        tiny = policy.decide(quiet_machine, 0.8, 1.0)
        huge = policy.decide(quiet_machine, 0.8, 1e9)
        assert tiny == huge

    def test_zero_overhead(self):
        assert NoGatingPolicy().overhead_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NoGatingPolicy(lc_cores=-1)

    def test_observe_noop(self, quiet_machine):
        policy = NoGatingPolicy()
        assignment = policy.decide(quiet_machine, 0.8, 10.0)
        policy.observe(quiet_machine.run_slice(assignment, 0.8))

"""Tests for the core-level gating baseline and UCP way partitioning."""

import numpy as np
import pytest

from repro.baselines.core_gating import (
    CoreGatingPolicy,
    GatingOrder,
    ucp_way_allocation,
)
from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig
from repro.workloads.batch import batch_profile


class TestUCPWayAllocation:
    def profiles(self):
        names = ["mcf", "lbm", "namd", "povray", "gcc", "soplex"]
        return [batch_profile(n) for n in names]

    def test_budget_respected(self):
        for budget in (6.0, 12.0, 24.0):
            allocation = ucp_way_allocation(self.profiles(), budget)
            assert sum(allocation) <= budget + 1e-9

    def test_all_jobs_get_minimum(self):
        allocation = ucp_way_allocation(self.profiles(), 28.0)
        assert all(a >= CACHE_ALLOCS[0] for a in allocation)

    def test_allocations_are_legal_levels(self):
        allocation = ucp_way_allocation(self.profiles(), 28.0)
        assert all(a in CACHE_ALLOCS for a in allocation)

    def test_cache_hungry_jobs_win_ways(self):
        profiles = [batch_profile("mcf"), batch_profile("namd")]
        allocation = ucp_way_allocation(profiles, 4.5)
        # mcf (memory-bound) has far higher marginal utility than namd.
        assert allocation[0] > allocation[1]

    def test_generous_budget_saturates(self):
        allocation = ucp_way_allocation(self.profiles(), 1000.0)
        assert all(a == CACHE_ALLOCS[-1] for a in allocation)

    def test_impossible_budget_rejected(self):
        with pytest.raises(ValueError):
            ucp_way_allocation(self.profiles(), 1.0)
        with pytest.raises(ValueError):
            ucp_way_allocation(self.profiles(), 0.0)


class TestCoreGatingPolicy:
    def test_all_cores_widest_config(self, quiet_machine):
        policy = CoreGatingPolicy()
        budget = quiet_machine.reference_max_power()
        assignment = policy.decide(quiet_machine, 0.8, budget)
        for config in assignment.batch_configs:
            if config is not None:
                assert config.core == CoreConfig.widest()
        assert assignment.lc_config.core == CoreConfig.widest()

    def test_generous_budget_keeps_everything_on(self, quiet_machine):
        policy = CoreGatingPolicy()
        assignment = policy.decide(quiet_machine, 0.8, 1e9)
        assert all(c is not None for c in assignment.batch_configs)

    def test_tight_budget_gates_cores(self, quiet_machine):
        policy = CoreGatingPolicy()
        budget = quiet_machine.reference_max_power() * 0.5
        assignment = policy.decide(quiet_machine, 0.8, budget)
        gated = sum(1 for c in assignment.batch_configs if c is None)
        assert gated > 0

    def test_measured_power_meets_budget(self, quiet_machine):
        policy = CoreGatingPolicy()
        budget = quiet_machine.reference_max_power() * 0.6
        assignment = policy.decide(quiet_machine, 0.8, budget)
        measurement = quiet_machine.run_slice(assignment, 0.8)
        assert measurement.total_power <= budget * 1.05

    def test_descending_power_gates_hungriest_first(self, quiet_machine):
        policy = CoreGatingPolicy(order=GatingOrder.DESCENDING_POWER)
        budget = quiet_machine.reference_max_power() * 0.7
        assignment = policy.decide(quiet_machine, 0.8, budget)
        gated = [i for i, c in enumerate(assignment.batch_configs) if c is None]
        if gated:
            active = [i for i, c in enumerate(assignment.batch_configs)
                      if c is not None]
            wide = CoreConfig.widest()
            gated_powers = [
                quiet_machine.true_batch_power(i, wide) for i in gated
            ]
            active_powers = [
                quiet_machine.true_batch_power(i, wide) for i in active
            ]
            # Apart from the smallest-slack refinement on the last core,
            # the gated set should skew toward power-hungry jobs.
            assert np.mean(gated_powers) > np.mean(active_powers)

    def test_way_partition_variant(self, quiet_machine):
        policy = CoreGatingPolicy(way_partition=True)
        assignment = policy.decide(
            quiet_machine, 0.8, quiet_machine.reference_max_power()
        )
        assert not assignment.shared_llc
        assert assignment.cache_ways_used() <= quiet_machine.params.llc_ways

    def test_no_partition_uses_shared_llc(self, quiet_machine):
        policy = CoreGatingPolicy(way_partition=False)
        assignment = policy.decide(
            quiet_machine, 0.8, quiet_machine.reference_max_power()
        )
        assert assignment.shared_llc

    def test_lc_cores_never_gated(self, quiet_machine):
        policy = CoreGatingPolicy()
        assignment = policy.decide(quiet_machine, 0.8, 30.0)
        assert assignment.lc_cores == 16

    def test_all_gating_orders_run(self, quiet_machine):
        budget = quiet_machine.reference_max_power() * 0.6
        for order in GatingOrder:
            policy = CoreGatingPolicy(order=order)
            assignment = policy.decide(quiet_machine, 0.8, budget)
            assert len(assignment.batch_configs) == 16

    def test_names(self):
        assert CoreGatingPolicy().name == "core-gating"
        assert CoreGatingPolicy(way_partition=True).name == "core-gating+wp"

    def test_observe_is_noop(self, quiet_machine):
        policy = CoreGatingPolicy()
        assignment = policy.decide(
            quiet_machine, 0.8, quiet_machine.reference_max_power()
        )
        measurement = quiet_machine.run_slice(assignment, 0.8)
        policy.observe(measurement)  # must not raise

"""The performance-regression harness: reports, comparison, CLI gate."""

import json
import math
from dataclasses import replace

import pytest

from repro.bench import (
    BenchReport,
    case_names,
    compare_reports,
    render_comparison,
    render_report,
    run_bench,
)
from repro.cli import main


@pytest.fixture(scope="module")
def report():
    """One fast real bench run (the two solver microbenchmarks)."""
    return run_bench(repeats=2, only=["sgd.reconstruct", "dds.search"])


def _slowed(report, factor=2.0):
    """A synthetic copy whose wall clocks regressed by ``factor``."""
    cases = {
        name: replace(
            case, wall_ms=tuple(w * factor for w in case.wall_ms)
        )
        for name, case in report.cases.items()
    }
    return replace(report, cases=cases)


class TestRunBench:
    def test_selected_cases_run_with_counters(self, report):
        assert set(report.cases) == {"sgd.reconstruct", "dds.search"}
        for case in report.cases.values():
            assert len(case.wall_ms) == 2
            assert all(w > 0 for w in case.wall_ms)
        assert report.cases["sgd.reconstruct"].counters["sgd_iterations"] > 0
        assert report.cases["dds.search"].counters["dds_evaluations"] > 0

    def test_counters_are_deterministic_across_runs(self, report):
        again = run_bench(repeats=1, only=["sgd.reconstruct", "dds.search"])
        for name in report.cases:
            assert again.cases[name].counters == report.cases[name].counters

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError, match="unknown bench case"):
            run_bench(repeats=1, only=["no.such.case"])

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError):
            run_bench(repeats=0)

    def test_case_names_cover_hot_paths(self):
        names = case_names()
        assert "sgd.reconstruct" in names
        assert "dds.search" in names
        assert "quantum.decision" in names
        assert "telemetry.overhead" in names
        assert "telemetry.overhead_disabled" in names


class TestReportIO:
    def test_json_round_trip(self, report, tmp_path):
        path = tmp_path / "BENCH.json"
        report.write(path)
        loaded = BenchReport.read(path)
        assert loaded.seed == report.seed
        assert loaded.repeats == report.repeats
        assert set(loaded.cases) == set(report.cases)
        for name, case in report.cases.items():
            assert loaded.cases[name].counters == case.counters
            assert loaded.cases[name].median_wall_ms == pytest.approx(
                case.median_wall_ms, rel=1e-3
            )

    def test_newer_schema_rejected(self, report, tmp_path):
        path = tmp_path / "BENCH.json"
        report.write(path)
        data = json.loads(path.read_text())
        data["schema"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema"):
            BenchReport.read(path)

    def test_render_mentions_every_case(self, report):
        text = render_report(report)
        for name in report.cases:
            assert name in text


class TestCompare:
    def test_identical_reports_pass(self, report):
        comparison = compare_reports(report, report)
        assert comparison.ok
        assert not comparison.regressions

    def test_two_x_slowdown_regresses(self, report):
        comparison = compare_reports(
            _slowed(report), report, threshold_pct=10.0
        )
        assert not comparison.ok
        walls = [d for d in comparison.regressions if d.quantity == "wall_ms"]
        assert len(walls) == len(report.cases)
        assert all(d.change_pct == pytest.approx(100.0) for d in walls)

    def test_counters_only_ignores_wall_slowdown(self, report):
        comparison = compare_reports(
            _slowed(report), report, counters_only=True
        )
        assert comparison.ok

    def test_counter_growth_regresses_in_counters_only_mode(self, report):
        base_case = report.cases["dds.search"]
        grown = replace(report, cases={
            "dds.search": replace(base_case, counters={
                k: int(v * 2) for k, v in base_case.counters.items()
            }),
        })
        comparison = compare_reports(grown, BenchReport(
            seed=report.seed, repeats=report.repeats,
            cases={"dds.search": base_case},
        ), counters_only=True)
        assert not comparison.ok

    def test_missing_case_is_a_regression(self, report):
        current = replace(report, cases={
            "dds.search": report.cases["dds.search"],
        })
        comparison = compare_reports(current, report)
        assert not comparison.ok
        assert comparison.missing == ("sgd.reconstruct",)

    def test_missing_counter_is_a_regression(self, report):
        base_case = report.cases["dds.search"]
        current = replace(report, cases={
            **report.cases,
            "dds.search": replace(base_case, counters={}),
        })
        comparison = compare_reports(current, report, counters_only=True)
        bad = [d for d in comparison.regressions
               if d.case == "dds.search"]
        assert bad and math.isnan(bad[0].current)

    def test_negative_threshold_rejected(self, report):
        with pytest.raises(ValueError):
            compare_reports(report, report, threshold_pct=-1.0)

    def test_render_comparison_verdicts(self, report):
        assert "verdict: ok" in render_comparison(
            compare_reports(report, report)
        )
        text = render_comparison(compare_reports(_slowed(report), report))
        assert "REGRESSED" in text
        assert "verdict: ok" not in text


class TestBenchCli:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == list(case_names())

    def test_identical_compare_exits_zero(self, report, tmp_path, capsys):
        path = tmp_path / "BENCH.json"
        report.write(path)
        code = main([
            "bench", "--input", str(path), "--compare", str(path),
        ])
        assert code == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_synthetic_slowdown_exits_nonzero(self, report, tmp_path,
                                              capsys):
        baseline = tmp_path / "BASELINE.json"
        current = tmp_path / "BENCH.json"
        report.write(baseline)
        _slowed(report).write(current)
        code = main([
            "bench", "--input", str(current),
            "--compare", str(baseline), "--threshold", "10",
        ])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_counters_only_flag_passes_same_slowdown(self, report,
                                                     tmp_path):
        baseline = tmp_path / "BASELINE.json"
        current = tmp_path / "BENCH.json"
        report.write(baseline)
        _slowed(report).write(current)
        code = main([
            "bench", "--input", str(current), "--compare", str(baseline),
            "--counters-only",
        ])
        assert code == 0

    def test_unreadable_input_exits_two(self, tmp_path):
        assert main([
            "bench", "--input", str(tmp_path / "missing.json"),
        ]) == 2

    def test_unknown_case_exits_two(self, capsys):
        assert main(["bench", "--only", "no.such.case"]) == 2
        assert "unknown bench case" in capsys.readouterr().err

    def test_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        code = main([
            "bench", "--repeats", "1", "--only", "sgd.reconstruct",
            "--out", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert "sgd.reconstruct" in data["cases"]
        assert "sgd.reconstruct" in capsys.readouterr().out


class TestCommittedBaseline:
    def test_live_counters_match_committed_baseline(self, report):
        """The CI gate's invariant, checked directly: current operation
        counts equal benchmarks/BENCH_BASELINE.json within threshold."""
        from pathlib import Path

        path = (Path(__file__).resolve().parents[2]
                / "benchmarks" / "BENCH_BASELINE.json")
        baseline = BenchReport.read(path)
        subset = BenchReport(
            seed=baseline.seed, repeats=baseline.repeats,
            cases={
                name: case for name, case in baseline.cases.items()
                if name in report.cases
            },
        )
        comparison = compare_reports(
            report, subset, threshold_pct=10.0, counters_only=True
        )
        assert comparison.ok, render_comparison(comparison)

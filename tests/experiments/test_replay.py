"""Tests for single-quantum provenance replay from a snapshot.

The determinism cross-check of the flight recorder: a quantum
re-executed from a crash-safe pause snapshot must reproduce the
recorded provenance byte-for-byte, and any divergence must surface as
a readable field diff rather than two opaque JSON blobs.
"""

import json

import pytest

from repro.core.controller import ControllerConfig
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import build_machine_for_mix, run_policy
from repro.experiments.replay import (
    ReplayMismatch,
    diff_provenance,
    replay_quantum,
)
from repro.telemetry import Telemetry
from repro.telemetry.provenance import provenance_key
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

SLICES = 5
BUDGET = 2000
SEED = 7


def fresh_setup():
    machine = build_machine_for_mix(paper_mixes()[0], seed=SEED)
    policy = CuttleSysPolicy.for_machine(
        machine, seed=SEED,
        config=ControllerConfig(seed=SEED, decision_budget=BUDGET),
    )
    return machine, policy


@pytest.fixture(scope="module")
def recorded():
    """One full run's provenance records plus a quantum-2 pause state."""
    machine, policy = fresh_setup()
    telemetry = Telemetry()
    run_policy(
        machine, policy, LoadTrace.constant(0.8),
        power_cap_fraction=0.7, n_slices=SLICES, telemetry=telemetry,
    )
    machine2, policy2 = fresh_setup()
    paused = run_policy(
        machine2, policy2, LoadTrace.constant(0.8),
        power_cap_fraction=0.7, n_slices=SLICES, stop_after=2,
    )
    assert paused.resume_state is not None
    # The state must survive the JSON file round trip `repro replay`
    # performs.
    state = json.loads(json.dumps(paused.resume_state))
    return telemetry.provenance.records, state


class TestReplayQuantum:
    def test_reproduces_recorded_provenance_byte_for_byte(self, recorded):
        records, state = recorded
        for quantum in (2, 4):
            machine, policy = fresh_setup()
            reproduced = replay_quantum(
                machine, policy, LoadTrace.constant(0.8),
                dict(state), quantum,
                power_cap_fraction=0.7,
            )
            recorded_record = next(
                r for r in records if r["quantum"] == quantum
            )
            assert diff_provenance(recorded_record, reproduced) == []
            assert provenance_key(reproduced) == provenance_key(
                recorded_record
            )

    def test_quantum_before_snapshot_rejected(self, recorded):
        _, state = recorded
        machine, policy = fresh_setup()
        with pytest.raises(ReplayMismatch, match="precedes"):
            replay_quantum(
                machine, policy, LoadTrace.constant(0.8), dict(state), 1,
            )


class TestDiffProvenance:
    def test_identical_records_diff_empty(self):
        record = {"quantum": 3, "mode": "normal", "budget": {"spent": 9}}
        assert diff_provenance(record, dict(record)) == []

    def test_unit_tag_is_ignored(self):
        record = {"quantum": 3, "mode": "normal"}
        assert diff_provenance(record, {**record, "unit": "u1"}) == []

    def test_divergent_field_is_named(self):
        recorded = {"quantum": 3, "budget": {"spent": 9}, "mode": "normal"}
        replayed = {"quantum": 3, "budget": {"spent": 8}, "mode": "normal"}
        lines = diff_provenance(recorded, replayed)
        assert len(lines) == 1
        assert "budget" in lines[0]
        assert "recorded=" in lines[0] and "replayed=" in lines[0]

"""Smoke and shape tests for the per-figure experiment modules.

Full-scale runs live in ``benchmarks/``; these tests exercise each
experiment at reduced size and assert the paper-shaped properties that
must hold at any scale.
"""

import numpy as np
import pytest

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams
from repro.core.ga import GAParams
from repro.experiments.fig1_characterization import (
    run_fig1,
    render_fig1,
)
from repro.experiments.fig5_accuracy import run_fig5a, render_fig5, run_fig5b
from repro.experiments.fig5c_powercaps import run_fig5c, render_fig5c
from repro.experiments.fig7_timeline import run_fig7, render_fig7
from repro.experiments.fig8_dynamic import (
    render_fig8,
    run_fig8a,
    run_fig8b,
    run_fig8c,
)
from repro.experiments.fig9_sgd_vs_rbf import run_fig9, render_fig9
from repro.experiments.fig10_dds_vs_ga import (
    render_fig10,
    run_fig10a,
    run_fig10b,
)
from repro.experiments.flicker_comparison import (
    render_flicker,
    run_flicker_qos,
    run_flicker_throughput,
)
from repro.experiments.table2_overheads import (
    render_table2,
    run_table2,
    run_training_set_sensitivity,
)
from repro.sim.coreconfig import CoreConfig

pytestmark = pytest.mark.filterwarnings("ignore")


class TestFig1:
    def test_paper_best_configs(self):
        results = run_fig1()
        expected = {
            "xapian": CoreConfig(2, 2, 6),
            "masstree": CoreConfig(4, 2, 4),
            "imgdnn": CoreConfig(4, 2, 4),
            "moses": CoreConfig(6, 2, 4),
            "silo": CoreConfig(2, 2, 4),
        }
        for name, config in expected.items():
            best = results[name][0.8].best_low_power_config()
            assert best == config, name

    def test_low_load_latency_lower(self):
        results = run_fig1(services=["xapian"])
        hi = results["xapian"][0.8].tail_latency
        lo = results["xapian"][0.2].tail_latency
        assert np.all(lo <= hi + 1e-12)

    def test_render(self):
        text = render_fig1(run_fig1(services=["moses"]))
        assert "moses" in text
        assert "{6,2,4}" in text


class TestFig5Accuracy:
    def test_isolation_bands(self):
        result = run_fig5a()
        assert abs(result.throughput["p25"]) < 10
        assert abs(result.throughput["p75"]) < 10
        assert abs(result.throughput["p5"]) < 25
        assert abs(result.throughput["p95"]) < 25
        assert abs(result.power["p95"]) < 5

    def test_colocation_wider_than_isolation(self):
        isolation = run_fig5a()
        colocation = run_fig5b()
        iso_spread = isolation.throughput["p95"] - isolation.throughput["p5"]
        colo_spread = colocation.throughput["p95"] - colocation.throughput["p5"]
        assert colo_spread >= iso_spread * 0.8  # noise cannot shrink much

    def test_render(self):
        text = render_fig5(run_fig5a(), run_fig5b())
        assert "isolation" in text
        assert "colocation" in text


FAST_CONTROLLER = ControllerConfig(
    dds=DDSParams(initial_random_points=20, max_iter=8,
                  points_per_iteration=4, n_threads=4),
    seed=7,
)


class TestFig5c:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5c(mix_indices=(0,), caps=(0.9, 0.5), n_slices=4)

    def test_all_policies_reported(self, result):
        assert "cuttlesys" in result.policies
        assert "asymm-oracle" in result.policies
        for cap in result.caps:
            assert set(result.relative[cap]) == set(result.policies)

    def test_no_gating_is_unity(self, result):
        for cap in result.caps:
            assert result.relative[cap]["no-gating"] == pytest.approx(1.0)

    def test_tight_cap_hurts_everyone(self, result):
        for policy in ("core-gating", "cuttlesys"):
            assert result.relative[0.5][policy] < result.relative[0.9][policy]

    def test_cuttlesys_beats_gating_at_tight_cap(self, result):
        assert result.speedup(0.5, "cuttlesys", "core-gating") > 1.0

    def test_render(self, result):
        text = render_fig5c(result)
        assert "cap" in text
        assert "CuttleSys vs core-gating" in text


class TestFig7:
    def test_timeline_shapes(self):
        results = run_fig7(n_slices=3)
        assert set(results) == {"core-gating", "asymm-oracle", "cuttlesys"}
        for res in results.values():
            assert len(res.instructions_b) == 3

    def test_gating_reduces_active_cores(self):
        results = run_fig7(n_slices=3, cap=0.5)
        assert min(results["core-gating"].active_batch_cores) < 16
        # The asymmetric oracle keeps everything on unless impossible.
        assert min(results["asymm-oracle"].active_batch_cores) >= \
            min(results["core-gating"].active_batch_cores)

    def test_render(self):
        text = render_fig7(run_fig7(n_slices=2))
        assert "slice" in text
        assert "total" in text


class TestFig8Dynamic:
    def test_fig8a_load_follows_diurnal(self):
        trace = run_fig8a(n_slices=10)
        assert trace.loads[0] < 0.4
        assert max(trace.loads) > 0.7
        assert trace.n_slices == 10

    def test_fig8a_meets_qos_mostly(self):
        trace = run_fig8a(n_slices=12)
        violations = sum(1 for r in trace.p99_over_qos if r > 1.0)
        assert violations <= 2  # transient violations only (paper Fig. 8a)

    def test_fig8b_budget_steps(self):
        trace = run_fig8b(n_slices=9)
        assert trace.budget_w[0] > trace.budget_w[4]
        assert trace.budget_w[-1] > trace.budget_w[4]

    def test_fig8b_throughput_follows_budget(self):
        trace = run_fig8b(n_slices=12)
        mid = trace.batch_gmean_bips[5:8]
        early = trace.batch_gmean_bips[1:4]
        assert np.mean(mid) < np.mean(early)

    def test_fig8c_core_relocation(self):
        trace = run_fig8c(n_slices=16)
        # At low load the controller yields LC cores to the batch side;
        # the surge forces it to reclaim them (one per quantum), and
        # the post-surge drop lets it yield again.
        surge_start = next(
            i for i, load in enumerate(trace.loads) if load > 0.9
        )
        pre_surge = trace.lc_cores[surge_start]
        surge_peak = max(trace.lc_cores[surge_start:])
        assert surge_peak > pre_surge
        assert trace.lc_cores[-1] < surge_peak

    def test_render(self):
        assert "fig8a" in render_fig8(run_fig8a(n_slices=4))


class TestFig9:
    def test_rbf_worse_than_sgd(self):
        result = run_fig9()
        assert result.rbf_throughput["max_abs"] > result.sgd_throughput["max_abs"]
        rbf_spread = result.rbf_throughput["p95"] - result.rbf_throughput["p5"]
        sgd_spread = result.sgd_throughput["p95"] - result.sgd_throughput["p5"]
        assert rbf_spread > sgd_spread

    def test_render(self):
        text = render_fig9(run_fig9())
        assert "RBF" in text
        assert "SGD" in text


class TestFig10:
    def test_fig10a_dds_finds_better_point(self):
        result = run_fig10a(
            dds_params=DDSParams(max_iter=20),
            ga_params=GAParams(generations=20),
        )
        assert result.dds.best_objective >= result.ga.best_objective * 0.98
        assert len(result.dds.points) == result.dds.evaluations
        assert len(result.ga.points) == result.ga.evaluations

    def test_fig10b_runs(self):
        result = run_fig10b(mix_indices=(0,), caps=(0.7,), n_slices=3)
        assert 0.7 in result.dds_throughput
        assert result.advantage(0.7) > 0

    def test_render(self):
        a = run_fig10a(dds_params=DDSParams(max_iter=5),
                       ga_params=GAParams(generations=5))
        b = run_fig10b(mix_indices=(0,), caps=(0.7,), n_slices=2)
        text = render_fig10(a, b)
        assert "Fig. 10a" in text
        assert "Fig. 10b" in text


class TestTable2:
    def test_overheads_positive(self):
        result = run_table2(repeats=1)
        assert result.profiling_ms == 2.0
        assert result.sgd_ms > 0
        assert result.dds_ms > 0
        assert result.total_ms > 2.0

    def test_sensitivity_sizes(self):
        result = run_training_set_sensitivity(sizes=(8, 16))
        assert set(result.median_abs_error_pct) == {8, 16}
        assert all(v > 0 for v in result.sgd_ms.values())

    def test_more_training_apps_not_worse(self):
        result = run_training_set_sensitivity(sizes=(8, 24))
        assert result.median_abs_error_pct[24] <= \
            result.median_abs_error_pct[8] * 1.2

    def test_render(self):
        text = render_table2(run_table2(repeats=1),
                             run_training_set_sensitivity(sizes=(8, 16)))
        assert "Table II" in text
        assert "training apps" in text


class TestFlicker:
    def test_method_a_violates_by_order_of_magnitude(self):
        result = run_flicker_qos()
        assert result.method_a_p99_over_qos > 3.0
        assert result.method_a_p99_over_qos > result.method_b_p99_over_qos

    def test_method_b_modest_violation(self):
        result = run_flicker_qos()
        assert result.method_b_p99_over_qos > result.cuttlesys_p99_over_qos

    def test_cuttlesys_within_qos(self):
        result = run_flicker_qos()
        assert result.cuttlesys_p99_over_qos <= 1.0

    def test_throughput_comparison_runs(self):
        result = run_flicker_throughput(n_slices=3)
        assert result.cuttlesys_instructions > 0
        assert result.flicker_instructions > 0

    def test_render(self):
        text = render_flicker(run_flicker_qos(),
                              run_flicker_throughput(n_slices=2))
        assert "Flicker" in text
        assert "CuttleSys" in text

"""Tests for job churn: machine swap, controller reset, harness wiring."""

import pytest

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.churn_study import churn_cost, run_churn_study
from repro.experiments.harness import build_machine_for_mix, run_policy
from repro.workloads.batch import batch_profile, synthetic_population
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

FAST = ControllerConfig(
    dds=DDSParams(initial_random_points=20, max_iter=8,
                  points_per_iteration=4, n_threads=4),
    seed=5,
)


class TestMachineReplace:
    def test_swap_changes_truth(self):
        machine = build_machine_for_mix(paper_mixes()[0], seed=1)
        from repro.sim.coreconfig import CoreConfig, JointConfig

        wide = JointConfig(CoreConfig.widest(), 2.0)
        before = machine.true_batch_bips(3, wide)
        machine.replace_batch_job(3, batch_profile("mcf"))
        after = machine.true_batch_bips(3, wide)
        assert before != after

    def test_bad_index_rejected(self):
        machine = build_machine_for_mix(paper_mixes()[0], seed=1)
        with pytest.raises(ValueError):
            machine.replace_batch_job(99, batch_profile("mcf"))


class TestControllerReset:
    def test_reset_clears_observations(self):
        machine = build_machine_for_mix(paper_mixes()[0], seed=1)
        policy = CuttleSysPolicy.for_machine(machine, seed=5, config=FAST)
        budget = machine.reference_max_power()
        assignment = policy.decide(machine, 0.8, budget)
        policy.observe(machine.run_slice(assignment, 0.8))
        controller = policy.controller
        row = controller._batch_row(2)
        assert controller._bips_matrix.observed_count(row) > 0
        policy.on_job_replaced(2)
        assert controller._bips_matrix.observed_count(row) == 0
        assert controller._power_matrix.observed_count(row) == 0

    def test_reset_bad_index(self):
        machine = build_machine_for_mix(paper_mixes()[0], seed=1)
        policy = CuttleSysPolicy.for_machine(machine, seed=5, config=FAST)
        with pytest.raises(ValueError):
            policy.controller.reset_job(99)

    def test_decide_works_after_reset(self):
        machine = build_machine_for_mix(paper_mixes()[0], seed=1)
        policy = CuttleSysPolicy.for_machine(machine, seed=5, config=FAST)
        budget = machine.reference_max_power()
        policy.decide(machine, 0.8, budget)
        policy.on_job_replaced(0)
        assignment = policy.decide(machine, 0.8, budget)
        assert len(assignment.batch_configs) == 16


class TestHarnessChurn:
    def test_churn_events_recorded(self):
        machine = build_machine_for_mix(paper_mixes()[0], seed=1)
        policy = CuttleSysPolicy.for_machine(machine, seed=5, config=FAST)
        pool = synthetic_population(4, seed=9)
        run = run_policy(
            machine, policy, LoadTrace.constant(0.6),
            power_cap_fraction=0.8, n_slices=7,
            churn_period=2, churn_pool=pool,
        )
        assert len(run.churn_events) == 3  # slices 2, 4, 6
        for slice_idx, slot, name in run.churn_events:
            assert slice_idx % 2 == 0
            assert 0 <= slot < 16
            assert name.startswith("newcomer") or name.startswith("synth")

    def test_churn_validation(self):
        machine = build_machine_for_mix(paper_mixes()[0], seed=1)
        policy = CuttleSysPolicy.for_machine(machine, seed=5, config=FAST)
        with pytest.raises(ValueError):
            run_policy(machine, policy, LoadTrace.constant(0.5),
                       n_slices=2, churn_period=0, churn_pool=[])
        with pytest.raises(ValueError):
            run_policy(machine, policy, LoadTrace.constant(0.5),
                       n_slices=2, churn_period=2, churn_pool=[])


class TestChurnStudy:
    def test_small_study(self):
        outcomes = run_churn_study(n_slices=6, churn_period=2)
        assert len(outcomes) == 4
        assert churn_cost(outcomes, "cuttlesys") > 0.6

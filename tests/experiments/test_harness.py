"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.baselines import CoreGatingPolicy, NoGatingPolicy
from repro.experiments.harness import (
    POWER_TOLERANCE,
    PolicyRun,
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


@pytest.fixture()
def mix():
    return paper_mixes()[0]


class TestBuildMachine:
    def test_reconfigurable_default(self, mix):
        machine = build_machine_for_mix(mix, seed=1)
        assert machine.perf.reconfigurable
        assert machine.power.reconfigurable

    def test_fixed_variant(self, mix):
        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        assert not machine.perf.reconfigurable
        assert not machine.power.reconfigurable

    def test_same_lc_service_both_variants(self, mix):
        a = build_machine_for_mix(mix, seed=1)
        b = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        assert a.lc_service is b.lc_service  # identical QoS targets

    def test_sixteen_batch_jobs(self, mix):
        machine = build_machine_for_mix(mix, seed=1)
        assert len(machine.batch_profiles) == 16

    def test_reference_power(self, mix):
        reference = reference_power_for_mix(mix, seed=1)
        machine = build_machine_for_mix(mix, seed=1)
        assert reference == pytest.approx(machine.reference_max_power())


class TestRunPolicy:
    def test_bookkeeping(self, mix):
        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        run = run_policy(
            machine, NoGatingPolicy(), LoadTrace.constant(0.5),
            power_cap_fraction=0.8, n_slices=4,
        )
        assert run.n_slices == 4
        assert len(run.loads) == 4
        assert len(run.budgets) == 4
        assert run.total_batch_instructions() > 0

    def test_power_cap_trace_overrides(self, mix):
        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        run = run_policy(
            machine, NoGatingPolicy(), LoadTrace.constant(0.5),
            power_cap_fraction=0.9, n_slices=3,
            power_cap_trace=[0.9, 0.5, 0.9],
        )
        assert run.budgets[1] < run.budgets[0]

    def test_loads_follow_trace(self, mix):
        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        trace = LoadTrace.steps([(0.0, 0.2), (0.2, 0.9)])
        run = run_policy(
            machine, NoGatingPolicy(), trace,
            power_cap_fraction=0.9, n_slices=4,
        )
        assert run.loads[0] == 0.2
        assert run.loads[-1] == 0.9

    def test_overhead_discounts_instructions(self, mix):
        machine_a = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        machine_b = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        free = NoGatingPolicy()
        taxed = NoGatingPolicy()
        taxed.overhead_fraction = 0.5
        run_free = run_policy(machine_a, free, LoadTrace.constant(0.5),
                              n_slices=2)
        run_taxed = run_policy(machine_b, taxed, LoadTrace.constant(0.5),
                               n_slices=2)
        assert run_taxed.total_batch_instructions() == pytest.approx(
            0.5 * run_free.total_batch_instructions()
        )

    def test_qos_and_power_violation_counters(self, mix):
        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        run = run_policy(
            machine, NoGatingPolicy(), LoadTrace.constant(0.5),
            power_cap_fraction=0.5, n_slices=3,
        )
        # No-gating ignores the budget: every slice violates power.
        assert run.power_violations() == 3
        assert run.qos_violations() == 0

    def test_gmean_series_shape(self, mix):
        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        run = run_policy(machine, CoreGatingPolicy(), LoadTrace.constant(0.5),
                         power_cap_fraction=0.7, n_slices=3)
        series = run.gmean_throughput_series()
        assert series.shape == (3,)
        assert np.all(series > 0)

    def test_summary_text(self, mix):
        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        run = run_policy(machine, NoGatingPolicy(), LoadTrace.constant(0.5),
                         n_slices=2)
        text = run.summary()
        assert "no-gating" in text
        assert "QoS violations" in text

    def test_validation(self, mix):
        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        with pytest.raises(ValueError):
            run_policy(machine, NoGatingPolicy(), LoadTrace.constant(0.5),
                       n_slices=0)
        with pytest.raises(ValueError):
            run_policy(machine, NoGatingPolicy(), LoadTrace.constant(0.5),
                       power_cap_fraction=1.5)


class TestPowerTolerance:
    def test_constant_value(self):
        # The 2 % band matches the machine's slice measurement noise;
        # changing it shifts both PolicyRun and telemetry counts.
        assert POWER_TOLERANCE == 0.02

    def test_default_matches_constant(self):
        run = PolicyRun(policy_name="x", power_budget_w=100.0)
        run.budgets = [100.0]
        m = type("M", (), {"total_power": 101.9})()
        run.measurements = [m]
        assert run.power_violations() == 0  # inside the band
        assert run.power_violations(tolerance=0.0) == 1
        m.total_power = 102.1
        assert run.power_violations() == 1  # outside the band

    def test_telemetry_counter_agrees_with_policyrun(self, mix):
        from repro.telemetry import Telemetry

        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        telemetry = Telemetry()
        run = run_policy(
            machine, NoGatingPolicy(), LoadTrace.constant(0.5),
            power_cap_fraction=0.5, n_slices=3, telemetry=telemetry,
        )
        counters = telemetry.metrics.as_dict()["counters"]
        assert counters.get("harness.power_violations", 0) == run.power_violations()


class TestToCsv:
    def test_zero_slice_run_writes_valid_header(self, tmp_path):
        import csv

        run = PolicyRun(policy_name="empty", power_budget_w=100.0)
        path = tmp_path / "empty.csv"
        run.to_csv(path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 1
        assert rows[0][:3] == ["slice", "load", "budget_w"]
        assert all(rows[0])  # no blank column names

    def test_header_matches_rows(self, mix, tmp_path):
        import csv

        machine = build_machine_for_mix(mix, seed=1, reconfigurable=False)
        run = run_policy(machine, NoGatingPolicy(), LoadTrace.constant(0.5),
                         n_slices=2)
        path = tmp_path / "run.csv"
        run.to_csv(path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 3
        assert all(len(r) == len(rows[0]) for r in rows)

"""Tests for the extension studies (DVFS comparison and ablations)."""

import pytest

from repro.experiments.ablations import (
    ablate_dds_budget,
    ablate_guards,
    ablate_inference,
    ablate_penalty_weight,
    ablate_training_size,
    ablate_variants,
    render_ablation,
)
from repro.experiments.dvfs_comparison import (
    SCHEMES,
    render_dvfs_comparison,
    run_dvfs_comparison,
)


class TestDVFSComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dvfs_comparison(caps=(0.9, 0.5))

    def test_all_schemes_present(self, result):
        for cap in result.caps:
            assert set(result.total_bips[cap]) == set(SCHEMES)

    def test_tight_caps_hurt(self, result):
        for scheme in SCHEMES:
            assert result.total_bips[0.5][scheme] <= \
                result.total_bips[0.9][scheme] + 1e-9

    def test_razor_margins_erode_dvfs(self, result):
        assert result.dvfs_headroom_loss(0.5) < 1.0

    def test_reconfig_beats_core_gating_at_tight_cap(self, result):
        assert result.advantage(0.5, over="core-gating") > 1.1

    def test_leakage_scale_validation(self):
        with pytest.raises(ValueError):
            run_dvfs_comparison(leakage_scale=0.0)

    def test_render(self, result):
        text = render_dvfs_comparison(result)
        assert "dvfs-razor" in text
        assert "reconfig" in text


class TestAblations:
    def test_inference_gap(self):
        sgd, oracle = ablate_inference(n_slices=4)
        assert oracle.batch_instructions_b >= sgd.batch_instructions_b * 0.95
        assert sgd.qos_violations == 0

    def test_guards(self):
        with_guards, without = ablate_guards(n_slices=4)
        assert with_guards.qos_violations == 0
        # Disabling guards may or may not violate on a short run, but
        # must not be safer than the default.
        assert without.qos_violations + without.power_violations >= \
            with_guards.qos_violations + with_guards.power_violations

    def test_variants(self):
        with_variants, without = ablate_variants(n_slices=4)
        assert with_variants.qos_violations == 0

    def test_training_size(self):
        rows = ablate_training_size(sizes=(8, 16), n_slices=3)
        assert len(rows) == 2
        assert all(r.batch_instructions_b > 0 for r in rows)

    def test_penalty_weight(self):
        rows = ablate_penalty_weight(weights=(0.25, 16.0))
        assert len(rows) == 2
        # A heavy penalty must not bust the budget.
        assert rows[-1].power_violations == 0

    def test_dds_budget_monotone_ish(self):
        result = ablate_dds_budget(iterations=(5, 80))
        assert result[80] >= result[5]

    def test_render(self):
        rows = ablate_training_size(sizes=(8,), n_slices=2)
        text = render_ablation("probe", rows)
        assert "probe" in text
        assert "8 training apps" in text


class TestAreaEquivalence:
    def test_shape(self):
        from repro.experiments.area_equivalence import (
            render_area_equivalence,
            run_area_equivalence,
        )

        results = run_area_equivalence(caps=(0.9, 0.5), n_slices=4)
        assert set(results) == {0.9, 0.5}
        reconf, fixed = results[0.5]
        assert reconf.design == "reconfig-32"
        assert fixed.design == "fixed-38"
        # Dark silicon: the fixed design's advantage shrinks with the cap.
        def ratio(cap):
            a, b = results[cap]
            return a.batch_instructions_b / b.batch_instructions_b

        assert ratio(0.5) > ratio(0.9)
        text = render_area_equivalence(results)
        assert "fixed-38" in text


class TestTransitionCostAblation:
    def test_higher_cost_never_helps(self):
        from repro.experiments.ablations import ablate_transition_cost

        rows = ablate_transition_cost(
            transitions_s=(50e-6, 10e-3), n_slices=4
        )
        assert rows[0].batch_instructions_b >= \
            rows[1].batch_instructions_b * 0.98

"""Acceptance tests for the chaos/soak harness (docs/robustness.md).

The headline claims: every cell of the default-style grid holds all
robustness invariants (every quantum served, no NaN, monotonic meters,
safe mode exits, kill/resume byte-identity), the grid shards as a
fleet run with ``--jobs N`` byte-identical to serial, and a checkpoint
file covers the whole multi-seed soak.
"""

import pytest

from repro.experiments.chaos_study import (
    ChaosOutcome,
    chaos_units,
    render_chaos_study,
    run_chaos_study,
)

#: Small but representative: two regimes x two budgets, one mix/seed.
GRID = dict(
    seeds=(7,),
    mix_indices=(0,),
    scenarios=(None, "sensor-noise"),
    budgets=(None, 2000),
    n_slices=6,
    cooldown=6,
)


@pytest.fixture(scope="module")
def outcomes():
    return run_chaos_study(**GRID)


class TestInvariants:
    def test_grid_shape(self, outcomes):
        assert len(outcomes) == 4
        assert {o.scenario for o in outcomes} == {
            "fault-free", "sensor-noise",
        }
        assert {o.budget for o in outcomes} == {None, 2000}

    def test_all_cells_healthy(self, outcomes):
        for o in outcomes:
            assert o.ok, (
                f"[{o.scenario}/b{o.budget}] violations: {o.violations}"
            )

    def test_resume_identical_everywhere(self, outcomes):
        assert all(o.resume_identical for o in outcomes)

    def test_deadline_pressure_takes_rungs(self, outcomes):
        pressured = [o for o in outcomes if o.budget == 2000]
        assert all(o.degradation_rungs > 0 for o in pressured)

    def test_ample_budget_takes_zero_rungs(self, outcomes):
        unlimited = [o for o in outcomes if o.budget is None]
        assert all(o.degradation_rungs == 0 for o in unlimited)

    def test_faulted_cells_injected(self, outcomes):
        faulted = [o for o in outcomes if o.scenario == "sensor-noise"]
        assert all(o.injected > 0 for o in faulted)

    def test_outcome_fields(self, outcomes):
        for o in outcomes:
            assert isinstance(o, ChaosOutcome)
            assert 0 < o.kill_at < o.n_slices


class TestFleetContract:
    def test_jobs_matches_serial(self, outcomes):
        parallel = run_chaos_study(jobs=2, **GRID)
        assert parallel == outcomes

    def test_checkpoint_covers_multi_seed_grid(self, tmp_path, outcomes):
        path = str(tmp_path / "chaos.ckpt")
        first = run_chaos_study(checkpoint=path, **GRID)
        assert first == outcomes
        # Resuming executes nothing new and reproduces the outcomes.
        again = run_chaos_study(checkpoint=path, resume=True, **GRID)
        assert again == outcomes

    def test_unit_ids_qualified_by_seed_mix_scenario_budget(self):
        units = chaos_units(
            seeds=(7, 11), mix_indices=(0, 12),
            scenarios=(None, "sensor-noise"), budgets=(None, 2000),
            n_slices=6, cooldown=6, load=0.7, cap=0.7,
        )
        ids = [u.unit_id for u in units]
        assert len(ids) == len(set(ids)) == 16
        assert "chaos/s7/m0/fault-free/binf" in ids
        assert "chaos/s11/m12/sensor-noise/b2000" in ids

    def test_kill_point_varies_with_seed(self):
        units = chaos_units(
            seeds=(7, 11), mix_indices=(0,), scenarios=(None,),
            budgets=(None,), n_slices=6, cooldown=6, load=0.7, cap=0.7,
        )
        kills = {u.kwargs["kill_at"] for u in units}
        assert len(kills) == 2


class TestRender:
    def test_healthy_render(self, outcomes):
        text = render_chaos_study(outcomes)
        assert "all 4 cells healthy" in text
        assert "sensor-noise" in text and "fault-free" in text

    def test_broken_render_lists_violations(self, outcomes):
        import dataclasses

        broken = dataclasses.replace(
            outcomes[0],
            violations=("resume: diverged",),
            resume_identical=False,
        )
        text = render_chaos_study([broken] + list(outcomes[1:]))
        assert "VIOLATION" in text
        assert "resume: diverged" in text
        assert not broken.ok

"""QuantumStepper unit tests: step/run_policy equivalence, snapshotting.

``run_policy`` is a loop over :class:`QuantumStepper`; the
``repro.server`` daemon instead holds a stepper and ticks it one
quantum at a time.  These tests pin the equivalence (stepping N times
produces the same run as ``run_policy(n_slices=N)``), the ``done``
terminal state, and mid-run snapshot/restore into a fresh stepper.
"""

import json

import pytest

from repro.core.controller import ControllerConfig
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    QuantumStepper,
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.sim.machine import measurement_state
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

N_SLICES = 6
SEED = 7


def _canonical(run):
    return json.dumps(
        {
            "measurements": [measurement_state(m) for m in run.measurements],
            "loads": list(run.loads),
            "budgets": list(run.budgets),
            "degraded_quanta": run.degraded_quanta,
        },
        sort_keys=True,
    )


def _arm(mix_index=0):
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=SEED)
    machine = build_machine_for_mix(mix, seed=SEED)
    policy = CuttleSysPolicy.for_machine(
        machine, seed=SEED, config=ControllerConfig(seed=SEED),
    )
    trace = LoadTrace.constant(0.5)
    return machine, policy, trace, reference


class TestStepEquivalence:
    def test_stepping_matches_run_policy(self):
        machine, policy, trace, reference = _arm()
        expected = run_policy(
            machine, policy, trace, n_slices=N_SLICES,
            max_power_w=reference,
        )

        machine2, policy2, trace2, _ = _arm()
        stepper = QuantumStepper(
            machine2, policy2, trace2, n_slices=N_SLICES,
            max_power_w=reference,
        )
        measurements = []
        while not stepper.done:
            measurements.append(stepper.step())
        assert len(measurements) == N_SLICES
        assert _canonical(stepper.run) == _canonical(expected)

    def test_step_returns_the_run_measurements(self):
        machine, policy, trace, reference = _arm()
        stepper = QuantumStepper(
            machine, policy, trace, n_slices=3, max_power_w=reference,
        )
        first = stepper.step()
        assert stepper.run.measurements[0] is first
        assert stepper.next_slice == 1

    def test_step_past_done_raises(self):
        machine, policy, trace, reference = _arm()
        stepper = QuantumStepper(
            machine, policy, trace, n_slices=2, max_power_w=reference,
        )
        stepper.step()
        stepper.step()
        assert stepper.done
        with pytest.raises(RuntimeError, match="already executed"):
            stepper.step()

    def test_constructor_validation(self):
        machine, policy, trace, reference = _arm()
        with pytest.raises(ValueError):
            QuantumStepper(machine, policy, trace, n_slices=0)
        with pytest.raises(ValueError):
            QuantumStepper(
                machine, policy, trace, power_cap_fraction=0.0,
            )
        with pytest.raises(ValueError):
            QuantumStepper(
                machine, policy, trace, on_policy_error="explode",
            )


class TestSnapshotRestore:
    def test_restore_resumes_byte_identically(self):
        machine, policy, trace, reference = _arm()
        stepper = QuantumStepper(
            machine, policy, trace, n_slices=N_SLICES,
            max_power_w=reference,
        )
        while not stepper.done:
            stepper.step()
        expected = _canonical(stepper.run)

        machine2, policy2, trace2, _ = _arm()
        first = QuantumStepper(
            machine2, policy2, trace2, n_slices=N_SLICES,
            max_power_w=reference,
        )
        for _ in range(3):
            first.step()
        state = json.loads(json.dumps(first.snapshot()))

        machine3, policy3, trace3, _ = _arm()
        resumed = QuantumStepper(
            machine3, policy3, trace3, n_slices=N_SLICES,
            max_power_w=reference,
        )
        resumed.restore(state)
        assert resumed.next_slice == 3
        while not resumed.done:
            resumed.step()
        assert _canonical(resumed.run) == expected

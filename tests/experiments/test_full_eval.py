"""Tests for the full-evaluation orchestrator and the report command."""

import pytest

from repro.experiments.full_eval import (
    default_sections,
    render_report,
    run_full_evaluation,
)


class TestSections:
    def test_catalogue_covers_paper_and_extensions(self):
        titles = [title for title, _ in default_sections()]
        text = " ".join(titles)
        for token in ("Fig. 1", "Table II", "Fig. 5", "Fig. 7", "Fig. 8",
                      "Fig. 9", "Fig. 10", "Flicker", "ablations", "DVFS",
                      "bandwidth", "churn", "scalability",
                      "fault injection"):
            assert token in text

    def test_only_filter(self):
        results = run_full_evaluation(n_slices=2, only=["fig9"])
        assert len(results) == 1
        assert "Fig. 9" in results[0].title
        assert results[0].error is None
        assert "RBF" in results[0].body

    def test_only_filter_compacts_punctuation(self):
        results = run_full_evaluation(n_slices=2, only=["fig 9"])
        assert len(results) == 1

    def test_unknown_filter_rejected(self):
        with pytest.raises(ValueError):
            run_full_evaluation(only=["fig99"])


class TestReport:
    def test_render_report(self):
        results = run_full_evaluation(n_slices=2, only=["fig9"])
        report = render_report(results)
        assert report.startswith("# CuttleSys reproduction")
        assert "## Fig. 9" in report
        assert "```" in report

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(["report", "--only", "fig9", "--out", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert out.read_text().startswith("# CuttleSys reproduction")

    def test_fleet_section_zero_on_healthy(self):
        results = run_full_evaluation(n_slices=2, only=["fig9"])
        healthy = render_report(
            results,
            fleet_stats={"retries": 0, "serial_fallbacks": 0,
                         "unit_attempts": {}},
        )
        assert "## Fleet execution" in healthy
        assert "worker retries (WorkerDied resubmissions): 0" in healthy
        # Per-unit lines appear only when a unit actually retried, so
        # healthy reports are byte-identical with or without the key.
        assert "more than one attempt" not in healthy
        assert healthy == render_report(
            results, fleet_stats={"retries": 0, "serial_fallbacks": 0}
        )

    def test_fleet_section_lists_retried_units(self):
        results = run_full_evaluation(n_slices=2, only=["fig9"])
        report = render_report(
            results,
            fleet_stats={
                "retries": 3,
                "serial_fallbacks": 0,
                "unit_attempts": {
                    "section/Fig. 9 — SGD vs RBF": 2,
                    "section/Extension — ablations": 3,
                },
            },
        )
        assert "Units needing more than one attempt:" in report
        lines = report.splitlines()
        ablation_line = lines.index(
            "- section/Extension — ablations: 3 attempts"
        )
        fig9_line = lines.index(
            "- section/Fig. 9 — SGD vs RBF: 2 attempts"
        )
        assert ablation_line < fig9_line  # sorted by unit id

    def test_run_full_evaluation_populates_unit_attempts(self):
        stats = {}
        run_full_evaluation(n_slices=2, only=["fig9"], fleet_stats=stats)
        assert stats["unit_attempts"] == {}
        fleet_stats = {}
        run_full_evaluation(
            n_slices=2, only=["fig9"], jobs=2, fleet_stats=fleet_stats
        )
        # A healthy parallel run needs exactly one attempt per unit.
        assert fleet_stats["unit_attempts"] == {}
        assert fleet_stats["retries"] == 0

"""Tests for the scalability study and PolicyRun CSV export."""

import csv

import pytest

from repro.baselines import NoGatingPolicy
from repro.experiments.harness import build_machine_for_mix, run_policy
from repro.experiments.scalability import (
    render_scalability,
    run_scalability,
)
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


class TestScalability:
    @pytest.fixture(scope="class")
    def points(self):
        return run_scalability(core_counts=(16, 32), n_slices=3)

    def test_shapes(self, points):
        assert [p.n_cores for p in points] == [16, 32]
        assert [p.n_batch_jobs for p in points] == [8, 16]

    def test_quality_reasonable(self, points):
        for p in points:
            assert 0.5 < p.quality <= 1.1

    def test_decision_cost_positive(self, points):
        for p in points:
            assert p.decision_ms > 0

    def test_render(self, points):
        text = render_scalability(points)
        assert "cores" in text
        assert "quality" in text


class TestCSVExport:
    def test_round_trip(self, tmp_path):
        machine = build_machine_for_mix(
            paper_mixes()[0], seed=1, reconfigurable=False
        )
        run = run_policy(
            machine, NoGatingPolicy(), LoadTrace.constant(0.5), n_slices=3
        )
        path = tmp_path / "run.csv"
        run.to_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[0]["lc_config"] == "{6,6,6}/4w"
        assert float(rows[0]["load"]) == pytest.approx(0.5)
        assert float(rows[1]["power_w"]) > 0
        assert int(rows[2]["active_batch"]) == 16

"""Acceptance tests for the robustness study (ISSUE: fault injection).

The headline claims: under the default fault-scenario suite the
hardened controller finishes every run (zero aborts) with strictly
fewer QoS violations than the unhardened one, and every injected /
detected / recovered fault is visible as a telemetry counter in the
JSONL export.
"""

import json

import pytest

from repro.core.controller import ControllerConfig
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.fault_study import (
    FaultStudyOutcome,
    render_fault_study,
    run_fault_study,
    study_totals,
)
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.faults import FaultInjector, default_scenarios, scenario_by_name
from repro.telemetry import Telemetry
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


@pytest.fixture(scope="module")
def outcomes():
    return run_fault_study(mix_index=0, n_slices=12, seed=7)


class TestAcceptance:
    def test_full_scenario_grid(self, outcomes):
        scenarios = default_scenarios(7)
        assert len(outcomes) == 2 * len(scenarios)
        assert {o.policy for o in outcomes} == {"hardened", "unhardened"}
        assert {o.scenario for o in outcomes} == {s.name for s in scenarios}

    def test_hardened_never_aborts(self, outcomes):
        for o in outcomes:
            if o.policy == "hardened":
                assert not o.aborted, f"hardened aborted under {o.scenario}"
                assert o.completed_slices == o.n_slices

    def test_hardened_strictly_fewer_qos_violations(self, outcomes):
        totals = study_totals(outcomes)
        assert (
            totals["hardened"]["qos_violations"]
            < totals["unhardened"]["qos_violations"]
        )

    def test_unhardened_aborts_somewhere(self, outcomes):
        # The study only demonstrates something if the baseline breaks.
        assert any(o.aborted for o in outcomes if o.policy == "unhardened")

    def test_faults_injected_and_detected(self, outcomes):
        for o in outcomes:
            assert o.injected > 0, f"no faults fired under {o.scenario}"
            if o.policy == "hardened":
                assert o.detected > 0, (
                    f"hardened controller blind under {o.scenario}"
                )
        totals = study_totals(outcomes)
        assert totals["hardened"]["recovered"] > 0

    def test_render(self, outcomes):
        text = render_fault_study(outcomes)
        assert "hardened" in text and "unhardened" in text
        for o in outcomes:
            assert o.scenario in text
        assert "ABORT" in text  # aborted unhardened runs are flagged


class TestCounterExport:
    def test_fault_counters_visible_in_jsonl(self, tmp_path):
        mix = paper_mixes()[0]
        reference = reference_power_for_mix(mix, seed=7)
        machine = build_machine_for_mix(mix, seed=7)
        policy = CuttleSysPolicy.for_machine(
            machine, seed=7, config=ControllerConfig(seed=7, hardened=True)
        )
        telemetry = Telemetry()
        faults = FaultInjector.from_scenario(
            scenario_by_name("perfect-storm", seed=7), telemetry=telemetry
        )
        run_policy(
            machine, policy, LoadTrace.constant(0.7),
            power_cap_fraction=0.7, n_slices=12, max_power_w=reference,
            telemetry=telemetry, faults=faults,
        )
        path = tmp_path / "faults.jsonl"
        telemetry.write_jsonl(path)
        names = set()
        with open(path) as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("type") == "counter":
                    names.add(record["name"])
        assert any(n.startswith("faults.injected.") for n in names)
        assert any(n.startswith("faults.detected.") for n in names)
        assert any(n.startswith("faults.recovered.") for n in names)


class TestMultiMix:
    """The multi-mix grid: mix-qualified units, one checkpoint."""

    @pytest.fixture(scope="class")
    def scenarios(self):
        return (scenario_by_name("sensor-noise", seed=7),)

    def test_mix_qualified_unit_ids(self, scenarios):
        from repro.experiments.fault_study import fault_study_units

        units = fault_study_units(
            (0, 12), 0.7, 0.7, 6, 7, scenarios,
        )
        ids = [u.unit_id for u in units]
        assert len(ids) == len(set(ids)) == 4
        assert "faults/m0/sensor-noise/hardened" in ids
        assert "faults/m12/sensor-noise/unhardened" in ids

    def test_multi_mix_outcomes_and_checkpoint(self, tmp_path, scenarios):
        path = str(tmp_path / "faults.ckpt")
        outcomes = run_fault_study(
            mix_indices=(0, 12), n_slices=6, seed=7,
            scenarios=scenarios, checkpoint=path,
        )
        assert {o.mix_index for o in outcomes} == {0, 12}
        assert len(outcomes) == 4
        # One checkpoint file snapshots the whole multi-mix sweep.
        resumed = run_fault_study(
            mix_indices=(0, 12), n_slices=6, seed=7,
            scenarios=scenarios, checkpoint=path, resume=True,
        )
        assert resumed == outcomes

    def test_multi_mix_render_adds_mix_column(self, scenarios):
        outcomes = run_fault_study(
            mix_indices=(0, 12), n_slices=6, seed=7, scenarios=scenarios,
        )
        text = render_fault_study(outcomes)
        assert "mix" in text.splitlines()[0]
        assert "m0" in text and "m12" in text

    def test_single_mix_render_has_no_mix_column(self, outcomes):
        text = render_fault_study(outcomes)
        assert "mix" not in text.splitlines()[0]


class TestPartialStats:
    def test_aborted_outcome_counts_unserved_as_violations(self, outcomes):
        for o in outcomes:
            if o.aborted:
                assert o.qos_violations >= o.n_slices - o.completed_slices
                assert o.completed_slices < o.n_slices

    def test_outcome_fields(self, outcomes):
        for o in outcomes:
            assert isinstance(o, FaultStudyOutcome)
            assert 0 <= o.completed_slices <= o.n_slices
            assert o.batch_instructions_b >= 0.0

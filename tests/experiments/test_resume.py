"""Crash-safe pause/resume of the decision loop (docs/robustness.md).

The contract: ``run_policy(stop_after=k)`` runs quanta ``0..k-1`` and
captures the full loop state; feeding that state back via
``resume_state=`` with the same arguments completes the run
byte-identically to an uninterrupted one — under deadline pressure,
job churn, and fault injection alike.
"""

import json

import pytest

from repro.core.controller import ControllerConfig
from repro.core.runtime import CuttleSysPolicy
from repro.baselines import CoreGatingPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.faults import FaultInjector, scenario_by_name
from repro.sim.machine import measurement_state
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

N_SLICES = 6
KILL_AT = 3


def _canonical(run):
    return json.dumps(
        {
            "measurements": [
                measurement_state(m) for m in run.measurements
            ],
            "loads": list(run.loads),
            "budgets": list(run.budgets),
            "degraded_quanta": run.degraded_quanta,
            "churn_events": [list(e) for e in run.churn_events],
        },
        sort_keys=True,
    )


def _arm(mix_index, seed=7, budget=None, scenario=None):
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    machine = build_machine_for_mix(mix, seed=seed)
    policy = CuttleSysPolicy.for_machine(
        machine, seed=seed,
        config=ControllerConfig(seed=seed, decision_budget=budget),
    )
    faults = None
    if scenario is not None:
        faults = FaultInjector.from_scenario(
            scenario_by_name(scenario, seed=seed)
        )
    return machine, policy, faults, reference


def _run_kwargs(reference, faults=None, **extra):
    kwargs = dict(
        power_cap_fraction=0.7, n_slices=N_SLICES, max_power_w=reference,
        faults=faults,
    )
    kwargs.update(extra)
    return kwargs


class TestResumeByteIdentity:
    @pytest.mark.parametrize("mix_index", [0, 12])
    def test_kill_and_resume_matches_uninterrupted(self, mix_index):
        machine, policy, _, reference = _arm(mix_index)
        full = run_policy(
            machine, policy, LoadTrace.constant(0.7),
            **_run_kwargs(reference),
        )

        machine2, policy2, _, _ = _arm(mix_index)
        paused = run_policy(
            machine2, policy2, LoadTrace.constant(0.7),
            **_run_kwargs(reference, stop_after=KILL_AT),
        )
        assert paused.resume_state is not None
        assert len(paused.measurements) == KILL_AT
        # The state is plain JSON: it survives serialisation.
        state = json.loads(json.dumps(paused.resume_state))
        resumed = run_policy(
            machine2, policy2, LoadTrace.constant(0.7),
            **_run_kwargs(reference, resume_state=state),
        )
        assert _canonical(resumed) == _canonical(full)

    def test_resume_under_deadline_pressure(self):
        machine, policy, _, reference = _arm(0, budget=2000)
        full = run_policy(
            machine, policy, LoadTrace.constant(0.7),
            **_run_kwargs(reference),
        )
        machine2, policy2, _, _ = _arm(0, budget=2000)
        paused = run_policy(
            machine2, policy2, LoadTrace.constant(0.7),
            **_run_kwargs(reference, stop_after=KILL_AT),
        )
        resumed = run_policy(
            machine2, policy2, LoadTrace.constant(0.7),
            **_run_kwargs(reference, resume_state=paused.resume_state),
        )
        assert _canonical(resumed) == _canonical(full)
        # The meter never moves backwards across the crash boundary.
        paused_meter = paused.resume_state["policy"]["controller"]["budget"]
        assert (
            policy2.controller.budget.total_spent
            >= paused_meter["total_spent"]
        )

    def test_resume_under_faults(self):
        machine, policy, faults, reference = _arm(
            0, scenario="sensor-noise"
        )
        full = run_policy(
            machine, policy, LoadTrace.constant(0.7),
            **_run_kwargs(reference, faults=faults),
        )
        machine2, policy2, faults2, _ = _arm(0, scenario="sensor-noise")
        paused = run_policy(
            machine2, policy2, LoadTrace.constant(0.7),
            **_run_kwargs(reference, faults=faults2, stop_after=KILL_AT),
        )
        resumed = run_policy(
            machine2, policy2, LoadTrace.constant(0.7),
            **_run_kwargs(reference, faults=faults2,
                          resume_state=paused.resume_state),
        )
        assert _canonical(resumed) == _canonical(full)
        assert faults.injected == faults2.injected

    def test_resume_under_churn(self):
        train_names, _ = train_test_split()
        pool = [batch_profile(n) for n in train_names]
        churn = dict(churn_period=2, churn_pool=pool, churn_seed=5)
        machine, policy, _, reference = _arm(0)
        full = run_policy(
            machine, policy, LoadTrace.constant(0.7),
            **_run_kwargs(reference, **churn),
        )
        assert full.churn_events  # the scenario actually churned
        machine2, policy2, _, _ = _arm(0)
        paused = run_policy(
            machine2, policy2, LoadTrace.constant(0.7),
            **_run_kwargs(reference, stop_after=KILL_AT, **churn),
        )
        resumed = run_policy(
            machine2, policy2, LoadTrace.constant(0.7),
            **_run_kwargs(reference, resume_state=paused.resume_state,
                          **churn),
        )
        assert _canonical(resumed) == _canonical(full)


class TestPauseContract:
    def test_stop_after_past_end_completes_without_state(self):
        machine, policy, _, reference = _arm(0)
        run = run_policy(
            machine, policy, LoadTrace.constant(0.7),
            **_run_kwargs(reference, stop_after=N_SLICES),
        )
        assert len(run.measurements) == N_SLICES
        assert run.resume_state is None

    def test_stop_after_validation(self):
        machine, policy, _, reference = _arm(0)
        with pytest.raises(ValueError, match="stop_after"):
            run_policy(
                machine, policy, LoadTrace.constant(0.7),
                **_run_kwargs(reference, stop_after=0),
            )

    def test_snapshotless_policy_rejected(self):
        mix = paper_mixes()[0]
        reference = reference_power_for_mix(mix, seed=7)
        machine = build_machine_for_mix(mix, seed=7)
        with pytest.raises(ValueError, match="snapshot"):
            run_policy(
                machine, CoreGatingPolicy(), LoadTrace.constant(0.7),
                **_run_kwargs(reference, stop_after=2),
            )

    def test_version_gate(self):
        machine, policy, _, reference = _arm(0)
        paused = run_policy(
            machine, policy, LoadTrace.constant(0.7),
            **_run_kwargs(reference, stop_after=KILL_AT),
        )
        state = dict(paused.resume_state)
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            run_policy(
                machine, policy, LoadTrace.constant(0.7),
                **_run_kwargs(reference, resume_state=state),
            )


class TestSnapshotRoundTrips:
    def test_policy_snapshot_json_round_trip(self):
        machine, policy, _, reference = _arm(0)
        run_policy(
            machine, policy, LoadTrace.constant(0.7),
            **_run_kwargs(reference),
        )
        snap = policy.snapshot()
        restored = json.loads(json.dumps(snap))
        machine2, policy2, _, _ = _arm(0)
        policy2.restore(restored)
        assert json.dumps(policy2.snapshot(), sort_keys=True) == (
            json.dumps(snap, sort_keys=True)
        )

    def test_machine_snapshot_round_trip(self):
        machine, policy, _, reference = _arm(0)
        run_policy(
            machine, policy, LoadTrace.constant(0.7),
            **_run_kwargs(reference),
        )
        snap = machine.snapshot()
        machine2, _, _, _ = _arm(0)
        machine2.restore(json.loads(json.dumps(snap)))
        assert json.dumps(machine2.snapshot(), sort_keys=True) == (
            json.dumps(snap, sort_keys=True)
        )

    def test_injector_snapshot_round_trip(self):
        machine, policy, faults, reference = _arm(
            0, scenario="perfect-storm"
        )
        run_policy(
            machine, policy, LoadTrace.constant(0.7),
            **_run_kwargs(reference, faults=faults),
        )
        snap = faults.snapshot()
        _, _, faults2, _ = _arm(0, scenario="perfect-storm")
        faults2.restore(json.loads(json.dumps(snap)))
        assert json.dumps(faults2.snapshot(), sort_keys=True) == (
            json.dumps(snap, sort_keys=True)
        )

    def test_injector_spec_count_gate(self):
        _, _, faults, _ = _arm(0, scenario="perfect-storm")
        _, _, other, _ = _arm(0, scenario="stuck-sensor")
        with pytest.raises(ValueError, match="spec count"):
            other.restore(faults.snapshot())

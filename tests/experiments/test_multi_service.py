"""Tests for multi-service machines and the two-service controller."""

import pytest

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import run_policy
from repro.experiments.multi_service import (
    build_two_service_machine,
    run_multi_service,
)
from repro.sim.coreconfig import CoreConfig, JointConfig
from repro.sim.machine import Assignment, LCAllocation
from repro.workloads.loadgen import LoadTrace

FAST = ControllerConfig(
    dds=DDSParams(initial_random_points=15, max_iter=6,
                  points_per_iteration=3, n_threads=4),
    seed=3,
)

WIDE4 = JointConfig(CoreConfig.widest(), 4.0)
NARROW1 = JointConfig(CoreConfig.narrowest(), 1.0)


class TestMachineMultiService:
    def test_lc_services_list(self):
        machine = build_two_service_machine(seed=1)
        assert len(machine.lc_services) == 2
        assert machine.lc_service is machine.lc_services[0]

    def test_assignment_requires_matching_extras(self):
        machine = build_two_service_machine(n_batch=4, seed=1)
        bad = Assignment(
            lc_cores=8, lc_config=WIDE4,
            batch_configs=(NARROW1,) * 4,
        )
        with pytest.raises(ValueError):
            machine.run_slice(bad, 0.4)

    def test_run_slice_reports_both_services(self):
        machine = build_two_service_machine(n_batch=4, seed=1)
        assignment = Assignment(
            lc_cores=8, lc_config=WIDE4,
            batch_configs=(NARROW1,) * 4,
            extra_lc=(LCAllocation(cores=8, config=WIDE4),),
        )
        m = machine.run_slice(assignment, 0.4, extra_loads=(0.35,))
        assert m.lc_p99 > 0
        assert len(m.extra_lc_p99) == 1
        assert m.extra_lc_p99[0] > 0
        assert m.extra_lc_core_power[0] > 0
        assert m.extra_lc_loads == (0.35,)

    def test_total_power_includes_both_services(self):
        machine = build_two_service_machine(n_batch=4, seed=1)
        both = Assignment(
            lc_cores=8, lc_config=WIDE4,
            batch_configs=(NARROW1,) * 4,
            extra_lc=(LCAllocation(cores=8, config=WIDE4),),
        )
        m = machine.run_slice(both, 0.4, extra_loads=(0.35,))
        floor = (
            8 * m.lc_core_power
            + 8 * m.extra_lc_core_power[0]
            + machine.power.llc_power()
        )
        assert m.total_power > floor * 0.99

    def test_cache_budget_counts_both_services(self):
        machine = build_two_service_machine(n_batch=7, seed=1)
        four = JointConfig(CoreConfig.narrowest(), 4.0)
        over = Assignment(
            lc_cores=8, lc_config=WIDE4,
            batch_configs=(four,) * 7,  # 28 + 4 + 4 > 32
            extra_lc=(LCAllocation(cores=8, config=WIDE4),),
        )
        with pytest.raises(ValueError):
            machine.run_slice(over, 0.4, extra_loads=(0.35,))

    def test_lc_allocation_validation(self):
        with pytest.raises(ValueError):
            LCAllocation(cores=0, config=WIDE4)

    def test_profile_samples_both_services(self):
        machine = build_two_service_machine(n_batch=4, seed=1)
        sample = machine.profile(
            0.4, lc_cores=8, extra_loads=(0.35,), extra_lc_cores=(8,)
        )
        assert len(sample.extra_lc_power_hi) == 1
        assert sample.extra_lc_power_hi[0] > sample.extra_lc_power_lo[0]


class TestControllerMultiService:
    def test_initial_core_split(self):
        machine = build_two_service_machine(seed=1)
        policy = CuttleSysPolicy.for_machine(machine, seed=3, config=FAST)
        split = policy.controller.lc_cores_by_service
        assert len(split) == 2
        assert sum(split) == 16

    def test_decide_produces_extra_allocations(self):
        machine = build_two_service_machine(seed=1)
        policy = CuttleSysPolicy.for_machine(machine, seed=3, config=FAST)
        budget = machine.reference_max_power() * 0.8
        assignment = policy.decide(machine, 0.4, budget, extra_loads=(0.35,))
        assert len(assignment.extra_lc) == 1
        assert assignment.total_lc_cores == 16

    def test_extra_loads_length_enforced(self):
        machine = build_two_service_machine(seed=1)
        policy = CuttleSysPolicy.for_machine(machine, seed=3, config=FAST)
        with pytest.raises(ValueError):
            policy.controller.decide(0.4, 100.0)  # missing extra load

    def test_full_loop_meets_both_qos(self):
        machine = build_two_service_machine(seed=1)
        policy = CuttleSysPolicy.for_machine(machine, seed=3, config=FAST)
        run = run_policy(
            machine, policy, LoadTrace.constant(0.4),
            power_cap_fraction=0.8, n_slices=6,
            extra_traces=(LoadTrace.constant(0.3),),
        )
        assert run.qos_violations() <= 1  # transient exploration at most

    def test_services_get_distinct_configs(self):
        result = run_multi_service(n_slices=8, seed=3)
        (_, cfg_a), (_, cfg_b) = result.final_allocations
        # xapian is LS-bound, silo is near-insensitive: their steady
        # configurations should not both be the conservative fallback.
        assert not (cfg_a == cfg_b == "{6,6,6}/4w")

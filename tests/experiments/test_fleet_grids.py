"""Fleet-grid contracts of the converted figure experiments.

The power-cap sweep (fig. 5c), the dynamic studies (fig. 8), and the
ablation matrix all execute as sharded fleet work units.  These tests
pin the contract the conversion must keep: sharded execution is
byte-identical to serial, a checkpoint file resumes the whole grid,
unit ids are fully qualified, and the grid cells reproduce the
standalone single-run entry points.
"""

import pytest

from repro.experiments.ablations import (
    ABLATION_MATRIX,
    _ablation_cell,
    ablate_guards,
    ablation_units,
    rows_from_cells,
)
from repro.experiments.fig5c_powercaps import (
    fig5c_units,
    run_fig5c,
)
from repro.experiments.fig8_dynamic import (
    fig8_units,
    run_fig8a,
    run_fig8_grid,
)

pytestmark = pytest.mark.filterwarnings("ignore")

FIG5C = dict(mix_indices=(0,), caps=(0.9, 0.5), n_slices=3)


class TestFig5cFleet:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_fig5c(**FIG5C)

    def test_jobs_matches_serial(self, serial):
        assert run_fig5c(jobs=2, **FIG5C) == serial

    def test_checkpoint_resumes_whole_sweep(self, tmp_path, serial):
        path = str(tmp_path / "fig5c.ckpt")
        assert run_fig5c(checkpoint=path, **FIG5C) == serial
        # Resuming executes nothing new and reproduces the result.
        assert run_fig5c(checkpoint=path, resume=True, **FIG5C) == serial

    def test_unit_ids_qualified_by_cap_and_mix(self):
        units = fig5c_units((0, 12), (0.9, 0.5), 3, 0.8, 7)
        ids = [u.unit_id for u in units]
        assert len(ids) == len(set(ids)) == 4
        assert "fig5c/c90/m0" in ids
        assert "fig5c/c50/m12" in ids


class TestFig8Fleet:
    def test_grid_matches_standalone_runner(self):
        traces = run_fig8_grid(scenarios=("a",), n_slices=4)
        assert traces["a"] == run_fig8a(n_slices=4)

    def test_jobs_and_checkpoint(self, tmp_path):
        path = str(tmp_path / "fig8.ckpt")
        serial = run_fig8_grid(scenarios=("a",), n_slices=4)
        sharded = run_fig8_grid(
            scenarios=("a",), n_slices=4, jobs=2, checkpoint=path,
        )
        assert sharded == serial
        resumed = run_fig8_grid(
            scenarios=("a",), n_slices=4, checkpoint=path, resume=True,
        )
        assert resumed == serial

    def test_unit_ids_cover_all_scenarios(self):
        units = fig8_units(("a", "b", "c"), 0, None, 7)
        assert [u.unit_id for u in units] == [
            "fig8/a/m0", "fig8/b/m0", "fig8/c/m0",
        ]


class TestAblationFleet:
    def test_matrix_units_cover_every_variant(self):
        units = ablation_units(0, 3, 7)
        ids = [u.unit_id for u in units]
        expected = sum(len(v) for _, v in ABLATION_MATRIX)
        assert len(ids) == len(set(ids)) == expected
        assert "ablate/guards/off" in ids
        assert "ablate/dds-budget/120" in ids

    def test_cells_reproduce_standalone_ablation(self):
        cells = [
            _ablation_cell("guards", variant, mix_index=0, n_slices=3,
                           seed=7)
            for variant in ("on", "off")
        ]
        # rows_from_cells wants the full matrix; check the slice directly.
        standalone = ablate_guards(mix_index=0, n_slices=3, seed=7)
        for cell, row in zip(cells, standalone):
            assert cell["label"] == row.label
            assert cell["batch_instructions_b"] == row.batch_instructions_b
            assert cell["qos_violations"] == row.qos_violations
            assert cell["power_violations"] == row.power_violations

    def test_rows_regroup_in_matrix_order(self):
        cells = [
            {"ablation": a, "variant": v, "label": f"{a}/{v}",
             "batch_instructions_b": 1.0, "qos_violations": 0,
             "power_violations": 0}
            for a, variants in ABLATION_MATRIX for v in variants
        ]
        rows = rows_from_cells(list(reversed(cells)))
        assert list(rows) == [a for a, _ in ABLATION_MATRIX]
        for ablation, variants in ABLATION_MATRIX:
            assert tuple(r.label for r in rows[ablation]) == tuple(
                f"{ablation}/{v}" for v in variants
            )

"""Tests for the fleet's live event bus and incremental telemetry merge.

Two contracts:

* **Streaming never changes results.**  A run with an event consumer
  attached produces byte-identical unit values to one without; events
  are observability only.
* **Incremental == post-hoc.**  A ``LiveAggregator`` fed through
  ``FleetRun(live=...)`` ends the run holding exactly the records
  ``merge_unit_telemetry`` would produce from the same results — for
  serial and multi-process execution alike.
"""

import json
import multiprocessing as mp
import os

import pytest

from repro.fleet import (
    FleetParams,
    FleetPool,
    FleetRun,
    PoolParams,
    WorkUnit,
    inspect_checkpoint,
    merge_unit_telemetry,
)
from repro.telemetry.live import LiveAggregator

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")


def telemetry_unit(unit_id: str, power: float) -> dict:
    """A unit value carrying a small deterministic telemetry shard."""
    return {
        "power": power,
        "telemetry": [
            {"type": "counter", "name": "power_sum_w", "value": power},
            {"type": "counter", "name": "unit.runs", "value": 1},
            {
                "type": "decision",
                "quantum": 0,
                "predicted_power_w": power + 1.0,
                "measured_power_w": power,
                "measured_p99_s": [0.005],
            },
        ],
    }


def crash_once(flag_path: str, payload: int) -> int:
    if os.path.exists(flag_path):
        return payload
    with open(flag_path, "w") as handle:
        handle.write("attempted")
    os._exit(13)


def make_units(n: int):
    # Float values chosen so summation order is observable: the
    # incremental counter fold must match merge_jsonl bit for bit.
    return [
        WorkUnit(f"unit-{i}", telemetry_unit,
                 {"unit_id": f"unit-{i}", "power": 0.1 * (i + 1)})
        for i in range(n)
    ]


class TestPoolEvents:
    def test_serial_lifecycle_events(self):
        events = []
        results = FleetPool(PoolParams(jobs=1)).map(
            make_units(3), on_event=events.append
        )
        assert len(results) == 3
        kinds = [(e["kind"], e["unit"]) for e in events]
        for i in range(3):
            assert ("unit_started", f"unit-{i}") in kinds
            assert ("unit_finished", f"unit-{i}") in kinds
        assert all(e["worker"] == "serial" for e in events)
        finished = [e for e in events if e["kind"] == "unit_finished"]
        assert all(e["ok"] and e["dropped"] == 0 for e in finished)

    def test_streaming_does_not_change_results(self):
        silent = FleetPool(PoolParams(jobs=1)).map(make_units(3))
        streamed = FleetPool(PoolParams(jobs=1)).map(
            make_units(3), on_event=lambda event: None
        )
        assert [r.value for r in silent] == [r.value for r in streamed]

    @needs_fork
    def test_parallel_lifecycle_events(self):
        events = []
        results = FleetPool(
            PoolParams(jobs=2, start_method="fork")
        ).map(make_units(4), on_event=events.append)
        assert [r.unit_id for r in results] == [
            f"unit-{i}" for i in range(4)
        ]
        finished = {
            e["unit"]: e for e in events if e["kind"] == "unit_finished"
        }
        assert sorted(finished) == [f"unit-{i}" for i in range(4)]
        assert all(e["ok"] and e["dropped"] == 0
                   for e in finished.values())
        assert all(e.get("worker") for e in events)

    @needs_fork
    def test_worker_death_emits_retry_event(self, tmp_path):
        events = []
        flag = str(tmp_path / "crashed")
        pool = FleetPool(PoolParams(jobs=2, start_method="fork"))
        units = [
            WorkUnit("crasher", crash_once,
                     {"flag_path": flag, "payload": 42}),
        ] + make_units(2)
        results = pool.map(units, on_event=events.append)
        assert results[0].value == 42
        retries = [e for e in events if e["kind"] == "unit_retry"]
        assert len(retries) == 1
        assert retries[0]["unit"] == "crasher"
        assert retries[0]["attempt"] == 1  # the attempt that died
        assert pool.retries == 1


class TestIncrementalMergeEndToEnd:
    def run_with_live(self, jobs: int) -> None:
        params = FleetParams(jobs=jobs)
        if jobs > 1:
            if not HAVE_FORK:
                pytest.skip("no fork start method")
            params = FleetParams(jobs=jobs, start_method="fork")
        live = LiveAggregator()
        outcome = FleetRun(
            "stream-test", make_units(4), params, seed=7, live=live,
        ).execute()
        posthoc = merge_unit_telemetry(outcome.results)
        streamed = live.merged_records()
        assert streamed == posthoc
        assert (
            [json.dumps(r, sort_keys=True) for r in streamed]
            == [json.dumps(r, sort_keys=True) for r in posthoc]
        )
        assert live.dropped_events == 0
        done = [s for s in live.units.values() if s["state"] == "done"]
        assert len(done) == 4

    def test_serial(self):
        self.run_with_live(jobs=1)

    def test_parallel(self):
        self.run_with_live(jobs=2)

    def test_resume_folds_checkpointed_telemetry(self, tmp_path):
        path = tmp_path / "ckpt.json"
        FleetRun(
            "stream-test", make_units(4),
            FleetParams(jobs=1, checkpoint=path), seed=7,
        ).execute()
        live = LiveAggregator()
        outcome = FleetRun(
            "stream-test", make_units(4),
            FleetParams(jobs=1, checkpoint=path, resume=True), seed=7,
            live=live,
        ).execute()
        assert outcome.resumed_units == 4
        assert live.merged_records() == merge_unit_telemetry(
            outcome.results
        )
        assert all(s["worker"] == "checkpoint"
                   for s in live.units.values())

    def test_checkpoint_carries_run_stats(self, tmp_path):
        path = tmp_path / "ckpt.json"
        FleetRun(
            "stream-test", make_units(2),
            FleetParams(jobs=1, checkpoint=path), seed=7,
        ).execute()
        payload = inspect_checkpoint(path)
        assert payload["stats"] == {
            "jobs": 1, "executed": 2,
            "executed_ids": ["unit-0", "unit-1"], "resumed": 0,
            "retries": 0, "serial_fallbacks": 0,
        }
        # Additive only: schema and load behaviour are untouched.
        assert payload["schema"] == 1


class TestStudySelfCheck:
    def test_fault_study_streams_and_self_checks(self):
        from repro.experiments.fault_study import run_fault_study
        from repro.faults import default_scenarios

        live = LiveAggregator()
        outcomes = run_fault_study(
            n_slices=2, seed=7,
            scenarios=default_scenarios(7)[:1], live=live,
        )
        assert len(outcomes) == 2  # hardened + unhardened
        assert live.merged_records()  # telemetry was collected
        states = {s["state"] for s in live.units.values()}
        assert states == {"done"}

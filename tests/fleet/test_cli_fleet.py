"""Tests for the ``repro fleet`` subcommand and the shared fleet flags."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_gains_fleet_flags(self):
        args = build_parser().parse_args(
            ["experiment", "cluster", "--jobs", "4",
             "--checkpoint", "ck.json", "--resume"]
        )
        assert args.jobs == 4
        assert args.checkpoint == "ck.json"
        assert args.resume is True

    def test_fleet_flags_default_serial(self):
        args = build_parser().parse_args(["experiment", "cluster"])
        assert args.jobs == 1
        assert args.checkpoint is None
        assert args.resume is False

    def test_fleet_cluster_defaults(self):
        args = build_parser().parse_args(["fleet", "cluster"])
        assert args.fleet_command == "cluster"
        assert args.slices == 8
        assert args.jobs == 1

    def test_fleet_scalability_cores(self):
        args = build_parser().parse_args(
            ["fleet", "scalability", "--cores", "16", "32", "--no-timings"]
        )
        assert args.cores == [16, 32]
        assert args.no_timings is True

    def test_fleet_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])

    def test_fleet_status_takes_path(self):
        args = build_parser().parse_args(["fleet", "status", "ck.json"])
        assert args.checkpoint_file == "ck.json"


class TestCommands:
    def test_fleet_cluster_runs_and_reports(self, capsys):
        code = main(
            ["--seed", "7", "fleet", "cluster", "--slices", "2", "--jobs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "broker" in out
        assert "static-50-50" in out

    def test_fleet_status_reports_completed_units(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        assert main(
            ["--seed", "7", "fleet", "cluster", "--slices", "2",
             "--checkpoint", str(ck)]
        ) == 0
        capsys.readouterr()
        assert main(["fleet", "status", str(ck)]) == 0
        out = capsys.readouterr().out
        assert "cluster_study" in out
        assert out.count("[done]") == 2
        assert "[todo]" not in out

    def test_fleet_status_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["fleet", "status", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err.lower()

    @pytest.mark.parametrize("content", [b"", b'{"schema": 1, "comp'])
    def test_fleet_status_corrupt_file_exits_2_without_traceback(
        self, tmp_path, capsys, content
    ):
        """Zero-byte and truncated checkpoints get a one-line error on
        stderr and exit code 2 — never a traceback."""
        path = tmp_path / "ck.json"
        path.write_bytes(content)
        code = main(["fleet", "status", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_fleet_status_directory_exits_2(self, tmp_path, capsys):
        code = main(["fleet", "status", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "unreadable checkpoint" in captured.err

    def test_resume_without_checkpoint_rejected(self, capsys):
        code = main(
            ["--seed", "7", "fleet", "cluster", "--slices", "2", "--resume"]
        )
        assert code != 0

    def test_bench_list_includes_fleet_case(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fleet.pool" in out
        assert "fleet.serial" in out

    def test_fleet_status_marks_checkpoint_restored_units(
        self, tmp_path, capsys
    ):
        ck = tmp_path / "ck.json"
        base = ["--seed", "7", "fleet", "cluster", "--slices", "2",
                "--checkpoint", str(ck)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(["fleet", "status", str(ck)]) == 0
        first = capsys.readouterr().out
        # Fresh run: every completed unit was actually executed.
        assert first.count("[done]") == 2
        assert "[done (checkpoint)]" not in first
        # Resume over a finished checkpoint executes nothing; status
        # must say where each result came from.
        assert main(base + ["--resume"]) == 0
        capsys.readouterr()
        assert main(["fleet", "status", str(ck)]) == 0
        second = capsys.readouterr().out
        assert second.count("[done (checkpoint)]") == 2
        assert "[todo]" not in second

"""End-to-end determinism: sharded experiments equal serial, byte for byte.

These are the in-suite versions of the CI ``fleet-smoke`` diffs; they
use small grids so the whole module stays within a few seconds.
"""

import multiprocessing as mp

import pytest

from repro.experiments.cluster_study import (
    render_cluster_study,
    run_cluster_study,
)
from repro.experiments.scalability import render_scalability, run_scalability

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")


@needs_fork
class TestClusterStudy:
    def test_jobs2_render_byte_identical(self):
        serial = run_cluster_study(n_slices=2, seed=7, jobs=1)
        parallel = run_cluster_study(n_slices=2, seed=7, jobs=2)
        assert render_cluster_study(parallel) == render_cluster_study(serial)

    def test_outcomes_equal_fieldwise(self):
        serial = run_cluster_study(n_slices=2, seed=7, jobs=1)
        parallel = run_cluster_study(n_slices=2, seed=7, jobs=2)
        assert parallel == serial


@needs_fork
class TestScalability:
    def test_jobs2_render_byte_identical_without_timings(self):
        serial = run_scalability(core_counts=(16,), n_slices=2, jobs=1)
        parallel = run_scalability(core_counts=(16,), n_slices=2, jobs=2)
        assert render_scalability(
            parallel, include_timings=False
        ) == render_scalability(serial, include_timings=False)

    def test_non_timing_fields_equal(self):
        serial = run_scalability(core_counts=(16,), n_slices=2, jobs=1)
        parallel = run_scalability(core_counts=(16,), n_slices=2, jobs=2)
        assert len(parallel) == len(serial)
        for got, want in zip(parallel, serial):
            assert got.n_cores == want.n_cores
            assert got.n_batch_jobs == want.n_batch_jobs
            assert got.cuttlesys_instructions_b == want.cuttlesys_instructions_b
            assert got.oracle_instructions_b == want.oracle_instructions_b


@needs_fork
class TestCheckpointedRun:
    def test_resume_render_byte_identical(self, tmp_path):
        ck = tmp_path / "ck.json"
        uninterrupted = run_cluster_study(n_slices=2, seed=7, jobs=1)
        run_cluster_study(n_slices=2, seed=7, jobs=2, checkpoint=str(ck))
        resumed = run_cluster_study(
            n_slices=2, seed=7, jobs=2, checkpoint=str(ck), resume=True
        )
        assert render_cluster_study(resumed) == render_cluster_study(
            uninterrupted
        )

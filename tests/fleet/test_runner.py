"""Tests for the FleetRun facade: checkpointing, abort/resume, telemetry.

The checkpoint-atomicity property the ISSUE demands — kill a fleet run
mid-grid, ``--resume``, final report equals an uninterrupted run — is
exercised with the deterministic ``inject_abort_after`` fault hook
(the fleet's crash lever in the ``repro.faults`` tradition) rather
than a timing-dependent SIGKILL race.
"""

import pytest

from repro.fleet import (
    FROM_CHECKPOINT,
    CheckpointError,
    FleetAborted,
    FleetParams,
    FleetRun,
    WorkUnit,
    inspect_checkpoint,
    unit_seed,
)
from repro.telemetry import Telemetry


def cell(unit_id: str, seed: int) -> dict:
    return {"unit": unit_id, "seed": unit_seed(unit_id, seed=seed)}


def make_units(n: int, seed: int = 7):
    return [
        WorkUnit(f"u{i}", cell, {"unit_id": f"u{i}", "seed": seed})
        for i in range(n)
    ]


class TestExecute:
    def test_results_in_unit_order(self):
        outcome = FleetRun("t", make_units(4), seed=7).execute()
        assert [r.unit_id for r in outcome.results] == ["u0", "u1", "u2", "u3"]
        assert outcome.executed_units == 4
        assert outcome.resumed_units == 0
        assert outcome.value_of("u2") == cell("u2", 7)
        with pytest.raises(KeyError):
            outcome.value_of("nope")

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetRun("t", [])
        with pytest.raises(ValueError, match="unique"):
            FleetRun("t", make_units(2) + make_units(1))
        with pytest.raises(ValueError, match="name"):
            FleetRun("", make_units(1))
        with pytest.raises(ValueError, match="resume requires"):
            FleetParams(resume=True)

    def test_summary_mentions_counts(self):
        outcome = FleetRun("t", make_units(2), seed=7).execute()
        assert "2 unit(s)" in outcome.summary()
        assert "2 executed" in outcome.summary()


class TestAbortResume:
    def test_injected_abort_saves_checkpoint(self, tmp_path):
        ck = tmp_path / "ck.json"
        params = FleetParams(
            jobs=1, checkpoint=str(ck), inject_abort_after=2,
        )
        with pytest.raises(FleetAborted) as excinfo:
            FleetRun("t", make_units(5), params, seed=7).execute()
        assert excinfo.value.completed == 2
        payload = inspect_checkpoint(ck)
        assert len(payload["completed"]) == 2

    def test_resume_equals_uninterrupted(self, tmp_path):
        ck = tmp_path / "ck.json"
        units = make_units(5)
        uninterrupted = FleetRun("t", units, seed=7).execute()
        with pytest.raises(FleetAborted):
            FleetRun(
                "t", units,
                FleetParams(checkpoint=str(ck), inject_abort_after=2),
                seed=7,
            ).execute()
        resumed = FleetRun(
            "t", units, FleetParams(checkpoint=str(ck), resume=True),
            seed=7,
        ).execute()
        assert resumed.values() == uninterrupted.values()
        assert resumed.resumed_units == 2
        assert resumed.executed_units == 3
        restored = [
            r for r in resumed.results if r.worker == FROM_CHECKPOINT
        ]
        assert len(restored) == 2
        assert all(r.attempts == 0 for r in restored)
        # Global unit indices survive the todo-local pool indices.
        assert [r.index for r in resumed.results] == list(range(5))

    def test_fully_resumed_run_executes_nothing(self, tmp_path):
        ck = tmp_path / "ck.json"
        units = make_units(3)
        first = FleetRun(
            "t", units, FleetParams(checkpoint=str(ck)), seed=7
        ).execute()
        again = FleetRun(
            "t", units, FleetParams(checkpoint=str(ck), resume=True),
            seed=7,
        ).execute()
        assert again.values() == first.values()
        assert again.executed_units == 0
        assert again.resumed_units == 3

    def test_seed_change_invalidates_checkpoint(self, tmp_path):
        ck = tmp_path / "ck.json"
        units = make_units(3)
        FleetRun("t", units, FleetParams(checkpoint=str(ck)), seed=7).execute()
        with pytest.raises(CheckpointError, match="different run"):
            FleetRun(
                "t", units, FleetParams(checkpoint=str(ck), resume=True),
                seed=8,
            ).execute()

    def test_without_resume_checkpoint_is_overwritten(self, tmp_path):
        ck = tmp_path / "ck.json"
        units = make_units(3)
        with pytest.raises(FleetAborted):
            FleetRun(
                "t", units,
                FleetParams(checkpoint=str(ck), inject_abort_after=1),
                seed=7,
            ).execute()
        fresh = FleetRun(
            "t", units, FleetParams(checkpoint=str(ck)), seed=7
        ).execute()
        assert fresh.executed_units == 3
        assert len(inspect_checkpoint(ck)["completed"]) == 3


class TestTelemetry:
    def test_counters_published(self, tmp_path):
        ck = tmp_path / "ck.json"
        units = make_units(4)
        with pytest.raises(FleetAborted):
            FleetRun(
                "t", units,
                FleetParams(checkpoint=str(ck), inject_abort_after=1),
                seed=7,
            ).execute()
        session = Telemetry()
        FleetRun(
            "t", units, FleetParams(checkpoint=str(ck), resume=True),
            seed=7, telemetry=session,
        ).execute()
        metrics = session.metrics
        assert metrics.counter("fleet.units_total").value == 4
        assert metrics.counter("fleet.units_resumed").value == 1
        assert metrics.counter("fleet.units_executed").value == 3
        assert metrics.counter("fleet.retries").value == 0
        assert metrics.counter("fleet.serial_fallbacks").value == 0
        assert metrics.gauge("fleet.jobs").value == 1.0


class TestUnitAttempts:
    def test_healthy_run_reports_no_extra_attempts(self):
        outcome = FleetRun("t", make_units(3), seed=7).execute()
        assert all(r.attempts == 1 for r in outcome.results)
        assert outcome.unit_attempts() == {}

    def test_retried_units_surface_with_their_counts(self):
        from repro.fleet.runner import FleetOutcome
        from repro.fleet.shard import UnitResult

        outcome = FleetOutcome(
            name="t",
            results=(
                UnitResult("u0", 0, value=1, worker="w0", attempts=1),
                UnitResult("u1", 1, value=2, worker="w1", attempts=3),
                UnitResult("u2", 2, value=3, worker="checkpoint",
                           attempts=0),
            ),
            jobs=2,
            resumed_units=1,
            executed_units=2,
            retries=2,
            serial_fallbacks=0,
        )
        assert outcome.unit_attempts() == {"u1": 3}

"""Tests for the observability CLI surfaces: top, dashboard, --watch.

``--watch`` paints to stderr only; the determinism contract (stdout
byte-identical across ``--jobs`` and with/without watching) is asserted
directly here by diffing captured stdout.
"""

from pathlib import Path

import pytest

from repro.cli import build_parser, main

FIXTURE = (
    Path(__file__).parent.parent / "telemetry" / "data"
    / "run_fixture.jsonl"
)


class TestParser:
    def test_top_defaults(self):
        args = build_parser().parse_args(["top", "run.jsonl"])
        assert args.log == "run.jsonl"
        assert args.follow is False
        assert args.window == 256

    def test_dashboard_defaults(self):
        args = build_parser().parse_args(["dashboard", "run.jsonl"])
        assert args.out == "dashboard.html"
        assert args.title == "repro run dashboard"

    def test_watch_flag_on_fleet_commands(self):
        for argv in (
            ["fleet", "cluster", "--watch"],
            ["fleet", "scalability", "--watch"],
            ["fault-study", "--watch"],
        ):
            assert build_parser().parse_args(argv).watch is True

    def test_fault_study_gains_fleet_flags(self):
        args = build_parser().parse_args(
            ["fault-study", "--jobs", "2", "--checkpoint", "ck.json"]
        )
        assert args.jobs == 2
        assert args.checkpoint == "ck.json"

    def test_fleet_cluster_gains_jsonl(self):
        args = build_parser().parse_args(
            ["fleet", "cluster", "--jsonl", "log.jsonl"]
        )
        assert args.jsonl == "log.jsonl"


class TestTopCommand:
    def test_renders_status_view(self, capsys):
        assert main(["top", str(FIXTURE)]) == 0
        out = capsys.readouterr().out
        assert "live fleet status" in out
        assert "scale/16c/cuttlesys" in out
        assert "quantum.lc_p99_ms" in out

    def test_missing_log_exits_2(self, tmp_path, capsys):
        code = main(["top", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestDashboardCommand:
    def test_writes_self_contained_html(self, tmp_path, capsys):
        out_path = tmp_path / "report.html"
        assert main(
            ["dashboard", str(FIXTURE), "-o", str(out_path)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        html = out_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html

    def test_missing_log_exits_2(self, tmp_path, capsys):
        code = main(["dashboard", str(tmp_path / "absent.jsonl"),
                     "-o", str(tmp_path / "out.html")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestWatch:
    def test_watch_paints_stderr_keeps_stdout_identical(self, capsys):
        assert main(
            ["--seed", "7", "fleet", "cluster", "--slices", "2"]
        ) == 0
        plain = capsys.readouterr()
        assert main(
            ["--seed", "7", "fleet", "cluster", "--slices", "2",
             "--watch"]
        ) == 0
        watched = capsys.readouterr()
        assert watched.out == plain.out
        assert "live fleet status" in watched.err
        assert "cluster/broker" in watched.err

    def test_watch_exercises_streaming_self_check(self, tmp_path, capsys):
        # --watch + --jsonl: the merged log written under streaming
        # passed the incremental-vs-post-hoc identity check inside
        # run_cluster_study (it raises on divergence).
        log = tmp_path / "run.jsonl"
        assert main(
            ["--seed", "7", "fleet", "cluster", "--slices", "2",
             "--watch", "--jsonl", str(log)]
        ) == 0
        capsys.readouterr()
        assert log.exists() and log.read_text().strip()

    def test_fault_study_watch_and_jobs(self, capsys):
        code = main(
            ["--seed", "7", "fault-study", "--mixes", "0",
             "--slices", "2", "--scenario", "sensor-noise", "--watch"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "hardened" in captured.out
        assert "live fleet status" in captured.err

    def test_fault_study_multi_mix_checkpoint_resumes(self, tmp_path,
                                                      capsys):
        # Mix-qualified unit ids let one checkpoint cover a multi-mix
        # sweep; resuming from it reproduces the output byte for byte.
        ck = str(tmp_path / "ck.json")
        args = ["fault-study", "--mixes", "0", "1", "--slices", "4",
                "--scenario", "stuck-sensor", "--checkpoint", ck]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "m0" in first and "m1" in first
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first


class TestStatusStats:
    def test_status_prints_run_stats(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        assert main(
            ["--seed", "7", "fleet", "cluster", "--slices", "2",
             "--checkpoint", str(ck)]
        ) == 0
        capsys.readouterr()
        assert main(["fleet", "status", str(ck)]) == 0
        out = capsys.readouterr().out
        assert "stats:" in out
        assert '"retries": 0' in out
        assert '"serial_fallbacks": 0' in out

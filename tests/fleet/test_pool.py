"""Tests for the worker pool: determinism, failure containment, retry.

Unit functions live at module top level so forked worker processes can
unpickle them by reference; the crash tests pin ``start_method="fork"``
(always available on the Linux CI runners) for the same reason.
"""

import multiprocessing as mp
import os

import pytest

from repro.fleet import (
    FleetPool,
    PoolParams,
    UnitFailed,
    WorkUnit,
    WorkerDied,
    unit_seed,
)

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")


def seeded_value(unit_id: str, seed: int) -> dict:
    stream_seed = unit_seed(unit_id, seed=seed)
    return {"unit": unit_id, "draw": stream_seed % 1000}


def failing_unit(unit_id: str) -> None:
    raise RuntimeError(f"unit {unit_id} is broken")


def crash_once(flag_path: str, payload: int) -> int:
    """Dies with os._exit on the first attempt, succeeds on the second."""
    if os.path.exists(flag_path):
        return payload
    with open(flag_path, "w") as handle:
        handle.write("attempted")
    os._exit(13)


def crash_always(payload: int) -> int:
    os._exit(13)


def make_units(n: int, seed: int = 7):
    return [
        WorkUnit(f"unit-{i}", seeded_value,
                 {"unit_id": f"unit-{i}", "seed": seed})
        for i in range(n)
    ]


class TestSerial:
    def test_results_in_unit_order(self):
        results = FleetPool(PoolParams(jobs=1)).map(make_units(4))
        assert [r.unit_id for r in results] == [f"unit-{i}" for i in range(4)]
        assert all(r.worker == "serial" and r.attempts == 1 for r in results)

    def test_unit_exception_wrapped(self):
        units = [WorkUnit("bad", failing_unit, {"unit_id": "bad"})]
        with pytest.raises(UnitFailed) as excinfo:
            FleetPool(PoolParams(jobs=1)).map(units)
        assert excinfo.value.unit_id == "bad"
        assert "broken" in str(excinfo.value)

    def test_duplicate_unit_ids_rejected(self):
        units = [
            WorkUnit("same", seeded_value, {"unit_id": "same", "seed": 1}),
            WorkUnit("same", seeded_value, {"unit_id": "same", "seed": 2}),
        ]
        with pytest.raises(ValueError, match="unique"):
            FleetPool(PoolParams(jobs=1)).map(units)

    def test_on_result_fires_per_unit(self):
        seen = []
        FleetPool(PoolParams(jobs=1)).map(
            make_units(3), on_result=lambda r: seen.append(r.unit_id)
        )
        assert seen == ["unit-0", "unit-1", "unit-2"]


@needs_fork
class TestParallel:
    def test_matches_serial_results(self):
        units = make_units(6)
        serial = FleetPool(PoolParams(jobs=1)).map(units)
        parallel = FleetPool(
            PoolParams(jobs=3, start_method="fork")
        ).map(units)
        assert [r.value for r in parallel] == [r.value for r in serial]
        assert [r.unit_id for r in parallel] == [r.unit_id for r in serial]

    def test_unit_exception_wrapped_not_retried(self):
        pool = FleetPool(PoolParams(jobs=2, start_method="fork"))
        units = make_units(2) + [
            WorkUnit("bad", failing_unit, {"unit_id": "bad"})
        ]
        with pytest.raises(UnitFailed) as excinfo:
            pool.map(units)
        assert excinfo.value.unit_id == "bad"
        assert pool.retries == 0

    def test_worker_death_retries_unit(self, tmp_path):
        flag = tmp_path / "attempted.flag"
        units = [
            WorkUnit("fragile", crash_once,
                     {"flag_path": str(flag), "payload": 99}),
        ] + make_units(2)
        pool = FleetPool(PoolParams(jobs=2, start_method="fork"))
        results = pool.map(units)
        fragile = results[0]
        assert fragile.value == 99
        assert fragile.attempts == 2
        assert pool.retries == 1

    def test_worker_death_exhausts_retries(self):
        units = [WorkUnit("doomed", crash_always, {"payload": 1})]
        pool = FleetPool(
            PoolParams(jobs=2, max_retries=1, start_method="fork")
        )
        with pytest.raises(WorkerDied) as excinfo:
            pool.map(units + make_units(1))
        assert excinfo.value.unit_id == "doomed"
        assert excinfo.value.attempts == 2


class TestDegradation:
    def test_bad_start_method_falls_back_to_serial(self):
        pool = FleetPool(PoolParams(jobs=2, start_method="no-such-method"))
        results = pool.map(make_units(3))
        assert pool.serial_fallbacks == 1
        assert [r.worker for r in results] == ["serial"] * 3

    def test_fallback_disabled_raises(self):
        pool = FleetPool(PoolParams(
            jobs=2, start_method="no-such-method", serial_fallback=False,
        ))
        with pytest.raises(ValueError):
            pool.map(make_units(3))

    def test_jobs_capped_to_unit_count_runs_serial(self):
        # One unit on a many-job pool short-circuits to in-process.
        pool = FleetPool(PoolParams(jobs=8))
        results = pool.map(make_units(1))
        assert results[0].worker == "serial"
        assert pool.serial_fallbacks == 0


class TestParams:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PoolParams(jobs=0)
        with pytest.raises(ValueError):
            PoolParams(max_retries=-1)
        with pytest.raises(ValueError):
            PoolParams(poll_interval_s=0.0)

    def test_resolved_start_method_prefers_fork(self):
        resolved = PoolParams().resolved_start_method()
        assert resolved in ("fork", "spawn")
        if HAVE_FORK:
            assert resolved == "fork"

    def test_empty_unit_id_rejected(self):
        with pytest.raises(ValueError):
            WorkUnit("", seeded_value)

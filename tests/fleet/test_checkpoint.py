"""Tests for atomic checkpoint snapshots and fingerprint pinning."""

import json

import pytest

from repro.fleet import CheckpointError, CheckpointStore, inspect_checkpoint

FINGERPRINT = {
    "fleet": "test", "seed": 7, "context": {"n_slices": 4},
    "units": ["a", "b"],
}


class TestRoundTrip:
    def test_missing_file_loads_empty(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json", FINGERPRINT)
        assert not store.exists()
        assert store.load() == {}

    def test_save_then_load(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CheckpointStore(path, FINGERPRINT)
        store.save({"a": {"value": 1.5}, "b": [1, 2, 3]})
        assert store.exists()
        reloaded = CheckpointStore(path, FINGERPRINT).load()
        assert reloaded == {"a": {"value": 1.5}, "b": [1, 2, 3]}

    def test_floats_round_trip_exactly(self, tmp_path):
        # repr-shortest floats survive JSON bit-for-bit — the property
        # that makes resumed reports byte-identical.
        value = 19.613428736401837
        path = tmp_path / "ck.json"
        store = CheckpointStore(path, FINGERPRINT)
        store.save({"a": value})
        assert CheckpointStore(path, FINGERPRINT).load()["a"] == value

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "ck.json"
        CheckpointStore(path, FINGERPRINT).save({"a": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]

    def test_tuples_normalise_to_lists(self, tmp_path):
        path = tmp_path / "ck.json"
        fingerprint = dict(FINGERPRINT, units=("a", "b"))
        CheckpointStore(path, fingerprint).save({"a": 1})
        # A later run passing lists must still match.
        assert CheckpointStore(path, FINGERPRINT).load() == {"a": 1}


class TestValidation:
    def test_fingerprint_mismatch_refuses(self, tmp_path):
        path = tmp_path / "ck.json"
        CheckpointStore(path, FINGERPRINT).save({"a": 1})
        other = dict(FINGERPRINT, seed=8)
        with pytest.raises(CheckpointError, match="different run"):
            CheckpointStore(path, other).load()

    def test_corrupt_json_refuses(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            CheckpointStore(path, FINGERPRINT).load()

    def test_wrong_schema_refuses(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({
            "schema": 99, "fingerprint": FINGERPRINT, "completed": {},
        }))
        with pytest.raises(CheckpointError, match="schema"):
            CheckpointStore(path, FINGERPRINT).load()

    def test_unserializable_value_raises_and_cleans_up(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CheckpointStore(path, FINGERPRINT)
        with pytest.raises(CheckpointError, match="JSON-serializable"):
            store.save({"a": object()})
        assert list(tmp_path.iterdir()) == []

    def test_unserializable_fingerprint_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="fingerprint"):
            CheckpointStore(tmp_path / "ck.json", {"bad": object()})


class TestInspect:
    def test_inspect_returns_raw_payload(self, tmp_path):
        path = tmp_path / "ck.json"
        CheckpointStore(path, FINGERPRINT).save({"a": 1})
        payload = inspect_checkpoint(path)
        assert payload["schema"] == 1
        assert payload["fingerprint"]["fleet"] == "test"
        assert payload["completed"] == {"a": 1}

    def test_inspect_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            inspect_checkpoint(tmp_path / "absent.json")

    def test_inspect_zero_byte_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            inspect_checkpoint(path)

    def test_inspect_truncated_file(self, tmp_path):
        path = tmp_path / "ck.json"
        CheckpointStore(path, FINGERPRINT).save({"a": 1})
        truncated = path.read_bytes()[: path.stat().st_size // 2]
        path.write_bytes(truncated)
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            inspect_checkpoint(path)

    def test_inspect_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="unreadable checkpoint"):
            inspect_checkpoint(tmp_path)

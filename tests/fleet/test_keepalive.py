"""Keep-alive worker pool: reuse across map() calls, shared FleetRuns.

The ``repro.server`` daemon holds one ``keep_alive=True`` pool for the
lifetime of the process and runs every ``whatif`` probe through it, so
the properties under test here are load-bearing for the control plane:
workers persist across ``map()`` calls (no respawn cost per probe),
``close()`` is a hard boundary, and results are bit-equal to one-shot
and serial execution.
"""

import multiprocessing as mp
import os

import pytest

from repro.fleet import (
    FleetParams,
    FleetPool,
    FleetRun,
    PoolParams,
    WorkUnit,
    unit_seed,
)

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")


def worker_pid(unit_id: str) -> int:
    return os.getpid()


def seeded_cell(unit_id: str, seed: int) -> dict:
    return {"unit": unit_id, "draw": unit_seed(unit_id, seed=seed) % 1000}


def pid_units(tag: str, n: int):
    return [
        WorkUnit(f"{tag}-{i}", worker_pid, {"unit_id": f"{tag}-{i}"})
        for i in range(n)
    ]


def cell_units(tag: str, n: int, seed: int = 7):
    return [
        WorkUnit(f"{tag}-{i}", seeded_cell,
                 {"unit_id": f"{tag}-{i}", "seed": seed})
        for i in range(n)
    ]


@needs_fork
class TestWorkerReuse:
    def test_same_worker_pids_across_map_calls(self):
        pool = FleetPool(PoolParams(
            jobs=2, keep_alive=True, start_method="fork",
        ))
        try:
            first = {r.value for r in pool.map(pid_units("a", 4))}
            second = {r.value for r in pool.map(pid_units("b", 4))}
        finally:
            pool.close()
        assert first == second
        assert os.getpid() not in first

    def test_one_shot_pool_respawns_each_map(self):
        pool = FleetPool(PoolParams(jobs=2, start_method="fork"))
        first = {r.value for r in pool.map(pid_units("a", 4))}
        second = {r.value for r in pool.map(pid_units("b", 4))}
        assert first.isdisjoint(second)

    def test_results_match_serial_execution(self):
        serial = FleetPool(PoolParams(jobs=1)).map(cell_units("x", 6))
        pool = FleetPool(PoolParams(
            jobs=3, keep_alive=True, start_method="fork",
        ))
        try:
            alive = pool.map(cell_units("x", 6))
        finally:
            pool.close()
        assert [r.value for r in alive] == [r.value for r in serial]


class TestCloseSemantics:
    def test_map_after_close_raises(self):
        pool = FleetPool(PoolParams(jobs=1, keep_alive=True))
        pool.close()
        with pytest.raises(ValueError, match="closed pool"):
            pool.map(cell_units("x", 1))

    def test_close_is_idempotent(self):
        pool = FleetPool(PoolParams(jobs=1, keep_alive=True))
        pool.close()
        pool.close()

    @needs_fork
    def test_close_reaps_persistent_workers(self):
        pool = FleetPool(PoolParams(
            jobs=2, keep_alive=True, start_method="fork",
        ))
        pool.map(pid_units("a", 2))
        workers = list(pool._workers)
        assert all(w.process.is_alive() for w in workers)
        pool.close()
        for worker in workers:
            worker.process.join(timeout=30)
        assert not any(w.process.is_alive() for w in workers)


@needs_fork
class TestSharedAcrossFleetRuns:
    def test_two_runs_share_one_pool(self, tmp_path):
        pool = FleetPool(PoolParams(
            jobs=2, keep_alive=True, start_method="fork",
        ))
        params = FleetParams(jobs=2)
        try:
            first = FleetRun(
                "ka-one", cell_units("p", 4), params, seed=7, pool=pool,
            ).execute()
            second = FleetRun(
                "ka-two", cell_units("q", 4), params, seed=7, pool=pool,
            ).execute()
        finally:
            pool.close()
        solo = FleetRun("ka-one", cell_units("p", 4), params, seed=7)
        assert [r.value for r in first.results] == [
            r.value for r in solo.execute().results
        ]
        # Shared-pool tallies are reported per run, not cumulatively.
        assert first.retries == 0 and second.retries == 0

# Fixture for UNIT302: mutable default arguments.
from typing import Optional, Sequence, Tuple


def good_none_default(loads: Optional[Sequence[float]] = None) -> list:
    return list(loads or ())


def good_tuple_default(loads: Tuple[float, ...] = ()) -> list:
    return list(loads)


def bad_list_default(loads=[]) -> list:  # expect: UNIT302
    return loads


def bad_dict_default(caps={}) -> dict:  # expect: UNIT302
    return caps


def bad_constructed_default(jobs=list()) -> list:  # expect: UNIT302
    return jobs

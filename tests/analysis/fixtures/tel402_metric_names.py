# Fixture for TEL402: metric naming convention and kind conflicts.


class Instrumented:
    def __init__(self, metrics) -> None:
        self.metrics = metrics

    def good_dotted_names(self) -> None:
        self.metrics.counter("harness.job_churn").inc()
        self.metrics.gauge("harness.power_w").set(99.5)
        self.metrics.histogram("slice.lc_p99_ms").observe(2.5)
        self.metrics.histogram("accuracy.drift.flags_pct").observe(1.0)

    def good_dynamic_name(self, app: str) -> None:
        # Dynamic names cannot be validated statically and are exempt.
        self.metrics.histogram(f"accuracy.app.{app}.bips_err_pct").observe(
            1.0
        )

    def good_unrelated_receiver(self, pool) -> None:
        # Not a metrics registry: `counter` on other objects is fine.
        pool.counter("whatever").inc()

    def bad_flat_name(self) -> None:
        self.metrics.counter("qos_violations").inc()  # expect: TEL402

    def bad_uppercase(self, registry) -> None:
        registry.gauge("Harness.Power")  # expect: TEL402

    def bad_kind_fork(self, telemetry) -> None:
        telemetry.counter("loop.iterations").inc()
        telemetry.gauge("loop.iterations").set(3.0)  # expect: TEL402

"""RNG203: rng_for stream collisions and RNG objects crossing a
WorkUnit boundary."""

from repro.rng import rng_for


def good_streams(seed):
    alpha = rng_for("alpha", seed=seed)
    beta = rng_for("beta", salt="fixture", seed=seed)
    return alpha, beta


def first_site(seed):
    return rng_for("dup-stream", seed=seed)


def second_site(seed):
    return rng_for("dup-stream", seed=seed)  # expect: RNG203


def salted_apart(seed):
    """Same name, different salt: a distinct stream — clean."""
    return rng_for("dup-stream", salt="other", seed=seed)


def dynamic_names(unit_ids, seed):
    """Dynamic name arguments cannot be compared statically — clean."""
    return [rng_for(uid, salt="per-unit", seed=seed) for uid in unit_ids]


def leaky_unit(seed):
    stream = rng_for("unit-stream", seed=seed)
    return WorkUnit(unit_id="u0", fn=run_unit, args=(stream,))  # expect: RNG203


def safe_unit(seed):
    """Pass the seed, not the generator: the unit re-derives."""
    return WorkUnit(unit_id="u1", fn=run_unit, args=(seed,))


def run_unit(payload):
    return payload

"""DET105: wall-clock / global-RNG calls transitively reachable from
the decision hot path (run_policy -> decide -> helpers)."""

import time

import numpy as np


def run_policy(policy, machine, quanta):
    total = 0.0
    for _ in range(quanta):
        total += _run_quantum(policy, machine)
    return total


def _run_quantum(policy, machine):
    assignment = policy.decide(machine)
    return _score(assignment)


def _score(assignment):
    started = time.monotonic()  # expect: DET105
    return float(len(assignment)) + started * 0.0


class TinyPolicy:
    def decide(self, machine):
        return _jitter([0, 1, 2])


def _jitter(cores):
    noise = np.random.random()  # expect: DET102,DET105
    return [c for c in cores if noise >= 0.0]


def off_path_diagnostic():
    """Not reachable from any decision root: clocks are fine here."""
    return time.perf_counter()

# Fixture for TEL401: spans opened outside `with`.


class Worker:
    def __init__(self, tracer) -> None:
        self.tracer = tracer

    def good_with_block(self) -> int:
        with self.tracer.span("work", category="fixture"):
            return 1

    def good_forwarding_helper(self, name: str):
        # The one allowed non-with use: forwarding a fresh span for the
        # caller's own with block.
        return self.tracer.span(name, category="fixture")

    def bad_assigned(self) -> None:
        span = self.tracer.span("leaky")  # expect: TEL401
        span.set(answer=42)

    def bad_bare_call(self, trace) -> None:
        trace.span("never-closed")  # expect: TEL401

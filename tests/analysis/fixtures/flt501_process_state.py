# Fixture for FLT501: fleet code touching process-global mutable state.
# lint-module: repro.fleet.fixture
import os

import numpy as np

from repro.rng import rng_for

_MODULE_RNG = rng_for("fleet.fixture", salt="bad")  # expect: FLT501


def good_unit(unit_id: str, seed: int) -> float:
    stream = rng_for(unit_id, salt="fleet.unit", seed=seed)
    return float(stream.uniform(0.0, 1.0))


def good_environment_read() -> str:
    # Reading the environment is fine; only mutation diverges workers.
    return os.environ.get("HOME", "")


def bad_numpy_constructor(seed: int) -> float:
    stream = np.random.default_rng(seed)  # expect: FLT501
    return float(stream.uniform(0.0, 1.0))


def bad_numpy_global_draw() -> float:
    return float(np.random.random())  # expect: FLT501, DET102


def bad_environ_write() -> None:
    os.environ["REPRO_FLEET_MODE"] = "parallel"  # expect: FLT501


def bad_environ_update() -> None:
    os.environ.update({"REPRO_FLEET_MODE": "parallel"})  # expect: FLT501


def bad_environ_delete() -> None:
    del os.environ["REPRO_FLEET_MODE"]  # expect: FLT501


def bad_putenv() -> None:
    os.putenv("REPRO_FLEET_MODE", "parallel")  # expect: FLT501

# Fixture for ROB601: silent exception swallowing in decision-critical code.
# lint-module: repro.core.fixture
import contextlib
from contextlib import suppress

from repro.logs import get_logger

log = get_logger("core.fixture")


def good_reraise(samples):
    try:
        return sum(samples) / len(samples)
    except ZeroDivisionError:
        raise ValueError("no samples")


def good_logged_fallback(samples):
    try:
        return sum(samples) / len(samples)
    except ZeroDivisionError:
        log.warning("no samples this quantum; serving last known good")
        return 0.0


def good_counted(telemetry, samples):
    try:
        return max(samples)
    except ValueError:
        telemetry.count("faults.detected.empty_sample_window")
        return 0.0


def bad_pass(samples):
    try:
        return sum(samples) / len(samples)
    except ZeroDivisionError:  # expect: ROB601
        pass
    return 0.0


def bad_bare_except(samples):
    try:
        return max(samples)
    except:  # noqa: E722  # expect: ROB601
        pass
    return 0.0


def bad_tuple(samples):
    try:
        return max(samples)
    except (ValueError, TypeError):  # expect: ROB601
        pass
    return 0.0


def bad_ellipsis(samples):
    try:
        return max(samples)
    except Exception:  # expect: ROB601
        ...
    return 0.0


def bad_continue(rows):
    total = 0.0
    for row in rows:
        try:
            total += float(row)
        except ValueError:  # expect: ROB601
            continue
    return total


def bad_suppress(path):
    with suppress(OSError):  # expect: ROB601
        return open(path).read()
    return ""


def bad_contextlib_suppress(path):
    with contextlib.suppress(OSError):  # expect: ROB601
        return open(path).read()
    return ""

"""SNAP701: every attribute mutated mid-run must round-trip through
the class's snapshot/restore pair (or be explicitly reset there)."""


class CoveredController:
    """Every mutated field is mentioned by the pair — clean."""

    def __init__(self):
        self.counter = 0
        self.scratch = None
        self.history = []

    def step(self, value):
        self.counter += 1
        self.scratch = value
        self.history.append(value)

    def snapshot(self):
        return {"counter": self.counter, "history": list(self.history)}

    def restore(self, state):
        self.counter = state["counter"]
        self.history = list(state["history"])
        # Deliberate reset still counts as coverage: the pair has
        # accounted for the field.
        self.scratch = None


class LeakyController:
    """Fields mutated in step() that the pair never mentions."""

    def __init__(self):
        self.counter = 0
        self.missing = 0
        self.log = []

    def step(self, value):
        self.counter += 1
        self.missing += 1  # expect: SNAP701
        self.log.append(value)  # expect: SNAP701

    def snapshot(self):
        return {"counter": self.counter}

    def restore(self, state):
        self.counter = state["counter"]


class BudgetMeter:
    """state()/restore() spelling qualifies a class too."""

    def __init__(self):
        self.spent = 0.0
        self.quanta = 0

    def charge(self, amount):
        self.spent += amount
        self.quanta += 1  # expect: SNAP701

    def state(self):
        return {"spent": self.spent}

    def restore(self, state):
        self.spent = state["spent"]


class PlainAccumulator:
    """No capture/restore pair: mutations are out of scope."""

    def __init__(self):
        self.total = 0

    def add(self, value):
        self.total += value

"""FLT502: module-level mutable state reachable from fleet worker
entry points (functions handed to WorkUnit(fn=...))."""

_RESULT_CACHE = {}
_SEEN_UNITS = []
_MODE = "idle"


def _compute(unit_id):
    return len(unit_id)


def _cell(unit_id):
    """Unit function: everything it touches runs inside a worker."""
    _RESULT_CACHE[unit_id] = _compute(unit_id)  # expect: FLT502
    _mark_seen(unit_id)
    _set_mode("busy")
    shadowing_cell([unit_id])
    return _RESULT_CACHE[unit_id]


def _mark_seen(unit_id):
    _SEEN_UNITS.append(unit_id)  # expect: FLT502


def _set_mode(mode):
    global _MODE
    _MODE = mode  # expect: FLT502


def build_units(unit_ids):
    return [WorkUnit(unit_id=uid, fn=_cell) for uid in unit_ids]


def untracked_helper(unit_id):
    """Not reachable from any worker entry point: writes are fine."""
    _RESULT_CACHE[unit_id] = 0
    local_cache = {}
    local_cache[unit_id] = 1
    return local_cache


def shadowing_cell(rows):
    """Locals that shadow module globals are the unit's own state."""
    _SEEN_UNITS = list(rows)
    _SEEN_UNITS.append("local")
    return _SEEN_UNITS

# Fixture for UNIT301: exact float-literal equality.


def good_tolerance(power_w: float) -> bool:
    return abs(power_w) <= 1e-9


def good_int_equality(n_cores: int) -> bool:
    return n_cores == 0


def good_suppressed(share: float) -> bool:
    # 0.5 here stands in for an exact sentinel, never computed.
    return share == 0.5  # repro: noqa[UNIT301]


def bad_eq_zero(power_w: float) -> bool:
    return power_w == 0.0  # expect: UNIT301


def bad_ne_literal(p99_s: float) -> bool:
    return p99_s != 1.5  # expect: UNIT301

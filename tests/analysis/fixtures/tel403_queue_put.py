# Fixture for TEL403: event-bus queue puts without drop accounting.
# lint-module: repro.telemetry.live


def stream(event_q, record) -> None:
    event_q.put(record)  # expect: TEL403


def stream_nowait(event_q, record) -> None:
    event_q.put_nowait(record)  # expect: TEL403


def stream_attribute(worker, record) -> None:
    worker.events_queue.put(record)  # expect: TEL403


def good_bounded(event_q, record) -> None:
    event_q.put(record, timeout=0.1)


def offer_event(event_q, record) -> bool:
    # The drop-accounting helper itself may use put_nowait: its whole
    # job is to catch queue.Full and count the drop.
    try:
        event_q.put_nowait(record)
    except Exception:
        return False
    return True


def good_suppressed(result_q, value) -> None:
    # Control plane: the result queue is unbounded and blocking is
    # the point, so the suppression is explicit.
    result_q.put(value)  # repro: noqa[TEL403]


def good_not_a_queue(results, record) -> None:
    # Non-queue receivers are out of scope.
    results.put(record)

# Fixture for UNIT303: quantities mixed across unit suffixes.


def good_same_unit(cap_w: float, budget_w: float) -> float:
    return cap_w - budget_w


def good_explicit_conversion(timeslice_ms: float) -> float:
    timeslice_s = timeslice_ms / 1000.0
    return timeslice_s


def bad_power_units(cap_w: float, budget_mw: float) -> bool:
    return cap_w < budget_mw  # expect: UNIT303


def bad_time_assignment(timeout_s: float, delay_ms: float) -> float:
    timeout_s = delay_ms  # expect: UNIT303
    return timeout_s


def bad_cross_dimension(power_w: float, latency_ms: float) -> float:
    return power_w + latency_ms  # expect: UNIT303

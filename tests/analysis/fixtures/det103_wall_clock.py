# Fixture for DET103: wall-clock reads in clock-free packages.
# lint-module: repro.sim.fixture
import time
from datetime import datetime


def good_simulated_time(slice_index: int, timeslice_s: float) -> float:
    return slice_index * timeslice_s


def bad_wall_clock() -> float:
    return time.time()  # expect: DET103


def bad_perf_counter() -> float:
    return time.perf_counter()  # expect: DET103


def bad_datetime_now() -> "datetime":
    return datetime.now()  # expect: DET103

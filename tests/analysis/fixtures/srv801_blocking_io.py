# lint-module: repro.server.fixture_daemon
"""SRV801 fixture: blocking I/O inside async defs under repro.server."""

import asyncio
import socket
import time
from pathlib import Path
from time import sleep


async def bad_wall_clock_sleep():
    time.sleep(0.1)  # expect: SRV801


async def bad_bare_sleep():
    sleep(0.1)  # expect: SRV801


async def bad_socket_recv(conn):
    return conn.recv(1024)  # expect: SRV801


async def bad_socket_sendall(conn, data):
    conn.sendall(data)  # expect: SRV801


async def bad_socket_connect():
    sock = socket.create_connection(("127.0.0.1", 80))  # expect: SRV801
    return sock


async def bad_sync_open(path):
    with open(path, "w") as handle:  # expect: SRV801
        handle.write("x")


async def bad_path_write(path):
    Path(path).write_text("x")  # expect: SRV801


async def bad_path_read(path):
    return Path(path).read_bytes()  # expect: SRV801


async def good_awaited_sleep():
    await asyncio.sleep(0.1)


async def good_stream_io(reader, writer):
    line = await reader.readline()
    writer.write(line)
    await writer.drain()
    return line


async def good_delegates_to_helper(path):
    return _sync_helper(path)


def _sync_helper(path):
    # Plain sync functions are the sanctioned home for bounded file
    # I/O — SRV801 only polices coroutine bodies.
    with open(path, "w") as handle:
        handle.write("x")
    return Path(path).read_text()

# Fixture for TEL404: every live-tree metric needs a reference row.
# lint-module: repro.telemetry.fixture


class Instrumented:
    def __init__(self, metrics) -> None:
        self.metrics = metrics

    def good_documented_names(self) -> None:
        # These names have MetricDoc rows in METRICS_REFERENCE.
        self.metrics.counter("harness.job_churn").inc()
        self.metrics.gauge("harness.power_w").set(99.5)
        self.metrics.histogram("slice.lc_p99_ms").observe(2.5)

    def good_dynamic_name(self, kind: str) -> None:
        # f-string names cannot be checked statically; the docs carry
        # an explicit {placeholder} family row instead.
        self.metrics.counter(f"faults.injected.{kind}").inc()

    def good_unrelated_receiver(self, pool) -> None:
        pool.counter("not.a.metric").inc()

    def bad_undocumented(self) -> None:
        self.metrics.counter("nobody.home").inc()  # expect: TEL404

    def bad_undocumented_gauge(self, registry) -> None:
        registry.gauge("mystery.depth").set(1.0)  # expect: TEL404

    def off_convention_is_tel402s_finding(self) -> None:
        self.metrics.counter("flatname").inc()  # expect: TEL402

# Fixture for RNG201: rng-taking functions minting new generators.
import numpy as np

from repro.rng import rng_for


def good_draws_from_parameter(rng: np.random.Generator) -> float:
    return float(rng.normal(0.0, 1.0))


def good_no_rng_parameter(seed: int) -> np.random.Generator:
    # Functions that are not handed a stream may mint their own.
    return np.random.default_rng(seed)


def bad_minted_inside(rng: np.random.Generator, seed: int) -> float:
    fresh = np.random.default_rng(seed)  # expect: RNG201
    return float(fresh.normal(0.0, 1.0))


def bad_rng_for_inside(churn_rng: np.random.Generator) -> float:
    other = rng_for("side-stream")  # expect: RNG201
    return float(other.uniform(0.0, 1.0))

# Fixture for DET104: iteration over unordered sets.


def good_sorted_iteration(jobs: set) -> list:
    return [j for j in sorted(jobs)]


def good_membership(jobs: set, j: int) -> bool:
    # Membership tests are order-free and fine.
    return j in jobs


def bad_for_over_set_call(names: list) -> list:
    out = []
    for name in set(names):  # expect: DET104
        out.append(name)
    return out


def bad_for_over_set_literal() -> list:
    out = []
    for name in {"a", "b"}:  # expect: DET104
        out.append(name)
    return out


def bad_comprehension(names: list) -> list:
    return [n for n in set(names)]  # expect: DET104


def bad_list_of_set(names: list) -> list:
    return list(set(names))  # expect: DET104

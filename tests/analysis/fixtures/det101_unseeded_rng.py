# Fixture for DET101: unseeded np.random.default_rng().
import numpy as np

from repro.rng import rng_for


def good_seeded() -> np.random.Generator:
    return np.random.default_rng(1234)


def good_derived() -> np.random.Generator:
    return rng_for("xapian", salt="fixture")


def bad_unseeded() -> np.random.Generator:
    return np.random.default_rng()  # expect: DET101


def bad_unseeded_alias() -> np.random.Generator:
    from numpy.random import default_rng

    return default_rng()  # expect: DET101

# Fixture for RNG202: RNG draws on exception paths.
import math

import numpy as np


def good_draw_on_main_path(rng: np.random.Generator, value: float) -> float:
    noisy = value * float(rng.normal(1.0, 0.1))
    try:
        return math.sqrt(noisy)
    except ValueError:
        # The fallback must not consume draws: it only fires on some
        # runs, which would shift every later sample.
        return math.nan


def bad_draw_in_handler(rng: np.random.Generator, value: float) -> float:
    try:
        return math.sqrt(value)
    except ValueError:
        return float(rng.normal(0.0, 1.0))  # expect: RNG202


class Machine:
    def __init__(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    def bad_attribute_draw(self, value: float) -> float:
        try:
            return math.sqrt(value)
        except ValueError:
            return float(self._rng.uniform(0.0, 1.0))  # expect: RNG202

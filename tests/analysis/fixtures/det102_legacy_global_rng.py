# Fixture for DET102: process-global RNG use.
import random

import numpy as np


def good_generator(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.uniform(0.0, 1.0))


def good_random_object(seed: int) -> float:
    # An explicit random.Random instance is seeded, private state.
    local = random.Random(seed)
    return local.uniform(0.0, 1.0)


def bad_stdlib_global() -> float:
    return random.random()  # expect: DET102


def bad_stdlib_seed() -> None:
    random.seed(7)  # expect: DET102


def bad_numpy_global() -> float:
    return float(np.random.uniform(0.0, 1.0))  # expect: DET102


def bad_numpy_shuffle(values: list) -> None:
    np.random.shuffle(values)  # expect: DET102

"""Content-hash lint cache: byte-identical replay, precise invalidation.

The cache's contract is that cached and uncached runs are
indistinguishable — same violations, same rendered bytes — and that
invalidation is keyed on file content plus the analysis package's own
sources (so editing a rule drops stale results instead of serving
them).
"""

import json

from repro.analysis import LintCache, lint_paths, render_json, render_text
from repro.analysis.cache import rules_fingerprint

BAD = "def f(x_w: float) -> bool:\n    return x_w == 0.0\n"
GOOD = "def f(x_w: float) -> bool:\n    return abs(x_w) <= 1e-9\n"
SNAP_BAD = (
    "class S:\n"
    "    def __init__(self):\n"
    "        self.a = 0\n"
    "    def tick(self):\n"
    "        self.a += 1\n"
    "    def snapshot(self):\n"
    "        return {}\n"
    "    def restore(self, state):\n"
    "        pass\n"
)


def make_tree(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "bad.py").write_text(BAD)
    (src / "good.py").write_text(GOOD)
    (src / "snap.py").write_text(SNAP_BAD)
    return src


def test_cached_run_is_byte_identical_to_uncached(tmp_path):
    src = make_tree(tmp_path)
    cache_path = tmp_path / "cache.json"
    uncached = lint_paths([src])
    warm = lint_paths([src], cache=LintCache(cache_path))
    replay = lint_paths([src], cache=LintCache(cache_path))
    assert uncached == warm == replay
    assert render_text(uncached) == render_text(replay)
    assert render_json(uncached) == render_json(replay)


def test_second_run_hits_for_every_file_and_the_program_pass(tmp_path):
    src = make_tree(tmp_path)
    cache_path = tmp_path / "cache.json"
    cold = LintCache(cache_path)
    lint_paths([src], cache=cold)
    assert cold.hits == 0
    assert cold.misses == 4  # 3 files + the program pass
    warm = LintCache(cache_path)
    lint_paths([src], cache=warm)
    assert warm.misses == 0
    assert warm.hits == 4


def test_editing_one_file_invalidates_only_that_file(tmp_path):
    src = make_tree(tmp_path)
    cache_path = tmp_path / "cache.json"
    lint_paths([src], cache=LintCache(cache_path))
    (src / "good.py").write_text(GOOD + "\n# touched\n")
    cache = LintCache(cache_path)
    violations = lint_paths([src], cache=cache)
    # The two untouched files hit; the edited file and the program
    # pass (whose key spans every file) recompute.
    assert cache.hits == 2
    assert cache.misses == 2
    assert violations == lint_paths([src])


def test_fixing_a_violation_updates_the_cached_result(tmp_path):
    src = make_tree(tmp_path)
    cache_path = tmp_path / "cache.json"
    first = lint_paths([src], cache=LintCache(cache_path))
    assert any(v.rule == "UNIT301" for v in first)
    (src / "bad.py").write_text(GOOD)
    second = lint_paths([src], cache=LintCache(cache_path))
    assert not any(v.rule == "UNIT301" for v in second)
    # SNAP701 from the program pass survives the edit.
    assert any(v.rule == "SNAP701" for v in second)


def test_corrupt_cache_is_discarded(tmp_path):
    src = make_tree(tmp_path)
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    cache = LintCache(cache_path)
    violations = lint_paths([src], cache=cache)
    assert violations == lint_paths([src])
    # And the save repaired the file.
    payload = json.loads(cache_path.read_text())
    assert payload["version"] == 1


def test_stale_fingerprint_drops_every_entry(tmp_path):
    src = make_tree(tmp_path)
    cache_path = tmp_path / "cache.json"
    lint_paths([src], cache=LintCache(cache_path))
    payload = json.loads(cache_path.read_text())
    payload["fingerprint"] = "0" * 64
    cache_path.write_text(json.dumps(payload))
    cache = LintCache(cache_path)
    lint_paths([src], cache=cache)
    assert cache.hits == 0


def test_fingerprint_is_stable_within_a_process():
    assert rules_fingerprint() == rules_fingerprint()
    assert len(rules_fingerprint()) == 64

"""Self-tests for every lint rule, driven by the fixture files.

Each fixture under ``fixtures/`` contains known-good and known-bad
snippets for one rule; bad lines carry a trailing ``# expect: RULE``
marker.  The test lints the fixture and requires the found
``(rule, line)`` pairs to match the markers exactly — no misses, no
extra findings.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import all_rules, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[A-Z0-9,\s]+)")
_MODULE_RE = re.compile(r"^#\s*lint-module:\s*(?P<module>[\w.]+)\s*$", re.M)


def expected_findings(source):
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for rule in match.group("rules").split(","):
                expected.add((rule.strip(), lineno))
    return expected


def fixture_files():
    return sorted(FIXTURES.glob("*.py"))


def test_fixture_directory_is_populated():
    # One fixture file per rule.
    assert len(fixture_files()) >= len(all_rules())


@pytest.mark.parametrize(
    "path", fixture_files(), ids=lambda p: p.stem
)
def test_fixture_matches_expectations(path):
    source = path.read_text()
    module_match = _MODULE_RE.search(source)
    module = module_match.group("module") if module_match else None
    found = {
        (v.rule, v.line)
        for v in lint_source(source, path=str(path), module=module)
    }
    expected = expected_findings(source)
    assert expected, f"{path.name} has no # expect markers"
    assert found == expected


def test_every_rule_has_a_seeded_violation():
    """Each registered rule is caught at least once across fixtures."""
    caught = set()
    for path in fixture_files():
        source = path.read_text()
        for rule, _ in expected_findings(source):
            caught.add(rule)
    assert caught == {rule.id for rule in all_rules()}


def test_rules_have_metadata():
    rules = all_rules()
    assert len({r.id for r in rules}) == len(rules)
    for rule in rules:
        assert rule.id and rule.title and rule.rationale

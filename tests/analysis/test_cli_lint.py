"""CLI contract of ``python -m repro lint``.

Exit codes: 0 clean, 1 violations found, 2 usage error — the contract
the CI static-analysis job relies on.
"""

import json

from repro.analysis import all_rules
from repro.cli import main

BAD = "def f(x_w: float) -> bool:\n    return x_w == 0.0\n"
GOOD = "def f(x_w: float) -> bool:\n    return abs(x_w) <= 1e-9\n"


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text(GOOD)
    assert main(["lint", str(path)]) == 0
    assert "no static-analysis violations" in capsys.readouterr().out


def test_lint_bad_file_exits_one(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text(BAD)
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert "UNIT301" in out
    assert f"{path}:2:" in out


def test_lint_json_report(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text(BAD)
    assert main(["lint", "--json", str(path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    record = payload["violations"][0]
    assert record["rule"] == "UNIT301"
    assert record["line"] == 2
    assert record["path"] == str(path)


def test_lint_json_clean_report(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text(GOOD)
    assert main(["lint", "--json", str(path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"count": 0, "violations": []}


def test_lint_missing_path_exits_two(tmp_path, capsys):
    missing = tmp_path / "nope" / "missing.py"
    assert main(["lint", str(missing)]) == 2
    assert "no such path" in capsys.readouterr().err


def test_lint_default_target_is_the_package(capsys):
    # No paths: lints the installed repro package, which must be clean.
    assert main(["lint"]) == 0


def test_list_rules_describes_every_rule(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out
    assert "repro: noqa" in out


SNAP_BAD = (
    "class S:\n"
    "    def __init__(self):\n"
    "        self.a = 0\n"
    "    def tick(self):\n"
    "        self.a += 1\n"
    "    def snapshot(self):\n"
    "        return {}\n"
    "    def restore(self, state):\n"
    "        pass\n"
)


def test_lint_program_rule_violation_exits_one(tmp_path, capsys):
    """The 0/1/2 contract covers whole-program rules too."""
    path = tmp_path / "snap.py"
    path.write_text(SNAP_BAD)
    assert main(["lint", "--no-cache", str(path)]) == 1
    assert "SNAP701" in capsys.readouterr().out


def test_lint_cached_and_uncached_output_is_byte_identical(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text(BAD + SNAP_BAD)
    cache = tmp_path / "cache.json"
    assert main(["lint", "--no-cache", str(path)]) == 1
    uncached = capsys.readouterr().out
    assert main(["lint", "--cache", str(cache), str(path)]) == 1
    cold = capsys.readouterr().out
    assert main(["lint", "--cache", str(cache), str(path)]) == 1
    warm = capsys.readouterr().out
    assert uncached == cold == warm
    assert cache.is_file()


def test_lint_graph_exports_json(tmp_path, capsys):
    source = tmp_path / "mod.py"
    source.write_text("def a():\n    return b()\n\ndef b():\n    return 1\n")
    graph = tmp_path / "graph.json"
    assert main([
        "lint", "--no-cache", "--graph", str(graph), str(source),
    ]) == 0
    payload = json.loads(graph.read_text())
    assert {"functions", "edges", "decision_roots",
            "fleet_entry_points"} <= set(payload)
    quals = {fn["qualname"] for fn in payload["functions"]}
    assert {"mod.a", "mod.b"} <= quals
    assert {"caller": "mod.a", "callee": "mod.b"} in payload["edges"]


def test_lint_graph_exports_dot(tmp_path, capsys):
    source = tmp_path / "mod.py"
    source.write_text("def a():\n    return b()\n\ndef b():\n    return 1\n")
    graph = tmp_path / "graph.dot"
    assert main([
        "lint", "--no-cache", "--graph", str(graph), str(source),
    ]) == 0
    text = graph.read_text()
    assert text.startswith("digraph repro_calls {")
    assert '"mod.a" -> "mod.b";' in text

"""The shipped source tree must be lint-clean.

This is the test CI leans on: any new violation in ``src/repro``
(an unseeded generator, a wall-clock read in the simulator, a float
equality on a computed quantity, ...) fails here with the exact
file:line, before the behavioural consequences show up as flaky
replay in some downstream experiment.
"""

from pathlib import Path

import repro
from repro.analysis import lint_paths

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_package_root_is_the_real_tree():
    assert (PACKAGE_ROOT / "analysis" / "engine.py").is_file()
    assert (PACKAGE_ROOT / "sim" / "machine.py").is_file()


def test_live_source_tree_is_clean():
    violations = lint_paths([PACKAGE_ROOT])
    details = "\n".join(v.format() for v in violations)
    assert not violations, f"src tree has lint violations:\n{details}"

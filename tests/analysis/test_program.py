"""Whole-program layer: symbol table, call graph, and program rules.

Covers the interprocedural machinery itself (module/class/function
resolution, call-edge tiers, reachability) plus the behaviours only a
cross-file pass can deliver: rng_for collisions spanning two modules
and the SNAP701 mutation test — delete a field from a fixture
controller's snapshot and the rule must fire.
"""

from pathlib import Path

from repro.analysis import lint_paths, lint_source
from repro.analysis.engine import _parse_context
from repro.analysis.program import ProgramContext

FIXTURES = Path(__file__).parent / "fixtures"


def build(*sources, module_prefix="mod"):
    contexts = []
    for index, source in enumerate(sources):
        ctx, err = _parse_context(
            source, f"<{module_prefix}{index}>", f"{module_prefix}{index}"
        )
        assert err is None
        contexts.append(ctx)
    return ProgramContext.build(contexts)


# -- symbol table ------------------------------------------------------

def test_symbol_table_indexes_modules_classes_functions():
    program = build(
        "import numpy as np\n"
        "from repro.rng import rng_for\n"
        "\n"
        "def helper():\n"
        "    return 1\n"
        "\n"
        "class Widget:\n"
        "    def method(self):\n"
        "        return helper()\n"
    )
    assert "mod0" in program.modules
    mod = program.modules["mod0"]
    assert mod.aliases["np"] == "numpy"
    assert mod.aliases["rng_for"] == "repro.rng.rng_for"
    assert mod.functions["helper"] == "mod0.helper"
    assert mod.classes["Widget"] == "mod0.Widget"
    assert "mod0.Widget.method" in program.functions
    assert program.functions["mod0.Widget.method"].cls == "mod0.Widget"


def test_call_graph_resolves_bare_and_self_calls():
    program = build(
        "def leaf():\n"
        "    return 0\n"
        "\n"
        "def trunk():\n"
        "    return leaf()\n"
        "\n"
        "class Node:\n"
        "    def outer(self):\n"
        "        return self.inner()\n"
        "    def inner(self):\n"
        "        return trunk()\n"
    )
    graph = program.call_graph
    assert "mod0.leaf" in graph["mod0.trunk"]
    assert "mod0.Node.inner" in graph["mod0.Node.outer"]
    assert "mod0.trunk" in graph["mod0.Node.inner"]


def test_call_graph_resolves_typed_locals_and_fields():
    program = build(
        "class Engine:\n"
        "    def start(self):\n"
        "        return 1\n"
        "\n"
        "class Car:\n"
        "    def __init__(self):\n"
        "        self.engine = Engine()\n"
        "    def drive(self):\n"
        "        return self.engine.start()\n"
        "\n"
        "def race(car: Car):\n"
        "    return car.drive()\n"
        "\n"
        "def build_and_go():\n"
        "    car = Car()\n"
        "    return car.drive()\n"
    )
    graph = program.call_graph
    assert "mod0.Engine.start" in graph["mod0.Car.drive"]
    assert "mod0.Car.drive" in graph["mod0.race"]
    assert "mod0.Car.drive" in graph["mod0.build_and_go"]
    # Constructor call also links to __init__.
    assert "mod0.Car.__init__" in graph["mod0.build_and_go"]


def test_call_graph_cha_fallback_links_by_method_name():
    program = build(
        "class Alpha:\n"
        "    def act(self):\n"
        "        return 1\n"
        "\n"
        "def dispatch(thing):\n"
        "    return thing.act()\n"
    )
    assert "mod0.Alpha.act" in program.call_graph["mod0.dispatch"]


def test_cross_module_calls_resolve_through_aliases():
    program = build(
        "def shared():\n"
        "    return 7\n",
        "from mod0 import shared\n"
        "\n"
        "def caller():\n"
        "    return shared()\n",
    )
    assert "mod0.shared" in program.call_graph["mod1.caller"]


# -- reachability ------------------------------------------------------

def test_reachable_walks_transitively_and_reports_chains():
    program = build(
        "def a():\n"
        "    return b()\n"
        "def b():\n"
        "    return c()\n"
        "def c():\n"
        "    return 0\n"
        "def island():\n"
        "    return 1\n"
    )
    parents = program.reachable(["mod0.a"])
    assert set(parents) == {"mod0.a", "mod0.b", "mod0.c"}
    assert program.chain(parents, "mod0.c") == [
        "mod0.a", "mod0.b", "mod0.c"
    ]


def test_decision_roots_and_fleet_entries_follow_conventions():
    program = build(
        "def run_policy(policy):\n"
        "    return policy\n"
        "\n"
        "class MyPolicy:\n"
        "    def decide(self):\n"
        "        return 1\n"
        "\n"
        "class DDSSearch:\n"
        "    def search(self):\n"
        "        return 2\n"
        "\n"
        "def _cell(uid):\n"
        "    return uid\n"
        "\n"
        "def build():\n"
        "    return WorkUnit(unit_id='u', fn=_cell)\n"
    )
    assert program.decision_roots() == [
        "mod0.DDSSearch.search",
        "mod0.MyPolicy.decide",
        "mod0.run_policy",
    ]
    assert program.fleet_entry_points() == ["mod0._cell"]


# -- rng_for summaries -------------------------------------------------

def test_rng_for_calls_record_static_keys():
    program = build(
        "from repro.rng import rng_for\n"
        "def f(seed, name):\n"
        "    a = rng_for('fixed', seed=seed)\n"
        "    b = rng_for('salted', salt='s1', seed=seed)\n"
        "    c = rng_for(name, salt='s2', seed=seed)\n"
        "    return a, b, c\n"
    )
    keys = sorted(
        c.constant_key for c in program.rng_for_calls
        if c.constant_key is not None
    )
    assert keys == [("fixed", ""), ("salted", "s1")]
    dynamic = [
        c for c in program.rng_for_calls if c.constant_key is None
    ]
    assert len(dynamic) == 1


def test_rng203_collision_detected_across_files(tmp_path):
    (tmp_path / "one.py").write_text(
        "from repro.rng import rng_for\n"
        "def f(seed):\n"
        "    return rng_for('cross-file', seed=seed)\n"
    )
    (tmp_path / "two.py").write_text(
        "from repro.rng import rng_for\n"
        "def g(seed):\n"
        "    return rng_for('cross-file', seed=seed)\n"
    )
    violations = lint_paths([tmp_path])
    rng = [v for v in violations if v.rule == "RNG203"]
    assert len(rng) == 1
    assert rng[0].path.endswith("two.py")
    assert "one.py" in rng[0].message


# -- SNAP701 mutation test ---------------------------------------------

SNAPSHOT_FIXTURE = FIXTURES / "snap701_snapshot_completeness.py"


def covered_controller_source():
    """The CoveredController class, isolated from the seeded-bad ones."""
    text = SNAPSHOT_FIXTURE.read_text()
    start = text.index("class CoveredController")
    end = text.index("class LeakyController")
    return text[start:end]


def test_complete_snapshot_is_clean():
    source = covered_controller_source()
    assert '"counter": self.counter' in source
    assert [v.rule for v in lint_source(source)] == []


def test_snap701_fires_when_a_snapshot_field_is_deleted():
    """Mutation test: drop one field from the snapshot/restore pair
    and the completeness rule must catch it."""
    source = covered_controller_source()
    mutated = (
        source
        .replace('"history": list(self.history)', '"_": None')
        .replace("self.history = list(state[\"history\"])\n", "")
    )
    assert "self.history.append" in mutated  # the mutation site survives
    violations = lint_source(mutated)
    assert [v.rule for v in violations] == ["SNAP701"]
    assert "history" in violations[0].message


def test_snap701_fires_per_forgotten_field():
    source = (
        "class S:\n"
        "    def __init__(self):\n"
        "        self.a = 0\n"
        "        self.b = 0\n"
        "    def tick(self):\n"
        "        self.a += 1\n"
        "        self.b += 1\n"
        "    def snapshot(self):\n"
        "        return {}\n"
        "    def restore(self, state):\n"
        "        pass\n"
    )
    violations = lint_source(source)
    assert [v.rule for v in violations] == ["SNAP701", "SNAP701"]
    assert "S.a" in violations[0].message
    assert "S.b" in violations[1].message


def test_snap701_counts_external_writes():
    source = (
        "class S:\n"
        "    def __init__(self):\n"
        "        self.a = 0\n"
        "    def snapshot(self):\n"
        "        return {}\n"
        "    def restore(self, state):\n"
        "        pass\n"
        "\n"
        "def poke(s: S):\n"
        "    s.a = 5\n"
    )
    violations = lint_source(source)
    assert [v.rule for v in violations] == ["SNAP701"]
    assert "poke" in violations[0].message


def test_deep_attribute_writes_root_at_the_field():
    source = (
        "class S:\n"
        "    def __init__(self):\n"
        "        self.rng = None\n"
        "    def reseed(self):\n"
        "        self.rng.bit_generator.state = {}\n"
        "    def snapshot(self):\n"
        "        return {}\n"
        "    def restore(self, state):\n"
        "        pass\n"
    )
    violations = lint_source(source)
    assert [v.rule for v in violations] == ["SNAP701"]
    assert "S.rng" in violations[0].message

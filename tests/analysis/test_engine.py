"""Engine-level tests: suppression, module inference, parse errors."""

import textwrap
from pathlib import Path

from repro.analysis import (
    PARSE_ERROR_RULE,
    lint_paths,
    lint_source,
    module_name_for,
)

BAD_EQ = "def f(x_w: float) -> bool:\n    return x_w == 0.0\n"


def test_finds_violation_in_source():
    found = lint_source(BAD_EQ)
    assert [v.rule for v in found] == ["UNIT301"]
    assert found[0].line == 2


def test_bare_noqa_suppresses_everything():
    source = BAD_EQ.replace("== 0.0", "== 0.0  # repro: noqa")
    assert lint_source(source) == []


def test_rule_specific_noqa_suppresses_only_that_rule():
    source = BAD_EQ.replace("== 0.0", "== 0.0  # repro: noqa[UNIT301]")
    assert lint_source(source) == []


def test_mismatched_noqa_does_not_suppress():
    source = BAD_EQ.replace("== 0.0", "== 0.0  # repro: noqa[DET101]")
    assert [v.rule for v in lint_source(source)] == ["UNIT301"]


def test_noqa_with_several_rules():
    source = textwrap.dedent(
        """
        import numpy as np

        def f() -> float:
            rng = np.random.default_rng()  # repro: noqa[DET101, DET102]
            return float(rng.random())
        """
    )
    assert lint_source(source) == []


def test_noqa_only_applies_to_its_line():
    source = "x_w = 1.0  # repro: noqa[UNIT301]\n" + BAD_EQ
    assert [v.rule for v in lint_source(source)] == ["UNIT301"]


def test_parse_error_is_reported_not_raised():
    found = lint_source("def broken(:\n")
    assert [v.rule for v in found] == [PARSE_ERROR_RULE]


def test_violation_format_is_clickable():
    found = lint_source(BAD_EQ, path="pkg/mod.py")
    assert found[0].format().startswith("pkg/mod.py:2:")
    assert "UNIT301" in found[0].format()


def test_module_name_inference():
    assert module_name_for(Path("src/repro/sim/machine.py")) == (
        "repro.sim.machine"
    )
    assert module_name_for(Path("/abs/src/repro/faults/__init__.py")) == (
        "repro.faults"
    )
    assert module_name_for(Path("scripts/tool.py")) == "tool"


def test_wall_clock_rule_is_scoped_by_module():
    source = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
    inside = lint_source(source, module="repro.sim.fake")
    outside = lint_source(source, module="repro.telemetry.fake")
    assert [v.rule for v in inside] == ["DET103"]
    assert outside == []


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "ok.py").write_text("X = 1\n")
    (tmp_path / "bad.py").write_text(BAD_EQ)
    nested = tmp_path / "nested"
    nested.mkdir()
    (nested / "also_bad.py").write_text(BAD_EQ)
    found = lint_paths([tmp_path])
    assert sorted(Path(v.path).name for v in found) == [
        "also_bad.py", "bad.py",
    ]

"""Property-based fuzzing of the control loop's safety invariants.

Whatever sequence of loads and budgets arrives, every assignment the
controller emits must be *executable*: within the cache budget, with a
sane LC core count, non-crashing, and with the power fallback engaged
when budgets are hostile.  Hypothesis drives randomized multi-quantum
scenarios against a fast controller configuration.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import build_machine_for_mix
from repro.workloads.mixes import paper_mixes

FAST = ControllerConfig(
    dds=DDSParams(initial_random_points=10, max_iter=6,
                  points_per_iteration=3, n_threads=4),
    seed=1,
)

loads = st.floats(min_value=0.05, max_value=1.4)
cap_fractions = st.floats(min_value=0.3, max_value=1.0)


def fresh_policy(mix_index=0, seed=1):
    machine = build_machine_for_mix(paper_mixes()[mix_index], seed=seed)
    policy = CuttleSysPolicy.for_machine(machine, seed=seed, config=FAST)
    return machine, policy


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario=st.lists(st.tuples(loads, cap_fractions),
                         min_size=2, max_size=5))
def test_assignments_always_executable(scenario):
    """Any load/budget sequence yields runnable assignments."""
    machine, policy = fresh_policy()
    reference = machine.reference_max_power()
    for load, fraction in scenario:
        budget = reference * fraction
        assignment = policy.decide(machine, load, budget)
        # Invariant 1: cache budget respected.
        assert assignment.cache_ways_used() <= machine.params.llc_ways + 1e-9
        # Invariant 2: LC core count within bounds.
        assert 1 <= assignment.lc_cores <= machine.params.n_cores - 1
        # Invariant 3: one entry per batch job.
        assert len(assignment.batch_configs) == 16
        # Invariant 4: the machine accepts and executes it.
        measurement = machine.run_slice(assignment, load)
        policy.observe(measurement)
        assert measurement.total_power > 0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fraction=st.floats(min_value=0.25, max_value=0.45))
def test_hostile_budgets_trigger_gating(fraction):
    """Severely tight budgets always engage the gating fallback."""
    machine, policy = fresh_policy()
    budget = machine.reference_max_power() * fraction
    assignment = policy.decide(machine, 0.8, budget)
    gated = sum(1 for c in assignment.batch_configs if c is None)
    narrow = sum(
        1 for c in assignment.batch_configs
        if c is not None and c.core.widths() == (2, 2, 2)
    )
    # Under a hostile budget the controller must throttle hard: gate
    # cores and/or park most jobs in the narrowest configuration.
    assert gated + narrow >= 8


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(load_a=loads, load_b=loads)
def test_load_swings_never_crash(load_a, load_b):
    """Alternating load extremes keeps the loop alive and sane."""
    machine, policy = fresh_policy()
    budget = machine.reference_max_power() * 0.7
    for load in (load_a, load_b, load_a, load_b):
        assignment = policy.decide(machine, load, budget)
        measurement = machine.run_slice(assignment, load)
        policy.observe(measurement)
    assert len(policy.controller.timings) == 4


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_determinism_per_seed(seed):
    """Same seed, same scenario => identical decisions."""
    def run():
        machine, policy = fresh_policy(seed=seed % 1000 + 1)
        budget = machine.reference_max_power() * 0.7
        labels = []
        for _ in range(2):
            a = policy.decide(machine, 0.8, budget)
            labels.append(
                tuple(c.label if c else "-" for c in a.batch_configs)
            )
            policy.observe(machine.run_slice(a, 0.8))
        return labels

    assert run() == run()

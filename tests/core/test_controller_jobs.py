"""Live job add/remove on the controller (the server's bind/unbind path).

``repro.server`` cancels and admits batch jobs between quanta by
calling ``remove_job``/``add_job`` on the controller; these tests pin
the contract that path relies on: vacated slots are gated off in every
decision (including cached-assignment fallbacks), re-added slots are
re-profiled from scratch, and the gate survives snapshot/restore.
"""

import pytest

from test_controller import build_controller, step


class TestRemoveJob:
    def test_removed_slot_gated_off_in_decide(self):
        machine, controller = build_controller()
        step(machine, controller, 0.5, 120.0)
        controller.remove_job(2)
        assignment, _ = step(machine, controller, 0.5, 120.0)
        assert assignment.batch_configs[2] is None
        assert controller.active_jobs()[2] is False

    def test_remove_is_idempotent(self):
        _, controller = build_controller()
        controller.remove_job(0)
        controller.remove_job(0)
        assert controller.active_jobs()[0] is False

    def test_out_of_range_rejected(self):
        _, controller = build_controller()
        with pytest.raises(ValueError):
            controller.remove_job(-1)
        with pytest.raises(ValueError):
            controller.remove_job(999)

    def test_gate_applies_to_cached_assignments(self):
        """Safe-mode reuses the last-known-good assignment, which may
        predate the removal; the mask must still zero the slot."""
        machine, controller = build_controller()
        step(machine, controller, 0.5, 120.0)
        cached = controller.decide(0.5, 120.0)
        assert cached.batch_configs[3] is not None
        controller.remove_job(3)
        masked = controller._apply_job_mask(cached)
        assert masked.batch_configs[3] is None
        # Only the vacated slot changes.
        assert [
            c for j, c in enumerate(masked.batch_configs) if j != 3
        ] == [
            c for j, c in enumerate(cached.batch_configs) if j != 3
        ]


class TestAddJob:
    def test_add_into_occupied_slot_rejected(self):
        _, controller = build_controller()
        with pytest.raises(ValueError):
            controller.add_job(0)

    def test_add_lifts_gate_and_reprofiles(self):
        machine, controller = build_controller()
        step(machine, controller, 0.5, 120.0)
        controller.remove_job(1)
        step(machine, controller, 0.5, 120.0)
        controller.add_job(1)
        assert controller.active_jobs()[1] is True
        assignment, _ = step(machine, controller, 0.5, 120.0)
        assert assignment.batch_configs[1] is not None


class TestSnapshotRoundTrip:
    def test_job_gate_survives_snapshot_restore(self):
        machine, controller = build_controller()
        step(machine, controller, 0.5, 120.0)
        controller.remove_job(4)
        state = controller.snapshot()

        machine2, restored = build_controller()
        restored.restore(state)
        assert restored.active_jobs() == controller.active_jobs()
        assignment = restored.decide(0.5, 120.0)
        assert assignment.batch_configs[4] is None

"""Tests for the rack-level power broker."""

import pytest

from repro.core.broker import BrokerParams, PowerBroker, Socket
from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import build_machine_for_mix
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

FAST = ControllerConfig(
    dds=DDSParams(initial_random_points=10, max_iter=5,
                  points_per_iteration=3, n_threads=4),
    seed=2,
)


def make_socket(name, mix_index, seed, load=0.6):
    machine = build_machine_for_mix(paper_mixes()[mix_index], seed=seed)
    policy = CuttleSysPolicy.for_machine(machine, seed=seed, config=FAST)
    return Socket(name, machine, policy, LoadTrace.constant(load))


class TestConstruction:
    def test_equal_initial_split(self):
        sockets = [make_socket("a", 0, 1), make_socket("b", 44, 2)]
        broker = PowerBroker(sockets, rack_budget_w=200.0)
        assert broker.budgets == {"a": 100.0, "b": 100.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerBroker([], 100.0)
        with pytest.raises(ValueError):
            PowerBroker([make_socket("a", 0, 1)], 0.0)
        dup = [make_socket("a", 0, 1), make_socket("a", 44, 2)]
        with pytest.raises(ValueError):
            PowerBroker(dup, 100.0)
        with pytest.raises(ValueError):
            BrokerParams(step=0.0)
        with pytest.raises(ValueError):
            Socket("x", None, None, LoadTrace.constant(0.5),
                   floor_fraction=0.0)


class TestRun:
    def test_budget_conservation(self):
        sockets = [make_socket("a", 0, 1), make_socket("b", 44, 2)]
        rack = 220.0
        broker = PowerBroker(sockets, rack)
        run = broker.run(n_slices=4)
        for budgets in run.budgets:
            assert sum(budgets.values()) == pytest.approx(rack, rel=1e-6)

    def test_floor_respected(self):
        sockets = [
            make_socket("a", 0, 1, load=0.9),
            make_socket("b", 44, 2, load=0.1),
        ]
        broker = PowerBroker(sockets, 200.0, BrokerParams(step=1.0))
        run = broker.run(n_slices=6)
        floor = 200.0 / 2 * sockets[1].floor_fraction
        assert min(run.budget_series("b")) >= floor - 1e-6

    def test_measurements_collected_per_socket(self):
        sockets = [make_socket("a", 0, 1), make_socket("b", 44, 2)]
        run = PowerBroker(sockets, 220.0).run(n_slices=3)
        assert len(run.measurements) == 3
        assert set(run.measurements[0]) == {"a", "b"}
        assert run.total_batch_instructions() > 0
        assert run.total_batch_instructions("a") < \
            run.total_batch_instructions()

    def test_frozen_broker_never_moves_budget(self):
        sockets = [make_socket("a", 0, 1), make_socket("b", 44, 2)]
        broker = PowerBroker(sockets, 220.0, BrokerParams(step=1e-12))
        run = broker.run(n_slices=3)
        series = run.budget_series("a")
        assert max(series) - min(series) < 0.01

    def test_n_slices_validation(self):
        sockets = [make_socket("a", 0, 1)]
        with pytest.raises(ValueError):
            PowerBroker(sockets, 150.0).run(n_slices=0)

"""Tests for the soft-penalty system objective (Eq. 1-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import SystemObjective
from repro.sim.coreconfig import N_JOINT_CONFIGS


def make_objective(n_jobs=4, max_power=50.0, **kwargs):
    rng = np.random.default_rng(1)
    bips = rng.uniform(0.5, 5.0, size=(n_jobs, N_JOINT_CONFIGS))
    power = rng.uniform(1.0, 4.0, size=(n_jobs, N_JOINT_CONFIGS))
    defaults = dict(max_power=max_power, max_ways=32.0)
    defaults.update(kwargs)
    return SystemObjective(bips=bips, power=power, **defaults)


class TestGmean:
    def test_gmean_matches_numpy(self):
        obj = make_objective()
        x = np.array([0, 10, 50, 107])
        vals = obj.bips[np.arange(4), x]
        assert obj.gmean_bips(x) == pytest.approx(
            float(np.exp(np.mean(np.log(vals))))
        )

    def test_time_share_scales_gmean(self):
        obj = make_objective(time_share=0.5)
        ref = make_objective(time_share=1.0)
        x = np.array([1, 2, 3, 4])
        assert obj.gmean_bips(x) == pytest.approx(0.5 * ref.gmean_bips(x))


class TestConstraints:
    def test_power_sum_includes_reservation(self):
        obj = make_objective(reserved_power=10.0)
        x = np.zeros(4, dtype=int)
        expected = float(np.sum(obj.power[np.arange(4), x])) + 10.0
        assert obj.total_power(x) == pytest.approx(expected)

    def test_ways_pairing_halves(self):
        obj = make_objective()
        # Joint index with cache_index 0 -> 0.5 ways.
        half = 0  # {2,2,2}/0.5w
        one = 1   # {2,2,2}/1w
        x = np.array([half, half, half, one])
        # ceil(3/2)=2 paired ways + 1 whole way.
        assert obj.total_ways(x) == pytest.approx(3.0)

    def test_reserved_ways_added(self):
        obj = make_objective(reserved_ways=4.0)
        x = np.array([1, 1, 1, 1])  # four 1-way allocations
        assert obj.total_ways(x) == pytest.approx(8.0)

    def test_penalties_reduce_objective(self):
        obj = make_objective(max_power=1.0)  # everything over budget
        x = np.array([107, 107, 107, 107])
        assert obj(x) < obj.gmean_bips(x)

    def test_no_penalty_when_feasible(self):
        obj = make_objective(max_power=1e9)
        x = np.array([5, 5, 5, 5])
        assert obj(x) == pytest.approx(obj.gmean_bips(x))

    def test_is_feasible(self):
        obj = make_objective(max_power=1e9)
        assert obj.is_feasible(np.array([1, 1, 1, 1]))
        tight = make_objective(max_power=0.1)
        assert not tight.is_feasible(np.array([1, 1, 1, 1]))


class TestBatchEvaluation:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25)
    def test_batch_matches_scalar(self, seed):
        obj = make_objective(max_power=40.0)
        rng = np.random.default_rng(seed)
        xs = rng.integers(0, N_JOINT_CONFIGS, size=(8, 4))
        batch = obj.evaluate_batch(xs)
        scalar = np.array([obj(x) for x in xs])
        assert np.allclose(batch, scalar)

    def test_batch_shape_validation(self):
        obj = make_objective()
        with pytest.raises(ValueError):
            obj.evaluate_batch(np.zeros((3, 7), dtype=int))


class TestValidation:
    def test_shape_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SystemObjective(
                bips=rng.uniform(1, 2, (2, N_JOINT_CONFIGS)),
                power=rng.uniform(1, 2, (3, N_JOINT_CONFIGS)),
                max_power=10.0,
                max_ways=32.0,
            )

    def test_nonstandard_width_needs_ways(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SystemObjective(
                bips=rng.uniform(1, 2, (2, 27)),
                power=rng.uniform(1, 2, (2, 27)),
                max_power=10.0,
                max_ways=32.0,
            )
        obj = SystemObjective(
            bips=rng.uniform(1, 2, (2, 27)),
            power=rng.uniform(1, 2, (2, 27)),
            max_power=10.0,
            max_ways=32.0,
            ways_by_config=np.zeros(27),
        )
        assert obj.n_confs == 27
        assert obj.total_ways(np.array([0, 26])) == 0.0

    def test_positive_limits(self):
        with pytest.raises(ValueError):
            make_objective(max_power=0.0)

    def test_wrong_decision_shape(self):
        obj = make_objective()
        with pytest.raises(ValueError):
            obj(np.array([1, 2]))

"""Tests for the CuttleSys policy wrapper and the Policy protocol."""

import pytest

from repro.baselines import CoreGatingPolicy, NoGatingPolicy
from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams
from repro.core.runtime import CuttleSysPolicy, Policy
from repro.experiments.harness import build_machine_for_mix
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

FAST = ControllerConfig(
    dds=DDSParams(initial_random_points=20, max_iter=10,
                  points_per_iteration=4, n_threads=4),
    seed=5,
)


@pytest.fixture()
def machine():
    return build_machine_for_mix(paper_mixes()[0], seed=5)


class TestProtocol:
    def test_cuttlesys_satisfies_policy_protocol(self, machine):
        policy = CuttleSysPolicy.for_machine(machine, seed=5, config=FAST)
        assert isinstance(policy, Policy)

    def test_baselines_satisfy_policy_protocol(self):
        assert isinstance(NoGatingPolicy(), Policy)
        assert isinstance(CoreGatingPolicy(), Policy)


class TestForMachine:
    def test_default_construction(self, machine):
        policy = CuttleSysPolicy.for_machine(machine, seed=5, config=FAST)
        assert policy.controller.n_batch == 16
        assert policy.controller.n_train == 16
        assert policy.name == "cuttlesys"
        assert 0 < policy.overhead_fraction < 0.1

    def test_seed_override(self, machine):
        base = ControllerConfig(seed=0, dds=FAST.dds)
        policy = CuttleSysPolicy.for_machine(machine, seed=9, config=base)
        assert policy.controller.config.seed == 9

    def test_explicit_training_set(self, machine):
        from repro.workloads.batch import batch_profile
        from repro.workloads.latency_critical import make_services

        profiles = [batch_profile("mcf"), batch_profile("lbm")]
        policy = CuttleSysPolicy.for_machine(
            machine,
            seed=5,
            config=FAST,
            train_profiles=profiles,
            train_services=list(make_services(machine.perf).values()),
        )
        assert policy.controller.n_train == 2


class TestRun:
    def test_run_convenience(self, machine):
        policy = CuttleSysPolicy.for_machine(machine, seed=5, config=FAST)
        run = policy.run(
            machine, LoadTrace.constant(0.6), power_cap_fraction=0.8,
            n_slices=3,
        )
        assert run.n_slices == 3
        assert run.total_batch_instructions() > 0

    def test_decide_observe_loop(self, machine):
        policy = CuttleSysPolicy.for_machine(machine, seed=5, config=FAST)
        budget = machine.reference_max_power() * 0.8
        assignment = policy.decide(machine, 0.7, budget)
        measurement = machine.run_slice(assignment, 0.7)
        policy.observe(measurement)  # must not raise
        assert len(policy.controller.timings) == 1

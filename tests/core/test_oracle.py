"""Tests for the perfect-inference reconfigurable oracle."""


from repro.core.dds import DDSParams
from repro.core.oracle import OracleReconfigPolicy
from repro.core.runtime import Policy

FAST = DDSParams(initial_random_points=20, max_iter=10,
                 points_per_iteration=4, n_threads=4)


class TestOracleReconfig:
    def test_satisfies_policy_protocol(self):
        assert isinstance(OracleReconfigPolicy(), Policy)

    def test_meets_budget_and_qos(self, quiet_machine):
        policy = OracleReconfigPolicy(dds=FAST)
        budget = quiet_machine.reference_max_power() * 0.6
        assignment = policy.decide(quiet_machine, 0.8, budget)
        m = quiet_machine.run_slice(assignment, 0.8)
        assert m.total_power <= budget * 1.03
        assert m.lc_p99 <= quiet_machine.lc_service.qos_latency_s

    def test_lc_gets_true_min_power_config(self, quiet_machine):
        policy = OracleReconfigPolicy(dds=FAST)
        budget = quiet_machine.reference_max_power()
        assignment = policy.decide(quiet_machine, 0.8, budget)
        # xapian's true least-power QoS config at 80 % is {2,2,6}.
        assert assignment.lc_config.core.label == "{2,2,6}"

    def test_tight_budget_gates(self, quiet_machine):
        policy = OracleReconfigPolicy(dds=FAST)
        assignment = policy.decide(quiet_machine, 0.8, 45.0)
        gated = sum(1 for c in assignment.batch_configs if c is None)
        assert gated > 0

    def test_upper_bounds_cuttlesys(self, quiet_machine):
        """Oracle inference must not lose to SGD inference."""
        from repro.core.controller import ControllerConfig
        from repro.core.runtime import CuttleSysPolicy

        budget = quiet_machine.reference_max_power() * 0.6
        oracle_total = 0.0
        policy = OracleReconfigPolicy(dds=FAST)
        for _ in range(4):
            a = policy.decide(quiet_machine, 0.8, budget)
            m = quiet_machine.run_slice(a, 0.8)
            oracle_total += m.total_batch_instructions

        cuttlesys = CuttleSysPolicy.for_machine(
            quiet_machine, seed=3,
            config=ControllerConfig(seed=3, dds=FAST),
        )
        cs_total = 0.0
        for _ in range(4):
            a = cuttlesys.decide(quiet_machine, 0.8, budget)
            m = quiet_machine.run_slice(a, 0.8)
            cuttlesys.observe(m)
            cs_total += m.total_batch_instructions
        assert oracle_total >= cs_total * 0.9

"""Tests for PQ-reconstruction with SGD (accuracy bands of Fig. 5a)."""

import numpy as np
import pytest

from repro.core.matrices import ObservedMatrix, power_rows, throughput_rows
from repro.core.sgd import PQReconstructor, SGDParams
from repro.sim.coreconfig import CoreConfig, JointConfig, N_JOINT_CONFIGS
from repro.workloads.batch import batch_profile, train_test_split

HI = JointConfig(CoreConfig.widest(), 1.0).index
LO = JointConfig(CoreConfig.narrowest(), 1.0).index


def profiled_matrix(builder, model):
    """Known training rows + two-sample test rows (the runtime shape)."""
    train_names, test_names = train_test_split()
    train = builder([batch_profile(n) for n in train_names], model)
    test = builder([batch_profile(n) for n in test_names], model)
    matrix = ObservedMatrix(train.shape[0] + test.shape[0])
    for i in range(train.shape[0]):
        matrix.set_known_row(i, train[i])
    for t in range(test.shape[0]):
        matrix.observe(train.shape[0] + t, HI, test[t, HI])
        matrix.observe(train.shape[0] + t, LO, test[t, LO])
    return matrix, test, train.shape[0]


def error_percentiles(full, test, n_train):
    err = (full[n_train:] - test) / test * 100.0
    return {
        "p5": np.percentile(err, 5),
        "p25": np.percentile(err, 25),
        "median": np.percentile(err, 50),
        "p75": np.percentile(err, 75),
        "p95": np.percentile(err, 95),
    }


class TestAccuracyBands:
    """The paper's Fig. 5a claims, verified on this implementation."""

    def test_throughput_quartiles_within_10pct(self, perf):
        matrix, test, n_train = profiled_matrix(throughput_rows, perf)
        full = PQReconstructor().reconstruct(matrix)
        p = error_percentiles(full, test, n_train)
        assert abs(p["p25"]) < 10.0
        assert abs(p["p75"]) < 10.0
        assert abs(p["median"]) < 5.0

    def test_throughput_tails_within_25pct(self, perf):
        matrix, test, n_train = profiled_matrix(throughput_rows, perf)
        full = PQReconstructor().reconstruct(matrix)
        p = error_percentiles(full, test, n_train)
        assert abs(p["p5"]) < 25.0
        assert abs(p["p95"]) < 25.0

    def test_power_errors_tiny(self, power):
        matrix, test, n_train = profiled_matrix(power_rows, power)
        full = PQReconstructor().reconstruct(matrix)
        p = error_percentiles(full, test, n_train)
        assert abs(p["p5"]) < 5.0
        assert abs(p["p95"]) < 5.0


class TestMechanics:
    def test_observed_entries_kept_verbatim(self, perf):
        matrix, test, n_train = profiled_matrix(throughput_rows, perf)
        full = PQReconstructor().reconstruct(matrix)
        assert full[n_train, HI] == matrix.values[n_train, HI]
        assert full[n_train, LO] == matrix.values[n_train, LO]

    def test_known_rows_reproduced_exactly(self, perf):
        matrix, _, n_train = profiled_matrix(throughput_rows, perf)
        full = PQReconstructor().reconstruct(matrix)
        assert np.allclose(full[:n_train], matrix.values[:n_train])

    def test_all_entries_positive(self, perf):
        matrix, _, _ = profiled_matrix(throughput_rows, perf)
        full = PQReconstructor().reconstruct(matrix)
        assert np.all(full > 0)

    def test_deterministic(self, perf):
        matrix, _, _ = profiled_matrix(throughput_rows, perf)
        a = PQReconstructor().reconstruct(matrix)
        b = PQReconstructor().reconstruct(matrix)
        assert np.allclose(a, b)

    def test_diagnostics_populated(self, perf):
        matrix, _, _ = profiled_matrix(throughput_rows, perf)
        reconstructor = PQReconstructor()
        reconstructor.reconstruct(matrix)
        d = reconstructor.last_diagnostics
        assert d is not None
        assert d.iterations >= 1
        assert d.observed_rmse >= 0

    def test_parallel_close_to_serial(self, perf):
        """HOGWILD-style refinement stays within ~2 % of serial (§V)."""
        matrix, test, n_train = profiled_matrix(throughput_rows, perf)
        parallel = PQReconstructor(SGDParams(parallel=True)).reconstruct(matrix)
        serial = PQReconstructor(SGDParams(parallel=False)).reconstruct(matrix)
        diff = np.abs(parallel - serial) / serial
        assert np.median(diff) < 0.02

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            PQReconstructor().reconstruct(ObservedMatrix(3))

    def test_nonpositive_rejected_in_log_space(self):
        matrix = ObservedMatrix(1)
        matrix.observe(0, 0, -1.0)
        with pytest.raises(ValueError):
            PQReconstructor().reconstruct(matrix)

    def test_linear_space_allows_negatives(self):
        matrix = ObservedMatrix(2)
        matrix.set_known_row(0, np.linspace(-1, 1, N_JOINT_CONFIGS))
        matrix.observe(1, 0, -0.9)
        matrix.observe(1, 107, 0.9)
        full = PQReconstructor(SGDParams(log_space=False)).reconstruct(matrix)
        assert full.shape == (2, N_JOINT_CONFIGS)

    def test_no_anchor_rows_falls_back(self):
        """With only sparse rows, reconstruction still returns values."""
        rng = np.random.default_rng(0)
        matrix = ObservedMatrix(4)
        for r in range(4):
            for c in rng.integers(0, N_JOINT_CONFIGS, size=3):
                matrix.observe(r, int(c), float(rng.uniform(1, 2)))
        full = PQReconstructor().reconstruct(matrix)
        assert np.all(np.isfinite(full))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SGDParams(rank=0)
        with pytest.raises(ValueError):
            SGDParams(learning_rate=0)
        with pytest.raises(ValueError):
            SGDParams(regularization=-1)
        with pytest.raises(ValueError):
            SGDParams(anchor_fraction=0.0)
        with pytest.raises(ValueError):
            SGDParams(fold_in_ridge=0.0)


class TestMoreObservationsHelp:
    def test_extra_steady_state_samples_reduce_error(self, perf):
        """Matrix updates from steady states sharpen predictions (§IV-B)."""
        matrix, test, n_train = profiled_matrix(throughput_rows, perf)
        base_full = PQReconstructor().reconstruct(matrix)
        base_err = np.abs(base_full[n_train:] - test) / test

        richer = matrix.copy()
        extra_cols = [JointConfig(CoreConfig(4, 4, 4), 2.0).index,
                      JointConfig(CoreConfig(6, 2, 4), 1.0).index,
                      JointConfig(CoreConfig(2, 4, 6), 4.0).index]
        for t in range(test.shape[0]):
            for col in extra_cols:
                richer.observe(n_train + t, col, test[t, col])
        rich_full = PQReconstructor().reconstruct(richer)
        rich_err = np.abs(rich_full[n_train:] - test) / test
        assert np.median(rich_err) < np.median(base_err)

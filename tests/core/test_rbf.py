"""Tests for the 3MM3 + RBF surrogate (Flicker's estimator)."""

import numpy as np
import pytest

from repro.core.matrices import throughput_rows
from repro.core.rbf import RBFSurrogate, l9_sample_configs
from repro.sim.coreconfig import (
    CACHE_ALLOCS,
    N_JOINT_CONFIGS,
    SECTION_WIDTHS,
    JointConfig,
)
from repro.workloads.batch import batch_profile


class TestL9Design:
    def test_nine_configs(self):
        configs = l9_sample_configs()
        assert len(configs) == 9
        assert len(set(configs)) == 9

    def test_orthogonal_array_balance(self):
        """Each width appears exactly three times per section (3MM3)."""
        configs = l9_sample_configs()
        for attr in ("fe", "be", "ls"):
            for width in SECTION_WIDTHS:
                count = sum(1 for c in configs if getattr(c, attr) == width)
                assert count == 3

    def test_covers_extremes(self):
        labels = {c.label for c in l9_sample_configs()}
        assert "{2,2,2}" in labels
        assert "{6,2,6}" not in labels or True  # spot check only


class TestRBFSurrogate:
    def sample_indices(self, n):
        configs = l9_sample_configs()[:n]
        return [JointConfig(c, CACHE_ALLOCS[0]).index for c in configs]

    def test_interpolates_samples_exactly(self, perf):
        row = throughput_rows([batch_profile("mcf")], perf)[0]
        idx = self.sample_indices(9)
        surrogate = RBFSurrogate(log_space=True).fit(idx, row[idx])
        predictions = surrogate.predict(idx)
        assert np.allclose(predictions, row[idx], rtol=1e-4)

    def test_nine_samples_reasonable_accuracy(self, perf):
        """With the full 3MM3 design, RBF works (as in Flicker)."""
        row = throughput_rows([batch_profile("gcc")], perf)[0]
        idx = self.sample_indices(9)
        surrogate = RBFSurrogate(log_space=True).fit(idx, row[idx])
        # Restrict to the sampled cache point: the design never varies
        # cache ways, so only core-config generalisation is fair game.
        core_idx = [
            JointConfig.from_index(i).index
            for i in range(N_JOINT_CONFIGS)
            if JointConfig.from_index(i).cache_ways == CACHE_ALLOCS[0]
        ]
        err = np.abs(surrogate.predict(core_idx) - row[core_idx]) / row[core_idx]
        assert np.median(err) < 0.15

    def test_three_samples_much_worse_than_nine(self, perf):
        """The Fig. 9 failure mode: under-determined interpolation."""
        row = throughput_rows([batch_profile("soplex")], perf)[0]
        core_idx = [
            i for i in range(N_JOINT_CONFIGS)
            if JointConfig.from_index(i).cache_ways == CACHE_ALLOCS[0]
        ]

        def max_err(n):
            idx = self.sample_indices(n)
            s = RBFSurrogate(log_space=True).fit(idx, row[idx])
            return float(
                np.max(np.abs(s.predict(core_idx) - row[core_idx]) / row[core_idx])
            )

        assert max_err(3) > 2 * max_err(9)

    def test_gaussian_kernel(self, perf):
        row = throughput_rows([batch_profile("mcf")], perf)[0]
        idx = self.sample_indices(9)
        surrogate = RBFSurrogate(kernel="gaussian", log_space=True).fit(
            idx, row[idx]
        )
        assert np.all(np.isfinite(surrogate.predict_all()))

    def test_predict_all_shape(self, perf):
        row = throughput_rows([batch_profile("mcf")], perf)[0]
        idx = self.sample_indices(5)
        surrogate = RBFSurrogate(log_space=True).fit(idx, row[idx])
        assert surrogate.predict_all().shape == (N_JOINT_CONFIGS,)

    def test_log_space_outputs_positive(self, perf):
        row = throughput_rows([batch_profile("mcf")], perf)[0]
        idx = self.sample_indices(3)
        surrogate = RBFSurrogate(log_space=True).fit(idx, row[idx])
        assert np.all(surrogate.predict_all() > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RBFSurrogate(kernel="cubic")
        with pytest.raises(ValueError):
            RBFSurrogate(epsilon=0.0)
        surrogate = RBFSurrogate()
        with pytest.raises(RuntimeError):
            surrogate.predict_all()
        with pytest.raises(ValueError):
            surrogate.fit([], [])
        with pytest.raises(ValueError):
            surrogate.fit([0, 1], [1.0])
        with pytest.raises(ValueError):
            surrogate.fit([9999], [1.0])
        with pytest.raises(ValueError):
            RBFSurrogate(log_space=True).fit([0], [-1.0])

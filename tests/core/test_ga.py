"""Tests for the genetic-algorithm explorer (Flicker's search)."""

import numpy as np
import pytest

from repro.core.ga import GAParams, GeneticSearch


class SeparableObjective:
    def __init__(self, targets):
        self.targets = np.asarray(targets)

    def __call__(self, x):
        return -float(np.sum(np.abs(x - self.targets)))

    def evaluate_batch(self, xs):
        return -np.sum(np.abs(xs - self.targets[None, :]), axis=1).astype(float)


class TestSearchQuality:
    def test_approaches_separable_optimum(self):
        targets = np.array([3, 77, 104, 0])
        result = GeneticSearch().search(
            SeparableObjective(targets), n_dims=4, n_confs=108,
            rng=np.random.default_rng(0),
        )
        assert result.best_objective > -25

    def test_more_generations_do_not_hurt(self):
        targets = np.arange(8) * 12
        short = GeneticSearch(GAParams(generations=5)).search(
            SeparableObjective(targets), 8, 108, np.random.default_rng(1)
        )
        long = GeneticSearch(GAParams(generations=60)).search(
            SeparableObjective(targets), 8, 108, np.random.default_rng(1)
        )
        assert long.best_objective >= short.best_objective


class TestContract:
    def test_fixed_dimensions_respected(self):
        result = GeneticSearch().search(
            SeparableObjective(np.zeros(4, dtype=int)),
            n_dims=4,
            n_confs=108,
            rng=np.random.default_rng(0),
            fixed=[(2, 99)],
        )
        assert result.best_x[2] == 99

    def test_initial_seed_point(self):
        targets = np.array([10, 20, 30])
        result = GeneticSearch(GAParams(generations=1)).search(
            SeparableObjective(targets), 3, 108,
            np.random.default_rng(0), initial=targets,
        )
        assert result.best_objective == 0.0

    def test_elitism_preserves_best(self):
        targets = np.array([5, 50, 100])
        result = GeneticSearch().search(
            SeparableObjective(targets), 3, 108, np.random.default_rng(2)
        )
        assert all(
            b >= a - 1e-9 for a, b in zip(result.history, result.history[1:])
        )

    def test_explored_recording(self):
        result = GeneticSearch(GAParams(population=10, generations=2)).search(
            SeparableObjective(np.zeros(3, dtype=int)), 3, 20,
            np.random.default_rng(0), record_explored=True,
        )
        assert len(result.explored) == result.evaluations
        assert result.evaluations == 10 * 3  # initial + 2 generations

    def test_deterministic(self):
        obj = SeparableObjective(np.arange(5) * 7)
        a = GeneticSearch().search(obj, 5, 108, np.random.default_rng(3))
        b = GeneticSearch().search(obj, 5, 108, np.random.default_rng(3))
        assert np.array_equal(a.best_x, b.best_x)

    def test_bounds_respected(self):
        result = GeneticSearch(GAParams(mutation_rate=0.5)).search(
            SeparableObjective(np.zeros(6, dtype=int)), 6, 12,
            np.random.default_rng(0), record_explored=True,
        )
        for x, _ in result.explored:
            assert np.all((x >= 0) & (x < 12))

    def test_validation(self):
        searcher = GeneticSearch()
        obj = SeparableObjective(np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            searcher.search(obj, 0, 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            searcher.search(obj, 2, 1, np.random.default_rng(0))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GAParams(population=2)
        with pytest.raises(ValueError):
            GAParams(tournament=0)
        with pytest.raises(ValueError):
            GAParams(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GAParams(mutation_rate=-0.1)
        with pytest.raises(ValueError):
            GAParams(elites=50, population=50)

"""Tests for the CuttleSys Resource Controller."""

import numpy as np
import pytest

from repro.core.controller import (
    LOAD_GRID,
    ControllerConfig,
    ResourceController,
    nearest_load_bucket,
)
from repro.core.dds import DDSParams
from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig
from repro.sim.machine import Machine, MachineParams
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import lc_service, make_services

FAST_DDS = DDSParams(initial_random_points=20, max_iter=10,
                     points_per_iteration=4, n_threads=4)


def build_controller(machine=None, **config_kwargs):
    if machine is None:
        _, test_names = train_test_split()
        machine = Machine(
            lc_service=lc_service("xapian"),
            batch_profiles=[batch_profile(n) for n in (test_names * 2)[:16]],
            params=MachineParams(),
            seed=3,
        )
    train_names, _ = train_test_split()
    config = ControllerConfig(
        dds=config_kwargs.pop("dds", FAST_DDS), **config_kwargs
    )
    controller = ResourceController(
        machine,
        [batch_profile(n) for n in train_names],
        list(make_services(machine.perf).values()),
        config,
    )
    return machine, controller


def step(machine, controller, load, budget):
    sample = machine.profile(load, lc_cores=controller.lc_cores)
    controller.ingest_profiling(sample)
    assignment = controller.decide(load, budget)
    measurement = machine.run_slice(assignment, load)
    controller.ingest_measurement(measurement)
    return assignment, measurement


class TestLoadBuckets:
    def test_grid(self):
        assert LOAD_GRID[0] == 0.1
        assert LOAD_GRID[-1] == 1.0
        assert len(LOAD_GRID) == 10

    @pytest.mark.parametrize(
        "load,bucket", [(0.0, 0.1), (0.23, 0.2), (0.78, 0.8), (1.4, 1.0)]
    )
    def test_nearest(self, load, bucket):
        assert nearest_load_bucket(load) == bucket


class TestColdStart:
    def test_first_decision_is_conservative(self):
        machine, controller = build_controller()
        sample = machine.profile(0.8, lc_cores=16)
        controller.ingest_profiling(sample)
        assignment = controller.decide(0.8, machine.reference_max_power())
        assert assignment.lc_config.core == CoreConfig.widest()
        assert assignment.lc_config.cache_ways == CACHE_ALLOCS[-1]
        assert assignment.lc_cores == 16  # no reclamation on cold start

    def test_assignment_respects_cache_budget(self):
        machine, controller = build_controller()
        sample = machine.profile(0.8, lc_cores=16)
        controller.ingest_profiling(sample)
        assignment = controller.decide(0.8, machine.reference_max_power())
        assert assignment.cache_ways_used() <= machine.params.llc_ways + 1e-9


class TestSteadyState:
    def test_lc_config_relaxes_after_observations(self):
        machine, controller = build_controller()
        budget = machine.reference_max_power() * 0.7
        for _ in range(6):
            assignment, _ = step(machine, controller, 0.8, budget)
        # After several quanta, the controller must have moved off the
        # all-wide conservative configuration.
        assert assignment.lc_config.core != CoreConfig.widest()

    def test_qos_maintained_throughout(self):
        machine, controller = build_controller()
        budget = machine.reference_max_power() * 0.6
        qos = machine.lc_service.qos_latency_s
        violations = 0
        for _ in range(8):
            _, measurement = step(machine, controller, 0.8, budget)
            if measurement.lc_p99 > qos:
                violations += 1
        assert violations == 0

    def test_power_tracks_budget(self):
        machine, controller = build_controller()
        budget = machine.reference_max_power() * 0.6
        powers = []
        for _ in range(8):
            _, measurement = step(machine, controller, 0.8, budget)
            powers.append(measurement.total_power)
        # Steady state within a few percent of the budget.
        assert np.median(powers[3:]) <= budget * 1.05

    def test_timings_recorded(self):
        machine, controller = build_controller()
        step(machine, controller, 0.8, machine.reference_max_power())
        assert len(controller.timings) == 1
        assert controller.timings[0].sgd_s > 0
        assert controller.timings[0].search_s > 0
        assert controller.timings[0].total_s > 0


class TestCoreRelocation:
    def test_reclaims_core_under_saturation(self):
        machine, controller = build_controller()
        budget = machine.reference_max_power()
        # Warm up at moderate load, then slam to saturation.
        for _ in range(3):
            step(machine, controller, 0.8, budget)
        before = controller.lc_cores
        for _ in range(4):
            step(machine, controller, 1.3, budget)
        assert controller.lc_cores > before

    def test_reclamation_is_one_core_per_quantum(self):
        machine, controller = build_controller()
        budget = machine.reference_max_power()
        for _ in range(3):
            step(machine, controller, 0.8, budget)
        counts = [controller.lc_cores]
        for _ in range(3):
            step(machine, controller, 1.3, budget)
            counts.append(controller.lc_cores)
        steps = [b - a for a, b in zip(counts, counts[1:])]
        assert all(s <= 1 for s in steps)


class TestPowerFallback:
    def test_tiny_budget_gates_batch_jobs(self):
        machine, controller = build_controller()
        sample = machine.profile(0.8, lc_cores=16)
        controller.ingest_profiling(sample)
        assignment = controller.decide(0.8, 40.0)  # draconian cap
        gated = sum(1 for c in assignment.batch_configs if c is None)
        assert gated > 0

    def test_budget_validation(self):
        machine, controller = build_controller()
        with pytest.raises(ValueError):
            controller.decide(0.8, 0.0)


class TestMatrixBookkeeping:
    def test_profiling_fills_two_columns(self):
        machine, controller = build_controller()
        sample = machine.profile(0.8, lc_cores=16)
        controller.ingest_profiling(sample)
        row = controller._batch_row(0)
        assert controller._bips_matrix.observed_count(row) == 2
        assert controller._power_matrix.observed_count(row) == 2

    def test_measurement_adds_steady_state_columns(self):
        machine, controller = build_controller()
        budget = machine.reference_max_power()
        step(machine, controller, 0.8, budget)
        row = controller._batch_row(0)
        # Two profiling columns + at least the visited steady config.
        assert controller._bips_matrix.observed_count(row) >= 3

    def test_latency_observation_lands_in_bucket(self):
        machine, controller = build_controller()
        budget = machine.reference_max_power()
        step(machine, controller, 0.8, budget)
        assert controller._latency_observations(0.8, 16) >= 1
        assert controller._latency_observations(0.3, 16) == 0


class TestGAExplorer:
    def test_ga_variant_runs(self):
        machine, controller = build_controller(explorer="ga")
        budget = machine.reference_max_power() * 0.7
        assignment, _ = step(machine, controller, 0.8, budget)
        assert len(assignment.batch_configs) == 16


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ControllerConfig(initial_lc_cores=0)
        with pytest.raises(ValueError):
            ControllerConfig(min_lc_cores=0)
        with pytest.raises(ValueError):
            ControllerConfig(min_lc_cores=20, initial_lc_cores=16)
        with pytest.raises(ValueError):
            ControllerConfig(lc_slack_to_yield=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(explorer="simulated-annealing")

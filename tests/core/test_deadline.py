"""Tests for the decision-deadline budget and the degradation ladder.

The deadline layer (docs/robustness.md) meters the decision loop in
deterministic virtual time and, on exhaustion, walks full DDS →
reduced-sample DDS → last-known-good → static fair-share.  These tests
pin the meter's arithmetic, the ladder's rung accounting, the auditor's
``deadline_degraded`` attribution, and the zero-rung guarantee at ample
budget.
"""

import pytest

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams
from repro.core.deadline import (
    DecisionBudget,
    dds_search_cost,
    reduced_dds_params,
)
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.telemetry import Telemetry
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

#: One full quantum of the default loop costs ~6.5k metered operations;
#: comfortably above that means "never degrade".
AMPLE = 8000
#: Enough for profiling + a reduced search, not the full one.
TIGHT = 2000
#: Not even a reduced search fits: last-good / fair-share territory.
STARVED = 50


def _policy_for(machine, seed=7, budget=None):
    return CuttleSysPolicy.for_machine(
        machine, seed=seed,
        config=ControllerConfig(seed=seed, decision_budget=budget),
    )


def _run(budget, n_slices=4, mix_index=0, telemetry=None, seed=7):
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    machine = build_machine_for_mix(mix, seed=seed)
    policy = _policy_for(machine, seed=seed, budget=budget)
    run = run_policy(
        machine, policy, LoadTrace.constant(0.7),
        power_cap_fraction=0.7, n_slices=n_slices, max_power_w=reference,
        telemetry=telemetry,
    )
    return run, policy


def _counters(telemetry):
    return telemetry.metrics.as_dict()["counters"]


class TestDecisionBudget:
    def test_metering(self):
        budget = DecisionBudget(100)
        budget.begin_quantum()
        budget.charge(30)
        assert budget.spent == 30 and budget.total_spent == 30
        assert budget.can_afford(70) and not budget.can_afford(71)
        assert budget.remaining() == 70
        budget.begin_quantum()
        assert budget.spent == 0 and budget.total_spent == 30
        assert budget.quanta == 2

    def test_unlimited(self):
        budget = DecisionBudget(None)
        budget.charge(10**9)
        assert not budget.limited
        assert budget.can_afford(10**12)
        assert budget.remaining() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionBudget(0)
        with pytest.raises(ValueError):
            DecisionBudget(10).charge(-1)

    def test_state_round_trip(self):
        budget = DecisionBudget(100)
        budget.begin_quantum()
        budget.charge(42)
        clone = DecisionBudget(100)
        clone.restore(budget.state())
        assert clone.spent == 42
        assert clone.total_spent == 42
        assert clone.quanta == 1

    def test_phase_attribution_is_additive_only(self):
        budget = DecisionBudget(100)
        budget.begin_quantum()
        budget.charge(30, phase="sgd.reconstruct")
        budget.charge(20, phase="dds.search")
        budget.charge(5)  # unattributed charges meter all the same
        assert budget.spent == 55 and budget.total_spent == 55
        assert budget.spent_by_phase == {
            "sgd.reconstruct": 30, "dds.search": 20,
        }
        budget.begin_quantum()
        budget.charge(10, phase="sgd.reconstruct")
        # Phase tallies are lifetime totals, not per-quantum.
        assert budget.spent_by_phase["sgd.reconstruct"] == 40

    def test_phase_attribution_round_trips_through_state(self):
        budget = DecisionBudget(100)
        budget.begin_quantum()
        budget.charge(7, phase="mgk.latency")
        state = budget.state()
        assert state["by_phase"] == {"mgk.latency": 7}
        clone = DecisionBudget(100)
        clone.restore(state)
        assert clone.spent_by_phase == {"mgk.latency": 7}
        # Pre-phase snapshots (no by_phase key) stay loadable.
        legacy = DecisionBudget(100)
        legacy.restore({"spent": 1, "total_spent": 1, "quanta": 1})
        assert legacy.spent_by_phase == {}


class TestSearchCost:
    def test_exact_default_cost(self):
        params = DDSParams()
        assert dds_search_cost(params, seeded=False) == (
            params.initial_random_points
            + params.max_iter * params.points_per_iteration
            * params.n_threads
        )
        assert (
            dds_search_cost(params, seeded=True)
            == dds_search_cost(params, seeded=False) + 1
        )

    def test_reduced_params_shrink_and_validate(self):
        full = DDSParams()
        reduced = reduced_dds_params(full)
        assert (
            dds_search_cost(reduced, seeded=True)
            < dds_search_cost(full, seeded=True) / 10
        )
        # Floors keep every field valid even for tiny configurations.
        tiny = reduced_dds_params(
            DDSParams(initial_random_points=2, max_iter=3,
                      points_per_iteration=1, n_threads=1)
        )
        assert tiny.initial_random_points >= 1
        assert tiny.max_iter >= 2
        assert tiny.points_per_iteration >= 1
        assert tiny.n_threads >= 1


class TestDegradationLadder:
    def test_ample_budget_takes_zero_rungs(self):
        telemetry = Telemetry()
        run, policy = _run(AMPLE, telemetry=telemetry)
        counters = _counters(telemetry)
        assert counters.get("controller.degradation.rungs", 0) == 0
        assert not policy.controller.deadline_degraded_quantum
        assert len(run.measurements) == 4

    def test_tight_budget_takes_reduced_dds(self):
        telemetry = Telemetry()
        run, policy = _run(TIGHT, telemetry=telemetry)
        counters = _counters(telemetry)
        assert counters.get("controller.degradation.reduced_dds", 0) > 0
        # Every quantum still produced a valid assignment.
        assert len(run.measurements) == 4
        for m in run.measurements:
            assert m.assignment is not None
            assert m.assignment.lc_cores >= 1

    def test_starved_budget_still_serves_every_quantum(self):
        telemetry = Telemetry()
        run, policy = _run(STARVED, telemetry=telemetry)
        counters = _counters(telemetry)
        # Cold start has no last-known-good: the ladder bottoms out at
        # static fair-share, and the run still completes.
        assert counters.get("controller.degradation.fair_share", 0) > 0
        assert len(run.measurements) == 4
        for m in run.measurements:
            assert m.assignment is not None

    def test_rung_counter_is_sum_of_rungs(self):
        telemetry = Telemetry()
        _run(TIGHT, telemetry=telemetry)
        counters = _counters(telemetry)
        total = counters.get("controller.degradation.rungs", 0)
        by_rung = sum(
            v for k, v in counters.items()
            if k.startswith("controller.degradation.")
            and k != "controller.degradation.rungs"
        )
        assert total == by_rung > 0

    def test_meter_spend_is_deterministic(self):
        _, policy_a = _run(TIGHT)
        _, policy_b = _run(TIGHT)
        assert (
            policy_a.controller.budget.total_spent
            == policy_b.controller.budget.total_spent
        )


class TestDeadlineAttribution:
    """The auditor's ``deadline_degraded`` QoS-violation cause."""

    @pytest.fixture()
    def auditor(self):
        telemetry = Telemetry()
        return telemetry.enable_accuracy_audit()

    def _measurement(self, p99, cores=4, load=0.5):
        from types import SimpleNamespace

        return SimpleNamespace(
            assignment=SimpleNamespace(lc_cores=cores, extra_lc=()),
            lc_p99=p99,
            lc_load=load,
            extra_lc_p99=(),
            extra_lc_loads=(),
        )

    def _feasible_qos(self, machine, cores=4, load=0.5):
        import numpy as np

        truth = machine.oracle_lc_latency_row(load, cores, 0)
        finite = truth[np.isfinite(truth)]
        assert finite.size
        return float(finite.min()) * 1.5

    def _degraded_policy(self, prediction=None):
        from types import SimpleNamespace

        return SimpleNamespace(
            last_prediction=prediction,
            controller=SimpleNamespace(deadline_degraded_quantum=True),
        )

    def test_degraded_quantum_attributes_deadline(
        self, auditor, quiet_machine
    ):
        qos = self._feasible_qos(quiet_machine)
        auditor.audit_measurement(
            quiet_machine, self._measurement(p99=qos * 2), quantum=0,
            qos_s=qos, policy=self._degraded_policy(),
        )
        counters = auditor.telemetry.metrics.counters
        assert (
            counters["accuracy.qos_attrib.deadline_degraded"].value == 1
        )

    def test_infeasible_wins_over_deadline(self, auditor, quiet_machine):
        # When no configuration could have met QoS, the deadline is
        # not the cause — infeasibility takes precedence.
        auditor.audit_measurement(
            quiet_machine, self._measurement(p99=1.0), quantum=0,
            qos_s=1e-9, policy=self._degraded_policy(),
        )
        counters = auditor.telemetry.metrics.counters
        assert counters["accuracy.qos_attrib.infeasible"].value == 1
        assert (
            "accuracy.qos_attrib.deadline_degraded" not in counters
        )

    def test_kind_is_registered(self):
        from repro.telemetry.accuracy import QOS_ATTRIBUTION_KINDS

        assert "deadline_degraded" in QOS_ATTRIBUTION_KINDS

"""Tests for parallel Dynamically Dimensioned Search."""

import numpy as np
import pytest

from repro.core.dds import DDSParams, DDSSearch


class SeparableObjective:
    """Maximum when every dimension hits its own target value."""

    def __init__(self, targets, n_confs):
        self.targets = np.asarray(targets)
        self.n_confs = n_confs

    def __call__(self, x):
        return -float(np.sum(np.abs(x - self.targets)))

    def evaluate_batch(self, xs):
        return -np.sum(np.abs(xs - self.targets[None, :]), axis=1).astype(float)


class TestSearchQuality:
    def test_finds_separable_optimum(self):
        targets = np.array([3, 77, 104, 0, 55, 21])
        objective = SeparableObjective(targets, 108)
        result = DDSSearch(DDSParams(max_iter=60)).search(
            objective, n_dims=6, n_confs=108, rng=np.random.default_rng(0)
        )
        # Within a tiny distance of the optimum (0 = exact).
        assert result.best_objective > -6

    def test_beats_pure_random_sampling(self):
        rng = np.random.default_rng(1)
        targets = rng.integers(0, 108, size=16)
        objective = SeparableObjective(targets, 108)
        result = DDSSearch().search(
            objective, n_dims=16, n_confs=108, rng=np.random.default_rng(2)
        )
        random_xs = np.random.default_rng(3).integers(
            0, 108, size=(result.evaluations, 16)
        )
        random_best = float(np.max(objective.evaluate_batch(random_xs)))
        assert result.best_objective > random_best

    def test_history_monotone_nondecreasing(self):
        objective = SeparableObjective(np.arange(8) * 13, 108)
        result = DDSSearch().search(
            objective, n_dims=8, n_confs=108, rng=np.random.default_rng(0)
        )
        assert all(
            b >= a for a, b in zip(result.history, result.history[1:])
        )
        assert result.history[-1] == result.best_objective


class TestContract:
    def test_fixed_dimensions_respected(self):
        objective = SeparableObjective(np.zeros(4, dtype=int), 108)
        result = DDSSearch().search(
            objective,
            n_dims=4,
            n_confs=108,
            rng=np.random.default_rng(0),
            fixed=[(1, 42), (3, 7)],
        )
        assert result.best_x[1] == 42
        assert result.best_x[3] == 7

    def test_all_dimensions_fixed(self):
        objective = SeparableObjective(np.zeros(2, dtype=int), 108)
        result = DDSSearch().search(
            objective,
            n_dims=2,
            n_confs=108,
            rng=np.random.default_rng(0),
            fixed=[(0, 5), (1, 6)],
        )
        assert list(result.best_x) == [5, 6]

    def test_initial_seed_point_used(self):
        targets = np.array([50, 60, 70, 80])
        objective = SeparableObjective(targets, 108)
        result = DDSSearch(DDSParams(initial_random_points=1, max_iter=2)).search(
            objective,
            n_dims=4,
            n_confs=108,
            rng=np.random.default_rng(0),
            initial=targets,
        )
        assert result.best_objective == 0.0  # optimum seeded directly

    def test_values_stay_in_bounds(self):
        objective = SeparableObjective(np.zeros(8, dtype=int), 16)
        result = DDSSearch(DDSParams(perturbation_radii=(2.0,))).search(
            objective, n_dims=8, n_confs=16, rng=np.random.default_rng(0),
            record_explored=True,
        )
        for x, _ in result.explored:
            assert np.all(x >= 0)
            assert np.all(x < 16)

    def test_explored_recorded_only_on_request(self):
        objective = SeparableObjective(np.zeros(4, dtype=int), 108)
        silent = DDSSearch().search(
            objective, n_dims=4, n_confs=108, rng=np.random.default_rng(0)
        )
        assert silent.explored == []
        verbose = DDSSearch().search(
            objective, n_dims=4, n_confs=108, rng=np.random.default_rng(0),
            record_explored=True,
        )
        assert len(verbose.explored) == verbose.evaluations

    def test_deterministic_given_rng(self):
        objective = SeparableObjective(np.arange(6) * 10, 108)
        a = DDSSearch().search(objective, 6, 108, np.random.default_rng(9))
        b = DDSSearch().search(objective, 6, 108, np.random.default_rng(9))
        assert np.array_equal(a.best_x, b.best_x)

    def test_plain_callable_without_batch(self):
        """Objectives without evaluate_batch still work (slow path)."""
        calls = []

        def objective(x):
            calls.append(1)
            return -float(np.sum(x))

        result = DDSSearch(DDSParams(max_iter=3, points_per_iteration=2,
                                     n_threads=2, initial_random_points=4)).search(
            objective, n_dims=3, n_confs=10, rng=np.random.default_rng(0)
        )
        assert result.evaluations == len(calls)

    def test_validation(self):
        objective = SeparableObjective(np.zeros(2, dtype=int), 10)
        searcher = DDSSearch()
        with pytest.raises(ValueError):
            searcher.search(objective, 0, 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            searcher.search(objective, 2, 1, np.random.default_rng(0))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            DDSParams(initial_random_points=0)
        with pytest.raises(ValueError):
            DDSParams(perturbation_radii=())
        with pytest.raises(ValueError):
            DDSParams(perturbation_radii=(0.0,))
        with pytest.raises(ValueError):
            DDSParams(max_iter=1)
        with pytest.raises(ValueError):
            DDSParams(n_threads=0)

    def test_paper_default_parameters(self):
        """Fig. 6 parameter table."""
        params = DDSParams()
        assert params.initial_random_points == 50
        assert params.perturbation_radii == (0.2, 0.3, 0.4, 0.5)
        assert params.points_per_iteration == 10
        assert params.max_iter == 40

"""Tests for the reconstruction-matrix containers and builders."""

import numpy as np
import pytest

from repro.core.matrices import (
    ObservedMatrix,
    TruthTables,
    latency_row,
    latency_training_rows,
    power_rows,
    throughput_rows,
)
from repro.sim.coreconfig import N_JOINT_CONFIGS
from repro.workloads.batch import batch_profile
from repro.workloads.latency_critical import lc_service, make_services


class TestObservedMatrix:
    def test_fresh_matrix_is_empty(self):
        m = ObservedMatrix(4)
        assert not m.mask.any()
        assert m.observed_count(0) == 0

    def test_known_row_fully_observed(self):
        m = ObservedMatrix(2)
        row = np.linspace(1, 2, N_JOINT_CONFIGS)
        m.set_known_row(0, row)
        assert m.observed_count(0) == N_JOINT_CONFIGS
        assert np.allclose(m.values[0], row)
        assert m.observed_count(1) == 0

    def test_observe_single_entries(self):
        m = ObservedMatrix(2)
        m.observe(1, 5, 3.5)
        m.observe(1, 7, 4.5)
        assert m.observed_count(1) == 2
        assert m.values[1, 5] == 3.5
        # Later observations overwrite.
        m.observe(1, 5, 9.9)
        assert m.values[1, 5] == 9.9
        assert m.observed_count(1) == 2

    def test_non_finite_rejected(self):
        m = ObservedMatrix(1)
        with pytest.raises(ValueError):
            m.observe(0, 0, float("nan"))
        with pytest.raises(ValueError):
            m.observe(0, 0, float("inf"))

    def test_wrong_row_shape_rejected(self):
        m = ObservedMatrix(1)
        with pytest.raises(ValueError):
            m.set_known_row(0, np.ones(5))

    def test_copy_is_deep(self):
        m = ObservedMatrix(1)
        m.observe(0, 0, 1.0)
        c = m.copy()
        c.observe(0, 1, 2.0)
        assert m.observed_count(0) == 1
        assert c.observed_count(0) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ObservedMatrix(0)


class TestBuilders:
    def test_throughput_rows_shape(self, perf):
        profiles = [batch_profile("mcf"), batch_profile("namd")]
        rows = throughput_rows(profiles, perf)
        assert rows.shape == (2, N_JOINT_CONFIGS)
        assert np.all(rows > 0)

    def test_power_rows_shape(self, power):
        profiles = [batch_profile("mcf")]
        rows = power_rows(profiles, power)
        assert rows.shape == (1, N_JOINT_CONFIGS)
        assert np.all(rows > 0)

    def test_latency_row(self, perf):
        row = latency_row(lc_service("xapian"), perf, load=0.8, n_cores=16)
        assert row.shape == (N_JOINT_CONFIGS,)
        assert np.all(row > 0)
        # Widest config with max ways must be among the fastest.
        assert row[-1] <= np.percentile(row, 10)

    def test_truth_tables(self, perf, power):
        profiles = [batch_profile("mcf"), batch_profile("lbm")]
        tables = TruthTables.build(profiles, perf, power)
        assert tables.batch_bips.shape == tables.batch_power.shape


class TestLatencyTrainingRows:
    def test_rows_and_keys(self, perf):
        services = list(make_services(perf).values())
        rows, keys = latency_training_rows(services, [0.4, 0.8], perf, 16)
        assert rows.shape == (10, N_JOINT_CONFIGS)
        assert len(keys) == 10
        assert ("xapian", 0.4) in keys

    def test_exclusion(self, perf):
        services = list(make_services(perf).values())
        rows, keys = latency_training_rows(
            services, [0.8], perf, 16, exclude=("xapian", 0.8)
        )
        assert ("xapian", 0.8) not in keys
        assert rows.shape[0] == 4

    def test_empty_training_set_rejected(self, perf):
        services = [lc_service("xapian")]
        with pytest.raises(ValueError):
            latency_training_rows(
                services, [0.8], perf, 16, exclude=("xapian", 0.8)
            )


class TestObservationAging:
    def test_tick_ages_observations(self):
        m = ObservedMatrix(2)
        m.observe(0, 5, 1.0)
        m.tick()
        m.tick()
        assert m.age[0, 5] == 2

    def test_expire_drops_stale_entries(self):
        m = ObservedMatrix(2)
        m.observe(0, 5, 1.0)
        m.observe(0, 9, 2.0)
        m.tick()
        m.tick()
        m.observe(0, 9, 2.5)  # refreshed: age back to 0
        dropped = m.expire(max_age=1)
        assert dropped == 1
        assert not m.mask[0, 5]
        assert m.mask[0, 9]

    def test_known_rows_never_expire(self):
        m = ObservedMatrix(2)
        m.set_known_row(0, np.linspace(1, 2, m.n_cols))
        for _ in range(10):
            m.tick()
        assert m.expire(max_age=1) == 0
        assert m.observed_count(0) == m.n_cols

    def test_clear_row(self):
        m = ObservedMatrix(2)
        m.observe(1, 3, 4.0)
        m.clear_row(1)
        assert m.observed_count(1) == 0
        assert m.age[1, 3] == 0

    def test_expire_validation(self):
        m = ObservedMatrix(1)
        with pytest.raises(ValueError):
            m.expire(max_age=-1)

    def test_copy_preserves_ages(self):
        m = ObservedMatrix(1)
        m.observe(0, 0, 1.0)
        m.tick()
        c = m.copy()
        assert c.age[0, 0] == 1
        c.tick()
        assert m.age[0, 0] == 1  # deep copy

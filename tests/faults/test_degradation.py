"""Tests for the controller's graceful-degradation paths.

Covers observation sanitisation, the safe-mode state machine,
reconfiguration quarantine, the last-known-good cache, and the
harness's per-quantum exception containment (docs/robustness.md).
"""

import math

import numpy as np
import pytest

from repro.core.controller import ControllerConfig, ResourceController
from repro.core.dds import DDSParams
from repro.experiments.harness import run_policy
from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig
from repro.telemetry import Telemetry
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import make_services
from repro.workloads.loadgen import LoadTrace

FAST_DDS = DDSParams(initial_random_points=20, max_iter=10,
                     points_per_iteration=4, n_threads=4)


def build_controller(machine, telemetry=None, **config_kwargs):
    train_names, _ = train_test_split()
    config = ControllerConfig(
        dds=config_kwargs.pop("dds", FAST_DDS), **config_kwargs
    )
    controller = ResourceController(
        machine,
        [batch_profile(n) for n in train_names],
        list(make_services(machine.perf).values()),
        config,
    )
    if telemetry is not None:
        controller.attach_telemetry(telemetry)
    return controller


def counters(telemetry):
    return telemetry.metrics.as_dict()["counters"]


class TestSanitisation:
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf, -1.0])
    def test_bad_values_rejected(self, small_machine, bad):
        telemetry = Telemetry()
        controller = build_controller(small_machine, telemetry)
        matrix = controller._bips_matrix
        assert controller._observe(matrix, matrix.n_rows - 1, 0, bad) is False
        assert counters(telemetry)["faults.detected.bad_sample"] == 1

    def test_outlier_rejected_plausible_accepted(self, small_machine):
        controller = build_controller(small_machine)
        matrix = controller._bips_matrix
        col = 0
        known = matrix.values[matrix.known_rows, col]
        med = float(np.median(known))
        row = matrix.n_rows - 1
        assert controller._observe(matrix, row, col, med) is True
        assert controller._observe(matrix, row, col, med * 1000.0) is False

    def test_noise_free_machine_never_flags_stuck_sensor(self, quiet_machine):
        # With profiling_noise=0, bit-identical repeats are honest;
        # detection must stay off (regression: safe mode tripping on
        # noise-free telemetry-test machines).
        controller = build_controller(quiet_machine)
        for _ in range(4):
            sample = quiet_machine.profile(0.5, lc_cores=controller.lc_cores)
            assert controller._detect_stuck_sensor(sample) is False
            controller.ingest_profiling(sample)
        assert controller._rejections_this_quantum == 0

    def test_saturated_latency_not_flagged_as_outlier(self, small_machine):
        # A saturated service posts p99s far beyond the historical
        # median; the MAD test must not hide those QoS violations
        # (regression: safe mode falsely tripping under load > 1.0).
        controller = build_controller(small_machine)
        matrix = controller._latency_matrix(1.0, small_machine.params.n_cores)
        col = 0
        known = matrix.values[matrix.known_rows, col]
        huge = float(np.median(known)) * 50.0
        row = matrix.n_rows - 1
        assert controller._observe(matrix, row, col, huge,
                                   mad_check=False) is True
        assert controller._rejections_this_quantum == 0
        # Non-finite latency is still rejected even without the MAD test.
        assert controller._observe(matrix, row, col, math.nan,
                                   mad_check=False) is False

    def test_unhardened_matrix_raises_on_nan(self, small_machine):
        controller = build_controller(small_machine, hardened=False)
        matrix = controller._bips_matrix
        with pytest.raises(ValueError):
            controller._observe(matrix, matrix.n_rows - 1, 0, math.nan)

    def test_nan_profiling_sample_survives_ingest(self, small_machine):
        controller = build_controller(small_machine)
        sample = small_machine.profile(0.7, lc_cores=controller.lc_cores)
        bips = sample.batch_bips_hi.copy()
        bips[0] = math.nan
        from dataclasses import replace

        controller.ingest_profiling(replace(sample, batch_bips_hi=bips))

    def test_stuck_sensor_detected(self, small_machine):
        telemetry = Telemetry()
        controller = build_controller(small_machine, telemetry)
        sample = small_machine.profile(0.7, lc_cores=controller.lc_cores)
        controller.ingest_profiling(sample)
        controller.ingest_profiling(sample)  # bit-identical repeat
        assert counters(telemetry)["faults.detected.stuck_sensor"] == 1


class TestSafeMode:
    def test_enters_after_bad_quanta_and_exits_after_hold(self, small_machine):
        telemetry = Telemetry()
        controller = build_controller(
            small_machine, telemetry, safe_mode_after=2, safe_mode_hold=2
        )
        for _ in range(2):
            controller._rejections_this_quantum = 1
            controller._update_safe_mode()
        assert controller.in_safe_mode
        assert counters(telemetry)["faults.detected.safe_mode_entered"] == 1
        # Clean quanta count down the hold, then safe mode exits.
        assert controller._update_safe_mode() is True
        assert controller._update_safe_mode() is False
        assert not controller.in_safe_mode
        assert counters(telemetry)["faults.recovered.safe_mode_exited"] == 1

    def test_bad_quantum_rearms_hold(self, small_machine):
        controller = build_controller(
            small_machine, safe_mode_after=1, safe_mode_hold=3
        )
        controller._rejections_this_quantum = 1
        controller._update_safe_mode()
        assert controller.in_safe_mode
        controller._update_safe_mode()  # one clean quantum
        controller._rejections_this_quantum = 1
        controller._update_safe_mode()  # bad again: hold re-arms
        assert controller._safe_mode_remaining == 3

    def test_safe_mode_assignment_runs_on_machine(self, small_machine):
        controller = build_controller(
            small_machine, safe_mode_after=1, safe_mode_hold=2
        )
        controller._rejections_this_quantum = 1
        controller._update_safe_mode()
        assignment = controller._safe_mode_assignment()
        assert assignment.lc_config.core == CoreConfig.widest()
        for cfg in assignment.batch_configs:
            if cfg is not None:
                assert cfg.core == CoreConfig.narrowest()
                assert cfg.cache_ways == CACHE_ALLOCS[0]
        # Must be executable as-is (cache budget etc.).
        small_machine.run_slice(assignment, 0.7)
        assert controller.last_prediction is None

    def test_decide_serves_safe_mode(self, small_machine):
        controller = build_controller(
            small_machine, safe_mode_after=1, safe_mode_hold=4
        )
        sample = small_machine.profile(0.7, lc_cores=controller.lc_cores)
        controller.ingest_profiling(sample)
        controller._rejections_this_quantum = 99
        assignment = controller.decide(
            0.7, small_machine.reference_max_power()
        )
        assert controller.in_safe_mode
        active = [c for c in assignment.batch_configs if c is not None]
        assert all(c.core == CoreConfig.narrowest() for c in active)


class TestQuarantine:
    def _fail_reconfig_once(self, machine, controller):
        requested = machine.run_slice  # noqa: F841 (readability)
        wide = controller._safe_mode_assignment()  # narrowest batch cores
        from dataclasses import replace

        from repro.sim.coreconfig import JointConfig

        asked = replace(
            wide,
            batch_configs=tuple(
                JointConfig(CoreConfig.widest(), c.cache_ways)
                if c is not None else None
                for c in wide.batch_configs
            ),
        )
        controller._last_assignment = asked
        measurement = machine.run_slice(wide, 0.7)
        controller.ingest_measurement(measurement)

    def test_repeat_failures_quarantine_then_release(self, small_machine):
        telemetry = Telemetry()
        controller = build_controller(
            small_machine, telemetry, quarantine_after=2, quarantine_quanta=2
        )
        for _ in range(2):
            self._fail_reconfig_once(small_machine, controller)
        assert (controller._quarantine > 0).any()
        cnt = counters(telemetry)
        assert cnt["faults.detected.reconfig_failed"] > 0
        assert cnt["faults.detected.core_quarantined"] > 0
        controller._tick_quarantine()
        controller._tick_quarantine()
        assert (controller._quarantine == 0).all()
        assert counters(telemetry)[
            "faults.recovered.quarantine_released"
        ] > 0
        assert (controller._reconfig_fail_streak == 0).all()

    def test_single_failure_no_quarantine(self, small_machine):
        controller = build_controller(small_machine, quarantine_after=3)
        self._fail_reconfig_once(small_machine, controller)
        assert (controller._quarantine == 0).all()


class TestLastKnownGood:
    def test_clean_measurement_refreshes_cache(self, small_machine):
        controller = build_controller(small_machine)
        assert controller.last_good_assignment is None
        assignment = controller._safe_mode_assignment()
        measurement = small_machine.run_slice(assignment, 0.5)
        controller.ingest_measurement(measurement)
        assert controller.last_good_assignment == measurement.assignment

    def test_dirty_measurement_does_not(self, small_machine):
        from dataclasses import replace

        controller = build_controller(small_machine)
        assignment = controller._safe_mode_assignment()
        measurement = small_machine.run_slice(assignment, 0.5)
        dirty = replace(measurement, lc_p99=math.nan)
        controller.ingest_measurement(dirty)
        assert controller.last_good_assignment is None


class _ExplodingPolicy:
    """Raises from decide() every quantum (worst-case policy)."""

    name = "exploding"
    overhead_fraction = 0.0

    def decide(self, machine, load, max_power):
        raise RuntimeError("boom")

    def observe(self, measurement):
        pass


class TestHarnessDegradation:
    def test_degrade_mode_completes_run(self, small_machine):
        telemetry = Telemetry()
        run = run_policy(
            small_machine, _ExplodingPolicy(), LoadTrace.constant(0.5),
            power_cap_fraction=0.8, n_slices=4, telemetry=telemetry,
        )
        assert run.n_slices == 4
        assert run.degraded_quanta == 4
        cnt = counters(telemetry)
        assert cnt["harness.degraded_quanta"] == 4
        assert cnt["faults.recovered.degraded_quantum"] == 4
        # Fallback posture serves the LC service on every slice.
        for m in run.measurements:
            assert m.assignment.lc_cores > 0

    def test_raise_mode_propagates_with_partial_run(self, small_machine):
        with pytest.raises(RuntimeError) as excinfo:
            run_policy(
                small_machine, _ExplodingPolicy(), LoadTrace.constant(0.5),
                power_cap_fraction=0.8, n_slices=4,
                on_policy_error="raise",
            )
        partial = excinfo.value.partial_run
        assert partial.n_slices == 0

    def test_invalid_mode_rejected(self, small_machine):
        with pytest.raises(ValueError):
            run_policy(
                small_machine, _ExplodingPolicy(), LoadTrace.constant(0.5),
                power_cap_fraction=0.8, n_slices=1,
                on_policy_error="explode",
            )


class TestSafeModeAlwaysExits:
    """Satellite invariant: safe mode is a mode, not a terminal state.

    A randomized-seed sweep (seeds drawn from a fixed master stream so
    the test replays) drives the hardened controller into safe mode
    with a high-rate sensor-fault window, then grants fault-free quanta
    and requires every entered safe mode to exit — the same invariant
    the chaos harness soaks at scale (docs/robustness.md).
    """

    #: Deterministically randomized: same sweep every run, but the
    #: seeds themselves are arbitrary draws, not hand-picked values.
    SEEDS = tuple(
        int(s)
        for s in np.random.default_rng(20260808).integers(1, 10_000, 6)
    )

    #: A fault window aggressive enough to trip the entry streak on
    #: most seeds; it closes at quantum 6 so recovery is reachable.
    SPEC = (
        "drop_sample:rate=0.8,start=1,end=6;"
        "outlier_sample:rate=0.5,magnitude=50,start=1,end=6"
    )

    def _soak(self, machine, seed):
        from repro.core.runtime import CuttleSysPolicy
        from repro.faults import FaultInjector, parse_fault_spec

        telemetry = Telemetry()
        policy = CuttleSysPolicy.for_machine(
            machine, seed=seed,
            config=ControllerConfig(dds=FAST_DDS, seed=seed),
        )
        faults = FaultInjector(
            parse_fault_spec(self.SPEC), seed=seed, telemetry=telemetry
        )
        run_policy(
            machine, policy, LoadTrace.constant(0.6),
            power_cap_fraction=0.8, n_slices=8, telemetry=telemetry,
            faults=faults,
        )
        entered = counters(telemetry).get(
            "faults.detected.safe_mode_entered", 0
        )
        if policy.controller.in_safe_mode:
            # Fault-free quanta: the hold streak must drain.
            run_policy(
                machine, policy, LoadTrace.constant(0.6),
                power_cap_fraction=0.8, n_slices=8, telemetry=telemetry,
            )
        exited = counters(telemetry).get(
            "faults.recovered.safe_mode_exited", 0
        )
        return entered, exited, policy.controller.in_safe_mode

    def test_every_entered_safe_mode_exits(self):
        from repro.sim.machine import Machine, MachineParams
        from repro.workloads.batch import batch_profile, train_test_split
        from repro.workloads.latency_critical import lc_service

        _, test_names = train_test_split()
        profiles = [batch_profile(n) for n in (test_names * 2)[:16]]
        total_entries = 0
        for seed in self.SEEDS:
            machine = Machine(
                lc_service=lc_service("xapian"),
                batch_profiles=profiles,
                params=MachineParams(),
                seed=seed,
            )
            entered, exited, still_in = self._soak(machine, seed)
            total_entries += entered
            assert not still_in, (
                f"seed {seed}: safe mode never exited under fault-free "
                f"quanta ({entered} entries, {exited} exits)"
            )
            assert exited == entered, (
                f"seed {seed}: {entered} entries but {exited} exits"
            )
        # The sweep only demonstrates the invariant if it actually
        # entered safe mode somewhere.
        assert total_entries > 0

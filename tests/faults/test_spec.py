"""Tests for fault specifications and the CLI clause syntax."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultScenario,
    FaultSpec,
    FaultSpecError,
    default_scenarios,
    parse_fault_spec,
    scenario_by_name,
)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("drop_sample", rate=0.2)
        assert spec.start == 0
        assert spec.end is None
        assert spec.duration == 1
        assert spec.jobs is None

    def test_active_window(self):
        spec = FaultSpec("cap_drop", start=3, end=6)
        assert not spec.active(2)
        assert spec.active(3)
        assert spec.active(5)
        assert not spec.active(6)  # end is exclusive

    def test_open_ended_window(self):
        spec = FaultSpec("drop_sample", rate=0.1, start=2)
        assert spec.active(10_000)
        assert not spec.active(1)

    def test_applies_to_job(self):
        spec = FaultSpec("batch_crash", rate=0.5, jobs=(0, 3))
        assert spec.applies_to_job(0)
        assert spec.applies_to_job(3)
        assert not spec.applies_to_job(1)
        assert FaultSpec("batch_crash", rate=0.5).applies_to_job(99)

    def test_default_magnitudes(self):
        assert FaultSpec("outlier_sample", rate=0.1).effective_magnitude == 50.0
        assert FaultSpec("cap_drop").effective_magnitude == 0.5
        assert FaultSpec("load_spike").effective_magnitude == 1.5
        assert FaultSpec(
            "outlier_sample", rate=0.1, magnitude=7.0
        ).effective_magnitude == 7.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "nonsense"},
            {"kind": "drop_sample", "rate": -0.1},
            {"kind": "drop_sample", "rate": 1.5},
            {"kind": "drop_sample", "rate": 0.1, "start": -1},
            {"kind": "cap_drop", "start": 5, "end": 5},
            {"kind": "cap_drop", "start": 5, "end": 3},
            {"kind": "failed_reconfig", "rate": 0.5, "duration": 0},
            {"kind": "cap_drop", "magnitude": 0.0},
            {"kind": "cap_drop", "magnitude": 1.5},
            {"kind": "outlier_sample", "rate": 0.1, "magnitude": -2.0},
            {"kind": "load_spike", "magnitude": 0.0},
        ],
    )
    def test_invalid_specs_raise(self, kwargs):
        with pytest.raises(FaultSpecError):
            FaultSpec(**kwargs)

    def test_fault_spec_error_is_value_error(self):
        # Callers that catch ValueError keep working.
        with pytest.raises(ValueError):
            FaultSpec("nonsense")

    def test_describe_round_trips(self):
        spec = FaultSpec(
            "failed_reconfig", rate=0.4, start=2, end=9,
            duration=3, jobs=(1, 4),
        )
        (parsed,) = parse_fault_spec(spec.describe())
        assert parsed == spec


class TestParse:
    def test_single_clause(self):
        (spec,) = parse_fault_spec("drop_sample:rate=0.3,start=2,end=12")
        assert spec.kind == "drop_sample"
        assert spec.rate == 0.3
        assert spec.start == 2
        assert spec.end == 12

    def test_multiple_clauses(self):
        specs = parse_fault_spec(
            "drop_sample:rate=0.2;cap_drop:magnitude=0.6,start=4;stuck_power"
        )
        assert [s.kind for s in specs] == [
            "drop_sample", "cap_drop", "stuck_power",
        ]

    def test_jobs_syntax(self):
        (spec,) = parse_fault_spec("batch_crash:rate=0.5,jobs=0+3+7")
        assert spec.jobs == (0, 3, 7)

    def test_whitespace_tolerated(self):
        (spec,) = parse_fault_spec("  drop_sample : rate=0.2 , start=1 ")
        assert spec.kind == "drop_sample"
        assert spec.rate == 0.2

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            ";;",
            "bogus:rate=0.1",
            "drop_sample:rate",
            "drop_sample:rate=",
            "drop_sample:frequency=0.1",
            "drop_sample:rate=abc",
            "drop_sample:start=2.5",
            "batch_crash:rate=0.5,jobs=0+x",
            "drop_sample:rate=2.0",
        ],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(text)


class TestScenarios:
    def test_empty_scenario_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultScenario("empty", ())

    def test_default_suite(self):
        scenarios = default_scenarios(seed=7)
        assert len(scenarios) >= 5
        names = [s.name for s in scenarios]
        assert len(names) == len(set(names))
        kinds = {s.kind for sc in scenarios for s in sc.specs}
        # Every fault kind is exercised somewhere in the default suite.
        assert kinds == set(FAULT_KINDS)
        # Distinct seeds: scenario runs must not share RNG streams.
        assert len({s.seed for s in scenarios}) == len(scenarios)

    def test_scenario_by_name(self):
        scenario = scenario_by_name("stuck-sensor", seed=3)
        assert scenario.name == "stuck-sensor"
        with pytest.raises(KeyError):
            scenario_by_name("no-such-scenario")

    def test_scenarios_describe_round_trip(self):
        for scenario in default_scenarios():
            assert parse_fault_spec(scenario.describe()) == scenario.specs

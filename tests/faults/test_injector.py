"""Tests for the deterministic fault injector and FaultyMachine."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultScenario, FaultSpec, FaultyMachine
from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig, JointConfig
from repro.sim.machine import Assignment
from repro.telemetry import Telemetry


def make_sample(machine, load=0.7):
    return machine.profile(load, lc_cores=16)


def make_assignment(n_jobs, core=None, ways=0.5):
    core = core or CoreConfig.narrowest()
    return Assignment(
        lc_cores=16,
        lc_config=JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1]),
        batch_configs=tuple(JointConfig(core, ways) for _ in range(n_jobs)),
    )


class TestConstruction:
    def test_needs_specs(self):
        with pytest.raises(ValueError):
            FaultInjector([])

    def test_accepts_scenario(self):
        scenario = FaultScenario(
            "s", (FaultSpec("drop_sample", rate=0.5),), seed=42
        )
        injector = FaultInjector(scenario)
        assert injector.seed == 42
        assert injector.specs == scenario.specs

    def test_wrap_is_idempotent(self, small_machine):
        injector = FaultInjector([FaultSpec("drop_sample", rate=0.5)])
        faulty = injector.wrap(small_machine)
        assert isinstance(faulty, FaultyMachine)
        assert injector.wrap(faulty) is faulty
        assert faulty.machine is small_machine


class TestDeterminism:
    def test_same_seed_same_perturbations(self, quiet_machine):
        sample = make_sample(quiet_machine)
        outputs = []
        for _ in range(2):
            injector = FaultInjector(
                [FaultSpec("drop_sample", rate=0.5)], seed=5
            )
            injector.begin_quantum(0)
            outputs.append(injector.perturb_profile(sample))
        a, b = outputs
        assert np.array_equal(
            np.isnan(a.batch_bips_hi), np.isnan(b.batch_bips_hi)
        )
        assert np.array_equal(
            np.isnan(a.batch_power_lo), np.isnan(b.batch_power_lo)
        )

    def test_different_seed_differs(self, quiet_machine):
        sample = make_sample(quiet_machine)
        masks = []
        for seed in (5, 6):
            injector = FaultInjector(
                [FaultSpec("drop_sample", rate=0.5)], seed=seed
            )
            injector.begin_quantum(0)
            out = injector.perturb_profile(sample)
            masks.append(
                np.concatenate(
                    [np.isnan(out.batch_bips_hi), np.isnan(out.batch_bips_lo)]
                )
            )
        assert not np.array_equal(masks[0], masks[1])

    def test_per_spec_streams_are_independent(self, quiet_machine):
        # Adding a second spec must not change the first spec's stream.
        sample = make_sample(quiet_machine)
        solo = FaultInjector([FaultSpec("drop_sample", rate=0.5)], seed=9)
        solo.begin_quantum(0)
        mask_solo = np.isnan(solo.perturb_profile(sample).batch_bips_hi)
        paired = FaultInjector(
            [
                FaultSpec("drop_sample", rate=0.5),
                FaultSpec("cap_drop", magnitude=0.5),
            ],
            seed=9,
        )
        paired.begin_quantum(0)
        mask_paired = np.isnan(paired.perturb_profile(sample).batch_bips_hi)
        assert np.array_equal(mask_solo, mask_paired)


class TestSamplingFaults:
    def test_drop_sample_nans(self, quiet_machine):
        injector = FaultInjector([FaultSpec("drop_sample", rate=1.0)], seed=1)
        injector.begin_quantum(0)
        out = injector.perturb_profile(make_sample(quiet_machine))
        assert np.isnan(out.batch_bips_hi).all()
        assert np.isnan(out.batch_power_lo).all()
        assert np.isnan(out.lc_power_hi)
        assert injector.injected["drop_sample"] > 0

    def test_outlier_scales_values(self, quiet_machine):
        sample = make_sample(quiet_machine)
        injector = FaultInjector(
            [FaultSpec("outlier_sample", rate=1.0, magnitude=10.0)], seed=1
        )
        injector.begin_quantum(0)
        out = injector.perturb_profile(sample)
        np.testing.assert_allclose(
            out.batch_bips_hi, sample.batch_bips_hi * 10.0
        )

    def test_window_respected(self, quiet_machine):
        sample = make_sample(quiet_machine)
        injector = FaultInjector(
            [FaultSpec("drop_sample", rate=1.0, start=5)], seed=1
        )
        injector.begin_quantum(0)
        out = injector.perturb_profile(sample)
        assert out is sample  # untouched before the window opens

    def test_stuck_power_freezes_profile(self, small_machine):
        injector = FaultInjector([FaultSpec("stuck_power")], seed=1)
        injector.begin_quantum(0)
        first = injector.perturb_profile(make_sample(small_machine))
        injector.begin_quantum(1)
        second = injector.perturb_profile(make_sample(small_machine))
        np.testing.assert_array_equal(
            first.batch_power_hi, second.batch_power_hi
        )
        assert first.lc_power_hi == second.lc_power_hi
        # Non-power channels keep flowing.
        assert not np.array_equal(first.batch_bips_hi, second.batch_bips_hi)


class TestEnvironmentFaults:
    def test_cap_drop(self):
        injector = FaultInjector(
            [FaultSpec("cap_drop", magnitude=0.5, start=2)], seed=1
        )
        injector.begin_quantum(0)
        assert injector.effective_budget(100.0) == 100.0
        injector.begin_quantum(2)
        assert injector.effective_budget(100.0) == 50.0
        assert injector.injected["cap_drop"] == 1

    def test_load_spike_caps_at_one(self):
        injector = FaultInjector(
            [FaultSpec("load_spike", magnitude=2.0)], seed=1
        )
        injector.begin_quantum(0)
        assert injector.effective_load(0.3) == pytest.approx(0.6)
        assert injector.effective_load(0.9) == 1.0

    def test_crash_events_respect_jobs(self):
        injector = FaultInjector(
            [FaultSpec("batch_crash", rate=1.0, jobs=(2,))], seed=1
        )
        injector.begin_quantum(0)
        assert injector.crash_events(8) == [2]


class TestReconfigFaults:
    def test_failed_reconfig_pins_old_core(self):
        injector = FaultInjector(
            [FaultSpec("failed_reconfig", rate=1.0, duration=2)], seed=1
        )
        injector.begin_quantum(0)
        narrow = make_assignment(4, core=CoreConfig.narrowest(), ways=0.5)
        assert injector.effective_assignment(narrow) == narrow  # no history
        injector.begin_quantum(1)
        wide = make_assignment(4, core=CoreConfig.widest(), ways=1.0)
        effective = injector.effective_assignment(wide)
        for cfg in effective.batch_configs:
            assert cfg.core == CoreConfig.narrowest()  # old sections stick
            assert cfg.cache_ways == 1.0  # new way allocation applies
        assert injector.injected["failed_reconfig"] == 4

    def test_pins_expire(self):
        injector = FaultInjector(
            [FaultSpec("failed_reconfig", rate=1.0, duration=1, end=2)],
            seed=1,
        )
        injector.begin_quantum(1)
        injector.effective_assignment(make_assignment(2))
        injector.begin_quantum(2)  # still pinned through quantum 1+1
        wide = make_assignment(2, core=CoreConfig.widest())
        pinned = injector.effective_assignment(wide)
        # Fault window closed and pins expired: next request goes through.
        injector.begin_quantum(3)
        free = injector.effective_assignment(wide)
        assert all(
            cfg.core == CoreConfig.widest() for cfg in free.batch_configs
        )
        del pinned


class TestTelemetry:
    def test_injections_counted(self, quiet_machine):
        telemetry = Telemetry()
        injector = FaultInjector(
            [FaultSpec("drop_sample", rate=1.0)], seed=1, telemetry=telemetry
        )
        injector.begin_quantum(0)
        injector.perturb_profile(make_sample(quiet_machine))
        counters = telemetry.metrics.as_dict()["counters"]
        assert counters["faults.injected.drop_sample"] == (
            injector.injected["drop_sample"]
        )
        assert injector.total_injected() == sum(injector.injected.values())


class TestFaultyMachine:
    def test_delegates_attributes(self, small_machine):
        injector = FaultInjector([FaultSpec("drop_sample", rate=0.0)])
        faulty = injector.wrap(small_machine)
        assert faulty.params is small_machine.params
        assert faulty.lc_service is small_machine.lc_service
        assert faulty.reference_max_power() == pytest.approx(
            small_machine.reference_max_power()
        )

    def test_run_slice_reports_effective_assignment(self, small_machine):
        injector = FaultInjector(
            [FaultSpec("failed_reconfig", rate=1.0, duration=3)], seed=1
        )
        faulty = injector.wrap(small_machine)
        n = len(small_machine.batch_profiles)
        injector.begin_quantum(0)
        faulty.run_slice(make_assignment(n), 0.5)
        injector.begin_quantum(1)
        wide = make_assignment(n, core=CoreConfig.widest(), ways=0.5)
        measurement = faulty.run_slice(wide, 0.5)
        cores = {cfg.core for cfg in measurement.assignment.batch_configs}
        assert cores == {CoreConfig.narrowest()}

"""QuantumDriver and CommandExecutor tests, including crash/resume.

These run the daemon's core without sockets: the driver is built
directly, ticked, "killed" (dropped), rebuilt, and resumed — the
decision stream must come out byte-identical to an uninterrupted run.
"""

import json

import pytest

from repro.server.admission import JobSpec
from repro.server.driver import (
    IDLE_LC_LOAD,
    QuantumDriver,
    ServerConfig,
)
from repro.server.session import CommandExecutor

SEED = 3
MIX = 0


def make_driver(tmp_path, name="run", resume=False, **overrides):
    kwargs = dict(
        mix=MIX, seed=SEED, max_quanta=30,
        state_path=str(tmp_path / f"{name}_state.json"),
        decisions_path=str(tmp_path / f"{name}_dec.jsonl"),
        resume=resume,
    )
    kwargs.update(overrides)
    return QuantumDriver(ServerConfig(**kwargs))


def scripted_actions(driver):
    """The deterministic submission schedule both runs replay."""
    service = driver.machine.lc_services[0]
    return {
        0: [
            lambda: driver.admission.submit(
                JobSpec(kind="lc", name=service.name,
                        rps=service.max_qps * 0.5),
                driver.quantum,
            ),
            lambda: driver.admission.submit(
                JobSpec(kind="batch", name="astar"), driver.quantum
            ),
        ],
        3: [lambda: driver.set_rps(
            "j000001", service.max_qps * 0.9
        )],
        5: [lambda: driver.admission.submit(
            JobSpec(kind="batch", name="bzip2", priority=2),
            driver.quantum,
        )],
        7: [lambda: driver.cancel_job("j000002")],
    }


def run_quanta(driver, start, stop):
    actions = scripted_actions(driver)
    for i in range(start, stop):
        for action in actions.get(i, []):
            action()
        driver.tick()


class TestDriverBasics:
    def test_boots_with_all_batch_slots_vacant(self, tmp_path):
        driver = make_driver(tmp_path)
        record = driver.tick()
        assert record["jobs"]["batch"] == {}
        assert record["assignment"]["batch"] == [None] * len(
            driver.machine.batch_profiles
        )
        assert driver.lc_loads[0].level == IDLE_LC_LOAD

    def test_admitted_jobs_appear_in_decisions(self, tmp_path):
        driver = make_driver(tmp_path)
        run_quanta(driver, 0, 2)
        record = driver.recent_decisions(since=1)[0]
        assert record["jobs"]["batch"] == {"0": "j000002"}
        assert record["jobs"]["lc"] == {
            driver.machine.lc_services[0].name: "j000001"
        }
        assert record["assignment"]["batch"][0] is not None

    def test_cancel_unbinds_batch_slot(self, tmp_path):
        driver = make_driver(tmp_path)
        run_quanta(driver, 0, 8)
        record = driver.recent_decisions(since=driver.quantum - 1)[0]
        assert "j000002" not in record["jobs"]["batch"].values()

    def test_set_rps_moves_lc_load(self, tmp_path):
        driver = make_driver(tmp_path)
        run_quanta(driver, 0, 4)
        assert driver.lc_loads[0].level == pytest.approx(0.9)

    def test_bad_mix_index_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            QuantumDriver(ServerConfig(mix=999))

    def test_tick_beyond_max_quanta_raises(self, tmp_path):
        driver = make_driver(tmp_path, max_quanta=2)
        driver.tick()
        driver.tick()
        with pytest.raises(RuntimeError):
            driver.tick()


class TestCrashResume:
    def test_decision_stream_byte_identical_across_resume(self, tmp_path):
        reference = make_driver(tmp_path, "ref")
        run_quanta(reference, 0, 12)
        ref_bytes = (tmp_path / "ref_dec.jsonl").read_bytes()

        victim = make_driver(tmp_path, "vic")
        run_quanta(victim, 0, 6)
        del victim  # simulated SIGKILL: no shutdown hook runs

        resumed = make_driver(tmp_path, "vic", resume=True)
        resumed.resume_from(str(tmp_path / "vic_state.json"))
        assert resumed.quantum == 6
        run_quanta(resumed, 6, 12)
        assert (tmp_path / "vic_dec.jsonl").read_bytes() == ref_bytes

    def test_resume_truncates_orphan_decision_lines(self, tmp_path):
        """A crash between append and snapshot leaves extra lines; the
        resume rewinds them and re-executes byte-identically."""
        reference = make_driver(tmp_path, "ref")
        run_quanta(reference, 0, 10)
        ref_bytes = (tmp_path / "ref_dec.jsonl").read_bytes()

        victim = make_driver(
            tmp_path, "vic", snapshot_every=4
        )
        run_quanta(victim, 0, 6)  # snapshot at 4; lines 5-6 orphaned
        del victim

        resumed = make_driver(
            tmp_path, "vic", resume=True, snapshot_every=4
        )
        resumed.resume_from(str(tmp_path / "vic_state.json"))
        assert resumed.quantum == 4
        assert len(
            (tmp_path / "vic_dec.jsonl").read_text().splitlines()
        ) == 4
        run_quanta(resumed, 4, 10)
        assert (tmp_path / "vic_dec.jsonl").read_bytes() == ref_bytes

    def test_resume_rejects_config_mismatch(self, tmp_path):
        driver = make_driver(tmp_path, "a")
        driver.tick()
        other = make_driver(tmp_path, "a", resume=True, seed=SEED + 1)
        with pytest.raises(ValueError):
            other.resume_from(str(tmp_path / "a_state.json"))


class TestCommandExecutor:
    def test_submit_and_status_counters(self, tmp_path):
        executor = CommandExecutor(make_driver(tmp_path))
        ok = executor.execute({
            "op": "submit", "kind": "batch", "name": "astar",
        })
        assert ok["ok"] and ok["job"]["state"] == "queued"
        bad = executor.execute({
            "op": "submit", "kind": "batch", "name": "no_such_app",
        })
        assert bad["job"]["state"] == "rejected"
        assert bad["job"]["reason"] == "unknown_app"
        executor.execute({"op": "tick"})
        status = executor.execute({"op": "status"})
        assert status["admission"]["submitted"] == 2
        assert status["admission"]["admitted"] == 1
        assert status["admission"]["rejected"] == 1
        assert status["driver"]["quantum"] == 1

    def test_tick_batches_and_bounds(self, tmp_path):
        executor = CommandExecutor(make_driver(tmp_path))
        resp = executor.execute({"op": "tick", "count": 3})
        assert resp["quantum"] == 3
        assert [r["quantum"] for r in resp["decisions"]] == [0, 1, 2]
        assert executor.execute(
            {"op": "tick", "count": 0}
        )["code"] == "bad_request"

    def test_unknown_job_errors(self, tmp_path):
        executor = CommandExecutor(make_driver(tmp_path))
        resp = executor.execute({"op": "cancel", "job_id": "j000099"})
        assert resp["ok"] is False and resp["code"] == "unknown_job"

    def test_whatif_dry_run_has_no_side_effects(self, tmp_path):
        executor = CommandExecutor(make_driver(tmp_path))
        resp = executor.execute({
            "op": "whatif", "kind": "batch", "name": "astar",
        })
        assert resp["verdict"] == "admit"
        reject = executor.execute({
            "op": "whatif", "kind": "lc", "name": "nope", "rps": 1.0,
        })
        assert reject["verdict"] == "reject"
        assert reject["reason"] == "unknown_service"
        status = executor.execute({"op": "status"})
        assert status["admission"]["submitted"] == 0

    def test_ladder_and_decisions_queries(self, tmp_path):
        executor = CommandExecutor(make_driver(tmp_path))
        executor.execute({"op": "tick", "count": 2})
        ladder = executor.execute({"op": "ladder"})["ladder"]
        assert ladder["degraded_quanta"] == 0
        decisions = executor.execute(
            {"op": "decisions", "since": 1}
        )["decisions"]
        assert [d["quantum"] for d in decisions] == [1]

    def test_responses_are_json_serializable(self, tmp_path):
        executor = CommandExecutor(make_driver(tmp_path))
        for op in ({"op": "hello"}, {"op": "status"}, {"op": "tick"},
                   {"op": "jobs"}, {"op": "ladder"}):
            json.dumps(executor.execute(dict(op)), sort_keys=True)

"""End-to-end daemon tests over real sockets and real processes.

The daemon is booted as a subprocess through the actual CLI
(``python -m repro serve``); a scripted client drives it over TCP.
The centrepiece is the kill/resume gate: a daemon SIGKILLed mid-session
and rebooted with ``--resume`` must regenerate a decision stream
byte-identical to an uninterrupted run — and both must match the
committed golden file (``golden/decision_stream.jsonl``), which the CI
``server-smoke`` job also diffs against.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.server.script import ScriptedClient

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN = Path(__file__).parent / "golden" / "decision_stream.jsonl"

SEED = 3
MIX = 0

#: The canonical scripted session: 8 quanta with submissions, an rps
#: move, a priority submission, and a cancel along the way.  PART_ONE
#: runs before the simulated crash, PART_TWO after the resume.
PART_ONE = [
    {"op": "submit", "kind": "lc", "name": "xapian", "rps": 500.0},
    {"op": "submit", "kind": "batch", "name": "astar"},
    {"op": "tick", "count": 3},
    {"op": "set_rps", "job_id": "j000001", "rps": 800.0},
    {"op": "tick", "count": 1},
]
PART_TWO = [
    {"op": "submit", "kind": "batch", "name": "bzip2", "priority": 2},
    {"op": "tick", "count": 2},
    {"op": "cancel", "job_id": "j000002"},
    {"op": "tick", "count": 2},
]


def boot_daemon(tmp_path, tag, resume=False, extra=()):
    """Start ``repro serve`` and wait for its port file."""
    port_file = tmp_path / f"{tag}.port"
    if port_file.exists():
        port_file.unlink()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable, "-m", "repro", "--seed", str(SEED), "serve",
        "--mix", str(MIX),
        "--max-quanta", "50",
        "--port-file", str(port_file),
        "--state", str(tmp_path / "daemon_state.json"),
        "--decisions", str(tmp_path / "daemon_dec.jsonl"),
        "--whatif-jobs", "1",
    ]
    if resume:
        argv.append("--resume")
    argv.extend(extra)
    proc = subprocess.Popen(argv, cwd=REPO_ROOT, env=env)
    deadline = time.time() + 120
    while time.time() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text())
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with code {proc.returncode}"
            )
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError("daemon did not bind within 120 s")


def stop_daemon(proc, port):
    try:
        with ScriptedClient("127.0.0.1", port, 10.0) as client:
            client.request({"op": "shutdown"})
        proc.wait(timeout=30)
    except Exception:
        proc.kill()
        proc.wait(timeout=10)


def run_commands(port, commands):
    with ScriptedClient("127.0.0.1", port, 120.0) as client:
        return [client.request(dict(cmd)) for cmd in commands]


@pytest.fixture(scope="module")
def golden_bytes():
    assert GOLDEN.exists(), (
        "golden decision stream missing; regenerate with "
        "scripts/regen_server_golden.py"
    )
    return GOLDEN.read_bytes()


class TestScriptedSession:
    def test_uninterrupted_session_matches_golden(
        self, tmp_path, golden_bytes
    ):
        proc, port = boot_daemon(tmp_path, "full")
        try:
            responses = run_commands(port, PART_ONE + PART_TWO)
        finally:
            stop_daemon(proc, port)
        assert all(r.get("ok") for r in responses)
        produced = (tmp_path / "daemon_dec.jsonl").read_bytes()
        assert produced == golden_bytes

    def test_sigkill_and_resume_matches_golden(
        self, tmp_path, golden_bytes
    ):
        proc, port = boot_daemon(tmp_path, "victim")
        try:
            run_commands(port, PART_ONE)
        finally:
            # The crash: no shutdown op, no final snapshot, no flush.
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        proc, port = boot_daemon(tmp_path, "resumed", resume=True)
        try:
            status = run_commands(port, [{"op": "status"}])[0]
            assert status["driver"]["quantum"] == 4
            # The ledger survived the crash too.
            assert status["admission"]["submitted"] == 2
            run_commands(port, PART_TWO)
        finally:
            stop_daemon(proc, port)
        produced = (tmp_path / "daemon_dec.jsonl").read_bytes()
        assert produced == golden_bytes


class TestProtocolOverTcp:
    @pytest.fixture(scope="class")
    def daemon(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("daemon")
        proc, port = boot_daemon(tmp_path, "proto")
        yield port
        stop_daemon(proc, port)

    def test_rejection_paths(self, daemon):
        responses = run_commands(daemon, [
            {"op": "submit", "kind": "batch", "name": "no_such_app"},
            {"op": "submit", "kind": "lc", "name": "xapian",
             "rps": 999999.0},
            {"op": "cancel", "job_id": "j009999"},
        ])
        assert responses[0]["job"]["reason"] == "unknown_app"
        assert responses[1]["job"]["reason"] == "rps_exceeds_capacity"
        assert responses[2]["code"] == "unknown_job"

    def test_malformed_lines_get_stable_error_codes(self, daemon):
        with ScriptedClient("127.0.0.1", daemon, 30.0) as client:
            client.sock.sendall(b"this is not json\n")
            assert client.read_line()["code"] == "bad_json"
            client.sock.sendall(b'{"op": "dance"}\n')
            assert client.read_line()["code"] == "unknown_op"
            client.sock.sendall(b'{"no_op": 1}\n')
            assert client.read_line()["code"] == "bad_request"

    def test_subscribe_events_precede_tick_response(self, daemon):
        with ScriptedClient("127.0.0.1", daemon, 120.0) as client:
            assert client.request({"op": "subscribe"})["subscribed"]
            before = len(client.events)
            client.request({"op": "tick", "count": 2})
            # Both quanta's events (quantum + decision per tick) were
            # already buffered when the response arrived.
            fresh = client.events[before:]
            kinds = [e["event"] for e in fresh]
            assert kinds.count("decision") == 2
            assert kinds.count("quantum") == 2
            off = client.request({"op": "unsubscribe"})
            assert off["subscribed"] is False

    def test_hello_and_metrics(self, daemon):
        responses = run_commands(daemon, [
            {"op": "hello"}, {"op": "metrics"},
        ])
        assert responses[0]["services"] == ["xapian"]
        assert "server_ticks_total" in responses[1]["prometheus"]

    def test_http_surface(self, daemon):
        base = f"http://127.0.0.1:{daemon}"
        status = json.loads(urllib.request.urlopen(
            base + "/status", timeout=30
        ).read())
        assert status["ok"] and "driver" in status
        metrics = urllib.request.urlopen(
            base + "/metrics", timeout=30
        ).read().decode()
        assert "server_requests_total" in metrics
        decisions = urllib.request.urlopen(
            base + "/decisions", timeout=30
        ).read().decode().splitlines()
        assert all(
            json.loads(line)["quantum"] == i
            for i, line in enumerate(decisions)
        )
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(base + "/nope", timeout=30)

"""Admission-control unit tests: every rejection path, ordering, resume."""

import pytest

from repro.server.admission import (
    AdmissionLimits,
    JobQueueManager,
    JobSpec,
)


def make_manager(**overrides):
    """A small, fully synthetic manager: 2 batch slots, 1 LC service."""
    defaults = dict(
        known_batch_apps=["alpha", "beta", "gamma"],
        n_batch_slots=2,
        lc_services=[{"name": "svc", "qos_ms": 5.0, "max_qps": 1000.0}],
        llc_ways=20,
        power_budget_w=100.0,
        batch_power_w={"alpha": 10.0, "beta": 10.0, "gamma": 10.0},
        lc_power_w={"svc": 20.0},
        limits=AdmissionLimits(max_jobs_per_tenant=3, max_wait_quanta=4),
    )
    defaults.update(overrides)
    return JobQueueManager(**defaults)


class TestStaticRejections:
    def test_bad_kind(self):
        job = make_manager().submit(JobSpec(kind="gpu", name="alpha"), 0)
        assert (job.state, job.reason) == ("rejected", "bad_kind")

    def test_unknown_app(self):
        job = make_manager().submit(JobSpec(kind="batch", name="zzz"), 0)
        assert (job.state, job.reason) == ("rejected", "unknown_app")

    def test_unknown_service(self):
        job = make_manager().submit(
            JobSpec(kind="lc", name="nosvc", rps=10.0), 0
        )
        assert (job.state, job.reason) == ("rejected", "unknown_service")

    def test_qos_tighter_than_model_unachievable(self):
        job = make_manager().submit(
            JobSpec(kind="lc", name="svc", qos_ms=1.0, rps=10.0), 0
        )
        assert (job.state, job.reason) == ("rejected", "qos_unachievable")

    def test_omitted_qos_defaults_to_service_target(self):
        job = make_manager().submit(
            JobSpec(kind="lc", name="svc", rps=10.0), 0
        )
        assert job.state == "queued"
        assert job.spec.qos_ms == 5.0

    def test_missing_rps_is_bad_rps(self):
        job = make_manager().submit(
            JobSpec(kind="lc", name="svc", qos_ms=9.0), 0
        )
        assert (job.state, job.reason) == ("rejected", "bad_rps")

    def test_rps_beyond_knee_rejected(self):
        job = make_manager().submit(
            JobSpec(kind="lc", name="svc", qos_ms=9.0, rps=2000.0), 0
        )
        assert (job.state, job.reason) == (
            "rejected", "rps_exceeds_capacity"
        )

    def test_tenant_quota(self):
        mgr = make_manager()
        for _ in range(3):
            mgr.submit(JobSpec(kind="batch", name="alpha", tenant="t"), 0)
        job = mgr.submit(JobSpec(kind="batch", name="beta", tenant="t"), 0)
        assert (job.state, job.reason) == ("rejected", "tenant_quota")
        # Another tenant is unaffected.
        other = mgr.submit(
            JobSpec(kind="batch", name="beta", tenant="u"), 0
        )
        assert other.state == "queued"


class TestCapacityAndDrain:
    def test_admits_into_free_slots_in_priority_then_fifo_order(self):
        mgr = make_manager()
        low = mgr.submit(JobSpec(kind="batch", name="alpha"), 0)
        high = mgr.submit(
            JobSpec(kind="batch", name="beta", priority=5), 0
        )
        mgr.submit(JobSpec(kind="batch", name="gamma"), 0)  # overflow
        events = mgr.drain(1)
        admitted = [e["job_id"] for e in events["admitted"]]
        # Priority 5 admits first even though it was submitted second.
        assert admitted == [high.job_id, low.job_id]
        assert mgr.jobs[high.job_id].slot == 0
        assert len(mgr.queue) == 1

    def test_service_bound_blocks_second_lc_job(self):
        mgr = make_manager()
        first = mgr.submit(JobSpec(kind="lc", name="svc", rps=10.0), 0)
        second = mgr.submit(JobSpec(kind="lc", name="svc", rps=10.0), 0)
        mgr.drain(1)
        assert mgr.jobs[first.job_id].state == "running"
        assert mgr.jobs[second.job_id].state == "queued"

    def test_power_envelope_blocks(self):
        mgr = make_manager(batch_power_w={
            "alpha": 90.0, "beta": 90.0, "gamma": 10.0,
        })
        a = mgr.submit(JobSpec(kind="batch", name="alpha"), 0)
        b = mgr.submit(JobSpec(kind="batch", name="beta"), 0)
        mgr.drain(1)
        assert mgr.jobs[a.job_id].state == "running"
        assert mgr.jobs[b.job_id].state == "queued"

    def test_no_free_ways_blocks(self):
        # 1 hosted LC way + 1 slack way fill the cache: no batch fits.
        mgr = make_manager(llc_ways=2)
        job = mgr.submit(JobSpec(kind="batch", name="alpha"), 0)
        mgr.drain(1)
        assert mgr.jobs[job.job_id].state == "queued"

    def test_bounded_wait_times_out(self):
        mgr = make_manager()
        for _ in range(2):
            mgr.submit(JobSpec(kind="batch", name="alpha"), 0)
        blocked = mgr.submit(JobSpec(kind="batch", name="beta"), 0)
        mgr.drain(0)
        for tick in range(1, 4):
            assert mgr.drain(tick)["timed_out"] == []
        events = mgr.drain(4)
        assert [e["job_id"] for e in events["timed_out"]] == [
            blocked.job_id
        ]
        job = mgr.jobs[blocked.job_id]
        assert (job.state, job.reason) == ("rejected", "wait_timeout")
        assert job.waited_quanta == 4
        assert mgr.timed_out == 1

    def test_cancel_releases_slot_for_next_drain(self):
        mgr = make_manager()
        a = mgr.submit(JobSpec(kind="batch", name="alpha"), 0)
        mgr.submit(JobSpec(kind="batch", name="beta"), 0)
        waiting = mgr.submit(JobSpec(kind="batch", name="gamma"), 0)
        mgr.drain(0)
        mgr.cancel(a.job_id, 1)
        events = mgr.drain(1)
        assert [e["job_id"] for e in events["admitted"]] == [
            waiting.job_id
        ]

    def test_set_rps_validates(self):
        mgr = make_manager()
        lc = mgr.submit(JobSpec(kind="lc", name="svc", rps=10.0), 0)
        batch = mgr.submit(JobSpec(kind="batch", name="alpha"), 0)
        mgr.drain(0)
        assert mgr.set_rps(lc.job_id, 500.0).rps == 500.0
        with pytest.raises(ValueError):
            mgr.set_rps(lc.job_id, 5000.0)  # beyond the knee
        with pytest.raises(ValueError):
            mgr.set_rps(batch.job_id, 10.0)  # not an LC job
        assert mgr.set_rps("j999999", 10.0) is None

    def test_counters_track_accept_and_reject(self):
        mgr = make_manager()
        mgr.submit(JobSpec(kind="batch", name="alpha"), 0)
        mgr.submit(JobSpec(kind="batch", name="zzz"), 0)
        mgr.drain(0)
        desc = mgr.describe()
        assert desc["submitted"] == 2
        assert desc["admitted"] == 1
        assert desc["rejected"] == 1
        assert desc["running"] == 1


class TestSnapshotRestore:
    def test_ledger_roundtrips_through_json(self):
        import json

        mgr = make_manager()
        mgr.submit(JobSpec(kind="batch", name="alpha", priority=2), 0)
        mgr.submit(JobSpec(kind="lc", name="svc", rps=250.0), 0)
        mgr.submit(JobSpec(kind="batch", name="zzz"), 0)  # rejected
        mgr.drain(1)
        state = json.loads(json.dumps(mgr.snapshot(), sort_keys=True))

        other = make_manager()
        other.restore(state)
        assert other.snapshot() == mgr.snapshot()
        assert other.describe() == mgr.describe()
        # The restored ledger keeps allocating fresh ids.
        nxt = other.submit(JobSpec(kind="batch", name="beta"), 2)
        assert nxt.job_id == f"j{state['next_seq']:06d}"

    def test_restore_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            make_manager().restore({"version": 99})

"""Wire-format unit tests: parsing, canonical encoding, HTTP sniffing."""

import json

import pytest

from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_line,
    error_response,
    http_response,
    looks_like_http,
    ok_response,
    parse_http_request_line,
    parse_request,
)


class TestParseRequest:
    def test_valid_request_roundtrips(self):
        req = parse_request('{"op": "status", "id": 7}')
        assert req == {"op": "status", "id": 7}

    def test_malformed_json_is_bad_json(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request("{nope")
        assert exc.value.code == "bad_json"

    def test_non_object_is_bad_request(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request("[1, 2]")
        assert exc.value.code == "bad_request"

    def test_missing_op_is_bad_request(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request('{"id": 1}')
        assert exc.value.code == "bad_request"

    def test_unknown_op_names_known_ops(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request('{"op": "launch_missiles"}')
        assert exc.value.code == "unknown_op"
        assert "submit" in str(exc.value)


class TestEncoding:
    def test_encode_line_is_canonical(self):
        a = encode_line({"b": 1, "a": 2})
        b = encode_line({"a": 2, "b": 1})
        assert a == b == b'{"a":2,"b":1}\n'

    def test_ok_response_echoes_op_and_id(self):
        resp = ok_response("tick", {"op": "tick", "id": "x"}, quantum=3)
        assert resp == {"ok": True, "op": "tick", "id": "x", "quantum": 3}

    def test_error_response_carries_stable_code(self):
        resp = error_response("unknown_job", "no such job", op="cancel")
        assert resp["ok"] is False
        assert resp["code"] == "unknown_job"

    def test_protocol_version_is_stable(self):
        assert PROTOCOL_VERSION == 1


class TestHttpSniffing:
    @pytest.mark.parametrize("line", [
        b"GET /status HTTP/1.1\r\n",
        b"HEAD /metrics HTTP/1.1\r\n",
        b"POST /x HTTP/1.1\r\n",
    ])
    def test_http_lines_detected(self, line):
        assert looks_like_http(line)

    def test_ndjson_line_not_http(self):
        assert not looks_like_http(b'{"op": "hello"}\n')

    def test_request_line_parses(self):
        assert parse_http_request_line(
            b"GET /decisions?since=3 HTTP/1.1\r\n"
        ) == ("GET", "/decisions?since=3")

    def test_malformed_request_line_rejected(self):
        with pytest.raises(ProtocolError):
            parse_http_request_line(b"GARBAGE\r\n")

    def test_http_response_is_complete(self):
        raw = http_response("200 OK", "application/json", b"{}")
        text = raw.decode("latin-1")
        assert text.startswith("HTTP/1.1 200 OK\r\n")
        assert "Content-Length: 2" in text
        assert "Connection: close" in text
        assert text.endswith("\r\n\r\n{}")

"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, POLICIES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mix == 0
        assert args.policy == "cuttlesys"
        assert args.cap == 0.7

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_experiment_catalogue_complete(self):
        assert "fig5c" in EXPERIMENTS
        assert "dvfs" in EXPERIMENTS
        assert "ablations" in EXPERIMENTS


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "32-core" in out
        assert "reference max power" in out

    def test_list_mixes(self, capsys):
        assert main(["list-mixes"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 50
        assert "xapian" in out
        assert "silo" in out

    def test_characterize_single_service(self, capsys):
        assert main(["characterize", "--service", "moses"]) == 0
        out = capsys.readouterr().out
        assert "moses" in out
        assert "{6,2,4}" in out

    def test_run_baseline(self, capsys):
        code = main(
            ["run", "--policy", "core-gating", "--slices", "2", "--mix", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "core-gating" in out
        assert "p99/QoS" in out

    def test_run_cuttlesys(self, capsys):
        assert main(["run", "--slices", "2"]) == 0
        out = capsys.readouterr().out
        assert "cuttlesys" in out

    def test_run_bad_mix(self, capsys):
        assert main(["run", "--mix", "99"]) == 2
        assert "mix index" in capsys.readouterr().err

    def test_experiment_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "RBF" in out

    def test_all_policies_constructible(self):
        from repro.experiments.harness import build_machine_for_mix
        from repro.workloads.mixes import paper_mixes

        machine = build_machine_for_mix(paper_mixes()[0], seed=1)
        for name, factory in POLICIES.items():
            policy = factory(machine, 1)
            assert hasattr(policy, "decide")
            assert hasattr(policy, "observe")


class TestExperimentDispatch:
    """Fast experiment names dispatch end to end through the CLI."""

    def test_experiment_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "xapian" in out and "silo" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "training apps" in out

    def test_experiment_flicker(self, capsys):
        assert main(["experiment", "flicker", "--slices", "2"]) == 0
        assert "Flicker" in capsys.readouterr().out

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "describe"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "32-core" in proc.stdout


class TestTelemetryFlags:
    def test_run_writes_chrome_trace(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        code = main(["run", "--slices", "2", "--trace", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        payload = json.loads(path.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "quantum" in names and "sgd" in names

    def test_run_metrics_report(self, capsys):
        assert main(["run", "--slices", "2", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "telemetry metrics report" in out
        assert "prediction_error" in out

    def test_run_jsonl_then_telemetry_report(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        assert main(["run", "--slices", "2", "--jsonl", str(path)]) == 0
        capsys.readouterr()
        assert main(["telemetry-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "span durations" in out
        assert "decision records: 2" in out

    def test_run_decisions_csv(self, capsys, tmp_path):
        path = tmp_path / "decisions.csv"
        code = main(
            ["run", "--slices", "2", "--decisions-csv", str(path)]
        )
        assert code == 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 quanta
        assert "predicted_power_w" in lines[0]

    def test_telemetry_report_missing_file(self, capsys, tmp_path):
        assert main(["telemetry-report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_trace_to_unwritable_path_fails_cleanly(self, capsys):
        code = main(
            ["run", "--slices", "1", "--trace", "/nonexistent-dir/t.json"]
        )
        assert code == 2
        assert "cannot write telemetry output" in capsys.readouterr().err

    def test_telemetry_report_malformed_file(self, capsys, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n{broken")
        assert main(["telemetry-report", str(path)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_run_without_flags_skips_telemetry(self, capsys):
        assert main(["run", "--slices", "1"]) == 0
        out = capsys.readouterr().out
        assert "telemetry metrics report" not in out

    def test_verbose_flag_enables_logging(self, capsys):
        import logging

        assert main(["-v", "run", "--slices", "1"]) == 0
        root = logging.getLogger("repro")
        try:
            assert root.level == logging.INFO
        finally:
            for handler in list(root.handlers):
                if not isinstance(handler, logging.NullHandler):
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)


class TestFaultFlags:
    def test_run_with_faults_prints_injection_summary(self, capsys):
        code = main([
            "run", "--slices", "3",
            "--faults", "drop_sample:rate=0.5;cap_drop:magnitude=0.6,start=1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected:" in out
        assert "drop_sample=" in out
        assert "cap_drop=" in out
        assert "degraded quanta" in out

    def test_run_with_faults_completes_all_slices(self, capsys):
        code = main([
            "run", "--slices", "3", "--faults", "drop_sample:rate=0.9",
        ])
        assert code == 0
        assert "3 slices" in capsys.readouterr().out

    def test_malformed_faults_spec_exits_2(self, capsys):
        code = main(["run", "--slices", "1", "--faults", "bogus:rate=0.5"])
        assert code == 2
        err = capsys.readouterr().err
        assert "bad --faults spec" in err
        assert "unknown fault kind" in err

    def test_malformed_faults_value_exits_2(self, capsys):
        code = main([
            "run", "--slices", "1", "--faults", "drop_sample:rate=banana",
        ])
        assert code == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_faults_counted_in_jsonl(self, capsys, tmp_path):
        import json

        path = tmp_path / "faulted.jsonl"
        code = main([
            "run", "--slices", "3", "--jsonl", str(path),
            "--faults", "drop_sample:rate=0.5",
        ])
        assert code == 0
        names = set()
        with open(path) as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("type") == "counter":
                    names.add(record["name"])
        assert "faults.injected.drop_sample" in names
        assert "faults.detected.bad_sample" in names


class TestFaultStudyCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["fault-study"])
        assert args.mixes == [0]
        assert args.slices == 12
        assert args.scenario is None

    def test_single_scenario_run(self, capsys):
        code = main([
            "fault-study", "--mixes", "0", "--slices", "4",
            "--scenario", "stuck-sensor",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stuck-sensor" in out
        assert "hardened" in out and "unhardened" in out
        # Single-mix runs keep the unqualified table (no mix column).
        assert "mix" not in out.splitlines()[0]

    def test_unknown_scenario_exits_2(self, capsys):
        code = main(["fault-study", "--scenario", "meteor-strike"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_mix_exits_2(self, capsys):
        code = main([
            "fault-study", "--mixes", "99", "--scenario", "stuck-sensor",
        ])
        assert code == 2
        assert "mix index" in capsys.readouterr().err


class TestChaosCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seeds == [7]
        assert args.mixes == [0, 12]
        assert args.budgets == ["inf", "2000"]
        assert args.slices == 10
        assert args.jobs == 1

    def test_unknown_scenario_exits_2(self, capsys):
        code = main(["chaos", "--scenarios", "meteor-strike"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_budget_exits_2(self, capsys):
        code = main(["chaos", "--budgets", "lots"])
        assert code == 2
        assert "budget" in capsys.readouterr().err

    def test_short_soak_passes(self, capsys):
        code = main([
            "chaos", "--seeds", "7", "--mixes", "0",
            "--scenarios", "fault-free", "--budgets", "2000",
            "--slices", "4", "--cooldown", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "all 1 cells healthy" in out


class TestRunPauseResumeFlags:
    def test_stop_after_requires_save_state(self, capsys):
        code = main(["run", "--slices", "4", "--stop-after", "2"])
        assert code == 2
        assert "--save-state" in capsys.readouterr().err

    def test_deadline_flags_require_cuttlesys(self, capsys):
        code = main([
            "run", "--slices", "2", "--policy", "core-gating",
            "--decision-budget", "2000",
        ])
        assert code == 2
        assert "cuttlesys" in capsys.readouterr().err

    def test_pause_then_resume_round_trip(self, capsys, tmp_path):
        state = str(tmp_path / "state.json")
        assert main(["run", "--slices", "3", "--stop-after", "1",
                     "--save-state", state]) == 0
        out = capsys.readouterr().out
        assert "paused at quantum 1" in out
        assert main(["run", "--slices", "3",
                     "--resume-state", state]) == 0
        resumed = capsys.readouterr().out
        assert "3 slices" in resumed


class TestAuditCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.mix == 0
        assert args.slices == 10
        assert args.faults is None

    def test_audit_prints_accuracy_report(self, capsys):
        assert main(["audit", "--slices", "4"]) == 0
        out = capsys.readouterr().out
        assert "prediction-accuracy audit" in out
        assert "quanta audited: " in out
        assert "bips" in out and "lc_p99" in out

    def test_audit_bad_mix(self, capsys):
        assert main(["audit", "--mix", "99"]) == 2
        assert "mix index" in capsys.readouterr().err

    def test_audit_bad_fault_spec(self, capsys):
        assert main(["audit", "--faults", "bogus~spec"]) == 2
        assert "bad --faults spec" in capsys.readouterr().err


class TestBenchParser:
    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.repeats == 5
        assert args.threshold == 10.0
        assert args.only is None
        assert args.compare is None
        assert not args.counters_only

    def test_gate_invocation_shape(self):
        args = build_parser().parse_args([
            "bench", "--input", "BENCH.json",
            "--compare", "benchmarks/BENCH_BASELINE.json",
            "--threshold", "10", "--counters-only",
        ])
        assert args.input == "BENCH.json"
        assert args.counters_only


class TestExplainCommand:
    @pytest.fixture()
    def log(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main(["--seed", "7", "run", "--slices", "2",
                     "--decision-budget", "2000", "--jsonl", path]) == 0
        capsys.readouterr()
        return path

    def test_parser_defaults(self):
        args = build_parser().parse_args(["explain", "run.jsonl"])
        assert args.log == "run.jsonl"
        assert args.quantum is None

    def test_explain_single_quantum(self, capsys, log):
        assert main(["explain", log, "--quantum", "1"]) == 0
        out = capsys.readouterr().out
        assert "decision provenance — quantum 1" in out
        assert "quantum 0" not in out
        assert "mode: reduced_dds" in out
        assert "ladder pricing" in out

    def test_explain_all_quanta(self, capsys, log):
        assert main(["explain", log]) == 0
        out = capsys.readouterr().out
        assert "quantum 0" in out and "quantum 1" in out

    def test_missing_quantum_exits_1(self, capsys, log):
        assert main(["explain", log, "--quantum", "99"]) == 1
        assert "no provenance record" in capsys.readouterr().err

    def test_log_without_provenance_exits_1(self, capsys, tmp_path):
        bare = tmp_path / "bare.jsonl"
        bare.write_text('{"type": "counter", "name": "x.y", "value": 1}\n')
        assert main(["explain", str(bare)]) == 1
        assert "no provenance records" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["explain", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestReplayCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args([
            "replay", "--state", "s.json", "--jsonl", "run.jsonl",
            "--quantum", "3",
        ])
        assert args.mix == 0
        assert args.cap == 0.7
        assert args.load == 0.8
        assert args.decision_budget is None
        assert args.faults is None

    def test_replay_reproduces_recorded_quantum(self, capsys, tmp_path):
        log = str(tmp_path / "run.jsonl")
        state = str(tmp_path / "state.json")
        assert main(["--seed", "7", "run", "--slices", "5",
                     "--decision-budget", "2000", "--jsonl", log]) == 0
        assert main(["--seed", "7", "run", "--slices", "5",
                     "--decision-budget", "2000", "--stop-after", "2",
                     "--save-state", state]) == 0
        capsys.readouterr()
        assert main(["--seed", "7", "replay", "--state", state,
                     "--jsonl", log, "--quantum", "3",
                     "--decision-budget", "2000"]) == 0
        out = capsys.readouterr().out
        assert "replay OK: quantum 3 reproduced byte-identically" in out
        # A quantum the snapshot already passed is rejected, not
        # silently replayed wrong.
        assert main(["--seed", "7", "replay", "--state", state,
                     "--jsonl", log, "--quantum", "1",
                     "--decision-budget", "2000"]) == 1
        assert "precedes" in capsys.readouterr().err

    def test_missing_state_exits_2(self, capsys, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_text("")
        code = main(["replay", "--state", str(tmp_path / "absent.json"),
                     "--jsonl", str(log), "--quantum", "1"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err


class TestProfileCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.log is None
        assert args.slices == 3
        assert args.top == 15
        assert args.weight == "exclusive_us"
        assert not args.ops_only
        assert args.folded is None and args.chrome is None

    def test_in_process_profile(self, capsys):
        assert main(["--seed", "7", "profile", "--slices", "2"]) == 0
        out = capsys.readouterr().out
        assert "profile of mix 0, 2 quanta, seed 7" in out
        assert "phase costs" in out
        assert "dds.search" in out

    def test_profile_from_log_ops_only(self, capsys, tmp_path):
        log = str(tmp_path / "run.jsonl")
        assert main(["--seed", "7", "run", "--slices", "2",
                     "--jsonl", log]) == 0
        capsys.readouterr()
        assert main(["profile", log, "--ops-only"]) == 0
        out = capsys.readouterr().out
        assert "evaluations=" in out
        # The deterministic surface carries no host timings.
        assert "µs" not in out

    def test_export_files(self, capsys, tmp_path):
        folded = tmp_path / "profile.folded"
        chrome = tmp_path / "trace.json"
        assert main(["--seed", "7", "profile", "--slices", "2",
                     "--folded", str(folded),
                     "--chrome", str(chrome)]) == 0
        err = capsys.readouterr().err
        assert "flamegraph.pl" in err
        assert folded.read_text().strip()
        assert chrome.read_text().startswith("{")

    def test_log_without_spans_exits_1(self, capsys, tmp_path):
        bare = tmp_path / "bare.jsonl"
        bare.write_text('{"type": "counter", "name": "x.y", "value": 1}\n')
        assert main(["profile", str(bare)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["profile", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

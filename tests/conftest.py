"""Shared fixtures for the test suite."""

import pytest

from repro.sim.machine import Machine, MachineParams
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import lc_service


@pytest.fixture(scope="session")
def perf():
    """Default reconfigurable-core performance model."""
    return PerformanceModel()


@pytest.fixture(scope="session")
def power():
    """Default reconfigurable-core power model."""
    return PowerModel()


@pytest.fixture(scope="session")
def fixed_perf():
    """Fixed-core performance model (no reconfigurability penalty)."""
    return PerformanceModel(reconfigurable=False)


@pytest.fixture(scope="session")
def train_test_names():
    """The paper's 16/12 train/test benchmark split."""
    return train_test_split()


@pytest.fixture()
def small_machine():
    """A 32-core machine with xapian + 16 test batch jobs (seeded)."""
    _, test_names = train_test_split()
    profiles = [batch_profile(n) for n in (test_names * 2)[:16]]
    return Machine(
        lc_service=lc_service("xapian"),
        batch_profiles=profiles,
        params=MachineParams(),
        seed=11,
    )


@pytest.fixture()
def quiet_machine():
    """Same workload but with all noise and phase drift disabled."""
    _, test_names = train_test_split()
    profiles = [batch_profile(n) for n in (test_names * 2)[:16]]
    params = MachineParams(
        profiling_noise=0.0, slice_noise=0.0, phase_drift=0.0
    )
    return Machine(
        lc_service=lc_service("xapian"),
        batch_profiles=profiles,
        params=params,
        seed=11,
    )

"""Diurnal autoscaling: CuttleSys tracking a day/night load pattern.

Reproduces the paper's Fig. 8(a) scenario at example scale: Xapian's
input load follows a compressed diurnal curve between 20 % and 80 % of
its saturation QPS while the power budget stays at 70 %.  Watch the LC
core configuration widen as load climbs (and the batch jobs give up
power), then narrow back at night — plus a surge at the end that forces
CuttleSys to *relocate* cores from the batch side to the service.

Run:
    python examples/diurnal_autoscaling.py
"""

from repro import CuttleSysPolicy, LoadTrace, build_machine_for_mix
from repro.experiments.harness import run_policy
from repro.workloads import paper_mixes

N_SLICES = 24
SEED = 7


def bar(value: float, scale: float, width: int = 20) -> str:
    filled = int(round(min(1.0, value / scale) * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    mix = paper_mixes()[0]
    machine = build_machine_for_mix(mix, seed=SEED)
    qos = machine.lc_service.qos_latency_s

    day = LoadTrace.diurnal(low=0.2, high=0.8, period=N_SLICES * 0.1 * 0.75)
    surge = LoadTrace.steps([(0.0, 0.0), (N_SLICES * 0.1 * 0.75, 0.35)])
    trace = LoadTrace(
        fn=lambda t: day.load_at(t) + surge.load_at(t),
        description="diurnal day + evening surge",
    )

    policy = CuttleSysPolicy.for_machine(machine, seed=SEED)
    run = run_policy(
        machine, policy, trace, power_cap_fraction=0.7, n_slices=N_SLICES
    )

    print(f"{mix.lc_name} under a diurnal load at a 70% power cap\n")
    print("slice  load   LC config    cores  p99/QoS     batch gmean BIPS")
    for i, m in enumerate(run.measurements):
        a = m.assignment
        active = m.batch_bips[m.batch_bips > 0]
        gmean = float(active.prod() ** (1 / len(active))) if len(active) else 0
        marker = " <- QoS!" if m.lc_p99 > qos else ""
        print(
            f"{i:>5}  {run.loads[i]:>4.0%}  {a.lc_config.label:<12} "
            f"{a.lc_cores:>4}  {bar(m.lc_p99 / qos, 1.2)}  {gmean:>6.2f}"
            f"{marker}"
        )
    print(f"\n{run.summary()}")


if __name__ == "__main__":
    main()

"""Colocation study: CuttleSys against every baseline across power caps.

The motivating scenario of the paper's introduction: a latency-critical
web-search service colocated with a multiprogrammed batch mix on one
power-capped server.  This script sweeps power caps from 90 % down to
50 % and reports the useful batch work of each resource-management
scheme, relative to a machine with no power management — a small-scale
version of Fig. 5(c).

Run:
    python examples/colocation_study.py [mix_index]
"""

import sys

from repro import CuttleSysPolicy, LoadTrace, build_machine_for_mix
from repro.baselines import (
    AsymmetricOraclePolicy,
    CoreGatingPolicy,
    NoGatingPolicy,
)
from repro.experiments.harness import reference_power_for_mix, run_policy
from repro.workloads import paper_mixes

CAPS = (0.9, 0.7, 0.5)
N_SLICES = 8
SEED = 7


def main() -> None:
    mix_index = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=SEED)
    print(f"Mix: {mix.label}   reference power: {reference:.1f} W\n")

    schemes = [
        ("no-gating", lambda m: NoGatingPolicy(), False),
        ("core-gating", lambda m: CoreGatingPolicy(way_partition=False), False),
        ("core-gating+wp", lambda m: CoreGatingPolicy(way_partition=True), False),
        ("asymm-oracle", lambda m: AsymmetricOraclePolicy(), False),
        ("cuttlesys", lambda m: CuttleSysPolicy.for_machine(m, seed=SEED), True),
    ]

    header = f"{'cap':<6}" + "".join(f"{name:>16}" for name, _, _ in schemes)
    print(header)
    print("-" * len(header))
    for cap in CAPS:
        cells = [f"{cap:<6.0%}"]
        baseline = None
        for name, factory, reconfigurable in schemes:
            machine = build_machine_for_mix(
                mix, seed=SEED, reconfigurable=reconfigurable
            )
            run = run_policy(
                machine,
                factory(machine),
                LoadTrace.constant(0.8),
                power_cap_fraction=cap,
                n_slices=N_SLICES,
                max_power_w=reference,
            )
            instr = run.total_batch_instructions()
            if baseline is None:
                baseline = instr
            flag = "!" if run.qos_violations() else ""
            cells.append(f"{instr / baseline:>15.2f}{flag or ' '}")
        print("".join(cells))
    print(
        "\nValues are batch instructions relative to no-gating; "
        "'!' marks QoS violations."
    )


if __name__ == "__main__":
    main()

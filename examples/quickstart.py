"""Quickstart: run CuttleSys on one paper mix for one simulated second.

Builds the simulated 32-core reconfigurable machine for the first
evaluation mix (Xapian + 16 SPEC-like batch jobs), runs the CuttleSys
policy for ten 100 ms decision quanta at 80 % load under a 70 % power
cap, and prints what happened each quantum.

Run:
    python examples/quickstart.py
"""

from repro import CuttleSysPolicy, LoadTrace, build_machine_for_mix
from repro.experiments.harness import run_policy
from repro.workloads import paper_mixes


def main() -> None:
    mix = paper_mixes()[0]
    machine = build_machine_for_mix(mix, seed=7)
    print(f"Machine : {machine.describe()}")
    print(f"Mix     : {mix.label}  (LC service: {mix.lc_name})")
    print(f"QoS     : p99 <= {machine.lc_service.qos_latency_s * 1e3:.2f} ms")

    policy = CuttleSysPolicy.for_machine(machine, seed=7)
    run = run_policy(
        machine,
        policy,
        LoadTrace.constant(0.8),
        power_cap_fraction=0.7,
        n_slices=10,
    )

    print(f"Budget  : {run.power_budget_w:.1f} W (70% cap)\n")
    print("slice  LC config      cores  p99/QoS  power (W)  batch instr (B)")
    qos = machine.lc_service.qos_latency_s
    for i, m in enumerate(run.measurements):
        a = m.assignment
        print(
            f"{i:>5}  {a.lc_config.label:<12}  {a.lc_cores:>5}  "
            f"{m.lc_p99 / qos:>7.2f}  {m.total_power:>9.1f}  "
            f"{m.total_batch_instructions / 1e9:>15.2f}"
        )
    print()
    print(run.summary())


if __name__ == "__main__":
    main()

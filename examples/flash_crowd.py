"""Flash crowd under memory-bandwidth contention (full-fidelity run).

The most hostile scenario the library models: a masstree-like key-value
service takes a flash-crowd spike past its saturation knee while the
machine's shared memory bandwidth is finite (60 GB/s) and the LC tail
latency is measured per-query by the discrete-event queue instead of
the analytical model.  Watch CuttleSys reclaim cores through the spike,
and note the memory-stall multiplier climbing as the surge pushes
bandwidth demand up.

Run:
    python examples/flash_crowd.py
"""

from repro import CuttleSysPolicy, LoadTrace, Machine, MachineParams
from repro.experiments.harness import run_policy
from repro.workloads import lc_service, paper_mixes
from repro.workloads.batch import batch_profile

SEED = 13
N_SLICES = 24


def main() -> None:
    mix = next(m for m in paper_mixes() if m.lc_name == "masstree")
    machine = Machine(
        lc_service=lc_service(mix.lc_name),
        batch_profiles=[batch_profile(n) for n in mix.batch_names],
        params=MachineParams(
            peak_memory_bandwidth_gbps=60.0,
            latency_mode="des",
        ),
        seed=SEED,
    )
    trace = LoadTrace.flash_crowd(
        base=0.3, peak=1.3, start=0.8, duration=0.6, decay=0.3
    )
    policy = CuttleSysPolicy.for_machine(machine, seed=SEED)
    run = run_policy(
        machine, policy, trace, power_cap_fraction=0.8, n_slices=N_SLICES
    )

    qos = machine.lc_service.qos_latency_s
    print(f"{mix.lc_name} flash crowd, 60 GB/s memory, DES latency\n")
    print("slice  load   LC config    cores  p99/QoS  stall  power (W)")
    for i, m in enumerate(run.measurements):
        a = m.assignment
        marker = "  <- QoS!" if m.lc_p99 > qos else ""
        print(
            f"{i:>5}  {run.loads[i]:>4.0%}  {a.lc_config.label:<12} "
            f"{a.lc_cores:>4}  {m.lc_p99 / qos:>7.2f}  "
            f"{m.memory_stall_multiplier:>5.2f}  {m.total_power:>9.1f}"
            f"{marker}"
        )
    print(f"\n{run.summary()}")
    peak_cores = max(m.assignment.lc_cores for m in run.measurements)
    print(
        f"Core relocation peaked at {peak_cores} LC cores during the "
        "spike; the service recovered without operator involvement."
    )


if __name__ == "__main__":
    main()

"""Two latency-critical services sharing one reconfigurable machine.

The paper evaluates one LC service per machine but notes CuttleSys "is
generalizable to any number of LC and batch services" (§VII-A).  Here a
web-search service (xapian, load/store-bound) and an OLTP store (silo,
nearly width-insensitive) split a 32-core machine with twelve batch
jobs.  Watch the controller give each service its own configuration —
xapian keeps a six-wide load/store section, silo runs nearly narrow —
while one DDS search places the batch jobs around both reservations.

Run:
    python examples/two_services.py
"""

from repro import CuttleSysPolicy, LoadTrace
from repro.experiments.harness import run_policy
from repro.experiments.multi_service import build_two_service_machine

SEED = 7
N_SLICES = 12


def main() -> None:
    machine = build_two_service_machine("xapian", "silo", seed=SEED)
    names = [s.name for s in machine.lc_services]
    print(f"Services: {names[0]} (QoS "
          f"{machine.lc_services[0].qos_latency_s * 1e3:.2f} ms) + "
          f"{names[1]} (QoS "
          f"{machine.lc_services[1].qos_latency_s * 1e3:.2f} ms), "
          f"{len(machine.batch_profiles)} batch jobs\n")

    policy = CuttleSysPolicy.for_machine(machine, seed=SEED)
    run = run_policy(
        machine,
        policy,
        LoadTrace.constant(0.4),
        power_cap_fraction=0.75,
        n_slices=N_SLICES,
        extra_traces=(LoadTrace.diurnal(low=0.15, high=0.4,
                                        period=N_SLICES * 0.1),),
    )

    qos_a = machine.lc_services[0].qos_latency_s
    qos_b = machine.lc_services[1].qos_latency_s
    print(f"slice  {names[0]:<22} {names[1]:<22} power (W)")
    for i, m in enumerate(run.measurements):
        a = m.assignment
        left = f"{a.lc_config.label} x{a.lc_cores} ({m.lc_p99 / qos_a:.2f})"
        alloc = a.extra_lc[0]
        right = (
            f"{alloc.config.label} x{alloc.cores} "
            f"({m.extra_lc_p99[0] / qos_b:.2f})"
        )
        print(f"{i:>5}  {left:<22} {right:<22} {m.total_power:>8.1f}")
    print(f"\n{run.summary()}")
    print("(parenthesised numbers are p99/QoS per service)")


if __name__ == "__main__":
    main()

"""Bring your own workload: schedule a custom service with CuttleSys.

The library is not limited to the five paper services and 28 SPEC-like
benchmarks.  This example defines a brand-new latency-critical service
(an "inference-gateway" with a heavy back end — unusual: all paper
services are BE-insensitive) plus a synthetic batch population, builds a
machine around them, and lets CuttleSys find per-job configurations.

Run:
    python examples/custom_service.py
"""

from repro import CoreConfig, CuttleSysPolicy, LoadTrace, Machine, PerformanceModel
from repro.core.controller import ControllerConfig
from repro.experiments.harness import run_policy
from repro.sim.cache import MissRateCurve
from repro.sim.perf import AppProfile
from repro.workloads import LCService, make_services
from repro.workloads.batch import synthetic_population

SEED = 21


def build_inference_gateway(perf: PerformanceModel) -> LCService:
    """A BE-bound ML-inference service (FP-heavy request handlers)."""
    profile = AppProfile(
        name="inference-gateway",
        base_cpi=0.62,
        fe_sens=0.10,
        be_sens=0.45,  # functional units are the bottleneck
        ls_sens=0.08,
        miss_curve=MissRateCurve(peak=6.0, floor=2.2, half_ways=2.5),
        activity=1.15,
    )
    # Calibrate per-query work for a 12 kQPS knee on 16 widest cores,
    # then set QoS with 25 % slack over the 80 %-load tail latency.
    max_qps = 12000.0
    widest_bips = perf.bips(profile, CoreConfig.widest(), 4.0)
    work = 0.85 * 16 * widest_bips * 1e9 / max_qps
    provisional = LCService(
        profile=profile,
        work_instructions=work,
        service_scv=0.9,
        max_qps=max_qps,
        qos_latency_s=1.0,
    )
    p99 = provisional.tail_latency(
        perf, CoreConfig(4, 6, 4), 4.0, load=0.8, n_cores=16
    )
    return LCService(
        profile=profile,
        work_instructions=work,
        service_scv=0.9,
        max_qps=max_qps,
        qos_latency_s=1.25 * p99,
    )


def main() -> None:
    perf = PerformanceModel()
    service = build_inference_gateway(perf)
    batch = synthetic_population(16, seed=SEED)
    machine = Machine(
        lc_service=service, batch_profiles=batch, perf=perf, seed=SEED
    )
    print(f"Service : {service.name}, QoS p99 <= "
          f"{service.qos_latency_s * 1e3:.2f} ms, knee {service.max_qps:.0f} QPS")
    print(f"Batch   : {len(batch)} synthetic jobs\n")

    # The training set defaults to the built-in SPEC-like apps; the five
    # TailBench-like services act as the latency "known applications".
    policy = CuttleSysPolicy.for_machine(
        machine,
        seed=SEED,
        config=ControllerConfig(seed=SEED, latency_variants_per_service=3),
        train_services=list(make_services(perf).values()),
    )
    run = run_policy(
        machine, policy, LoadTrace.constant(0.7),
        power_cap_fraction=0.65, n_slices=10,
    )
    qos = service.qos_latency_s
    print("slice  LC config     p99/QoS  power (W)")
    for i, m in enumerate(run.measurements):
        print(
            f"{i:>5}  {m.assignment.lc_config.label:<12} "
            f"{m.lc_p99 / qos:>8.2f}  {m.total_power:>9.1f}"
        )
    print(f"\n{run.summary()}")
    final = run.measurements[-1].assignment.lc_config
    print(
        f"\nCuttleSys settled on {final.label} with a {final.core.be}-wide "
        "back end. Every paper service runs BE=2; this BE-bound service "
        "keeps it wide — learned purely from profiling + collaborative "
        "filtering."
    )


if __name__ == "__main__":
    main()

"""Timeslice-level simulator of a 32-core reconfigurable multicore.

Substitute for the paper's zsim testbed (see DESIGN.md).  The machine
hosts one latency-critical (LC) service load-balanced over ``lc_cores``
cores plus a fixed set of batch jobs on the remaining cores, and
advances in 100 ms decision quanta.  Each quantum it:

* serves the LC service through its queueing model (p99 latency),
* runs every active batch job at the throughput the performance model
  gives for its (core config, cache allocation), applying time
  multiplexing when jobs outnumber batch cores (core relocation),
* accounts chip power (active cores + gated residuals + LLC leakage),
* injects *phase behaviour* (slow AR(1) drift of each job's CPI) and
  measurement noise, the two error sources §VIII-B attributes runtime
  inaccuracy to.

Schedulers interact with the machine only through
:meth:`Machine.profile` (the two 1 ms samples of Fig. 3) and
:meth:`Machine.run_slice` (steady-state execution + end-of-slice
measurements), mirroring the Configuration Controller's interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry

from repro.sim.cache import MissRateCurve
from repro.sim.coreconfig import N_JOINT_CONFIGS, CoreConfig, JointConfig
from repro.sim.memory import MemoryDemand, MemorySystem
from repro.sim.perf import AppProfile, PerformanceModel
from repro.sim.power import PowerModel
from repro.telemetry.tracer import NULL_TRACER, tracer_of
from repro.workloads.latency_critical import LCService

#: Readings at or below this magnitude are treated as exactly zero by
#: the sensor path: an idle core reports 0.0 by construction, and
#: multiplicative noise on a denormal-scale residue is meaningless.
ZERO_READING_EPS = 1e-12


@dataclass(frozen=True)
class MachineParams:
    """Physical and measurement parameters (Table I plus noise knobs)."""

    n_cores: int = 32
    llc_ways: int = 32
    timeslice_s: float = 0.1
    sample_s: float = 0.001
    #: Relative noise (std) of a 1 ms profiling sample.
    profiling_noise: float = 0.05
    #: Relative noise (std) of a full-slice measurement.
    slice_noise: float = 0.02
    #: Std of the per-slice AR(1) innovation on each job's log-CPI.
    phase_drift: float = 0.02
    #: AR(1) persistence of the phase process.
    phase_persistence: float = 0.9
    #: Effective fraction of a job's fair LLC share it captures when the
    #: cache is unpartitioned (contention makes sharing inefficient).
    shared_llc_efficiency: float = 0.75
    #: Peak memory bandwidth in GB/s; infinite disables bandwidth
    #: contention (the default, matching the paper's cache-centric
    #: evaluation).  See repro.sim.memory.
    peak_memory_bandwidth_gbps: float = math.inf
    #: Queueing aggressiveness of the memory controller when enabled.
    memory_queue_factor: float = 0.5
    #: How the LC service's measured p99 is produced each slice:
    #: "analytical" evaluates the M/G/k approximation (fast, smooth,
    #: perturbed by ``slice_noise``); "des" replays the slice through
    #: the discrete-event queue — per-query fidelity with genuine
    #: sampling noise from the finite query count, like measuring a
    #: real 100 ms window.
    latency_mode: str = "analytical"
    #: Time lost when a core's configuration changes between quanta
    #: (pipeline drain + array power-gate transitions).  Charged
    #: against the slice's useful time for each reconfigured core; the
    #: default 50 us is conservative for SRAM power gating.
    reconfig_transition_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.llc_ways <= 0:
            raise ValueError("llc_ways must be positive")
        if self.timeslice_s <= 0 or self.sample_s <= 0:
            raise ValueError("timeslice_s and sample_s must be positive")
        if self.sample_s > self.timeslice_s:
            raise ValueError("sample_s cannot exceed timeslice_s")
        if not 0 <= self.phase_persistence < 1:
            raise ValueError("phase_persistence must be in [0, 1)")
        if self.latency_mode not in ("analytical", "des"):
            raise ValueError(
                f"latency_mode must be 'analytical' or 'des', "
                f"got {self.latency_mode!r}"
            )
        if self.reconfig_transition_s < 0:
            raise ValueError("reconfig_transition_s must be non-negative")
        if self.reconfig_transition_s >= self.timeslice_s:
            raise ValueError(
                "reconfig_transition_s must be below the timeslice"
            )


@dataclass(frozen=True)
class LCAllocation:
    """Cores + configuration for one additional LC service."""

    cores: int
    config: JointConfig

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("an LC allocation needs at least one core")


@dataclass(frozen=True)
class Assignment:
    """One quantum's resource decision.

    ``lc_cores`` cores run the primary LC service in ``lc_config``;
    machines hosting several LC services (§VII-A: "CuttleSys is
    generalizable to any number of LC and batch services") carry one
    :class:`LCAllocation` per additional service in ``extra_lc``.  Each
    batch job either runs in its :class:`JointConfig` or is gated off
    (``None``).  When active batch jobs outnumber the remaining cores
    they time-multiplex (paper Fig. 8c); when cores outnumber jobs the
    excess cores are gated.
    """

    lc_cores: int
    lc_config: Optional[JointConfig]
    batch_configs: Tuple[Optional[JointConfig], ...]
    #: True models an unpartitioned LLC: per-job ``cache_ways`` are
    #: ignored and every active job contends for an equal share of the
    #: cache (with the shared-way interference penalty).  Used by the
    #: no-partitioning baselines (§VII-B).
    shared_llc: bool = False
    #: Allocations for LC services beyond the first.
    extra_lc: Tuple[LCAllocation, ...] = ()

    def __post_init__(self) -> None:
        if self.lc_cores < 0:
            raise ValueError("lc_cores must be non-negative")
        if self.lc_cores > 0 and self.lc_config is None:
            raise ValueError("lc_config required when lc_cores > 0")

    @property
    def total_lc_cores(self) -> int:
        """Cores held by all LC services together."""
        return self.lc_cores + sum(a.cores for a in self.extra_lc)

    @property
    def active_batch_indices(self) -> Tuple[int, ...]:
        """Indices of batch jobs that are not gated off."""
        return tuple(
            i for i, cfg in enumerate(self.batch_configs) if cfg is not None
        )

    def lc_allocations(self) -> Tuple[Tuple[int, Optional[JointConfig]], ...]:
        """(cores, config) per LC service, primary first."""
        head = ((self.lc_cores, self.lc_config),) if self.lc_cores > 0 else (
            (0, None),
        )
        return head + tuple((a.cores, a.config) for a in self.extra_lc)

    def cache_ways_used(self) -> float:
        """Total fractional LLC ways allocated (Eq. 3 left-hand side)."""
        total = self.lc_config.cache_ways if self.lc_config is not None else 0.0
        total += sum(a.config.cache_ways for a in self.extra_lc)
        half_holders = 0
        for cfg in self.batch_configs:
            if cfg is None:
                continue
            # Half-way shares are the exact sentinel 0.5, never computed.
            if cfg.cache_ways == 0.5:  # repro: noqa[UNIT301]
                half_holders += 1
            else:
                total += cfg.cache_ways
        # Two half-way holders share one physical way.
        total += math.ceil(half_holders / 2.0) if half_holders else 0.0
        return total


@dataclass(frozen=True)
class ProfilingSample:
    """The two 1 ms samples per job (Fig. 3 step 1), with noise.

    Arrays are indexed by batch-job position; configs are the joint
    indices sampled (widest and narrowest core with one LLC way).
    """

    hi_joint_index: int
    lo_joint_index: int
    batch_bips_hi: np.ndarray
    batch_bips_lo: np.ndarray
    batch_power_hi: np.ndarray
    batch_power_lo: np.ndarray
    lc_power_hi: float
    lc_power_lo: float
    #: Per-extra-LC-service power samples (multi-service machines).
    extra_lc_power_hi: Tuple[float, ...] = ()
    extra_lc_power_lo: Tuple[float, ...] = ()


@dataclass(frozen=True)
class SliceMeasurement:
    """End-of-slice measurements the controller feeds back into SGD."""

    assignment: Assignment
    #: Measured per-batch-job BIPS (0 for gated jobs).
    batch_bips: np.ndarray
    #: Instructions executed per batch job this slice (absolute count).
    batch_instructions: np.ndarray
    #: Measured per-batch-job core power in watts (residual if gated).
    batch_power: np.ndarray
    #: Measured p99 latency of the LC service, seconds (0 if absent).
    lc_p99: float
    #: Queries served by the LC service this slice.
    lc_queries_served: float
    #: Instructions executed by the LC service this slice.
    lc_instructions: float
    #: LC per-core utilization.
    lc_utilization: float
    #: Measured LC per-core power in watts.
    lc_core_power: float
    #: Total chip power (cores + LLC), watts.
    total_power: float
    #: Fractional load the LC service saw this slice.
    lc_load: float
    #: Memory-stall inflation from bandwidth contention (1.0 = none;
    #: only exceeds 1.0 when the machine's bandwidth model is enabled).
    memory_stall_multiplier: float = 1.0
    #: Batch jobs whose core configuration changed this quantum (each
    #: pays the reconfiguration transition, MachineParams).
    reconfigurations: int = 0
    #: Per-extra-LC-service measurements (machines hosting >1 service).
    extra_lc_p99: Tuple[float, ...] = ()
    extra_lc_core_power: Tuple[float, ...] = ()
    extra_lc_instructions: Tuple[float, ...] = ()
    extra_lc_loads: Tuple[float, ...] = ()

    @property
    def total_batch_instructions(self) -> float:
        """Useful work metric of §VII-B (instructions over the slice)."""
        return float(np.sum(self.batch_instructions))


def assignment_state(
    assignment: Optional[Assignment],
) -> Optional[Dict[str, Any]]:
    """JSONable form of an :class:`Assignment` (crash-safe snapshots).

    Configurations travel as joint-configuration indices, whose
    integer round-trip through JSON is exact; ``None`` stays ``None``
    so gated jobs and absent assignments survive unchanged.
    """
    if assignment is None:
        return None
    return {
        "lc_cores": assignment.lc_cores,
        "lc_config": (
            assignment.lc_config.index
            if assignment.lc_config is not None
            else None
        ),
        "batch_configs": [
            cfg.index if cfg is not None else None
            for cfg in assignment.batch_configs
        ],
        "shared_llc": assignment.shared_llc,
        "extra_lc": [
            {"cores": alloc.cores, "config": alloc.config.index}
            for alloc in assignment.extra_lc
        ],
    }


def assignment_from_state(
    state: Optional[Dict[str, Any]],
) -> Optional[Assignment]:
    """Inverse of :func:`assignment_state`."""
    if state is None:
        return None
    return Assignment(
        lc_cores=int(state["lc_cores"]),
        lc_config=(
            JointConfig.from_index(int(state["lc_config"]))
            if state["lc_config"] is not None
            else None
        ),
        batch_configs=tuple(
            JointConfig.from_index(int(index)) if index is not None else None
            for index in state["batch_configs"]
        ),
        shared_llc=bool(state["shared_llc"]),
        extra_lc=tuple(
            LCAllocation(
                cores=int(alloc["cores"]),
                config=JointConfig.from_index(int(alloc["config"])),
            )
            for alloc in state["extra_lc"]
        ),
    )


def profile_state(profile: AppProfile) -> Dict[str, Any]:
    """JSONable form of an :class:`~repro.sim.perf.AppProfile`.

    Serialized by value rather than by name: fault injection and job
    churn can install profiles that exist in no registry, and float
    ``repr`` round-trips exactly through JSON.
    """
    return {
        "name": profile.name,
        "base_cpi": profile.base_cpi,
        "fe_sens": profile.fe_sens,
        "be_sens": profile.be_sens,
        "ls_sens": profile.ls_sens,
        "miss_curve": {
            "peak": profile.miss_curve.peak,
            "floor": profile.miss_curve.floor,
            "half_ways": profile.miss_curve.half_ways,
        },
        "mem_blocking": profile.mem_blocking,
        "ls_mlp_sens": profile.ls_mlp_sens,
        "activity": profile.activity,
    }


def profile_from_state(state: Dict[str, Any]) -> AppProfile:
    """Inverse of :func:`profile_state`."""
    curve = state["miss_curve"]
    return AppProfile(
        name=str(state["name"]),
        base_cpi=float(state["base_cpi"]),
        fe_sens=float(state["fe_sens"]),
        be_sens=float(state["be_sens"]),
        ls_sens=float(state["ls_sens"]),
        miss_curve=MissRateCurve(
            peak=float(curve["peak"]),
            floor=float(curve["floor"]),
            half_ways=float(curve["half_ways"]),
        ),
        mem_blocking=float(state["mem_blocking"]),
        ls_mlp_sens=float(state["ls_mlp_sens"]),
        activity=float(state["activity"]),
    )


def measurement_state(measurement: SliceMeasurement) -> Dict[str, Any]:
    """JSONable form of a :class:`SliceMeasurement`.

    Floats survive JSON via shortest-``repr`` round-trip, so a resumed
    run's accumulated measurements are bit-equal to the originals.
    """
    return {
        "assignment": assignment_state(measurement.assignment),
        "batch_bips": measurement.batch_bips.tolist(),
        "batch_instructions": measurement.batch_instructions.tolist(),
        "batch_power": measurement.batch_power.tolist(),
        "lc_p99": measurement.lc_p99,
        "lc_queries_served": measurement.lc_queries_served,
        "lc_instructions": measurement.lc_instructions,
        "lc_utilization": measurement.lc_utilization,
        "lc_core_power": measurement.lc_core_power,
        "total_power": measurement.total_power,
        "lc_load": measurement.lc_load,
        "memory_stall_multiplier": measurement.memory_stall_multiplier,
        "reconfigurations": measurement.reconfigurations,
        "extra_lc_p99": list(measurement.extra_lc_p99),
        "extra_lc_core_power": list(measurement.extra_lc_core_power),
        "extra_lc_instructions": list(measurement.extra_lc_instructions),
        "extra_lc_loads": list(measurement.extra_lc_loads),
    }


def measurement_from_state(state: Dict[str, Any]) -> SliceMeasurement:
    """Inverse of :func:`measurement_state`."""
    assignment = assignment_from_state(state["assignment"])
    assert assignment is not None  # a measurement always has one
    return SliceMeasurement(
        assignment=assignment,
        batch_bips=np.asarray(state["batch_bips"], dtype=float),
        batch_instructions=np.asarray(
            state["batch_instructions"], dtype=float
        ),
        batch_power=np.asarray(state["batch_power"], dtype=float),
        lc_p99=float(state["lc_p99"]),
        lc_queries_served=float(state["lc_queries_served"]),
        lc_instructions=float(state["lc_instructions"]),
        lc_utilization=float(state["lc_utilization"]),
        lc_core_power=float(state["lc_core_power"]),
        total_power=float(state["total_power"]),
        lc_load=float(state["lc_load"]),
        memory_stall_multiplier=float(state["memory_stall_multiplier"]),
        reconfigurations=int(state["reconfigurations"]),
        extra_lc_p99=tuple(float(v) for v in state["extra_lc_p99"]),
        extra_lc_core_power=tuple(
            float(v) for v in state["extra_lc_core_power"]
        ),
        extra_lc_instructions=tuple(
            float(v) for v in state["extra_lc_instructions"]
        ),
        extra_lc_loads=tuple(float(v) for v in state["extra_lc_loads"]),
    )


class Machine:
    """A 32-core reconfigurable multicore hosting one LC + batch jobs."""

    #: Telemetry tracer; the shared no-op unless a session attaches one.
    trace = NULL_TRACER

    def __init__(
        self,
        lc_service: LCService,
        batch_profiles: Sequence[AppProfile],
        params: MachineParams = MachineParams(),
        perf: Optional[PerformanceModel] = None,
        power: Optional[PowerModel] = None,
        seed: int = 1,
        extra_services: Sequence[LCService] = (),
    ) -> None:
        self.lc_service = lc_service
        #: All hosted LC services, primary first.
        self.lc_services = [lc_service, *extra_services]
        self.batch_profiles = list(batch_profiles)
        self.params = params
        self.perf = perf if perf is not None else PerformanceModel()
        self.power = (
            power
            if power is not None
            else PowerModel(llc_ways=params.llc_ways)
        )
        self._rng = np.random.default_rng(seed)
        # Per-job multiplicative phase factor on CPI (log-AR(1) state).
        self._log_phase = np.zeros(len(self.batch_profiles))
        self.time_s = 0.0
        #: Assignment of the most recently completed slice (drives
        #: reconfiguration-transition accounting; part of snapshots).
        self._previous_assignment: Optional[Assignment] = None
        self.memory = MemorySystem(
            peak_bandwidth_gbps=params.peak_memory_bandwidth_gbps,
            queue_factor=params.memory_queue_factor,
        )

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        """Route profiling/slice/reconfigure spans into a session."""
        # Session plumbing re-attached after restore(); deliberately
        # outside the snapshot contract.
        self.trace = tracer_of(telemetry)  # repro: noqa[SNAP701]

    def snapshot(self) -> Dict[str, Any]:
        """JSONable mutable state for crash-safe checkpoints.

        Captures everything :meth:`run_slice` and :meth:`profile`
        mutate — the RNG stream, per-job phase state, simulated time,
        the previously-run assignment (reconfiguration accounting) and
        the batch profiles themselves (replaced wholesale by job churn
        and fault injection).  Static structure (services, params,
        models) is deliberately excluded: a resumed run reconstructs
        the machine deterministically and then calls :meth:`restore`.
        """
        return {
            "time_s": self.time_s,
            "rng": self._rng.bit_generator.state,
            "log_phase": [float(v) for v in self._log_phase],
            "batch_profiles": [
                profile_state(p) for p in self.batch_profiles
            ],
            "previous_assignment": assignment_state(
                getattr(self, "_previous_assignment", None)
            ),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore the mutable state captured by :meth:`snapshot`."""
        self.time_s = float(state["time_s"])
        self._rng.bit_generator.state = state["rng"]
        self._log_phase = np.asarray(state["log_phase"], dtype=float)
        self.batch_profiles = [
            profile_from_state(p) for p in state["batch_profiles"]
        ]
        self._previous_assignment = assignment_from_state(
            state["previous_assignment"]
        )

    # ------------------------------------------------------------------
    # Ground truth (no noise): what the oracle and matrices are built on.
    # ------------------------------------------------------------------

    def true_batch_bips(
        self,
        job: int,
        joint: JointConfig,
        shared_way: bool = False,
        ways_override: Optional[float] = None,
        mem_multiplier: float = 1.0,
    ) -> float:
        """Phase-adjusted BIPS of batch job ``job`` in ``joint``.

        ``ways_override`` substitutes an effective cache share (used by
        the unpartitioned-LLC mode, where the share is fractional);
        ``mem_multiplier`` applies bandwidth-contention stall inflation.
        """
        ways = joint.cache_ways if ways_override is None else ways_override
        base = self.perf.bips(
            self.batch_profiles[job], joint.core, ways, shared_way=shared_way,
            mem_multiplier=mem_multiplier,
        )
        return base / math.exp(self._log_phase[job])

    def true_batch_power(self, job: int, core: CoreConfig) -> float:
        """Core power of batch job ``job`` in ``core`` at full utilization."""
        return self.power.core_power(self.batch_profiles[job], core)

    def true_lc_p99(
        self,
        joint: JointConfig,
        load: float,
        n_cores: int,
        shared_way: bool = False,
        ways_override: Optional[float] = None,
        mem_multiplier: float = 1.0,
        service: Optional[LCService] = None,
    ) -> float:
        """p99 latency of an LC service in ``joint`` on ``n_cores``.

        ``service`` defaults to the primary LC service.
        """
        service = service if service is not None else self.lc_service
        ways = joint.cache_ways if ways_override is None else ways_override
        return service.tail_latency(
            self.perf, joint.core, ways, load, n_cores, shared_way=shared_way,
            mem_multiplier=mem_multiplier,
        )

    def true_lc_power(
        self,
        joint: JointConfig,
        load: float,
        n_cores: int,
        ways_override: Optional[float] = None,
        service: Optional[LCService] = None,
    ) -> float:
        """Per-core power of an LC core in ``joint`` at the given load."""
        service = service if service is not None else self.lc_service
        ways = joint.cache_ways if ways_override is None else ways_override
        util = min(
            1.0,
            service.utilization(self.perf, joint.core, ways, load, n_cores),
        )
        return self.power.core_power(
            service.profile, joint.core, utilization=util
        )

    def oracle_batch_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """Ground-truth batch BIPS and core power on all 108 joints.

        Returns ``(bips, power)``, each ``(n_batch, N_JOINT_CONFIGS)``,
        phase-adjusted at the *current* instant — the exact tables the
        controller's PQ reconstruction is trying to recover, and what
        the accuracy auditor scores each quantum against
        (docs/observability.md).  Phases advance in :meth:`run_slice`,
        so callers auditing a decision must snapshot before running the
        slice it applies to.
        """
        n = len(self.batch_profiles)
        bips = np.empty((n, N_JOINT_CONFIGS))
        power = np.empty((n, N_JOINT_CONFIGS))
        # Oracle table fills are the auditor's dominant cost; the span
        # feeds the virtual-cost profiler (evaluations = model calls).
        with self.trace.span(
            "mgk.latency", category="oracle", kind="batch_tables",
            evaluations=n * N_JOINT_CONFIGS,
        ):
            for idx in range(N_JOINT_CONFIGS):
                joint = JointConfig.from_index(idx)
                for j in range(n):
                    bips[j, idx] = self.true_batch_bips(j, joint)
                    power[j, idx] = self.true_batch_power(j, joint.core)
        return bips, power

    def oracle_lc_latency_row(
        self, load: float, n_cores: int, service_idx: int = 0
    ) -> np.ndarray:
        """Ground-truth p99 of one LC service across all 108 joints.

        The analytical queueing model is deterministic given (config,
        load, cores), so this is the oracle row the controller's
        reconstructed latency predictions are audited against.
        """
        service = self.lc_services[service_idx]
        row = np.empty(N_JOINT_CONFIGS)
        with self.trace.span(
            "mgk.latency", category="oracle", kind="lc_row",
            evaluations=N_JOINT_CONFIGS,
        ):
            for idx in range(N_JOINT_CONFIGS):
                row[idx] = self.true_lc_p99(
                    JointConfig.from_index(idx), load, n_cores,
                    service=service,
                )
        return row

    # ------------------------------------------------------------------
    # Scheduler-facing interface.
    # ------------------------------------------------------------------

    def _noisy(self, value: float, rel_std: float) -> float:
        if not math.isfinite(value):
            # A NaN/inf reading (e.g. an injected sensor fault) must not
            # consume RNG draws, or it would shift every later sample
            # and break seed-exact replay of faulted runs.
            return math.nan
        if abs(value) <= ZERO_READING_EPS:
            # Idle-core readings are exactly zero by construction, but
            # tolerate denormal-scale residue from upstream arithmetic:
            # multiplicative noise on a ~0 reading is still ~0, and
            # skipping the draw here keeps the stream aligned with runs
            # where the reading is exactly 0.0.
            return value
        return value * float(
            np.exp(self._rng.normal(0.0, rel_std) - rel_std**2 / 2.0)
        )

    def profile(
        self,
        load: float,
        lc_cores: int = 16,
        extra_loads: Sequence[float] = (),
        extra_lc_cores: Sequence[int] = (),
    ) -> ProfilingSample:
        """Take the two 1 ms profiling samples of every job (Fig. 3, step 1).

        All jobs are sampled on the widest {6,6,6} and narrowest {2,2,2}
        core with one LLC way (half the cores per configuration per
        millisecond, to avoid a power overshoot — §VIII-A1).  Samples
        carry profiling noise.  ``lc_cores`` is the primary LC service's
        current core allocation (sets the utilization its power is
        sampled at); extra services take theirs via ``extra_loads`` /
        ``extra_lc_cores``.
        """
        with self.trace.span("machine.profile", category="machine"):
            return self._profile(load, lc_cores, extra_loads, extra_lc_cores)

    def _profile(
        self,
        load: float,
        lc_cores: int = 16,
        extra_loads: Sequence[float] = (),
        extra_lc_cores: Sequence[int] = (),
    ) -> ProfilingSample:
        hi = JointConfig(CoreConfig.widest(), 1.0)
        lo = JointConfig(CoreConfig.narrowest(), 1.0)
        n = len(self.batch_profiles)
        bips_hi = np.empty(n)
        bips_lo = np.empty(n)
        pow_hi = np.empty(n)
        pow_lo = np.empty(n)
        noise = self.params.profiling_noise
        for j in range(n):
            bips_hi[j] = self._noisy(self.true_batch_bips(j, hi), noise)
            bips_lo[j] = self._noisy(self.true_batch_bips(j, lo), noise)
            pow_hi[j] = self._noisy(self.true_batch_power(j, hi.core), noise)
            pow_lo[j] = self._noisy(self.true_batch_power(j, lo.core), noise)
        # The LC services are sampled for power only; tail latency is
        # measured over full timeslices (run_slice), not 1 ms windows.
        lc_pow_hi = self._noisy(self.true_lc_power(hi, load, lc_cores), noise)
        lc_pow_lo = self._noisy(self.true_lc_power(lo, load, lc_cores), noise)
        extra_hi = []
        extra_lo = []
        for idx, service in enumerate(self.lc_services[1:]):
            e_load = extra_loads[idx] if idx < len(extra_loads) else load
            e_cores = (
                extra_lc_cores[idx] if idx < len(extra_lc_cores) else lc_cores
            )
            extra_hi.append(
                self._noisy(
                    self.true_lc_power(hi, e_load, e_cores, service=service),
                    noise,
                )
            )
            extra_lo.append(
                self._noisy(
                    self.true_lc_power(lo, e_load, e_cores, service=service),
                    noise,
                )
            )
        return ProfilingSample(
            hi_joint_index=hi.index,
            lo_joint_index=lo.index,
            batch_bips_hi=bips_hi,
            batch_bips_lo=bips_lo,
            batch_power_hi=pow_hi,
            batch_power_lo=pow_lo,
            lc_power_hi=lc_pow_hi,
            lc_power_lo=lc_pow_lo,
            extra_lc_power_hi=tuple(extra_hi),
            extra_lc_power_lo=tuple(extra_lo),
        )

    def profile_configs(
        self, joints: Sequence[JointConfig], load: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Noisy 1 ms samples of every job on each given configuration.

        Generalisation of :meth:`profile` used by Flicker's nine-sample
        3MM3 design (§VIII-E).  Returns ``(bips, power, lc_power)``
        where the first two are [n_configs x n_jobs] and the last is
        [n_configs].
        """
        if not joints:
            raise ValueError("need at least one configuration to profile")
        n = len(self.batch_profiles)
        noise = self.params.profiling_noise
        bips = np.empty((len(joints), n))
        power = np.empty((len(joints), n))
        lc_power = np.empty(len(joints))
        for c, joint in enumerate(joints):
            for j in range(n):
                bips[c, j] = self._noisy(self.true_batch_bips(j, joint), noise)
                power[c, j] = self._noisy(
                    self.true_batch_power(j, joint.core), noise
                )
            lc_power[c] = self._noisy(self.true_lc_power(joint, load, 1), noise)
        return bips, power, lc_power

    def run_slice(
        self,
        assignment: Assignment,
        load: float,
        extra_loads: Sequence[float] = (),
    ) -> SliceMeasurement:
        """Execute one 100 ms timeslice under ``assignment``.

        Returns measured (noisy) per-job metrics and advances the
        machine's phase state and clock.  Machines hosting several LC
        services take one fractional load per extra service in
        ``extra_loads``.
        """
        with self.trace.span("slice", category="machine") as span:
            measurement = self._run_slice(assignment, load, extra_loads)
            span.set(reconfigurations=measurement.reconfigurations)
            return measurement

    def _run_slice(
        self,
        assignment: Assignment,
        load: float,
        extra_loads: Sequence[float] = (),
    ) -> SliceMeasurement:
        self._validate(assignment)
        if len(extra_loads) != len(assignment.extra_lc):
            raise ValueError(
                f"expected {len(assignment.extra_lc)} extra loads, "
                f"got {len(extra_loads)}"
            )
        p = self.params
        n_jobs = len(self.batch_profiles)
        batch_cores = p.n_cores - assignment.total_lc_cores
        active = assignment.active_batch_indices
        share = (
            min(1.0, batch_cores / len(active)) if active else 0.0
        )

        if assignment.shared_llc:
            n_lc = (1 if assignment.lc_cores > 0 else 0) + len(
                assignment.extra_lc
            )
            n_sharers = len(active) + n_lc
            ways_override = (
                p.llc_ways / max(n_sharers, 1) * p.shared_llc_efficiency
            )
            shared_flags = [True] * n_jobs
        else:
            ways_override = None
            shared_flags = self._shared_way_flags(assignment)

        mem_multiplier = self._solve_memory_contention(
            assignment, load, active, share, shared_flags, ways_override,
            extra_loads=extra_loads,
        )

        with self.trace.span("reconfigure", category="machine") as rspan:
            reconfigured = self._reconfigured_jobs(assignment)
            rspan.set(n_cores=len(reconfigured))
        transition_factor = 1.0 - p.reconfig_transition_s / p.timeslice_s

        batch_bips = np.zeros(n_jobs)
        batch_power = np.zeros(n_jobs)
        for j in active:
            joint = assignment.batch_configs[j]
            true_bips = self.true_batch_bips(
                j, joint, shared_way=shared_flags[j],
                ways_override=ways_override, mem_multiplier=mem_multiplier,
            )
            if j in reconfigured:
                true_bips *= transition_factor
            batch_bips[j] = self._noisy(true_bips * share, p.slice_noise)
            batch_power[j] = self._noisy(
                self.true_batch_power(j, joint.core) * share, p.slice_noise
            )
        batch_instructions = batch_bips * 1e9 * p.timeslice_s

        # LC services: primary first, then the extras.
        primary = self._run_lc(
            self.lc_service, assignment.lc_cores, assignment.lc_config,
            load, ways_override, assignment.shared_llc, mem_multiplier,
        )
        extras = tuple(
            self._run_lc(
                service, alloc.cores, alloc.config, extra_load,
                ways_override, assignment.shared_llc, mem_multiplier,
            )
            for service, alloc, extra_load in zip(
                self.lc_services[1:], assignment.extra_lc, extra_loads
            )
        )

        # Chip power: active batch cores + gated cores + LC cores + LLC.
        occupied = min(batch_cores, len(active))
        gated_cores = batch_cores - occupied
        total_power = (
            float(np.sum(batch_power))
            + gated_cores * self.power.gated_core_power()
            + primary["core_power"] * assignment.lc_cores
            + sum(
                extra["core_power"] * alloc.cores
                for extra, alloc in zip(extras, assignment.extra_lc)
            )
            + self.power.llc_power()
        )

        self._advance_phases()
        self.time_s += p.timeslice_s
        self._previous_assignment = assignment
        return SliceMeasurement(
            assignment=assignment,
            reconfigurations=len(reconfigured),
            batch_bips=batch_bips,
            batch_instructions=batch_instructions,
            batch_power=batch_power,
            lc_p99=primary["p99"],
            lc_queries_served=primary["served"],
            lc_instructions=primary["instructions"],
            lc_utilization=primary["utilization"],
            lc_core_power=primary["core_power"],
            total_power=total_power,
            lc_load=load,
            memory_stall_multiplier=mem_multiplier,
            extra_lc_p99=tuple(e["p99"] for e in extras),
            extra_lc_core_power=tuple(e["core_power"] for e in extras),
            extra_lc_instructions=tuple(e["instructions"] for e in extras),
            extra_lc_loads=tuple(extra_loads),
        )

    def _run_lc(
        self,
        service: LCService,
        cores: int,
        config: Optional[JointConfig],
        load: float,
        ways_override: Optional[float],
        shared: bool,
        mem_multiplier: float,
    ) -> Dict[str, float]:
        """Measured quantities of one LC service for this slice."""
        p = self.params
        if cores <= 0 or config is None:
            return {
                "p99": 0.0, "served": 0.0, "instructions": 0.0,
                "utilization": 0.0, "core_power": 0.0,
            }
        lc_ways = (
            ways_override if ways_override is not None else config.cache_ways
        )
        if p.latency_mode == "des":
            p99 = self._des_p99(
                config, load, cores, lc_ways, shared_way=shared,
                mem_multiplier=mem_multiplier, service=service,
            )
        else:
            p99 = self._noisy(
                self.true_lc_p99(
                    config, load, cores, shared_way=shared,
                    ways_override=ways_override,
                    mem_multiplier=mem_multiplier, service=service,
                ),
                p.slice_noise,
            )
        qps = service.qps_at_load(load)
        capacity = cores / service.service_time(
            self.perf, config.core, lc_ways, mem_multiplier=mem_multiplier
        )
        served = min(qps, capacity) * p.timeslice_s
        utilization = min(
            1.0,
            service.utilization(self.perf, config.core, lc_ways, load, cores),
        )
        core_power = self._noisy(
            self.true_lc_power(
                config, load, cores, ways_override=ways_override,
                service=service,
            ),
            p.slice_noise,
        )
        return {
            "p99": p99,
            "served": served,
            "instructions": served * service.work_instructions,
            "utilization": utilization,
            "core_power": core_power,
        }

    def _des_p99(
        self,
        joint: JointConfig,
        load: float,
        n_cores: int,
        lc_ways: float,
        shared_way: bool,
        mem_multiplier: float,
        service: Optional[LCService] = None,
    ) -> float:
        """Per-query p99 from a discrete-event replay of the slice.

        The measurement window matches the paper's: the previous 100 ms
        timeslice.  A short warm-up extends the simulated horizon so
        the queue reaches steady state before measuring.
        """
        from repro.workloads.queueing import DiscreteEventQueue

        service = service if service is not None else self.lc_service
        service_time = service.service_time(
            self.perf, joint.core, lc_ways, shared_way=shared_way,
            mem_multiplier=mem_multiplier,
        )
        queue = DiscreteEventQueue(
            arrival_rate=service.qps_at_load(load),
            service_time_mean=service_time,
            service_scv=service.service_scv,
            servers=n_cores,
        )
        horizon = self.params.timeslice_s * 3.0  # warm-up + window
        sojourns = queue.simulate(horizon, self._rng)
        if sojourns.size == 0:
            return 0.0
        window = sojourns[sojourns.size // 3:]
        return float(np.percentile(window, 99))

    def _solve_memory_contention(
        self,
        assignment: Assignment,
        load: float,
        active: Sequence[int],
        share: float,
        shared_flags: Sequence[bool],
        ways_override: Optional[float],
        extra_loads: Sequence[float] = (),
    ) -> float:
        """Fixed-point memory-stall multiplier for this slice's jobs."""
        if not self.memory.enabled:
            return 1.0
        hz = self.perf.effective_frequency_ghz * 1e9
        demands = []
        for j in active:
            joint = assignment.batch_configs[j]
            ways = (
                joint.cache_ways if ways_override is None else ways_override
            )
            core_cpi, mem_cpi = self.perf.cpi_split(
                self.batch_profiles[j], joint.core, ways,
                shared_way=shared_flags[j],
            )
            phase = math.exp(self._log_phase[j])
            scale = phase / max(share, 1e-9)
            demands.append(
                MemoryDemand(
                    core_seconds=core_cpi * scale / hz,
                    mem_seconds=mem_cpi * scale / hz,
                    misses_per_unit=self.batch_profiles[j].miss_curve.mpki(
                        ways, shared=shared_flags[j]
                    )
                    / 1000.0,
                )
            )
        lc_blocks = [(self.lc_service, assignment.lc_cores,
                      assignment.lc_config, load)]
        lc_blocks.extend(
            (service, alloc.cores, alloc.config, extra_load)
            for service, alloc, extra_load in zip(
                self.lc_services[1:], assignment.extra_lc, extra_loads
            )
        )
        for service, cores, config, lc_load in lc_blocks:
            if cores <= 0 or config is None:
                continue
            ways = (
                config.cache_ways if ways_override is None else ways_override
            )
            core_cpi, mem_cpi = self.perf.cpi_split(
                service.profile, config.core, ways,
                shared_way=assignment.shared_llc,
            )
            work = service.work_instructions
            # Aggregate the load-balanced cores into one demand whose
            # unit is a query, capped at the arrival rate.
            demands.append(
                MemoryDemand(
                    core_seconds=work * core_cpi / hz / cores,
                    mem_seconds=work * mem_cpi / hz / cores,
                    misses_per_unit=work
                    * service.profile.miss_curve.mpki(
                        ways, shared=assignment.shared_llc
                    )
                    / 1000.0,
                    rate_cap=max(service.qps_at_load(lc_load), 1e-9),
                )
            )
        return self.memory.solve(demands)

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------

    def _validate(self, assignment: Assignment) -> None:
        if len(assignment.batch_configs) != len(self.batch_profiles):
            raise ValueError(
                f"assignment covers {len(assignment.batch_configs)} batch "
                f"jobs, machine hosts {len(self.batch_profiles)}"
            )
        if assignment.total_lc_cores > self.params.n_cores:
            raise ValueError("LC core allocations exceed total cores")
        if len(assignment.extra_lc) != len(self.lc_services) - 1:
            raise ValueError(
                f"assignment carries {len(assignment.extra_lc)} extra LC "
                f"allocations; machine hosts {len(self.lc_services)} services"
            )
        if not assignment.shared_llc:
            ways = assignment.cache_ways_used()
            if ways > self.params.llc_ways + 1e-9:
                raise ValueError(
                    f"assignment uses {ways} LLC ways of {self.params.llc_ways}"
                )

    def _reconfigured_jobs(self, assignment: Assignment) -> set:
        """Batch jobs whose core configuration changed since last slice.

        Cache-way changes are free (partitioning registers); changing a
        core's section widths drains the pipeline and power-gates
        arrays, costing ``reconfig_transition_s`` of the slice.
        """
        previous = getattr(self, "_previous_assignment", None)
        if previous is None or len(previous.batch_configs) != len(
            assignment.batch_configs
        ):
            return set()
        changed = set()
        for j, (old, new) in enumerate(
            zip(previous.batch_configs, assignment.batch_configs)
        ):
            if new is None:
                continue
            if old is None or old.core != new.core:
                changed.add(j)
        return changed

    def _shared_way_flags(self, assignment: Assignment) -> List[bool]:
        """Mark batch jobs whose half-way allocation is co-occupied."""
        flags = [False] * len(assignment.batch_configs)
        halves = [
            i
            for i, cfg in enumerate(assignment.batch_configs)
            # Exact sentinel 0.5 (half-way share), never computed.
            if cfg is not None and cfg.cache_ways == 0.5  # repro: noqa[UNIT301]
        ]
        for pos, job in enumerate(halves):
            alone = pos == len(halves) - 1 and len(halves) % 2 == 1
            flags[job] = not alone
        return flags

    def _advance_phases(self) -> None:
        p = self.params
        innovation = self._rng.normal(
            0.0, p.phase_drift, size=len(self.batch_profiles)
        )
        self._log_phase = p.phase_persistence * self._log_phase + innovation

    def replace_batch_job(self, job: int, profile: AppProfile) -> None:
        """Swap in a new application on batch slot ``job`` (job churn).

        Models a batch job running to completion and the cluster
        scheduler placing a fresh — possibly never-seen — application
        on the freed core.  The new job starts with a clean phase
        state; schedulers must re-profile it (the controller resets its
        matrix rows via ``reset_job``).
        """
        if not 0 <= job < len(self.batch_profiles):
            raise ValueError(f"batch job index out of range: {job}")
        self.batch_profiles[job] = profile
        self._log_phase[job] = 0.0

    def reference_max_power(self) -> float:
        """The paper's 100 % power budget for this workload.

        §VII-A: "the system's maximum power is the average per-core
        power across all jobs on reconfigurable cores scaled to 32
        cores" — computed at the widest configuration, plus LLC power.
        """
        widest = CoreConfig.widest()
        per_core = [
            self.true_batch_power(j, widest)
            for j in range(len(self.batch_profiles))
        ]
        per_core.append(
            self.power.core_power(self.lc_service.profile, widest)
        )
        return (
            float(np.mean(per_core)) * self.params.n_cores
            + self.power.llc_power()
        )

    def describe(self) -> str:
        """Human-readable summary of the simulated system (Table I)."""
        p = self.params
        return (
            f"{p.n_cores}-core reconfigurable multicore, "
            f"{p.llc_ways}-way shared LLC, "
            f"{self.perf.frequency_ghz:.1f} GHz nominal "
            f"({self.perf.effective_frequency_ghz:.2f} GHz effective), "
            f"{self.perf.mem_latency_cycles:.0f}-cycle DRAM, "
            f"timeslice {p.timeslice_s * 1e3:.0f} ms, "
            f"sample {p.sample_s * 1e3:.0f} ms"
        )

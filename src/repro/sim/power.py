"""McPAT-substitute power model for reconfigurable cores (22 nm, §VII).

Each core section (FE, BE, LS) contributes dynamic power proportional to
its configured width and the application's switching activity, plus
leakage proportional to width (the arrays of a downsized section are
power gated, removing both components — the mechanism that lets
reconfigurable cores beat DVFS when voltage margins are thin).

Following the paper's McPAT formulation, an application's power depends
on its *core* configuration but not on its LLC allocation (the power
matrix is :math:`P_{i,j}`, indexed by app and core config only); LLC
leakage is accounted once at chip level, and DRAM data-movement power is
excluded as negligible.

Reconfigurable cores pay an 18 % energy-per-cycle penalty relative to
fixed cores (AnyCore RTL analysis); fixed-core baselines (core gating,
asymmetric multicores) do not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.coreconfig import (
    JOINT_CONFIGS,
    N_JOINT_CONFIGS,
    CoreConfig,
)
from repro.sim.perf import AppProfile


@dataclass(frozen=True)
class PowerParams:
    """Per-core power coefficients, in watts at six-wide, full activity."""

    fe_dynamic: float = 0.90
    fe_leakage: float = 0.25
    be_dynamic: float = 1.10
    be_leakage: float = 0.30
    ls_dynamic: float = 0.85
    ls_leakage: float = 0.28
    #: Non-reconfigurable core overhead (L1 caches, clock tree, TLBs).
    other_dynamic: float = 0.35
    other_leakage: float = 0.15
    #: Residual power of a fully gated (off) core.
    gated_residual: float = 0.05
    #: LLC leakage per way (32 ways -> ~2.6 W of always-on uncore power).
    llc_leakage_per_way: float = 0.08
    #: Energy-per-cycle penalty of reconfigurable vs fixed cores.
    reconfig_energy_penalty: float = 0.18
    #: Width exponent of section dynamic power: issue/select/bypass
    #: logic scales superlinearly with width (ports and CAM matchlines
    #: grow quadratically), so narrowing a section saves more than its
    #: width share — the effect that makes partial gating worthwhile.
    dynamic_width_exponent: float = 1.6
    #: Width exponent of section leakage (array area is near linear).
    leakage_width_exponent: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "fe_dynamic",
            "fe_leakage",
            "be_dynamic",
            "be_leakage",
            "ls_dynamic",
            "ls_leakage",
            "other_dynamic",
            "other_leakage",
            "gated_residual",
            "llc_leakage_per_way",
            "reconfig_energy_penalty",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class PowerModel:
    """Maps (application, core config, utilization) to core power in watts."""

    params: PowerParams = PowerParams()
    #: Whether cores pay the reconfigurability energy penalty.
    reconfigurable: bool = True
    llc_ways: int = 32

    def _section_power(
        self, dynamic: float, leakage: float, width: int, activity: float
    ) -> float:
        share = width / 6.0
        dyn_scale = share ** self.params.dynamic_width_exponent
        leak_scale = share ** self.params.leakage_width_exponent
        return dynamic * dyn_scale * activity + leakage * leak_scale

    def core_power(
        self,
        profile: AppProfile,
        config: CoreConfig,
        utilization: float = 1.0,
    ) -> float:
        """Power of one core running ``profile`` in ``config``.

        ``utilization`` scales the dynamic component only (an idle core
        still leaks); latency-critical services at low load have
        utilization well below 1, which is exactly the slack CuttleSys
        converts into lower-power configurations.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        p = self.params
        activity = profile.activity * utilization
        power = (
            self._section_power(p.fe_dynamic, p.fe_leakage, config.fe, activity)
            + self._section_power(p.be_dynamic, p.be_leakage, config.be, activity)
            + self._section_power(p.ls_dynamic, p.ls_leakage, config.ls, activity)
            + p.other_dynamic * activity
            + p.other_leakage
        )
        if self.reconfigurable:
            power *= 1.0 + p.reconfig_energy_penalty
        return power

    def gated_core_power(self) -> float:
        """Residual power of a core that is fully turned off (C6)."""
        return self.params.gated_residual

    def llc_power(self) -> float:
        """Always-on leakage of the shared LLC."""
        return self.params.llc_leakage_per_way * self.llc_ways

    def power_row(self, profile: AppProfile, utilization: float = 1.0) -> np.ndarray:
        """Power of ``profile`` across all 108 joint configurations.

        Constant along the cache-allocation axis by construction (power
        depends on the core configuration only), matching the paper's
        :math:`P_{i,j}` formulation.
        """
        row = np.empty(N_JOINT_CONFIGS)
        for joint in JOINT_CONFIGS:
            row[joint.index] = self.core_power(
                profile, joint.core, utilization=utilization
            )
        return row

"""Shared memory-bandwidth contention model (optional machine feature).

The core CuttleSys evaluation isolates cache interference through way
partitioning, but co-scheduled jobs still share the memory channels.
This module models that contention analytically:

* each job's bandwidth demand is its LLC miss traffic,
  ``BIPS * MPKI * 64 B``;
* when aggregate demand approaches the chip's peak bandwidth, memory
  requests queue at the controller, inflating every job's memory-stall
  time by a common multiplier ``m(rho) = 1 + q * rho / (1 - rho)``
  (an M/D/1-flavoured waiting factor);
* inflating stalls lowers throughput, which lowers demand — the model
  solves this feedback to a fixed point.

The feature is **off by default** (infinite bandwidth) so the
calibrated headline results match the paper's cache-centric setup; the
bandwidth study (:mod:`repro.experiments.bandwidth_study`) turns it on
to quantify the effect — notably on Flicker's pinned-wide methodology,
where unthrottled batch jobs push the LC service over QoS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Bytes fetched per LLC miss.
LINE_BYTES = 64


@dataclass(frozen=True)
class MemoryDemand:
    """One job's memory behaviour, pre-contention.

    ``core_seconds`` and ``mem_seconds`` are the per-unit-of-work times
    (per instruction for batch jobs, per query for LC work): contention
    stretches only the memory part.  ``misses_per_unit`` converts
    completed work into bandwidth demand.  ``rate_cap`` bounds the
    work-completion rate (e.g. an open-loop service cannot serve more
    than its arrival rate); ``math.inf`` for always-busy batch jobs.
    """

    core_seconds: float
    mem_seconds: float
    misses_per_unit: float
    rate_cap: float = math.inf

    def __post_init__(self) -> None:
        if self.core_seconds <= 0:
            raise ValueError("core_seconds must be positive")
        if self.mem_seconds < 0:
            raise ValueError("mem_seconds must be non-negative")
        if self.misses_per_unit < 0:
            raise ValueError("misses_per_unit must be non-negative")

    def rate(self, multiplier: float) -> float:
        """Work completed per second under a stall multiplier."""
        raw = 1.0 / (self.core_seconds + self.mem_seconds * multiplier)
        return min(raw, self.rate_cap)

    def bandwidth(self, multiplier: float) -> float:
        """Bytes per second demanded under a stall multiplier."""
        return self.rate(multiplier) * self.misses_per_unit * LINE_BYTES


@dataclass(frozen=True)
class MemorySystem:
    """Fixed-point solver for the shared-bandwidth stall multiplier."""

    peak_bandwidth_gbps: float = math.inf
    #: Queueing aggressiveness of the controller (waiting factor slope).
    queue_factor: float = 0.5
    #: Utilization ceiling: demand beyond this saturates the multiplier.
    max_utilization: float = 0.95
    #: Fixed-point iterations (converges geometrically; 20 is plenty).
    iterations: int = 20

    def __post_init__(self) -> None:
        if self.peak_bandwidth_gbps <= 0:
            raise ValueError("peak_bandwidth_gbps must be positive")
        if self.queue_factor < 0:
            raise ValueError("queue_factor must be non-negative")
        if not 0 < self.max_utilization < 1:
            raise ValueError("max_utilization must be in (0, 1)")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")

    @property
    def enabled(self) -> bool:
        """False when bandwidth is infinite (contention disabled)."""
        return math.isfinite(self.peak_bandwidth_gbps)

    def multiplier_at(self, utilization: float) -> float:
        """Stall multiplier at a given bandwidth utilization."""
        rho = min(max(utilization, 0.0), self.max_utilization)
        return 1.0 + self.queue_factor * rho / (1.0 - rho)

    def solve(self, demands: Sequence[MemoryDemand]) -> float:
        """The self-consistent stall multiplier for a set of jobs.

        Returns 1.0 when contention is disabled or demand never nears
        the peak.  Damped fixed-point iteration: the multiplier lowers
        throughput, which lowers demand, which lowers the multiplier.
        If the queueing curve saturates with demand still above the
        peak, the multiplier is raised further by bisection until the
        delivered bandwidth fits — the channel physically cannot exceed
        its peak.
        """
        if not self.enabled or not demands:
            return 1.0
        peak = self.peak_bandwidth_gbps * 1e9

        def total(multiplier: float) -> float:
            return sum(d.bandwidth(multiplier) for d in demands)

        multiplier = 1.0
        for _ in range(self.iterations):
            target = self.multiplier_at(total(multiplier) / peak)
            multiplier = 0.5 * multiplier + 0.5 * target
        if total(multiplier) > peak:
            lo = multiplier
            hi = multiplier
            while total(hi) > peak and hi < 1e6:
                hi *= 2.0
            for _ in range(60):
                mid = 0.5 * (lo + hi)
                if total(mid) > peak:
                    lo = mid
                else:
                    hi = mid
            multiplier = hi
        return multiplier

    def utilization(
        self, demands: Sequence[MemoryDemand], multiplier: float
    ) -> float:
        """Aggregate bandwidth utilization under ``multiplier``."""
        if not self.enabled:
            return 0.0
        peak = self.peak_bandwidth_gbps * 1e9
        return sum(d.bandwidth(multiplier) for d in demands) / peak

"""Configuration space of a reconfigurable core (paper §III, §VII).

A core is split into three independently reconfigurable sections, each of
which can be six-, four-, or two-wide:

* **FE** (front-end): fetch, decode, rename, dispatch, ROB.
* **BE** (back-end): issue queues, register files, functional units.
* **LS** (load/store): load queue, store queue.

That yields ``3**3 == 27`` core configurations.  Each application is
additionally assigned one of four LLC way allocations (1/2, 1, 2, or 4
ways; paper §VIII-A2), for ``27 * 4 == 108`` joint configurations — the
columns of the reconstruction matrices and the per-dimension alphabet of
the DDS search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Widths a core section can be configured to, narrowest first.
SECTION_WIDTHS: Tuple[int, ...] = (2, 4, 6)

#: LLC way allocations available to a single application (paper limits the
#: per-job choices to 1/2, 1, 2 and 4 ways to keep reconstruction tractable).
CACHE_ALLOCS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)

N_CORE_CONFIGS = len(SECTION_WIDTHS) ** 3
N_CACHE_ALLOCS = len(CACHE_ALLOCS)
N_JOINT_CONFIGS = N_CORE_CONFIGS * N_CACHE_ALLOCS

_WIDTH_INDEX = {width: i for i, width in enumerate(SECTION_WIDTHS)}


@dataclass(frozen=True, order=True)
class CoreConfig:
    """One {FE, BE, LS} setting of a reconfigurable core.

    Instances are value objects: hashable, ordered by (fe, be, ls), and
    convertible to/from a dense index in ``[0, 27)`` where index 0 is the
    narrowest-issue {2,2,2} and index 26 the widest-issue {6,6,6}.
    """

    fe: int
    be: int
    ls: int

    def __post_init__(self) -> None:
        for name, width in (("fe", self.fe), ("be", self.be), ("ls", self.ls)):
            if width not in _WIDTH_INDEX:
                raise ValueError(
                    f"{name} width must be one of {SECTION_WIDTHS}, got {width}"
                )

    @property
    def index(self) -> int:
        """Dense index in ``[0, N_CORE_CONFIGS)``."""
        return (
            _WIDTH_INDEX[self.fe] * len(SECTION_WIDTHS) + _WIDTH_INDEX[self.be]
        ) * len(SECTION_WIDTHS) + _WIDTH_INDEX[self.ls]

    @classmethod
    def from_index(cls, index: int) -> "CoreConfig":
        """Inverse of :attr:`index`."""
        if not 0 <= index < N_CORE_CONFIGS:
            raise ValueError(f"core config index out of range: {index}")
        base = len(SECTION_WIDTHS)
        ls = SECTION_WIDTHS[index % base]
        be = SECTION_WIDTHS[(index // base) % base]
        fe = SECTION_WIDTHS[index // (base * base)]
        return cls(fe=fe, be=be, ls=ls)

    @classmethod
    def widest(cls) -> "CoreConfig":
        """The {6,6,6} configuration used as the high profiling sample."""
        return cls(6, 6, 6)

    @classmethod
    def narrowest(cls) -> "CoreConfig":
        """The {2,2,2} configuration used as the low profiling sample."""
        return cls(2, 2, 2)

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``"{6,2,4}"``."""
        return f"{{{self.fe},{self.be},{self.ls}}}"

    def widths(self) -> Tuple[int, int, int]:
        """(fe, be, ls) widths as a tuple."""
        return (self.fe, self.be, self.ls)

    def __str__(self) -> str:
        return self.label


#: All 27 core configurations in dense-index order ({2,2,2} ... {6,6,6}).
CORE_CONFIGS: Tuple[CoreConfig, ...] = tuple(
    CoreConfig.from_index(i) for i in range(N_CORE_CONFIGS)
)


@dataclass(frozen=True, order=True)
class JointConfig:
    """A (core configuration, LLC way allocation) pair.

    This is the unit the scheduler reasons about: one column of the SGD
    reconstruction matrices, and one symbol of the DDS decision vector.
    The dense index interleaves cache allocations fastest::

        index = core.index * N_CACHE_ALLOCS + cache_index
    """

    core: CoreConfig
    cache_ways: float

    def __post_init__(self) -> None:
        if self.cache_ways not in CACHE_ALLOCS:
            raise ValueError(
                f"cache allocation must be one of {CACHE_ALLOCS}, "
                f"got {self.cache_ways}"
            )

    @property
    def cache_index(self) -> int:
        """Index of :attr:`cache_ways` within :data:`CACHE_ALLOCS`."""
        return CACHE_ALLOCS.index(self.cache_ways)

    @property
    def index(self) -> int:
        """Dense index in ``[0, N_JOINT_CONFIGS)``."""
        return self.core.index * N_CACHE_ALLOCS + self.cache_index

    @classmethod
    def from_index(cls, index: int) -> "JointConfig":
        """Inverse of :attr:`index`."""
        if not 0 <= index < N_JOINT_CONFIGS:
            raise ValueError(f"joint config index out of range: {index}")
        core = CoreConfig.from_index(index // N_CACHE_ALLOCS)
        return cls(core=core, cache_ways=CACHE_ALLOCS[index % N_CACHE_ALLOCS])

    @property
    def label(self) -> str:
        """Readable label, e.g. ``"{6,2,4}/2w"``."""
        ways = self.cache_ways
        ways_text = f"{ways:g}"
        return f"{self.core.label}/{ways_text}w"

    def __str__(self) -> str:
        return self.label


#: All 108 joint configurations in dense-index order.
JOINT_CONFIGS: Tuple[JointConfig, ...] = tuple(
    JointConfig.from_index(i) for i in range(N_JOINT_CONFIGS)
)


def iter_core_configs() -> Iterator[CoreConfig]:
    """Iterate the 27 core configurations in dense-index order."""
    return iter(CORE_CONFIGS)


def iter_joint_configs() -> Iterator[JointConfig]:
    """Iterate the 108 joint configurations in dense-index order."""
    return iter(JOINT_CONFIGS)

"""Reconfigurable-multicore simulation substrate.

This package stands in for the paper's zsim + McPAT infrastructure. It
provides the configuration space of reconfigurable cores
(:mod:`repro.sim.coreconfig`), analytical performance and power models
(:mod:`repro.sim.perf`, :mod:`repro.sim.power`), the shared
way-partitioned LLC (:mod:`repro.sim.cache`), and the timeslice-level
machine simulator (:mod:`repro.sim.machine`) that schedulers run against.
"""

from repro.sim.cache import MissRateCurve, WayPartition
from repro.sim.dvfs import DVFSLevel, DVFSModel, legacy_ladder, razor_thin_ladder
from repro.sim.memory import MemoryDemand, MemorySystem
from repro.sim.coreconfig import (
    CACHE_ALLOCS,
    CORE_CONFIGS,
    JOINT_CONFIGS,
    N_CACHE_ALLOCS,
    N_CORE_CONFIGS,
    N_JOINT_CONFIGS,
    SECTION_WIDTHS,
    CoreConfig,
    JointConfig,
)
from repro.sim.machine import (
    Assignment,
    Machine,
    MachineParams,
    ProfilingSample,
    SliceMeasurement,
)
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel, PowerParams

__all__ = [
    "CACHE_ALLOCS",
    "CORE_CONFIGS",
    "JOINT_CONFIGS",
    "N_CACHE_ALLOCS",
    "N_CORE_CONFIGS",
    "N_JOINT_CONFIGS",
    "SECTION_WIDTHS",
    "Assignment",
    "CoreConfig",
    "DVFSLevel",
    "DVFSModel",
    "JointConfig",
    "Machine",
    "MemoryDemand",
    "MemorySystem",
    "ProfilingSample",
    "legacy_ladder",
    "razor_thin_ladder",
    "MachineParams",
    "MissRateCurve",
    "PerformanceModel",
    "PowerModel",
    "PowerParams",
    "SliceMeasurement",
    "WayPartition",
]

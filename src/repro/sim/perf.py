"""Analytical performance model for reconfigurable cores.

Substitute for zsim's cycle-level core models (see DESIGN.md).  The model
is a bottleneck CPI decomposition: an application's cycles-per-instruction
on a given core configuration is its ideal CPI on the widest {6,6,6} core
plus per-section stall terms that grow as a section narrows, plus a
memory-stall term driven by its LLC miss-rate curve::

    CPI = base_cpi
        + fe_sens * penalty(fe) + be_sens * penalty(be) + ls_sens * penalty(ls)
        + MPKI(ways)/1000 * mem_latency * blocking(ls)

with ``penalty(w) = 6/w - 1`` (0 at six-wide, 0.5 at four-wide, 2 at
two-wide) — a convex diminishing-returns shape matching the width
characterisations of Flicker and AnyCore.  A narrow LS section also
reduces memory-level parallelism, exposing a larger fraction of each
miss (``blocking`` grows with ``penalty(ls)``).

The per-application sensitivity coefficients are what make workloads
*diverse*: they determine which core section bottlenecks which job, the
structure CuttleSys's collaborative filtering learns and exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sim.cache import MissRateCurve
from repro.sim.coreconfig import JOINT_CONFIGS, N_JOINT_CONFIGS, CoreConfig


#: Convexity of the width penalty: dropping six-wide to four-wide costs
#: little (spare issue slots absorb it), four to two costs a lot.
WIDTH_PENALTY_EXPONENT = 1.35


def width_penalty(width: int) -> float:
    """Stall multiplier for one section at ``width`` (0 when six-wide)."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return (6.0 / width - 1.0) ** WIDTH_PENALTY_EXPONENT


@dataclass(frozen=True)
class AppProfile:
    """Microarchitecture-facing summary of one application.

    Instances are built by :mod:`repro.workloads` (SPEC-like batch
    profiles and TailBench-like service profiles) and consumed by the
    performance and power models.  All coefficients refer to the CPI
    decomposition documented in the module docstring.
    """

    name: str
    base_cpi: float
    fe_sens: float
    be_sens: float
    ls_sens: float
    miss_curve: MissRateCurve
    #: Fraction of a miss's latency exposed as stall on a six-wide LS.
    mem_blocking: float = 0.35
    #: How much a narrow LS section degrades memory-level parallelism.
    ls_mlp_sens: float = 0.25
    #: Switching-activity scale for the dynamic power model.
    activity: float = 1.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive, got {self.base_cpi}")
        for label, value in (
            ("fe_sens", self.fe_sens),
            ("be_sens", self.be_sens),
            ("ls_sens", self.ls_sens),
            ("mem_blocking", self.mem_blocking),
            ("ls_mlp_sens", self.ls_mlp_sens),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        if not 0 < self.activity <= 2.0:
            raise ValueError(f"activity must be in (0, 2], got {self.activity}")


@dataclass(frozen=True)
class PerformanceModel:
    """Maps (application, core config, cache ways) to CPI / IPC / BIPS.

    Parameters mirror Table I of the paper: a 4 GHz nominal clock, a
    200-cycle DRAM access, and the 1.67 % frequency penalty that
    reconfigurable cores pay relative to fixed ones (AnyCore RTL
    analysis, §VII).
    """

    frequency_ghz: float = 4.0
    mem_latency_cycles: float = 200.0
    #: Relative frequency loss of a reconfigurable core (0 for fixed cores).
    reconfig_frequency_penalty: float = 0.0167
    reconfigurable: bool = True

    @property
    def effective_frequency_ghz(self) -> float:
        """Clock after the reconfigurability penalty, in GHz."""
        if self.reconfigurable:
            return self.frequency_ghz * (1.0 - self.reconfig_frequency_penalty)
        return self.frequency_ghz

    def cpi_split(
        self,
        profile: AppProfile,
        config: CoreConfig,
        cache_ways: float,
        shared_way: bool = False,
    ) -> Tuple[float, float]:
        """(core CPI, memory-stall CPI) of ``profile`` on ``config``.

        The split matters for DVFS studies: core cycles scale with the
        clock, while memory-stall time is fixed in wall-clock terms
        (the stall *cycles* here are expressed at the nominal clock).
        """
        mpki = profile.miss_curve.mpki(cache_ways, shared=shared_way)
        blocking = profile.mem_blocking * (
            1.0 + profile.ls_mlp_sens * width_penalty(config.ls)
        )
        core = (
            profile.base_cpi
            + profile.fe_sens * width_penalty(config.fe)
            + profile.be_sens * width_penalty(config.be)
            + profile.ls_sens * width_penalty(config.ls)
        )
        memory = (mpki / 1000.0) * self.mem_latency_cycles * blocking
        return core, memory

    def cpi(
        self,
        profile: AppProfile,
        config: CoreConfig,
        cache_ways: float,
        shared_way: bool = False,
        mem_multiplier: float = 1.0,
    ) -> float:
        """Cycles per instruction of ``profile`` on ``config``.

        ``mem_multiplier`` inflates the memory-stall component — the
        hook the optional memory-bandwidth contention model
        (:mod:`repro.sim.memory`) uses.
        """
        if mem_multiplier < 1.0:
            raise ValueError("mem_multiplier must be >= 1")
        core, memory = self.cpi_split(
            profile, config, cache_ways, shared_way=shared_way
        )
        return core + memory * mem_multiplier

    def ipc(
        self,
        profile: AppProfile,
        config: CoreConfig,
        cache_ways: float,
        shared_way: bool = False,
        mem_multiplier: float = 1.0,
    ) -> float:
        """Instructions per cycle (reciprocal of :meth:`cpi`)."""
        return 1.0 / self.cpi(
            profile, config, cache_ways, shared_way=shared_way,
            mem_multiplier=mem_multiplier,
        )

    def bips(
        self,
        profile: AppProfile,
        config: CoreConfig,
        cache_ways: float,
        shared_way: bool = False,
        mem_multiplier: float = 1.0,
    ) -> float:
        """Billions of instructions per second on one core."""
        return self.effective_frequency_ghz * self.ipc(
            profile, config, cache_ways, shared_way=shared_way,
            mem_multiplier=mem_multiplier,
        )

    def bips_row(self, profile: AppProfile) -> np.ndarray:
        """BIPS of ``profile`` across all 108 joint configurations.

        This is one row of the throughput ground-truth matrix used to
        train and evaluate the SGD reconstruction.
        """
        row = np.empty(N_JOINT_CONFIGS)
        for joint in JOINT_CONFIGS:
            row[joint.index] = self.bips(profile, joint.core, joint.cache_ways)
        return row

    def cpi_row(self, profile: AppProfile) -> np.ndarray:
        """CPI of ``profile`` across all 108 joint configurations."""
        row = np.empty(N_JOINT_CONFIGS)
        for joint in JOINT_CONFIGS:
            row[joint.index] = self.cpi(profile, joint.core, joint.cache_ways)
        return row

"""Shared last-level cache with way partitioning (paper §IV, §VIII-A2).

The 32-way shared LLC is partitioned among co-scheduled applications at
way granularity [Qureshi & Patt, UCP].  CuttleSys restricts per-job
allocations to 1/2, 1, 2 or 4 ways; two jobs holding a 1/2-way allocation
share one physical way and interfere slightly (handled by the ``shared``
penalty of :class:`MissRateCurve` and the runtime matrix updates).

Each application's cache behaviour is summarised by a miss-rate curve
(MPKI as a function of allocated ways), the standard abstraction used by
way-partitioning hardware and by utility-based partitioning policies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping

#: Multiplicative MPKI inflation when a job shares its (half-)way with
#: another job instead of owning it exclusively.
SHARED_HALF_WAY_PENALTY = 1.12


@dataclass(frozen=True)
class MissRateCurve:
    """MPKI as a smooth, convex, decreasing function of allocated ways.

    The curve follows the classic exponential-decay shape of set-dup
    miss-rate profiles::

        mpki(w) = floor + (peak - floor) * 2 ** (-w / half_ways)

    where ``peak`` is the MPKI with (almost) no cache, ``floor`` the
    compulsory-miss MPKI with unbounded cache, and ``half_ways`` the
    number of ways that halves the capacity-miss component.
    """

    peak: float
    floor: float
    half_ways: float

    def __post_init__(self) -> None:
        if self.peak < self.floor:
            raise ValueError(
                f"peak MPKI ({self.peak}) must be >= floor MPKI ({self.floor})"
            )
        if self.floor < 0:
            raise ValueError(f"floor MPKI must be non-negative, got {self.floor}")
        if self.half_ways <= 0:
            raise ValueError(f"half_ways must be positive, got {self.half_ways}")

    def mpki(self, ways: float, shared: bool = False) -> float:
        """Misses per kilo-instruction with ``ways`` LLC ways allocated.

        ``shared`` marks a half-way allocation whose physical way is
        shared with another job; the capacity component is inflated by
        :data:`SHARED_HALF_WAY_PENALTY`.
        """
        if ways < 0:
            raise ValueError(f"ways must be non-negative, got {ways}")
        capacity = (self.peak - self.floor) * 2.0 ** (-ways / self.half_ways)
        if shared:
            capacity *= SHARED_HALF_WAY_PENALTY
        return self.floor + capacity

    def utility(self, ways_from: float, ways_to: float) -> float:
        """MPKI reduction obtained by growing the allocation.

        This is the marginal-utility signal used by utility-based cache
        partitioning; positive when ``ways_to > ways_from``.
        """
        return self.mpki(ways_from) - self.mpki(ways_to)


@dataclass
class WayPartition:
    """Ledger of per-job LLC way allocations against a fixed way budget.

    Enforces the cache constraint of the optimisation problem (Eq. 3):
    the fractional allocations of all jobs must sum to at most
    ``total_ways``.  Half-way allocations are legal; jobs holding them
    are reported as *shared* so the miss model can apply the
    interference penalty.
    """

    total_ways: int
    _allocs: Dict[Hashable, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_ways <= 0:
            raise ValueError(f"total_ways must be positive, got {self.total_ways}")

    @property
    def allocations(self) -> Mapping[Hashable, float]:
        """Read-only view of current allocations."""
        return dict(self._allocs)

    @property
    def allocated(self) -> float:
        """Sum of all fractional allocations currently held."""
        return sum(self._allocs.values())

    @property
    def free_ways(self) -> float:
        """Unallocated way budget."""
        return self.total_ways - self.allocated

    def assign(self, job: Hashable, ways: float) -> None:
        """Set ``job``'s allocation, replacing any previous one.

        Raises :class:`ValueError` if the new total would exceed the
        budget (within floating-point tolerance).
        """
        if ways < 0:
            raise ValueError(f"allocation must be non-negative, got {ways}")
        new_total = self.allocated - self._allocs.get(job, 0.0) + ways
        if new_total > self.total_ways + 1e-9:
            raise ValueError(
                f"allocating {ways} ways to {job!r} would use {new_total} "
                f"of {self.total_ways} ways"
            )
        if ways == 0:
            self._allocs.pop(job, None)
        else:
            self._allocs[job] = ways

    def release(self, job: Hashable) -> None:
        """Drop ``job``'s allocation (no-op if it holds none)."""
        self._allocs.pop(job, None)

    def ways_of(self, job: Hashable) -> float:
        """Current allocation of ``job`` (0 if none)."""
        return self._allocs.get(job, 0.0)

    def is_shared(self, job: Hashable) -> bool:
        """True when ``job`` holds a half-way that another job co-occupies.

        Half-way holders are paired greedily in insertion order; an odd
        half-way holder owns its way alone and does not pay the penalty.
        """
        # 0.5 is the exact half-way sentinel stored in the allocation
        # table, never a computed quantity.
        if self._allocs.get(job, 0.0) != 0.5:  # repro: noqa[UNIT301]
            return False
        halves = [j for j, w in self._allocs.items() if w == 0.5]  # repro: noqa[UNIT301]
        position = halves.index(job)
        # Pairs are (0,1), (2,3), ...; the last unpaired holder is alone.
        return not (position == len(halves) - 1 and len(halves) % 2 == 1)

    def physical_ways_used(self) -> float:
        """Physical ways consumed, counting each shared pair once."""
        # Exact half-way sentinel comparisons, as in is_shared above.
        halves = sum(1 for w in self._allocs.values() if w == 0.5)  # repro: noqa[UNIT301]
        whole = sum(w for w in self._allocs.values() if w != 0.5)  # repro: noqa[UNIT301]
        return whole + math.ceil(halves / 2.0)

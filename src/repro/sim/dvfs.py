"""DVFS model for fixed cores (the paper's §II-A comparison point).

Dynamic voltage-frequency scaling is the incumbent fine-grained power
knob.  The paper argues it is running out of headroom: "the movement
towards processors with razor-thin voltage margins and the increase in
leakage power consumption limit the effectiveness of DVFS in future
systems"; reconfigurable cores keep paying off because they gate both
dynamic *and* leakage power of whole pipeline sections.

This module models a per-core DVFS ladder over the fixed {6,6,6} core:

* performance splits CPI into core cycles (scale with the clock) and
  memory-stall time (fixed in wall-clock terms), so memory-bound jobs
  lose little from down-clocking — the classic DVFS sweet spot;
* dynamic power scales as ``f * V^2`` and leakage as ``V^2``;
* two ladders are provided: a generous legacy range, and a
  :func:`razor_thin_ladder` whose minimum voltage is only ~20 % below
  nominal — the future-node scenario motivating the paper.

The DVFS-vs-reconfiguration study lives in
:mod:`repro.experiments.dvfs_comparison`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim.coreconfig import CoreConfig
from repro.sim.perf import AppProfile, PerformanceModel
from repro.sim.power import PowerModel


@dataclass(frozen=True)
class DVFSLevel:
    """One voltage/frequency operating point."""

    frequency_ghz: float
    vdd: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")


def legacy_ladder() -> Tuple[DVFSLevel, ...]:
    """A generous historical DVFS range (wide voltage scaling)."""
    return (
        DVFSLevel(4.0, 0.80),
        DVFSLevel(3.5, 0.73),
        DVFSLevel(3.0, 0.67),
        DVFSLevel(2.5, 0.61),
        DVFSLevel(2.0, 0.56),
        DVFSLevel(1.5, 0.52),
    )


def razor_thin_ladder() -> Tuple[DVFSLevel, ...]:
    """A future-node ladder with razor-thin voltage margins (§II-A).

    Frequency still scales, but Vmin sits ~12 % under nominal, so the
    quadratic voltage savings largely evaporate and leakage barely
    moves — the regime where the paper expects reconfiguration to win.
    """
    return (
        DVFSLevel(4.0, 0.80),
        DVFSLevel(3.5, 0.77),
        DVFSLevel(3.0, 0.74),
        DVFSLevel(2.5, 0.72),
        DVFSLevel(2.0, 0.71),
        DVFSLevel(1.5, 0.70),
    )


@dataclass(frozen=True)
class DVFSModel:
    """Performance/power of a fixed wide core across a DVFS ladder."""

    ladder: Tuple[DVFSLevel, ...]
    perf: PerformanceModel = PerformanceModel(reconfigurable=False)
    power: PowerModel = PowerModel(reconfigurable=False)

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("ladder must contain at least one level")
        freqs = [lvl.frequency_ghz for lvl in self.ladder]
        if freqs != sorted(freqs, reverse=True):
            raise ValueError("ladder must be ordered fastest level first")

    @property
    def nominal(self) -> DVFSLevel:
        """The fastest (index 0) operating point."""
        return self.ladder[0]

    def bips(
        self,
        profile: AppProfile,
        level: int,
        cache_ways: float,
        config: CoreConfig = CoreConfig(6, 6, 6),
    ) -> float:
        """Throughput at ladder ``level``.

        Core cycles stretch with the slower clock; memory-stall time is
        constant in seconds, so memory-bound profiles flatten out.
        """
        lvl = self._level(level)
        core_cpi, mem_cpi = self.perf.cpi_split(profile, config, cache_ways)
        nominal_f = self.nominal.frequency_ghz
        seconds_per_instr = (
            core_cpi / lvl.frequency_ghz + mem_cpi / nominal_f
        ) * 1e-9
        return 1e-9 / seconds_per_instr

    def core_power(
        self,
        profile: AppProfile,
        level: int,
        utilization: float = 1.0,
        config: CoreConfig = CoreConfig(6, 6, 6),
    ) -> float:
        """Core power at ladder ``level``: dynamic ~ f V^2, leakage ~ V^2."""
        lvl = self._level(level)
        nominal = self.nominal
        f_ratio = lvl.frequency_ghz / nominal.frequency_ghz
        v_ratio = lvl.vdd / nominal.vdd
        base_busy = self.power.core_power(profile, config, utilization=utilization)
        base_idle = self.power.core_power(profile, config, utilization=0.0)
        dynamic = base_busy - base_idle
        leakage = base_idle
        return dynamic * f_ratio * v_ratio**2 + leakage * v_ratio**2

    def n_levels(self) -> int:
        """Number of operating points on the ladder."""
        return len(self.ladder)

    def _level(self, level: int) -> DVFSLevel:
        if not 0 <= level < len(self.ladder):
            raise ValueError(
                f"level must be in [0, {len(self.ladder)}), got {level}"
            )
        return self.ladder[level]

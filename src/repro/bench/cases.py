"""Deterministic benchmark cases for the scheduler's hot paths.

Each case times a hot path ``repeats`` times (fresh solver/RNG state
per repeat so every repeat does identical work) and reports the raw
wall-clock samples *plus* RNG-safe operation counters — SGD iterations
to converge, DDS objective evaluations, trace-span counts.  The
counters are fully determined by the seeds, so they are the quantities
the CI regression gate compares across machines; the walls are for
like-for-like local comparisons.

Wall-clock here uses :func:`time.perf_counter_ns` deliberately —
``repro.bench`` sits outside the determinism-audited packages
(``repro.sim``/``repro.core``/``repro.faults``), so the DET103 lint
rule does not apply.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.report import BenchCaseResult, BenchReport

#: Slices per decision-loop repeat; small because each slice runs the
#: full profile -> reconstruct -> search -> reconfigure pipeline.
QUANTUM_SLICES = 3
#: Batch jobs in the solver microbenchmarks (the paper's mix size).
N_BENCH_JOBS = 16


@dataclass(frozen=True)
class BenchCase:
    """A named, self-contained benchmark."""

    name: str
    description: str
    runner: Callable[[int, int], BenchCaseResult]


def _timed_ms(fn: Callable[[], object]) -> float:
    start = time.perf_counter_ns()
    fn()
    return (time.perf_counter_ns() - start) / 1e6


# -- solver microbenchmarks ------------------------------------------------


def _run_sgd(repeats: int, seed: int) -> BenchCaseResult:
    """One PQ reconstruction of the profiled 32-app BIPS matrix."""
    from repro.core.sgd import PQReconstructor, SGDParams
    from repro.experiments.table2_overheads import _profiled_matrix

    matrix, _, _ = _profiled_matrix(n_train=N_BENCH_JOBS)
    walls: List[float] = []
    iterations = 0
    for _ in range(repeats):
        # Fresh reconstructor per repeat: identical SGD trajectory,
        # hence an identical, comparable iteration count.
        reconstructor = PQReconstructor(SGDParams(seed=seed))
        walls.append(_timed_ms(lambda: reconstructor.reconstruct(matrix)))
        if reconstructor.last_diagnostics is not None:
            iterations = reconstructor.last_diagnostics.iterations
    return BenchCaseResult(
        name="sgd.reconstruct",
        description="PQ/SGD reconstruction, 32-app BIPS matrix",
        wall_ms=tuple(walls),
        counters={"sgd_iterations": int(iterations)},
    )


def _run_dds(repeats: int, seed: int) -> BenchCaseResult:
    """One 16-job DDS search over the 108-config joint space."""
    from repro.core.dds import DDSSearch
    from repro.core.matrices import throughput_rows
    from repro.core.objective import SystemObjective
    from repro.sim.coreconfig import N_JOINT_CONFIGS
    from repro.sim.perf import PerformanceModel
    from repro.sim.power import PowerModel
    from repro.workloads.batch import SPEC_APPS, batch_profile

    perf = PerformanceModel()
    power = PowerModel()
    profiles = [batch_profile(n) for n in SPEC_APPS[:N_BENCH_JOBS]]
    objective = SystemObjective(
        bips=throughput_rows(profiles, perf),
        power=np.vstack([power.power_row(p) for p in profiles]),
        max_power=100.0,
        max_ways=32,
    )
    walls: List[float] = []
    evaluations = 0
    for _ in range(repeats):
        searcher = DDSSearch()
        rng = np.random.default_rng(seed)
        result_box = {}

        def search() -> None:
            result_box["result"] = searcher.search(
                objective, n_dims=N_BENCH_JOBS, n_confs=N_JOINT_CONFIGS,
                rng=rng,
            )

        walls.append(_timed_ms(search))
        evaluations = int(result_box["result"].evaluations)
    return BenchCaseResult(
        name="dds.search",
        description="DDS search, 16 jobs x 108 joint configs",
        wall_ms=tuple(walls),
        counters={"dds_evaluations": evaluations},
    )


# -- decision-loop benchmarks ----------------------------------------------


def _decision_loop(seed: int, telemetry) -> None:
    """Run QUANTUM_SLICES full decision quanta on a fresh mix-0 setup."""
    from repro.core.runtime import CuttleSysPolicy
    from repro.experiments.harness import build_machine_for_mix, run_policy
    from repro.workloads.loadgen import LoadTrace
    from repro.workloads.mixes import paper_mixes

    mix = paper_mixes()[0]
    machine = build_machine_for_mix(mix, seed=seed)
    policy = CuttleSysPolicy.for_machine(machine, seed=seed)
    run_policy(
        machine, policy, LoadTrace.constant(0.6),
        n_slices=QUANTUM_SLICES, telemetry=telemetry,
    )


def _quantum_counters(seed: int) -> Dict[str, int]:
    """Operation counts of the decision loop, from an instrumented twin.

    Telemetry changes no RNG draws and no decisions, so the span
    arguments of one traced run are exactly the operation counts of
    the untraced timed runs.
    """
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    _decision_loop(seed, telemetry)
    evaluations = 0
    iterations = 0
    for span in telemetry.tracer.spans:
        if span.name == "dds.search":
            evaluations += int(span.args.get("evaluations", 0))
        elif span.name == "sgd.reconstruct":
            iterations += int(span.args.get("iterations", 0))
    return {
        "dds_evaluations": evaluations,
        "sgd_iterations": iterations,
        "trace_spans": len(telemetry.tracer.spans),
    }


def _run_quantum(repeats: int, seed: int) -> BenchCaseResult:
    walls = [
        _timed_ms(lambda: _decision_loop(seed, None))
        for _ in range(repeats)
    ]
    return BenchCaseResult(
        name="quantum.decision",
        description=(
            f"{QUANTUM_SLICES} full decision quanta, mix 0, telemetry off"
        ),
        wall_ms=tuple(walls),
        counters=_quantum_counters(seed),
    )


#: Per-quantum decision budget comfortably above one full quantum's
#: metered cost (~6.5k operations): the deadline layer must never
#: degrade at this level, so ``degradation_rungs`` has baseline 0.
AMPLE_DECISION_BUDGET = 8000


def _budgeted_decision_loop(seed: int, telemetry):
    """The decision loop under an ample per-quantum deadline budget."""
    from repro.core.controller import ControllerConfig
    from repro.core.runtime import CuttleSysPolicy
    from repro.experiments.harness import build_machine_for_mix, run_policy
    from repro.workloads.loadgen import LoadTrace
    from repro.workloads.mixes import paper_mixes

    mix = paper_mixes()[0]
    machine = build_machine_for_mix(mix, seed=seed)
    policy = CuttleSysPolicy.for_machine(
        machine, seed=seed,
        config=ControllerConfig(
            seed=seed, decision_budget=AMPLE_DECISION_BUDGET
        ),
    )
    run_policy(
        machine, policy, LoadTrace.constant(0.6),
        n_slices=QUANTUM_SLICES, telemetry=telemetry,
    )
    return policy


def _run_deadline_quantum(repeats: int, seed: int) -> BenchCaseResult:
    """The decision loop with the deadline meter armed at ample budget.

    The counters are the zero-rung regression gate: at ample budget the
    graceful-degradation ladder must never fire, so ``degradation_rungs``
    has baseline 0 and any metering-cost creep that pushes a quantum
    over budget trips the CI counter comparison.  ``budget_total_spent``
    pins the meter's deterministic arithmetic itself.
    """
    from repro.telemetry import Telemetry

    walls = [
        _timed_ms(lambda: _budgeted_decision_loop(seed, None))
        for _ in range(repeats)
    ]
    session = Telemetry()
    policy = _budgeted_decision_loop(seed, session)
    counters = session.metrics.as_dict()["counters"]
    return BenchCaseResult(
        name="deadline.quantum",
        description=(
            f"{QUANTUM_SLICES} decision quanta under an ample "
            f"{AMPLE_DECISION_BUDGET}-op deadline budget"
        ),
        wall_ms=tuple(walls),
        counters={
            "degradation_rungs": int(
                counters.get("controller.degradation.rungs", 0)
            ),
            "budget_total_spent": int(policy.controller.budget.total_spent),
            "budget_quanta": int(policy.controller.budget.quanta),
        },
    )


def _run_telemetry_overhead(repeats: int, seed: int) -> BenchCaseResult:
    from repro.telemetry import Telemetry

    walls = [
        _timed_ms(lambda: _decision_loop(seed, Telemetry()))
        for _ in range(repeats)
    ]
    return BenchCaseResult(
        name="telemetry.overhead",
        description=(
            f"{QUANTUM_SLICES} decision quanta with a live telemetry session"
        ),
        wall_ms=tuple(walls),
        counters={},
    )


def _run_telemetry_disabled(repeats: int, seed: int) -> BenchCaseResult:
    from repro.telemetry import Telemetry

    walls = [
        _timed_ms(lambda: _decision_loop(seed, Telemetry(enabled=False)))
        for _ in range(repeats)
    ]
    return BenchCaseResult(
        name="telemetry.overhead_disabled",
        description=(
            f"{QUANTUM_SLICES} decision quanta with a disabled session "
            "(null tracer + null registry fast path)"
        ),
        wall_ms=tuple(walls),
        counters={},
    )


def _streamed_decision_loop(seed: int):
    """The decision loop with a live emitter bound to a bounded queue.

    Returns ``(emitter, aggregator)`` after draining the queue, so the
    counters can assert both ends of the bus: everything emitted was
    aggregated and nothing was dropped at baseline.
    """
    import queue as queue_mod

    from repro.telemetry import Telemetry
    from repro.telemetry.live import (
        LiveAggregator,
        LiveEmitter,
        install_emitter,
    )

    sink: "queue_mod.Queue" = queue_mod.Queue(maxsize=1024)
    emitter = LiveEmitter(sink, unit_id="bench/stream", worker="bench")
    prior = install_emitter(emitter)
    try:
        _decision_loop(seed, Telemetry())
    finally:
        install_emitter(prior)
    aggregator = LiveAggregator()
    while True:
        try:
            aggregator.ingest_event(sink.get_nowait())
        except queue_mod.Empty:
            break
    return emitter, aggregator


def _run_stream_overhead(repeats: int, seed: int) -> BenchCaseResult:
    """Streaming cost on top of ``telemetry.overhead``.

    The counters are the backpressure gate: ``live_dropped_events``
    has baseline 0, so any drop under the bounded queue at baseline
    load trips the CI counter comparison.
    """
    walls = [
        _timed_ms(lambda: _streamed_decision_loop(seed))
        for _ in range(repeats)
    ]
    emitter, aggregator = _streamed_decision_loop(seed)
    return BenchCaseResult(
        name="telemetry.stream_overhead",
        description=(
            f"{QUANTUM_SLICES} decision quanta streaming live quantum "
            "events into a bounded in-process queue"
        ),
        wall_ms=tuple(walls),
        counters={
            "live_events": int(emitter.emitted),
            "live_dropped_events": int(emitter.dropped),
            "live_quanta_aggregated": int(aggregator.quanta),
            "live_qos_violations": int(aggregator.qos_violations),
        },
    )


def _profiled_decision_loop(seed: int):
    """The decision loop with a live session, then the profile build.

    Returns ``(telemetry, profile root)`` so the counters can pin both
    the flight recorder (every quantum produced a provenance record,
    none dropped) and the profiler's deterministic operation totals.
    """
    from repro.telemetry import Telemetry
    from repro.telemetry.profiler import profile_telemetry

    telemetry = Telemetry()
    _decision_loop(seed, telemetry)
    return telemetry, profile_telemetry(telemetry)


def _run_profiler_overhead(repeats: int, seed: int) -> BenchCaseResult:
    """Flight-recorder + profiler cost on top of ``telemetry.overhead``.

    The counters are the observability gate: ``provenance_records``
    must equal the quantum count (the recorder never misses a
    decision) and ``provenance_dropped_records`` has baseline 0, so a
    recorder bound regression trips the CI counter comparison.  The
    ``profile_ops_total`` / ``profile_nodes`` pair pins the profiler's
    deterministic aggregation itself.
    """
    from repro.telemetry.profiler import iter_nodes, phase_summary

    walls = [
        _timed_ms(lambda: _profiled_decision_loop(seed))
        for _ in range(repeats)
    ]
    session, root = _profiled_decision_loop(seed)
    counters = session.metrics.as_dict()["counters"]
    ops_total = sum(
        sum(entry["ops"].values()) for entry in phase_summary(root)
    )
    return BenchCaseResult(
        name="profiler.overhead",
        description=(
            f"{QUANTUM_SLICES} decision quanta with provenance "
            "recording plus the profile build"
        ),
        wall_ms=tuple(walls),
        counters={
            "provenance_records": int(
                counters.get("provenance.records", 0)
            ),
            "provenance_dropped_records": int(
                counters.get("provenance.dropped", 0)
            ),
            "profile_ops_total": int(ops_total),
            "profile_nodes": sum(1 for _ in iter_nodes(root)),
        },
    )


# -- fleet benchmarks ------------------------------------------------------

#: Slices per cluster-study arm in the fleet cases; enough work per
#: unit that worker start-up cost amortises on multi-core hosts.
FLEET_SLICES = 4


def _cluster_cells(seed: int, jobs: int, telemetry=None):
    from repro.experiments.cluster_study import run_cluster_study

    return run_cluster_study(
        n_slices=FLEET_SLICES, seed=seed, jobs=jobs, telemetry=telemetry,
    )


def _run_fleet_pool(repeats: int, seed: int) -> BenchCaseResult:
    """The 2-scheme cluster study sharded across 2 worker processes.

    Walls show the parallel speedup on multi-core hosts (compare with
    ``fleet.serial``); the counters are the RNG-safe determinism gate:
    ``fleet_retries`` and ``fleet_mismatched_units`` have baseline 0,
    so any worker death or serial-vs-parallel result divergence trips
    the CI counter comparison.
    """
    from repro.telemetry import Telemetry

    walls = [
        _timed_ms(lambda: _cluster_cells(seed, jobs=2))
        for _ in range(repeats)
    ]
    session = Telemetry()
    parallel = _cluster_cells(seed, jobs=2, telemetry=session)
    serial = _cluster_cells(seed, jobs=1)
    mismatched = sum(
        1 for scheme in serial if parallel.get(scheme) != serial[scheme]
    )
    return BenchCaseResult(
        name="fleet.pool",
        description=(
            f"cluster study ({FLEET_SLICES} slices) sharded over "
            "2 worker processes"
        ),
        wall_ms=tuple(walls),
        counters={
            "fleet_units": int(
                session.metrics.counter("fleet.units_total").value
            ),
            "fleet_retries": int(
                session.metrics.counter("fleet.retries").value
            ),
            "fleet_mismatched_units": int(mismatched),
            "cluster_qos_violations": int(
                sum(outcome.qos_violations for outcome in serial.values())
            ),
        },
    )


def _run_fleet_serial(repeats: int, seed: int) -> BenchCaseResult:
    """The same cluster study run in-process; the speedup denominator."""
    walls = [
        _timed_ms(lambda: _cluster_cells(seed, jobs=1))
        for _ in range(repeats)
    ]
    return BenchCaseResult(
        name="fleet.serial",
        description=(
            f"cluster study ({FLEET_SLICES} slices) in-process, --jobs 1"
        ),
        wall_ms=tuple(walls),
        counters={},
    )


BENCH_CASES: Tuple[BenchCase, ...] = (
    BenchCase(
        "sgd.reconstruct",
        "PQ/SGD reconstruction, 32-app BIPS matrix",
        _run_sgd,
    ),
    BenchCase(
        "dds.search",
        "DDS search, 16 jobs x 108 joint configs",
        _run_dds,
    ),
    BenchCase(
        "quantum.decision",
        "full decision quanta, telemetry off",
        _run_quantum,
    ),
    BenchCase(
        "deadline.quantum",
        "decision quanta under an ample deadline budget (zero-rung gate)",
        _run_deadline_quantum,
    ),
    BenchCase(
        "telemetry.overhead",
        "decision quanta with a live telemetry session",
        _run_telemetry_overhead,
    ),
    BenchCase(
        "telemetry.overhead_disabled",
        "decision quanta with a disabled telemetry session",
        _run_telemetry_disabled,
    ),
    BenchCase(
        "telemetry.stream_overhead",
        "decision quanta streaming live events into a bounded queue",
        _run_stream_overhead,
    ),
    BenchCase(
        "profiler.overhead",
        "decision quanta with provenance recording plus the profile build",
        _run_profiler_overhead,
    ),
    BenchCase(
        "fleet.pool",
        "cluster study sharded over 2 worker processes",
        _run_fleet_pool,
    ),
    BenchCase(
        "fleet.serial",
        "cluster study in-process (speedup denominator)",
        _run_fleet_serial,
    ),
)


def case_names() -> Tuple[str, ...]:
    return tuple(case.name for case in BENCH_CASES)


def run_bench(
    repeats: int = 5,
    seed: int = 7,
    only: Optional[Sequence[str]] = None,
) -> BenchReport:
    """Run the (selected) benchmark cases and assemble a report."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if only is not None:
        unknown = sorted(set(only) - set(case_names()))
        if unknown:
            raise ValueError(
                f"unknown bench case(s): {', '.join(unknown)}; "
                f"known: {', '.join(case_names())}"
            )
    cases: Dict[str, BenchCaseResult] = {}
    for case in BENCH_CASES:
        if only is not None and case.name not in only:
            continue
        cases[case.name] = case.runner(repeats, seed)
    return BenchReport(seed=seed, repeats=repeats, cases=cases)

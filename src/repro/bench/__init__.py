"""Deterministic performance-regression harness (``repro bench``).

Runs the scheduler's hot paths — PQ/SGD reconstruction, DDS search,
the full decision quantum, and the telemetry-on/off overhead pair —
with fixed seeds, recording wall-clock samples *and* RNG-safe
operation counters.  Results serialise to BENCH.json; ``repro bench
--compare BASELINE.json`` is the noise-aware regression gate CI runs
against the committed ``benchmarks/BENCH_BASELINE.json``.

See ``docs/observability.md`` for the workflow.
"""

from repro.bench.cases import (
    BENCH_CASES,
    BenchCase,
    case_names,
    run_bench,
)
from repro.bench.report import (
    SCHEMA_VERSION,
    BenchCaseResult,
    BenchReport,
    Comparison,
    Delta,
    compare_reports,
    render_comparison,
    render_report,
)

__all__ = [
    "BENCH_CASES",
    "BenchCase",
    "BenchCaseResult",
    "BenchReport",
    "Comparison",
    "Delta",
    "SCHEMA_VERSION",
    "case_names",
    "compare_reports",
    "render_comparison",
    "render_report",
    "run_bench",
]

"""BENCH.json schema, noise-aware comparison, and rendering.

One :class:`BenchReport` is the machine-readable performance trajectory
of the scheduler's hot paths: per case, the raw wall-clock samples of
every repeat (compared median-of-k, so one noisy repeat cannot fail a
gate) plus RNG-safe *operation counters* — objective evaluations per
DDS search, SGD iterations-to-converge, trace-span counts — which are
deterministic given the seeds and therefore comparable across machines.
CI gates on the counters against a committed baseline
(``benchmarks/BENCH_BASELINE.json``); wall-clock comparison is for
like-for-like runs (same machine, ``repro bench --compare``).
"""

from __future__ import annotations

import json
import math
import statistics
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Bumped whenever the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchCaseResult:
    """One case's measurements: raw walls plus operation counters."""

    name: str
    description: str
    #: Wall-clock of each repeat, milliseconds, in execution order.
    wall_ms: Tuple[float, ...]
    #: Deterministic operation counts (RNG-safe, machine-independent).
    counters: Dict[str, int]

    @property
    def median_wall_ms(self) -> float:
        """Median-of-k wall time; the quantity comparisons use."""
        if not self.wall_ms:
            return math.nan
        return float(statistics.median(self.wall_ms))

    def to_dict(self) -> Dict:
        return {
            "description": self.description,
            "wall_ms": [round(w, 4) for w in self.wall_ms],
            "counters": dict(sorted(self.counters.items())),
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict) -> "BenchCaseResult":
        return cls(
            name=name,
            description=str(data.get("description", "")),
            wall_ms=tuple(float(w) for w in data.get("wall_ms", ())),
            counters={
                str(k): int(v)
                for k, v in data.get("counters", {}).items()
            },
        )


@dataclass(frozen=True)
class BenchReport:
    """A full ``repro bench`` run (the BENCH.json artifact)."""

    seed: int
    repeats: int
    cases: Dict[str, BenchCaseResult]
    schema: int = SCHEMA_VERSION

    def to_json_dict(self) -> Dict:
        return {
            "schema": self.schema,
            "seed": self.seed,
            "repeats": self.repeats,
            "cases": {
                name: case.to_dict() for name, case in self.cases.items()
            },
        }

    def write(self, path_or_file) -> None:
        if hasattr(path_or_file, "write"):
            json.dump(self.to_json_dict(), path_or_file, indent=2)
            return
        with open(path_or_file, "w") as handle:
            json.dump(self.to_json_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_json_dict(cls, data: Dict) -> "BenchReport":
        schema = int(data.get("schema", 0))
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"BENCH.json schema {schema} is newer than supported "
                f"({SCHEMA_VERSION}); update the toolkit"
            )
        return cls(
            seed=int(data.get("seed", 0)),
            repeats=int(data.get("repeats", 0)),
            cases={
                name: BenchCaseResult.from_dict(name, case)
                for name, case in data.get("cases", {}).items()
            },
            schema=schema,
        )

    @classmethod
    def read(cls, path_or_file) -> "BenchReport":
        if hasattr(path_or_file, "read"):
            return cls.from_json_dict(json.load(path_or_file))
        with open(path_or_file) as handle:
            return cls.from_json_dict(json.load(handle))


@dataclass(frozen=True)
class Delta:
    """One compared quantity of one case."""

    case: str
    #: ``"wall_ms"`` or an operation-counter key.
    quantity: str
    baseline: float
    current: float
    change_pct: float
    regressed: bool


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing a current report against a baseline."""

    threshold_pct: float
    counters_only: bool
    deltas: Tuple[Delta, ...]
    #: Baseline cases absent from the current report (a regression:
    #: a silently dropped benchmark hides future slowdowns).
    missing: Tuple[str, ...]

    @property
    def regressions(self) -> Tuple[Delta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    threshold_pct: float = 10.0,
    counters_only: bool = False,
) -> Comparison:
    """Noise-aware comparison: median-of-k walls, exact-ish counters.

    A quantity regresses when it grows more than ``threshold_pct``
    above the baseline.  ``counters_only`` skips wall-clock entirely —
    the mode CI uses against the committed baseline, since absolute
    timings are machine-dependent but operation counts are not.
    """
    if threshold_pct < 0:
        raise ValueError("threshold_pct must be non-negative")
    deltas: List[Delta] = []
    missing: List[str] = []
    for name, base in baseline.cases.items():
        cur = current.cases.get(name)
        if cur is None:
            missing.append(name)
            continue
        if not counters_only:
            base_med = base.median_wall_ms
            cur_med = cur.median_wall_ms
            if base_med > 0 and not math.isnan(cur_med):
                change = (cur_med - base_med) / base_med * 100.0
                deltas.append(Delta(
                    case=name, quantity="wall_ms",
                    baseline=base_med, current=cur_med,
                    change_pct=change, regressed=change > threshold_pct,
                ))
        for key, base_count in sorted(base.counters.items()):
            cur_count = cur.counters.get(key)
            if cur_count is None:
                deltas.append(Delta(
                    case=name, quantity=key, baseline=float(base_count),
                    current=math.nan, change_pct=math.nan, regressed=True,
                ))
                continue
            denom = max(base_count, 1)
            change = (cur_count - base_count) / denom * 100.0
            deltas.append(Delta(
                case=name, quantity=key, baseline=float(base_count),
                current=float(cur_count), change_pct=change,
                regressed=change > threshold_pct,
            ))
    return Comparison(
        threshold_pct=threshold_pct,
        counters_only=counters_only,
        deltas=tuple(deltas),
        missing=tuple(missing),
    )


def render_report(report: BenchReport) -> str:
    """Human-readable bench table."""
    lines = [
        "performance bench "
        f"(seed {report.seed}, median of {report.repeats}):",
        f"  {'case':<30} {'median':>10} {'min':>10} {'max':>10}",
    ]
    for name, case in report.cases.items():
        if case.wall_ms:
            lines.append(
                f"  {name:<30} {case.median_wall_ms:>8.2f}ms "
                f"{min(case.wall_ms):>8.2f}ms {max(case.wall_ms):>8.2f}ms"
            )
        else:
            lines.append(f"  {name:<30} {'-':>10} {'-':>10} {'-':>10}")
        for key, value in sorted(case.counters.items()):
            lines.append(f"    {key:<32} {value}")
    return "\n".join(lines)


def render_comparison(comparison: Comparison) -> str:
    """Human-readable regression-gate verdict."""
    scope = "counters only" if comparison.counters_only else "wall + counters"
    lines = [
        f"bench comparison ({scope}, "
        f"threshold {comparison.threshold_pct:.1f} %):"
    ]
    for delta in comparison.deltas:
        marker = "REGRESSED" if delta.regressed else "ok"
        if math.isnan(delta.current):
            lines.append(
                f"  {delta.case}/{delta.quantity}: missing from current "
                f"run  {marker}"
            )
            continue
        lines.append(
            f"  {delta.case}/{delta.quantity}: {delta.baseline:.2f} -> "
            f"{delta.current:.2f} ({delta.change_pct:+.1f} %)  {marker}"
        )
    for name in comparison.missing:
        lines.append(f"  {name}: case missing from current run  REGRESSED")
    lines.append(
        "verdict: "
        + ("ok" if comparison.ok
           else f"{len(comparison.regressions) + len(comparison.missing)} "
                "regression(s)")
    )
    return "\n".join(lines)

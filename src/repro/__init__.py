"""CuttleSys (MICRO 2020) reproduction.

A production-quality Python implementation of CuttleSys - data-driven
resource management for interactive services on reconfigurable
multicores - together with the simulation substrate (reconfigurable-core
performance/power models, way-partitioned LLC, timeslice machine),
TailBench-like and SPEC-like workload models, all baselines the paper
compares against (core-level gating, oracle asymmetric multicores,
Flicker), and one experiment module per table/figure of the evaluation.

Quickstart::

    from repro import CuttleSysPolicy, build_machine_for_mix
    from repro.workloads import paper_mixes, LoadTrace

    mix = paper_mixes()[0]
    machine = build_machine_for_mix(mix, seed=7)
    policy = CuttleSysPolicy.for_machine(machine, seed=7)
    result = policy.run(machine, LoadTrace.constant(0.8),
                        power_cap_fraction=0.7, n_slices=10)
    print(result.summary())

Observability: pass a :class:`repro.telemetry.Telemetry` session to
``run_policy(telemetry=...)`` to record nested phase spans, counters,
and per-quantum predicted-vs-measured accuracy; export as Chrome trace
JSON or JSONL (see docs/observability.md).
"""

from repro.logs import install_null_handler

# Library default: repro.* loggers stay silent unless the application
# (or the CLI's --verbose flag) configures handlers.
install_null_handler()

from repro.core import (
    CuttleSysPolicy,
    DDSParams,
    DDSSearch,
    GeneticSearch,
    PQReconstructor,
    RBFSurrogate,
    ResourceController,
    SGDParams,
)
from repro.experiments.harness import PolicyRun, build_machine_for_mix, run_policy
from repro.sim import (
    Assignment,
    CoreConfig,
    JointConfig,
    Machine,
    MachineParams,
    PerformanceModel,
    PowerModel,
)
from repro.telemetry import Telemetry
from repro.workloads import LCService, LoadTrace, Mix, lc_service, paper_mixes

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "CoreConfig",
    "CuttleSysPolicy",
    "DDSParams",
    "DDSSearch",
    "GeneticSearch",
    "JointConfig",
    "LCService",
    "LoadTrace",
    "Machine",
    "MachineParams",
    "Mix",
    "PQReconstructor",
    "PerformanceModel",
    "PolicyRun",
    "PowerModel",
    "RBFSurrogate",
    "ResourceController",
    "SGDParams",
    "Telemetry",
    "build_machine_for_mix",
    "lc_service",
    "paper_mixes",
    "run_policy",
    "__version__",
]

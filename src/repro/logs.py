"""Standard-library logging for the ``repro.*`` hierarchy.

Every module logs through ``logging.getLogger("repro.<area>")`` (use
:func:`get_logger`).  As a library, ``repro`` installs only a
``NullHandler`` on the root ``repro`` logger (done in
``repro/__init__``), so importing it never configures global logging;
applications — including ``python -m repro`` via ``--verbose/-v`` —
opt in with :func:`configure`.
"""

from __future__ import annotations

import logging
from typing import Optional

#: Root logger name of the hierarchy.
ROOT = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("core.controller")`` and
    ``get_logger("repro.core.controller")`` both yield
    ``repro.core.controller``; no argument yields the root.
    """
    if not name:
        return logging.getLogger(ROOT)
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def install_null_handler() -> None:
    """Library default: swallow records unless the app configures sinks."""
    logging.getLogger(ROOT).addHandler(logging.NullHandler())


def verbosity_to_level(verbosity: int) -> int:
    """Map ``-v`` counts to levels: 0=WARNING, 1=INFO, >=2=DEBUG."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root at the level
    implied by ``verbosity`` (idempotent: reconfigures, never stacks
    duplicate handlers).  Returns the root logger.
    """
    root = logging.getLogger(ROOT)
    root.setLevel(verbosity_to_level(verbosity))
    for handler in list(root.handlers):
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)
    return root

"""Deterministic fault injection around a :class:`~repro.sim.machine.Machine`.

The injector perturbs exactly the interfaces the controller consumes —
profiling samples, slice measurements, requested reconfigurations — and
the environment the harness feeds it (power budget, LC load, batch-job
population).  It never touches the machine's internal state, so the
underlying physics stays truthful; only what the *controller can see or
request* is corrupted, mirroring how real sensor and actuator faults
present.

Determinism: each :class:`~repro.faults.spec.FaultSpec` draws from its
own ``numpy`` RNG stream seeded from ``(seed, spec position)``, so a
scenario replays injection-for-injection regardless of how other specs
consume randomness.

Every injection increments ``faults.injected.<kind>`` in the attached
telemetry session (and the injector's own ``injected`` tally), which is
how the fault study proves faults actually fired.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.spec import FaultScenario, FaultSpec
from repro.logs import get_logger
from repro.sim.coreconfig import CoreConfig, JointConfig
from repro.sim.machine import (
    Assignment,
    Machine,
    ProfilingSample,
    SliceMeasurement,
)

log = get_logger("faults.injector")


class FaultInjector:
    """Owns a scenario's fault state, RNG streams, and tallies.

    One injector drives one run: construct it, hand it to
    :func:`repro.experiments.harness.run_policy` via ``faults=``, and
    the harness wraps the machine with :class:`FaultyMachine` and
    consults the injector each quantum for budget/load/churn faults.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        seed: int = 0,
        telemetry=None,
    ) -> None:
        if isinstance(specs, FaultScenario):
            seed = specs.seed
            specs = specs.specs
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        if not self.specs:
            raise ValueError("an injector needs at least one fault spec")
        self.seed = seed
        # One independent stream per spec: replay-exact regardless of
        # which other faults are active.
        self._rngs = [
            np.random.default_rng([seed, i]) for i in range(len(self.specs))
        ]
        self.telemetry = telemetry
        self.quantum = 0
        #: Injections so far, by kind.
        self.injected: Dict[str, int] = {}
        # stuck_power snapshots: per-spec frozen sensor readings.
        self._frozen_profile: Dict[int, tuple] = {}
        self._frozen_power: Dict[int, tuple] = {}
        # failed_reconfig pins: job -> (old core config, expiry quantum).
        self._pins: Dict[int, Tuple[object, int]] = {}

    @classmethod
    def from_scenario(
        cls, scenario: FaultScenario, telemetry=None
    ) -> "FaultInjector":
        """Build an injector replaying ``scenario`` exactly."""
        return cls(scenario.specs, seed=scenario.seed, telemetry=telemetry)

    def attach_telemetry(self, telemetry) -> None:
        """Route injection counters into a telemetry session."""
        # Session plumbing re-attached after restore(); deliberately
        # outside the snapshot contract.
        self.telemetry = telemetry  # repro: noqa[SNAP701]

    def _count(self, kind: str, n: int = 1) -> None:
        if n <= 0:
            return
        self.injected[kind] = self.injected.get(kind, 0) + n
        if self.telemetry is not None:
            self.telemetry.metrics.counter(f"faults.injected.{kind}").inc(n)

    def total_injected(self) -> int:
        """All injections so far, across kinds."""
        return sum(self.injected.values())

    def _active(self, kind: str):
        """(spec index, spec) pairs of ``kind`` active this quantum."""
        return [
            (i, s)
            for i, s in enumerate(self.specs)
            if s.kind == kind and s.active(self.quantum)
        ]

    # ------------------------------------------------------------------
    # Harness-facing faults (environment).
    # ------------------------------------------------------------------

    def begin_quantum(self, quantum: int) -> None:
        """Advance the injector's clock; expire elapsed reconfig pins."""
        self.quantum = quantum
        self._pins = {
            job: (core, expiry)
            for job, (core, expiry) in self._pins.items()
            if expiry > quantum
        }

    def effective_budget(self, budget: float) -> float:
        """The power budget after any active ``cap_drop`` faults."""
        for _, spec in self._active("cap_drop"):
            budget *= spec.effective_magnitude
            self._count("cap_drop")
        return budget

    def effective_load(self, load: float) -> float:
        """The LC load after any active ``load_spike`` faults."""
        for _, spec in self._active("load_spike"):
            load = min(1.0, load * spec.effective_magnitude)
            self._count("load_spike")
        return load

    def crash_events(self, n_jobs: int) -> List[int]:
        """Batch slots that crash this quantum (``batch_crash`` faults)."""
        slots = []
        for i, spec in self._active("batch_crash"):
            rng = self._rngs[i]
            if rng.random() < spec.rate:
                candidates = [
                    j for j in range(n_jobs) if spec.applies_to_job(j)
                ]
                if candidates:
                    slot = candidates[int(rng.integers(len(candidates)))]
                    slots.append(slot)
                    self._count("batch_crash")
                    log.debug(
                        "quantum %d: batch job %d crashes",
                        self.quantum, slot,
                    )
        return slots

    # ------------------------------------------------------------------
    # Crash-safe snapshots (docs/robustness.md).
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSONable form of the injector's mutable state.

        Captures the per-spec RNG streams, tallies, frozen-sensor
        snapshots and standing reconfiguration pins, so a killed run
        resumed mid-scenario replays injection-for-injection.
        """
        previous = getattr(self, "_previous_batch_configs", None)
        return {
            "quantum": self.quantum,
            "rngs": [rng.bit_generator.state for rng in self._rngs],
            "injected": dict(self.injected),
            "frozen_profile": [
                {
                    "spec": i,
                    "pow_hi": hi.tolist(),
                    "pow_lo": lo.tolist(),
                    "lc_hi": lc_hi,
                    "lc_lo": lc_lo,
                }
                for i, (hi, lo, lc_hi, lc_lo) in sorted(
                    self._frozen_profile.items()
                )
            ],
            "frozen_power": [
                {
                    "spec": i,
                    "batch_power": batch.tolist(),
                    "total_power": total,
                    "lc_core_power": lc,
                }
                for i, (batch, total, lc) in sorted(
                    self._frozen_power.items()
                )
            ],
            "pins": [
                {"job": job, "core": core.index, "expiry": expiry}
                for job, (core, expiry) in sorted(self._pins.items())
            ],
            "previous_batch_configs": (
                None
                if previous is None
                else [
                    cfg.index if cfg is not None else None
                    for cfg in previous
                ]
            ),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        if len(state["rngs"]) != len(self._rngs):
            raise ValueError(
                "fault snapshot spec count does not match this injector"
            )
        self.quantum = int(state["quantum"])
        for rng, rng_state in zip(self._rngs, state["rngs"]):
            rng.bit_generator.state = rng_state
        self.injected = {
            str(k): int(v) for k, v in state["injected"].items()
        }
        self._frozen_profile = {
            int(entry["spec"]): (
                np.asarray(entry["pow_hi"], dtype=float),
                np.asarray(entry["pow_lo"], dtype=float),
                float(entry["lc_hi"]),
                float(entry["lc_lo"]),
            )
            for entry in state["frozen_profile"]
        }
        self._frozen_power = {
            int(entry["spec"]): (
                np.asarray(entry["batch_power"], dtype=float),
                float(entry["total_power"]),
                float(entry["lc_core_power"]),
            )
            for entry in state["frozen_power"]
        }
        self._pins = {
            int(entry["job"]): (
                CoreConfig.from_index(int(entry["core"])),
                int(entry["expiry"]),
            )
            for entry in state["pins"]
        }
        previous: Optional[Tuple[Optional[JointConfig], ...]]
        if state["previous_batch_configs"] is None:
            previous = None
        else:
            previous = tuple(
                JointConfig.from_index(int(index))
                if index is not None
                else None
                for index in state["previous_batch_configs"]
            )
        self._previous_batch_configs = previous

    # ------------------------------------------------------------------
    # Machine-facing faults (sensors and actuators).
    # ------------------------------------------------------------------

    def wrap(self, machine: Machine) -> "FaultyMachine":
        """Wrap ``machine`` so its observable interfaces are perturbed."""
        if isinstance(machine, FaultyMachine):
            return machine
        return FaultyMachine(machine, self)

    def perturb_profile(self, sample: ProfilingSample) -> ProfilingSample:
        """Apply sampling faults to the two 1 ms profiling samples."""
        n = len(sample.batch_bips_hi)
        bips_hi = sample.batch_bips_hi.copy()
        bips_lo = sample.batch_bips_lo.copy()
        pow_hi = sample.batch_power_hi.copy()
        pow_lo = sample.batch_power_lo.copy()
        lc_hi = sample.lc_power_hi
        lc_lo = sample.lc_power_lo
        changed = False

        for i, spec in self._active("drop_sample"):
            rng = self._rngs[i]
            dropped = 0
            for arr in (bips_hi, bips_lo, pow_hi, pow_lo):
                for j in range(n):
                    if spec.applies_to_job(j) and rng.random() < spec.rate:
                        arr[j] = np.nan
                        dropped += 1
            if rng.random() < spec.rate:
                lc_hi = float("nan")
                dropped += 1
            if rng.random() < spec.rate:
                lc_lo = float("nan")
                dropped += 1
            if dropped:
                changed = True
                self._count("drop_sample", dropped)

        for i, spec in self._active("outlier_sample"):
            rng = self._rngs[i]
            factor = spec.effective_magnitude
            corrupted = 0
            for arr in (bips_hi, bips_lo, pow_hi, pow_lo):
                for j in range(n):
                    if spec.applies_to_job(j) and rng.random() < spec.rate:
                        arr[j] *= factor
                        corrupted += 1
            if rng.random() < spec.rate:
                lc_hi *= factor
                corrupted += 1
            if corrupted:
                changed = True
                self._count("outlier_sample", corrupted)

        for i, spec in self._active("stuck_power"):
            if i not in self._frozen_profile:
                # Freeze at the first readings inside the window.
                self._frozen_profile[i] = (
                    pow_hi.copy(), pow_lo.copy(), lc_hi, lc_lo,
                )
            else:
                pow_hi, pow_lo, lc_hi, lc_lo = self._frozen_profile[i]
                pow_hi = pow_hi.copy()
                pow_lo = pow_lo.copy()
                changed = True
                self._count("stuck_power")

        if not changed:
            return sample
        return replace(
            sample,
            batch_bips_hi=bips_hi,
            batch_bips_lo=bips_lo,
            batch_power_hi=pow_hi,
            batch_power_lo=pow_lo,
            lc_power_hi=lc_hi,
            lc_power_lo=lc_lo,
        )

    def effective_assignment(self, assignment: Assignment) -> Assignment:
        """Apply ``failed_reconfig`` faults to a requested assignment.

        A failing core keeps its *old* section widths for ``duration``
        quanta while the new cache-way allocation still applies (way
        partitioning uses separate registers and does not fail here).
        Returns the assignment that actually runs; the controller can
        detect the fault by diffing it against what it requested.
        """
        previous = getattr(self, "_previous_batch_configs", None)
        configs = list(assignment.batch_configs)
        changed = False

        # Honour standing pins first.
        for job, (core, _) in self._pins.items():
            cfg = configs[job] if job < len(configs) else None
            if cfg is not None and cfg.core != core:
                configs[job] = JointConfig(core, cfg.cache_ways)
                changed = True

        for i, spec in self._active("failed_reconfig"):
            rng = self._rngs[i]
            if previous is None:
                continue
            for j, cfg in enumerate(configs):
                if cfg is None or not spec.applies_to_job(j):
                    continue
                if j in self._pins or j >= len(previous):
                    continue
                old = previous[j]
                if old is None or old.core == cfg.core:
                    continue
                if rng.random() < spec.rate:
                    self._pins[j] = (old.core, self.quantum + spec.duration)
                    configs[j] = JointConfig(old.core, cfg.cache_ways)
                    changed = True
                    self._count("failed_reconfig")
                    log.debug(
                        "quantum %d: core %d reconfiguration fails "
                        "(%s stays %s for %d quanta)",
                        self.quantum, j, cfg.core.label, old.core.label,
                        spec.duration,
                    )

        effective = (
            replace(assignment, batch_configs=tuple(configs))
            if changed
            else assignment
        )
        self._previous_batch_configs = effective.batch_configs
        return effective

    def perturb_measurement(
        self, measurement: SliceMeasurement
    ) -> SliceMeasurement:
        """Apply sensor faults to the end-of-slice measurements."""
        stuck = self._active("stuck_power")
        if not stuck:
            return measurement
        batch_power = measurement.batch_power
        total_power = measurement.total_power
        lc_core_power = measurement.lc_core_power
        changed = False
        for i, _ in stuck:
            if i not in self._frozen_power:
                self._frozen_power[i] = (
                    batch_power.copy(), total_power, lc_core_power,
                )
            else:
                batch_power, total_power, lc_core_power = (
                    self._frozen_power[i]
                )
                batch_power = batch_power.copy()
                changed = True
                self._count("stuck_power")
        if not changed:
            return measurement
        return replace(
            measurement,
            batch_power=batch_power,
            total_power=total_power,
            lc_core_power=lc_core_power,
        )


class FaultyMachine:
    """A :class:`Machine` whose observable interfaces pass the injector.

    Composition, not inheritance: every attribute the schedulers read
    (``params``, ``perf``, ``power``, ``lc_services``, ...) delegates to
    the wrapped machine, while :meth:`profile` and :meth:`run_slice`
    route their inputs/outputs through the :class:`FaultInjector`.
    """

    def __init__(self, machine: Machine, injector: FaultInjector) -> None:
        self._machine = machine
        self._injector = injector

    def __getattr__(self, name: str):
        return getattr(self._machine, name)

    @property
    def machine(self) -> Machine:
        """The unwrapped machine (ground truth, for experiments)."""
        return self._machine

    @property
    def injector(self) -> FaultInjector:
        """The injector perturbing this machine."""
        return self._injector

    def profile(self, *args, **kwargs) -> ProfilingSample:
        """Profiling samples, with sampling faults applied."""
        sample = self._machine.profile(*args, **kwargs)
        return self._injector.perturb_profile(sample)

    def profile_configs(self, *args, **kwargs):
        """Multi-config profiling passes through unperturbed.

        Only Flicker's 3MM3 design uses this path; the fault study
        targets the CuttleSys loop, whose interface is
        :meth:`profile` + :meth:`run_slice`.
        """
        return self._machine.profile_configs(*args, **kwargs)

    def run_slice(
        self,
        assignment: Assignment,
        load: float,
        extra_loads: Sequence[float] = (),
    ) -> SliceMeasurement:
        """Execute the *effective* assignment; perturb the measurements.

        The requested assignment first passes the injector's actuator
        faults (failed reconfigurations pin cores at their old section
        widths), then runs on the real machine, and the resulting
        measurements pass its sensor faults.  The measurement's
        ``assignment`` field is the effective one, so consumers diffing
        it against their request see exactly what real hardware would
        report.
        """
        effective = self._injector.effective_assignment(assignment)
        measurement = self._machine.run_slice(
            effective, load, extra_loads=extra_loads
        )
        return self._injector.perturb_measurement(measurement)

"""Deterministic fault injection + the default robustness scenarios.

The subsystem has three layers:

* :mod:`repro.faults.spec` — :class:`FaultSpec`/:class:`FaultScenario`
  descriptions and the ``run --faults`` clause syntax;
* :mod:`repro.faults.injector` — :class:`FaultInjector` (per-spec RNG
  streams, injection tallies) and :class:`FaultyMachine` (the wrapper
  that corrupts what the controller observes and requests);
* :mod:`repro.faults.scenarios` — the named default suite the fault
  study and CI smoke job run.

Graceful degradation lives with the consumers: sample sanitisation,
safe mode and reconfiguration quarantine in
:class:`repro.core.controller.ResourceController`; per-quantum
exception containment in :func:`repro.experiments.harness.run_policy`.
See ``docs/robustness.md``.
"""

from repro.faults.injector import FaultInjector, FaultyMachine
from repro.faults.scenarios import default_scenarios, scenario_by_name
from repro.faults.spec import (
    FAULT_KINDS,
    FaultScenario,
    FaultSpec,
    FaultSpecError,
    parse_fault_spec,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultScenario",
    "FaultSpec",
    "FaultSpecError",
    "FaultyMachine",
    "default_scenarios",
    "parse_fault_spec",
    "scenario_by_name",
]

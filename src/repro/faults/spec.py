"""Fault specifications: what can go wrong, when, and how hard.

CuttleSys's premise is surviving imperfect information (§VI-B hard
fallback, §VIII-D sensitivity studies): 1 ms profiling samples are
noisy, reconstructions can be wrong, and the power cap can move under
the controller's feet.  This module names the failure modes the
reproduction injects deliberately:

============================ =========================================
kind                         what it models
============================ =========================================
``drop_sample``              a profiling readout is lost (NaN sample)
``outlier_sample``           a corrupted sample, off by ``magnitude`` x
``stuck_power``              power sensors freeze at their last value
``failed_reconfig``          a core's reconfiguration does not take;
                             the core runs its old sections for
                             ``duration`` quanta (cache ways still
                             apply — partition registers are separate)
``cap_drop``                 thermal emergency: the budget is cut to
                             ``magnitude`` of its nominal value
``load_spike``               the LC service's load jumps by
                             ``magnitude`` x (flash crowd)
``batch_crash``              a batch job crashes and is respawned,
                             losing its phase state (churn)
============================ =========================================

A :class:`FaultSpec` is a pure description — injection happens in
:mod:`repro.faults.injector`, where each spec draws from its own RNG
stream so a scenario replays *exactly* from ``(specs, seed)``.

Specs also have a one-line text form for the CLI (``run --faults``)::

    drop_sample:rate=0.3,start=2,end=12;cap_drop:magnitude=0.5,start=6

Clauses are ``;``-separated, each ``kind:key=value,...``.  See
:func:`parse_fault_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Every fault kind the injector understands.
FAULT_KINDS: Tuple[str, ...] = (
    "drop_sample",
    "outlier_sample",
    "stuck_power",
    "failed_reconfig",
    "cap_drop",
    "load_spike",
    "batch_crash",
)

#: Kind-specific meaning (and default) of ``magnitude``.
_DEFAULT_MAGNITUDE = {
    "outlier_sample": 50.0,   # multiplicative corruption factor
    "cap_drop": 0.5,          # budget is multiplied by this fraction
    "load_spike": 1.5,        # load is multiplied by this factor
}


class FaultSpecError(ValueError):
    """A fault spec (object or text form) is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One composable fault: a kind plus its window and intensity.

    ``rate`` is the per-opportunity injection probability (per sample
    for the sampling faults, per requested reconfiguration for
    ``failed_reconfig``, per quantum for ``batch_crash``); window
    faults (``stuck_power``, ``cap_drop``, ``load_spike``) ignore it
    and are simply active on every quantum in ``[start, end)``.
    ``duration`` is how many quanta a failed reconfiguration pins its
    core.  ``jobs`` optionally restricts a batch-facing fault to the
    given batch slots.
    """

    kind: str
    rate: float = 0.0
    start: int = 0
    end: Optional[int] = None
    magnitude: Optional[float] = None
    duration: int = 1
    jobs: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultSpecError(
                f"{self.kind}: rate must be in [0, 1], got {self.rate}"
            )
        if self.start < 0:
            raise FaultSpecError(
                f"{self.kind}: start must be non-negative, got {self.start}"
            )
        if self.end is not None and self.end <= self.start:
            raise FaultSpecError(
                f"{self.kind}: end ({self.end}) must exceed "
                f"start ({self.start})"
            )
        if self.duration < 1:
            raise FaultSpecError(
                f"{self.kind}: duration must be at least 1, "
                f"got {self.duration}"
            )
        mag = self.effective_magnitude
        if self.kind == "cap_drop" and not 0.0 < mag <= 1.0:
            raise FaultSpecError(
                f"cap_drop: magnitude must be in (0, 1], got {mag}"
            )
        if self.kind in ("outlier_sample", "load_spike") and mag <= 0:
            raise FaultSpecError(
                f"{self.kind}: magnitude must be positive, got {mag}"
            )

    @property
    def effective_magnitude(self) -> float:
        """``magnitude`` with the kind's default filled in."""
        if self.magnitude is not None:
            return self.magnitude
        return _DEFAULT_MAGNITUDE.get(self.kind, 0.0)

    def active(self, quantum: int) -> bool:
        """Whether this fault's window covers ``quantum``."""
        if quantum < self.start:
            return False
        return self.end is None or quantum < self.end

    def applies_to_job(self, job: int) -> bool:
        """Whether this fault targets batch slot ``job``."""
        return self.jobs is None or job in self.jobs

    def describe(self) -> str:
        """Round-trippable text form (the CLI clause syntax)."""
        parts = []
        if self.rate:
            parts.append(f"rate={self.rate:g}")
        if self.start:
            parts.append(f"start={self.start}")
        if self.end is not None:
            parts.append(f"end={self.end}")
        if self.magnitude is not None:
            parts.append(f"magnitude={self.magnitude:g}")
        if self.duration != 1:
            parts.append(f"duration={self.duration}")
        if self.jobs is not None:
            parts.append("jobs=" + "+".join(str(j) for j in self.jobs))
        return self.kind + (":" + ",".join(parts) if parts else "")


@dataclass(frozen=True)
class FaultScenario:
    """A named, replayable set of faults.

    ``seed`` fixes every spec's RNG stream, so the same scenario on the
    same machine seed reproduces the same injections quantum for
    quantum (see docs/robustness.md, "Replaying a scenario").
    """

    name: str
    specs: Tuple[FaultSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.specs:
            raise FaultSpecError(f"scenario {self.name!r} has no faults")

    def describe(self) -> str:
        """The scenario's faults in CLI clause syntax."""
        return ";".join(spec.describe() for spec in self.specs)


_INT_KEYS = {"start", "end", "duration"}
_FLOAT_KEYS = {"rate", "magnitude"}
_VALID_KEYS = _INT_KEYS | _FLOAT_KEYS | {"jobs"}


def parse_fault_spec(text: str) -> Tuple[FaultSpec, ...]:
    """Parse the CLI fault syntax into :class:`FaultSpec` objects.

    Syntax: ``;``-separated clauses, each ``kind`` or
    ``kind:key=value,...``; ``jobs`` takes ``+``-separated slot
    indices (``jobs=0+3+7``).  Raises :class:`FaultSpecError` with a
    pointed message on any malformed input.
    """
    if not text or not text.strip():
        raise FaultSpecError("empty fault spec")
    specs = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, params = clause.partition(":")
        kind = kind.strip()
        kwargs = {}
        if params.strip():
            for item in params.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep or not value:
                    raise FaultSpecError(
                        f"{kind}: expected key=value, got {item.strip()!r}"
                    )
                if key not in _VALID_KEYS:
                    raise FaultSpecError(
                        f"{kind}: unknown parameter {key!r}; expected one "
                        f"of {', '.join(sorted(_VALID_KEYS))}"
                    )
                try:
                    if key in _INT_KEYS:
                        kwargs[key] = int(value)
                    elif key in _FLOAT_KEYS:
                        kwargs[key] = float(value)
                    else:  # jobs
                        kwargs[key] = tuple(
                            int(j) for j in value.split("+")
                        )
                except ValueError as exc:
                    raise FaultSpecError(
                        f"{kind}: bad value for {key}: {value!r}"
                    ) from exc
        specs.append(FaultSpec(kind=kind, **kwargs))
    if not specs:
        raise FaultSpecError("empty fault spec")
    return tuple(specs)

"""The default fault-scenario suite for the robustness study.

Each scenario stresses one regime the related work calls out (Nejat et
al.'s untrustworthy-prediction degradation, Cuttlefish's power-cap
excursions) plus a compound "perfect storm".  All scenarios are
deterministic given their seed: the same ``(scenario, machine seed)``
pair replays injection-for-injection (docs/robustness.md).
"""

from __future__ import annotations

from typing import Tuple

from repro.faults.spec import FaultScenario, parse_fault_spec


def default_scenarios(seed: int = 7) -> Tuple[FaultScenario, ...]:
    """The suite ``experiments/fault_study.py`` and CI's fault-smoke run.

    Windows are expressed in quanta and sized for runs of ~12-16
    slices.  Most windows *close* before the run ends so the recovery
    paths (safe-mode exit, quarantine release) are exercised too, not
    just entry into degradation.
    """
    return (
        FaultScenario(
            "sensor-noise",
            parse_fault_spec(
                "drop_sample:rate=0.25,start=2,end=7;"
                "outlier_sample:rate=0.15,magnitude=40,start=2,end=7"
            ),
            seed=seed,
        ),
        FaultScenario(
            "stuck-sensor",
            parse_fault_spec("stuck_power:start=2,end=9"),
            seed=seed + 1,
        ),
        FaultScenario(
            "flaky-reconfig",
            parse_fault_spec(
                "failed_reconfig:rate=0.6,duration=2,start=1,end=5"
            ),
            seed=seed + 2,
        ),
        FaultScenario(
            "thermal-emergency",
            parse_fault_spec(
                "cap_drop:magnitude=0.55,start=4,end=9;"
                "drop_sample:rate=0.2,start=4,end=9"
            ),
            seed=seed + 3,
        ),
        FaultScenario(
            "flash-crowd",
            parse_fault_spec(
                "load_spike:magnitude=1.5,start=5,end=10;"
                "outlier_sample:rate=0.1,magnitude=30,start=5,end=9"
            ),
            seed=seed + 4,
        ),
        FaultScenario(
            "churn-storm",
            parse_fault_spec(
                "batch_crash:rate=0.4,start=2,end=8;"
                "drop_sample:rate=0.2,start=2,end=8"
            ),
            seed=seed + 5,
        ),
        FaultScenario(
            "perfect-storm",
            parse_fault_spec(
                "drop_sample:rate=0.2,start=1,end=7;"
                "outlier_sample:rate=0.1,magnitude=60,start=1,end=7;"
                "failed_reconfig:rate=0.4,duration=2,start=3,end=7;"
                "cap_drop:magnitude=0.6,start=6,end=10"
            ),
            seed=seed + 6,
        ),
    )


def scenario_by_name(name: str, seed: int = 7) -> FaultScenario:
    """Look one default scenario up by name (CLI ``--scenario``)."""
    for scenario in default_scenarios(seed):
        if scenario.name == name:
            return scenario
    names = ", ".join(s.name for s in default_scenarios(seed))
    raise KeyError(f"unknown scenario {name!r}; expected one of {names}")

"""Wire format of the scheduler daemon (docs/server.md).

One TCP port speaks two dialects, told apart by sniffing the first
bytes of the first line:

* **NDJSON** (the primary dialect): each request is one JSON object on
  one line; each response is one JSON object on one line.  Responses
  echo the request's ``op`` (and ``id``, when given) and carry
  ``"ok": true`` or ``"ok": false`` plus ``error``/``code``.
  Server-initiated lines (decision events on ``subscribe`` streams)
  carry an ``"event"`` key instead of ``"ok"``, so clients can always
  tell a push from a reply.

* **HTTP/1.1** (read-only convenience): a first line starting with a
  recognised method verb switches the connection to a one-shot HTTP
  exchange — ``GET /status``, ``GET /metrics`` (Prometheus text
  exposition), ``GET /decisions`` (the decision stream as JSONL).

Encoding is canonical — ``sort_keys`` and compact separators — so a
byte-for-byte diff of two decision streams is meaningful; this is the
representation the golden files and the kill/resume byte-identity
tests compare.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_line",
    "error_response",
    "http_response",
    "looks_like_http",
    "ok_response",
    "parse_http_request_line",
    "parse_request",
]

#: Bumped whenever a request or response shape changes incompatibly.
PROTOCOL_VERSION = 1

#: Every operation the NDJSON dialect accepts.
KNOWN_OPS = frozenset({
    "hello",
    "submit",
    "cancel",
    "set_rps",
    "status",
    "jobs",
    "decisions",
    "ladder",
    "audit",
    "metrics",
    "subscribe",
    "unsubscribe",
    "tick",
    "snapshot",
    "whatif",
    "shutdown",
})

#: HTTP verbs that flip a connection into the HTTP dialect.
_HTTP_METHODS = (b"GET ", b"HEAD ", b"POST ", b"PUT ", b"DELETE ",
                 b"OPTIONS ")


class ProtocolError(ValueError):
    """A request the server cannot act on; carries a stable code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def parse_request(line: str) -> Dict[str, Any]:
    """Decode and validate one NDJSON request line.

    Returns the request dict; raises :class:`ProtocolError` with a
    stable ``code`` for malformed JSON, non-object payloads, missing
    or unknown ``op``.
    """
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad_json", f"request is not JSON: {exc}")
    if not isinstance(data, dict):
        raise ProtocolError(
            "bad_request", "request must be a JSON object"
        )
    op = data.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("bad_request", "request needs a string 'op'")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            "unknown_op",
            f"unknown op {op!r}; known: {', '.join(sorted(KNOWN_OPS))}",
        )
    return data


def encode_line(obj: Dict[str, Any]) -> bytes:
    """Canonical one-line JSON encoding (stable across runs)."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def ok_response(
    op: str, request: Optional[Dict[str, Any]] = None, **payload: Any
) -> Dict[str, Any]:
    """A success reply echoing ``op`` (and the request's ``id``)."""
    response: Dict[str, Any] = {"ok": True, "op": op}
    if request is not None and "id" in request:
        response["id"] = request["id"]
    response.update(payload)
    return response


def error_response(
    code: str,
    message: str,
    op: Optional[str] = None,
    request: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A failure reply with a stable machine-readable ``code``."""
    response: Dict[str, Any] = {
        "ok": False, "code": code, "error": message,
    }
    if op is not None:
        response["op"] = op
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response


def looks_like_http(first_line: bytes) -> bool:
    """Whether the connection's first line is an HTTP request line."""
    return first_line.startswith(_HTTP_METHODS)


def parse_http_request_line(line: bytes) -> Tuple[str, str]:
    """``(method, path)`` of an HTTP request line (query string kept)."""
    parts = line.decode("latin-1").strip().split()
    if len(parts) < 2:
        raise ProtocolError("bad_http", "malformed HTTP request line")
    return parts[0], parts[1]


def http_response(
    status: str, content_type: str, body: bytes
) -> bytes:
    """A complete ``Connection: close`` HTTP/1.1 response."""
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body

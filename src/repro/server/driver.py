"""The daemon's core: one crash-safe decision quantum per tick.

The :class:`QuantumDriver` owns the simulated machine, the CuttleSys
policy, and a :class:`~repro.experiments.harness.QuantumStepper`; each
:meth:`tick` drains the admission queue, applies the resulting job
bindings, executes exactly one decision quantum, appends one canonical
JSON line to the decision stream, and persists an atomic snapshot.  A
daemon killed at any point resumes from its snapshot and regenerates a
byte-identical decision stream — the server-side extension of the
harness's pause/resume contract.

Load is *live* rather than trace-replayed: each LC slot reads its
level from a :class:`SlotLoad` the control plane mutates between
quanta (submissions bind a service at ``rps / max_qps`` of its knee;
``set_rps`` moves it; cancellation drops it back to the idle floor).
Batch slots start vacant — gated off through
:meth:`ResourceController.remove_job` — and are bound on admission.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    POWER_TOLERANCE,
    QuantumStepper,
    build_machine_for_mix,
    reference_power_for_mix,
)
from repro.logs import get_logger
from repro.server.admission import AdmissionLimits, JobQueueManager
from repro.telemetry.live import CallbackSink, LiveEmitter, install_emitter
from repro.workloads.batch import SPEC_APPS, batch_profile
from repro.workloads.mixes import paper_mixes

log = get_logger("server.driver")

__all__ = ["STATE_VERSION", "QuantumDriver", "ServerConfig", "SlotLoad"]

#: Load fraction an unbound LC slot idles at: low enough to be
#: negligible, high enough that the queueing model never divides by a
#: zero arrival rate.
IDLE_LC_LOAD = 0.05

#: Snapshot file schema; bumped on incompatible layout changes.
STATE_VERSION = 1


@dataclass(frozen=True)
class ServerConfig:
    """Boot configuration of one scheduler daemon."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (see ``port_file``).
    port: int = 0
    #: Written with the bound port once listening (ephemeral ports).
    port_file: Optional[str] = None
    #: Paper mix index; fixes the machine and its hosted services.
    mix: int = 0
    seed: int = 7
    power_cap_fraction: float = 0.7
    #: Hard ceiling on quanta the daemon will ever execute.
    max_quanta: int = 100000
    #: Pace ticks to wall clock (outside the determinism contract);
    #: False = virtual time, quanta advance only on ``tick`` requests.
    real_time: bool = False
    #: Wall-clock seconds per quantum when ``real_time``.
    quantum_s: float = 0.1
    #: Snapshot file; None disables crash-safe resume.
    state_path: Optional[str] = None
    #: Decision-stream JSONL; None keeps it in memory only.
    decisions_path: Optional[str] = None
    #: Ticks between snapshots (1 = after every quantum).
    snapshot_every: int = 1
    #: Resume from ``state_path`` if it exists.
    resume: bool = False
    #: Worker processes of the keep-alive what-if pool (1 = serial).
    whatif_jobs: int = 2
    limits: AdmissionLimits = field(default_factory=AdmissionLimits)

    def __post_init__(self) -> None:
        if self.max_quanta < 1:
            raise ValueError("max_quanta must be >= 1")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.quantum_s <= 0:
            raise ValueError("quantum_s must be positive")

    def fingerprint(self) -> Dict[str, Any]:
        """What must match for a snapshot to be resumable."""
        return {
            "mix": self.mix,
            "seed": self.seed,
            "power_cap_fraction": self.power_cap_fraction,
            "max_quanta": self.max_quanta,
        }


class SlotLoad:
    """A mutable load source shaped like a :class:`LoadTrace`.

    The stepper calls ``load_at(t)`` each quantum; the control plane
    moves ``level`` between quanta.  Time-independent by design: the
    *schedule* of level changes is what the snapshot reproduces.
    """

    def __init__(self, level: float = IDLE_LC_LOAD) -> None:
        self.level = level

    def load_at(self, t: float) -> float:
        return self.level


class QuantumDriver:
    """Runs the quantum loop incrementally under control-plane input."""

    def __init__(
        self,
        config: ServerConfig,
        telemetry: Any = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        mixes = paper_mixes()
        if not 0 <= config.mix < len(mixes):
            raise ValueError(
                f"mix index must be in [0, {len(mixes)})"
            )
        self.config = config
        self.telemetry = telemetry
        #: Live-event sink (the daemon's subscriber fan-out).
        self.on_event = on_event
        self.mix = mixes[config.mix]
        reference = reference_power_for_mix(self.mix, seed=config.seed)
        self.machine = build_machine_for_mix(self.mix, seed=config.seed)
        self.policy = CuttleSysPolicy.for_machine(
            self.machine, seed=config.seed
        )
        # The server boots *empty*: every batch slot is vacated before
        # telemetry attaches (so boot-time gating does not count as
        # job churn) and jobs only run once admitted.
        for slot in range(len(self.machine.batch_profiles)):
            self.policy.controller.remove_job(slot)
        self.lc_loads: List[SlotLoad] = [
            SlotLoad() for _ in self.machine.lc_services
        ]
        self.stepper = QuantumStepper(
            self.machine,
            self.policy,
            self.lc_loads[0],
            power_cap_fraction=config.power_cap_fraction,
            n_slices=config.max_quanta,
            max_power_w=reference,
            extra_traces=self.lc_loads[1:],
            telemetry=telemetry,
        )
        # Any SPEC app can be bound into a vacant slot via
        # replace_batch_job, so admission knows the full catalogue —
        # not just the apps the mix happened to seed the machine with.
        self.admission = JobQueueManager(
            known_batch_apps=list(SPEC_APPS),
            n_batch_slots=len(self.machine.batch_profiles),
            lc_services=[
                {
                    "name": service.name,
                    "qos_ms": service.qos_latency_s * 1e3,
                    "max_qps": service.max_qps,
                }
                for service in self.machine.lc_services
            ],
            llc_ways=self.machine.params.llc_ways,
            power_budget_w=self.stepper.run.power_budget_w,
            batch_power_w={
                name: self._min_power_w(batch_profile(name))
                for name in SPEC_APPS
            },
            lc_power_w={
                s.name: 2.0 * self._min_power_w(s.profile)
                for s in self.machine.lc_services
            },
            limits=config.limits,
            telemetry=telemetry,
        )
        #: Decision-stream lines written so far (count = file lines).
        self.decision_count = 0
        self._decision_tail: List[str] = []
        self.snapshots_written = 0
        if config.decisions_path is not None and not config.resume:
            # A fresh boot owns the stream file outright.
            Path(config.decisions_path).parent.mkdir(
                parents=True, exist_ok=True
            )
            Path(config.decisions_path).write_text("", encoding="utf-8")

    def _min_power_w(self, profile: Any) -> float:
        """Admission estimate: the app's draw at its narrowest config."""
        return float(np.min(self.machine.power.power_row(profile)))

    # ------------------------------------------------------------------
    # Job binding (between quanta, driven by admission events).
    # ------------------------------------------------------------------

    def _service_index(self, name: str) -> int:
        for idx, service in enumerate(self.machine.lc_services):
            if service.name == name:
                return idx
        raise ValueError(f"no hosted service {name!r}")

    def _bind(self, event: Dict[str, Any]) -> None:
        """Apply one admission event to the machine/controller pair."""
        if event["kind"] == "batch":
            slot = int(event["slot"])
            self.machine.replace_batch_job(
                slot, batch_profile(event["name"])
            )
            self.policy.controller.add_job(slot)
        else:
            idx = self._service_index(event["name"])
            service = self.machine.lc_services[idx]
            self.lc_loads[idx].level = (
                float(event["rps"]) / service.max_qps
            )

    def _unbind(self, job: Any) -> None:
        """Release a cancelled running job's machine-side binding."""
        if job.spec.kind == "batch" and isinstance(job.slot, int):
            self.policy.controller.remove_job(job.slot)
        elif job.spec.kind == "lc" and job.slot is not None:
            idx = self._service_index(str(job.slot))
            self.lc_loads[idx].level = IDLE_LC_LOAD

    def cancel_job(self, job_id: str) -> Optional[Any]:
        """Control-plane cancel: ledger first, then the machine side."""
        job = self.admission.cancel(job_id, self.stepper.next_slice)
        if job is not None and job.state == "cancelled" and (
            job.slot is not None
        ):
            self._unbind(job)
        return job

    def set_rps(self, job_id: str, rps: float) -> Optional[Any]:
        """Move a live LC job's offered load between quanta."""
        job = self.admission.set_rps(job_id, rps)
        if job is not None and job.state == "running":
            idx = self._service_index(job.spec.name)
            service = self.machine.lc_services[idx]
            self.lc_loads[idx].level = float(rps) / service.max_qps
        return job

    # ------------------------------------------------------------------
    # The tick: admission drain + one quantum + decision line.
    # ------------------------------------------------------------------

    @property
    def quantum(self) -> int:
        """Quanta executed so far (== next tick's index)."""
        return self.stepper.next_slice

    def tick(self) -> Dict[str, Any]:
        """Advance exactly one decision quantum; returns its record."""
        if self.stepper.done:
            raise RuntimeError(
                f"max_quanta ({self.config.max_quanta}) exhausted"
            )
        index = self.stepper.next_slice
        events = self.admission.drain(index)
        for event in events["admitted"]:
            self._bind(event)
        emitter = None
        prior = None
        if self.on_event is not None:
            emitter = LiveEmitter(
                CallbackSink(self.on_event), "server", worker="driver"
            )
            prior = install_emitter(emitter)
        try:
            measurement = self.stepper.step()
        finally:
            if emitter is not None:
                install_emitter(prior)
        record = self._decision_record(index, measurement, events)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._append_decision(line)
        if self.on_event is not None:
            # Subscribers see the decision event before the tick reply.
            self.on_event(dict(record, kind="decision"))
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.counter("server.ticks").inc()
            metrics.gauge("server.queue_depth").set(
                len(self.admission.queue)
            )
            metrics.gauge("server.active_jobs").set(
                len(self.admission.running_jobs())
            )
        if (
            self.config.state_path is not None
            and self.quantum % self.config.snapshot_every == 0
        ):
            self.write_snapshot()
        return record

    def _decision_record(
        self,
        index: int,
        measurement: Any,
        events: Dict[str, List[Dict[str, Any]]],
    ) -> Dict[str, Any]:
        run = self.stepper.run
        assignment = measurement.assignment
        budget = run.budgets[-1]
        qos_violated = (
            measurement.lc_p99 > run.qos_s and assignment.lc_cores > 0
        ) or any(
            p99 > qos
            for p99, qos in zip(measurement.extra_lc_p99, run.qos_extra_s)
        )
        power_violated = (
            measurement.total_power > budget * (1.0 + POWER_TOLERANCE)
        )
        return {
            "quantum": index,
            "lc_p99_ms": measurement.lc_p99 * 1e3,
            "power_w": measurement.total_power,
            "budget_w": budget,
            "qos_violated": bool(qos_violated),
            "power_violated": bool(power_violated),
            "assignment": {
                "lc_cores": assignment.lc_cores,
                "lc_config": (
                    assignment.lc_config.label
                    if assignment.lc_config is not None else None
                ),
                "batch": [
                    cfg.index if cfg is not None else None
                    for cfg in assignment.batch_configs
                ],
                "extra_lc": [
                    [alloc.cores, alloc.config.label]
                    for alloc in assignment.extra_lc
                ],
            },
            "jobs": {
                "batch": {
                    str(slot): jid
                    for slot, jid in enumerate(
                        self.admission.batch_slot_job
                    )
                    if jid is not None
                },
                "lc": {
                    name: jid
                    for name, jid in sorted(
                        self.admission.lc_slot_job.items()
                    )
                    if jid is not None
                },
            },
            "admitted": [e["job_id"] for e in events["admitted"]],
            "timed_out": [e["job_id"] for e in events["timed_out"]],
            "degraded": run.degraded_quanta,
        }

    def _append_decision(self, line: str) -> None:
        self.decision_count += 1
        self._decision_tail.append(line)
        # The in-memory tail backs the `decisions` query; bound it so
        # a long-lived daemon cannot grow without limit.
        if len(self._decision_tail) > 4096:
            del self._decision_tail[:-4096]
        if self.config.decisions_path is not None:
            with open(
                self.config.decisions_path, "a", encoding="utf-8"
            ) as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def recent_decisions(
        self, since: int = 0, limit: int = 100
    ) -> List[Dict[str, Any]]:
        """Decision records with ``quantum >= since`` (bounded tail)."""
        out: List[Dict[str, Any]] = []
        for line in self._decision_tail:
            record = json.loads(line)
            if record["quantum"] >= since:
                out.append(record)
                if len(out) >= limit:
                    break
        return out

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def ladder_state(self) -> Dict[str, Any]:
        """Degradation-ladder posture for the ``ladder`` query."""
        controller = self.policy.controller
        budget = controller.budget
        return {
            "degraded_quanta": self.stepper.run.degraded_quanta,
            "deadline_degraded_quantum": bool(
                controller.deadline_degraded_quantum
            ),
            "budget": {
                "limit": budget.limit,
                "spent": int(budget.spent),
                "remaining": budget.remaining(),
            },
            "safe_mode": bool(controller._safe_mode_remaining > 0),
            "quarantined_jobs": int(
                np.count_nonzero(controller._quarantine > 0)
            ),
        }

    def describe(self) -> Dict[str, Any]:
        """The driver section of the ``status`` response."""
        run = self.stepper.run
        return {
            "mix": self.config.mix,
            "policy": self.policy.name,
            "seed": self.config.seed,
            "quantum": self.quantum,
            "max_quanta": self.config.max_quanta,
            "power_budget_w": run.power_budget_w,
            "qos_violations": run.qos_violations(),
            "power_violations": run.power_violations(),
            "degraded_quanta": run.degraded_quanta,
            "decision_count": self.decision_count,
            "snapshots_written": self.snapshots_written,
            "lc_levels": [load.level for load in self.lc_loads],
        }

    # ------------------------------------------------------------------
    # Crash-safe snapshot / resume.
    # ------------------------------------------------------------------

    def write_snapshot(self) -> None:
        """Atomically persist everything a resume needs."""
        path = self.config.state_path
        if path is None:
            return
        state = {
            "version": STATE_VERSION,
            "fingerprint": self.config.fingerprint(),
            "stepper": self.stepper.snapshot(),
            "admission": self.admission.snapshot(),
            "lc_levels": [load.level for load in self.lc_loads],
            "decision_count": self.decision_count,
            "decision_tail": list(self._decision_tail),
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        self.snapshots_written += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("server.snapshots").inc()

    def resume_from(self, path: str) -> None:
        """Restore a snapshot and realign the decision-stream file.

        A SIGKILL can land between a decision append and its snapshot;
        the stream file may then hold lines *beyond* the snapshot.
        Those quanta re-execute deterministically, so the file is
        truncated back to ``decision_count`` lines and the replayed
        lines land byte-identically.
        """
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        if state.get("version") != STATE_VERSION:
            raise ValueError(
                f"unsupported server snapshot version "
                f"{state.get('version')!r}"
            )
        if state.get("fingerprint") != self.config.fingerprint():
            raise ValueError(
                "snapshot was written by a different server "
                "configuration (mix/seed/cap/max_quanta changed)"
            )
        self.stepper.restore(state["stepper"])
        self.admission.restore(state["admission"])
        for load, level in zip(self.lc_loads, state["lc_levels"]):
            load.level = float(level)
        # Rebind machine-side state the stepper snapshot does not own:
        # the controller mask travels in the policy snapshot, but the
        # running jobs' profiles must be re-applied to the machine...
        # they already are: Machine.snapshot captures batch_profiles.
        self.decision_count = int(state["decision_count"])
        self._decision_tail = [
            str(line) for line in state["decision_tail"]
        ]
        if self.config.decisions_path is not None:
            self._truncate_decisions(self.config.decisions_path)
        log.info(
            "resumed at quantum %d (%d decision line(s) kept)",
            self.quantum, self.decision_count,
        )

    def _truncate_decisions(self, path: str) -> None:
        target = Path(path)
        lines: List[str] = []
        if target.exists():
            with open(target, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        kept = lines[: self.decision_count]
        if len(lines) != len(kept):
            log.info(
                "truncating decision stream %s: %d -> %d line(s) "
                "(crash landed between append and snapshot)",
                path, len(lines), len(kept),
            )
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for line in kept:
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)

"""Synchronous request execution behind the asyncio front door.

:class:`CommandExecutor` maps one parsed NDJSON request to one response
dict.  It is deliberately free of sockets and event loops — the daemon
calls it from its async handlers, the tests call it directly — so every
op's behaviour (including all admission-rejection paths) is exercisable
without standing up a server.

Three ops never reach the executor: ``subscribe``/``unsubscribe``
mutate per-connection state and ``shutdown`` stops the event loop, so
the daemon handles them in its connection handler.  ``whatif`` has a
sync entry point here but the daemon runs it on an executor thread to
keep the event loop responsive.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.server.admission import JobSpec
from repro.server.driver import QuantumDriver
from repro.server.protocol import (
    PROTOCOL_VERSION,
    KNOWN_OPS,
    ProtocolError,
    error_response,
    ok_response,
)
from repro.server.whatif import dry_run_admission, run_whatif
from repro.telemetry.accuracy import render_accuracy_report
from repro.telemetry.exporters import render_prometheus

__all__ = ["CommandExecutor"]

#: Ops the daemon intercepts before the executor sees them.
CONNECTION_OPS = frozenset({"subscribe", "unsubscribe", "shutdown"})

#: Upper bound on quanta one ``tick`` request may advance.
MAX_TICK_BATCH = 1000


def _spec_from_request(request: Dict[str, Any]) -> JobSpec:
    kind = request.get("kind")
    name = request.get("name")
    if not isinstance(kind, str) or not isinstance(name, str):
        raise ProtocolError(
            "bad_request", "submit needs string 'kind' and 'name'"
        )
    try:
        return JobSpec(
            kind=kind,
            name=name,
            tenant=str(request.get("tenant", "default")),
            priority=int(request.get("priority", 0)),
            qos_ms=(
                float(request["qos_ms"])
                if request.get("qos_ms") is not None else None
            ),
            rps=(
                float(request["rps"])
                if request.get("rps") is not None else None
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad_request", f"malformed job spec: {exc}")


class CommandExecutor:
    """Executes sync ops against one driver/admission/telemetry trio."""

    def __init__(
        self,
        driver: QuantumDriver,
        telemetry: Any = None,
        whatif_pool: Any = None,
    ) -> None:
        self.driver = driver
        self.telemetry = telemetry
        self.whatif_pool = whatif_pool

    def execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request in, one response out; never raises for bad input."""
        op = request["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return error_response(
                "unsupported_op",
                f"op {op!r} is not served by this endpoint",
                op=op, request=request,
            )
        try:
            return handler(request)
        except ProtocolError as exc:
            return error_response(exc.code, str(exc), op=op, request=request)

    # ------------------------------------------------------------------

    def _op_hello(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return ok_response(
            "hello", request,
            protocol=PROTOCOL_VERSION,
            server="repro-scheduler",
            mix=self.driver.config.mix,
            seed=self.driver.config.seed,
            real_time=self.driver.config.real_time,
            ops=sorted(KNOWN_OPS),
            services=[s.name for s in self.driver.machine.lc_services],
            batch_slots=len(self.driver.machine.batch_profiles),
        )

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        spec = _spec_from_request(request)
        job = self.driver.admission.submit(spec, self.driver.quantum)
        return ok_response("submit", request, job=job.describe())

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job_id")
        if not isinstance(job_id, str):
            raise ProtocolError("bad_request", "cancel needs 'job_id'")
        job = self.driver.cancel_job(job_id)
        if job is None:
            raise ProtocolError("unknown_job", f"no such job {job_id!r}")
        return ok_response("cancel", request, job=job.describe())

    def _op_set_rps(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job_id")
        rps = request.get("rps")
        if not isinstance(job_id, str) or rps is None:
            raise ProtocolError(
                "bad_request", "set_rps needs 'job_id' and 'rps'"
            )
        try:
            job = self.driver.set_rps(job_id, float(rps))
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_rps", str(exc))
        if job is None:
            raise ProtocolError("unknown_job", f"no such job {job_id!r}")
        return ok_response("set_rps", request, job=job.describe())

    def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return ok_response(
            "status", request,
            driver=self.driver.describe(),
            admission=self.driver.admission.describe(),
        )

    def _op_jobs(self, request: Dict[str, Any]) -> Dict[str, Any]:
        state = request.get("state")
        jobs = [
            job.describe()
            for _, job in sorted(self.driver.admission.jobs.items())
            if state is None or job.state == state
        ]
        return ok_response("jobs", request, jobs=jobs)

    def _op_decisions(self, request: Dict[str, Any]) -> Dict[str, Any]:
        since = int(request.get("since", 0))
        limit = int(request.get("limit", 100))
        return ok_response(
            "decisions", request,
            decisions=self.driver.recent_decisions(since, limit),
        )

    def _op_ladder(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return ok_response(
            "ladder", request, ladder=self.driver.ladder_state()
        )

    def _op_audit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.telemetry is None or self.telemetry.auditor is None:
            raise ProtocolError(
                "no_audit", "accuracy auditing is not enabled"
            )
        return ok_response(
            "audit", request,
            report=render_accuracy_report(self.telemetry),
            drifting=list(self.telemetry.auditor.drifting_metrics()),
        )

    def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.telemetry is None:
            raise ProtocolError("no_telemetry", "telemetry is disabled")
        return ok_response(
            "metrics", request,
            prometheus=self.prometheus_text(),
        )

    def prometheus_text(self) -> str:
        """Prometheus exposition text (shared with ``GET /metrics``)."""
        if self.telemetry is None:
            return ""
        return render_prometheus(self.telemetry.metrics)

    def _op_tick(self, request: Dict[str, Any]) -> Dict[str, Any]:
        count = int(request.get("count", 1))
        if not 1 <= count <= MAX_TICK_BATCH:
            raise ProtocolError(
                "bad_request",
                f"tick count must be in [1, {MAX_TICK_BATCH}]",
            )
        records: List[Dict[str, Any]] = []
        for _ in range(count):
            try:
                records.append(self.driver.tick())
            except RuntimeError as exc:
                raise ProtocolError("exhausted", str(exc))
        return ok_response(
            "tick", request,
            quantum=self.driver.quantum,
            decisions=records,
        )

    def _op_snapshot(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.driver.config.state_path is None:
            raise ProtocolError(
                "no_state_path", "daemon was started without --state"
            )
        self.driver.write_snapshot()
        return ok_response(
            "snapshot", request,
            path=self.driver.config.state_path,
            quantum=self.driver.quantum,
        )

    def _op_whatif(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # Dry-run admission of a full spec...
        if "kind" in request:
            spec = _spec_from_request(request)
            return ok_response(
                "whatif", request,
                **dry_run_admission(self.driver.admission, spec),
            )
        # ...or a fleet-backed probe of candidate batch apps.
        apps = request.get("apps")
        if not isinstance(apps, list) or not all(
            isinstance(a, str) for a in apps
        ) or not apps:
            raise ProtocolError(
                "bad_request",
                "whatif needs a job spec ('kind'...) or 'apps' list",
            )
        known = set(self.driver.admission.known_batch_apps)
        unknown = sorted(set(apps) - known)
        if unknown:
            raise ProtocolError(
                "unknown_app", f"unknown app(s): {', '.join(unknown)}"
            )
        probes = run_whatif(
            self.whatif_pool,
            self.driver.config.mix,
            self.driver.config.seed,
            apps,
            n_slices=int(request.get("n_slices", 3)),
            telemetry=self.telemetry,
        )
        return ok_response("whatif", request, probes=probes)

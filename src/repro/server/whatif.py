"""What-if evaluation: dry-run admission plus a fleet-backed probe.

The ``whatif`` op answers two questions without touching live state:

* *Would this job be admitted right now?* — a pure dry run against the
  admission ledger (no counters move, nothing enqueues).

* *What would each candidate batch app cost?* — a short standalone
  probe of each app on the daemon's **keep-alive**
  :class:`~repro.fleet.pool.FleetPool`.  The pool's workers persist
  across successive what-if calls (and across the ``FleetRun``
  instances that ride them), so the per-call cost is one map, not one
  pool spawn — the server-side beneficiary of ``PoolParams.keep_alive``.

Worker purity (FLT501) still holds: :func:`probe_app` is a module-level
function of its kwargs alone, so results are identical whether the map
runs serial, one-shot, or on reused workers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.fleet.pool import FleetPool
from repro.fleet.runner import FleetParams, FleetRun
from repro.fleet.shard import WorkUnit
from repro.server.admission import JobQueueManager, JobSpec

__all__ = ["dry_run_admission", "probe_app", "run_whatif"]


def dry_run_admission(
    admission: JobQueueManager, spec: JobSpec
) -> Dict[str, Any]:
    """Admission verdict for ``spec`` with zero side effects."""
    reason = admission._static_rejection(spec)
    if reason is not None:
        return {"admissible": False, "verdict": "reject", "reason": reason}
    block = admission._capacity_block(spec)
    if block is not None:
        return {
            "admissible": False,
            "verdict": "queue",
            "reason": block,
            "estimate_w": admission._estimate_w(spec),
        }
    return {
        "admissible": True,
        "verdict": "admit",
        "estimate_w": admission._estimate_w(spec),
    }


def probe_app(mix: int, seed: int, app: str, n_slices: int) -> Dict[str, Any]:
    """Standalone short run of one batch app on the mix's machine.

    Module-level and a pure function of its arguments — the FLT501
    contract that makes it safe to execute on any worker, including a
    reused keep-alive one.
    """
    # Imported here so a forked worker resolves everything fresh.
    from repro.core.runtime import CuttleSysPolicy
    from repro.experiments.harness import (
        build_machine_for_mix,
        run_policy,
    )
    from repro.workloads.batch import batch_profile
    from repro.workloads.mixes import paper_mixes

    the_mix = paper_mixes()[mix]
    machine = build_machine_for_mix(the_mix, seed=seed)
    profile = batch_profile(app)
    for slot in range(len(machine.batch_profiles)):
        machine.replace_batch_job(slot, profile)
    policy = CuttleSysPolicy.for_machine(machine, seed=seed)

    class _Flat:
        def load_at(self, t: float) -> float:
            return 0.5

    run = run_policy(machine, policy, _Flat(), n_slices=n_slices)
    bips = [
        float(np.sum(m.batch_bips)) for m in run.measurements
    ]
    return {
        "app": app,
        "mean_batch_bips": float(np.mean(bips)) if bips else 0.0,
        "mean_power_w": float(np.mean(
            [m.total_power for m in run.measurements]
        )) if run.measurements else 0.0,
        "qos_violations": run.qos_violations(),
    }


def run_whatif(
    pool: Optional[FleetPool],
    mix: int,
    seed: int,
    apps: List[str],
    n_slices: int = 3,
    telemetry: Any = None,
) -> List[Dict[str, Any]]:
    """Probe ``apps`` as a fleet on the (shared, keep-alive) pool."""
    units = [
        WorkUnit(
            unit_id=f"whatif-{app}",
            fn=probe_app,
            kwargs={
                "mix": mix, "seed": seed, "app": app,
                "n_slices": n_slices,
            },
        )
        for app in apps
    ]
    jobs = pool.params.jobs if pool is not None else 1
    run = FleetRun(
        "server-whatif",
        units,
        params=FleetParams(jobs=jobs),
        seed=seed,
        telemetry=telemetry,
        pool=pool,
    )
    outcome = run.execute()
    return list(outcome.values())

"""Multi-tenant admission control for the scheduler daemon.

The :class:`JobQueueManager` is the daemon's front desk: submissions
are validated statically (unknown applications, unachievable QoS
targets, tenant quotas are rejected on the spot), then queued and
admitted at tick boundaries against the machine's structural capacity
— batch slots, LC service bindings, LLC ways, and an estimated power
envelope.  The queue drains in priority order (higher first), FIFO
within a priority; a job that waits longer than
``AdmissionLimits.max_wait_quanta`` ticks is rejected with a
``wait_timeout`` so callers never wait unboundedly (the bounded-wait
accounting shows up in the status API).

Everything here is plain deterministic bookkeeping — dicts, lists and
integer ticks, no clocks and no RNG — so the admission sequence is a
pure function of the submission script, and ``snapshot``/``restore``
round-trip the whole ledger through JSON for crash-safe resume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.logs import get_logger

log = get_logger("server.admission")

__all__ = [
    "AdmissionLimits",
    "Job",
    "JobQueueManager",
    "JobSpec",
]


@dataclass(frozen=True)
class AdmissionLimits:
    """Admission-control knobs of one daemon."""

    #: Queued + running jobs one tenant may hold at once.
    max_jobs_per_tenant: int = 8
    #: Ticks a queued job may wait before a ``wait_timeout`` rejection.
    max_wait_quanta: int = 16
    #: Fraction of the power budget the admission estimate may fill.
    power_fill_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.max_jobs_per_tenant < 1:
            raise ValueError("max_jobs_per_tenant must be >= 1")
        if self.max_wait_quanta < 1:
            raise ValueError("max_wait_quanta must be >= 1")
        if not 0 < self.power_fill_fraction <= 2.0:
            raise ValueError("power_fill_fraction must be in (0, 2]")


@dataclass(frozen=True)
class JobSpec:
    """What a client asked to run."""

    #: ``"batch"`` (a SPEC-like application) or ``"lc"`` (a service).
    kind: str
    #: Application name (batch) or hosted service name (lc).
    name: str
    tenant: str = "default"
    #: Higher admits first; FIFO within equal priorities.
    priority: int = 0
    #: LC only: the client's p99 target, milliseconds.
    qos_ms: Optional[float] = None
    #: LC only: offered arrival rate, queries per second.
    rps: Optional[float] = None

    def state(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "tenant": self.tenant,
            "priority": int(self.priority),
            "qos_ms": self.qos_ms,
            "rps": self.rps,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "JobSpec":
        return cls(
            kind=str(state["kind"]),
            name=str(state["name"]),
            tenant=str(state["tenant"]),
            priority=int(state["priority"]),
            qos_ms=state["qos_ms"],
            rps=state["rps"],
        )


class Job:
    """One submission's lifecycle record."""

    #: queued -> running -> (cancelled | finished); queued may also go
    #: straight to rejected (static validation or wait timeout).
    __slots__ = (
        "job_id", "seq", "spec", "state", "slot", "submitted_tick",
        "admitted_tick", "finished_tick", "waited_quanta", "reason",
        "rps",
    )

    def __init__(self, job_id: str, seq: int, spec: JobSpec,
                 submitted_tick: int) -> None:
        self.job_id = job_id
        self.seq = seq
        self.spec = spec
        self.state = "queued"
        #: Batch slot index or LC service name once running.
        self.slot: Optional[Any] = None
        self.submitted_tick = submitted_tick
        self.admitted_tick: Optional[int] = None
        self.finished_tick: Optional[int] = None
        self.waited_quanta = 0
        #: Rejection code, when ``state == "rejected"``.
        self.reason: Optional[str] = None
        #: Current arrival rate (LC; mutable via ``set_rps``).
        self.rps: Optional[float] = spec.rps

    def describe(self) -> Dict[str, Any]:
        """JSONable view for the ``jobs`` and ``status`` responses."""
        return {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "name": self.spec.name,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "state": self.state,
            "slot": self.slot,
            "submitted_tick": self.submitted_tick,
            "admitted_tick": self.admitted_tick,
            "finished_tick": self.finished_tick,
            "waited_quanta": self.waited_quanta,
            "reason": self.reason,
            "qos_ms": self.spec.qos_ms,
            "rps": self.rps,
        }

    def to_state(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "spec": self.spec.state(),
            "state": self.state,
            "slot": self.slot,
            "submitted_tick": self.submitted_tick,
            "admitted_tick": self.admitted_tick,
            "finished_tick": self.finished_tick,
            "waited_quanta": self.waited_quanta,
            "reason": self.reason,
            "rps": self.rps,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "Job":
        job = cls(
            str(state["job_id"]), int(state["seq"]),
            JobSpec.from_state(state["spec"]),
            int(state["submitted_tick"]),
        )
        job.state = str(state["state"])
        job.slot = state["slot"]
        job.admitted_tick = state["admitted_tick"]
        job.finished_tick = state["finished_tick"]
        job.waited_quanta = int(state["waited_quanta"])
        job.reason = state["reason"]
        job.rps = state["rps"]
        return job


class JobQueueManager:
    """Admission ledger: validate, queue, and admit jobs per tick.

    Capacity model (checked at every drain, per candidate):

    * **slots** — a batch job needs a vacant batch slot; an LC job
      needs its named service to be unbound (one binding per service);
    * **ways** — running batch jobs plus the always-reserved LC slots
      must leave at least one LLC way free;
    * **power** — the sum of per-job power estimates (offline
      characterisation medians, supplied by the driver) must fit the
      budget times ``AdmissionLimits.power_fill_fraction``.

    Jobs failing a *capacity* check stay queued (and may time out);
    jobs failing a *static* check are rejected immediately.
    """

    def __init__(
        self,
        known_batch_apps: Sequence[str],
        n_batch_slots: int,
        lc_services: Sequence[Mapping[str, Any]],
        llc_ways: int,
        power_budget_w: float,
        batch_power_w: Mapping[str, float],
        lc_power_w: Mapping[str, float],
        limits: AdmissionLimits = AdmissionLimits(),
        telemetry: Any = None,
    ) -> None:
        self.known_batch_apps = frozenset(known_batch_apps)
        self.n_batch_slots = n_batch_slots
        #: name -> {"qos_ms": float, "max_qps": float} per hosted slot.
        self.lc_services: Dict[str, Dict[str, float]] = {
            str(s["name"]): {
                "qos_ms": float(s["qos_ms"]),
                "max_qps": float(s["max_qps"]),
            }
            for s in lc_services
        }
        self.llc_ways = llc_ways
        self.power_budget_w = power_budget_w
        self.batch_power_w = dict(batch_power_w)
        self.lc_power_w = dict(lc_power_w)
        self.limits = limits
        # Session plumbing, not ledger state (the daemon re-attaches
        # after restore), so the snapshot contract excludes it.
        self.telemetry = telemetry

        self.jobs: Dict[str, Job] = {}
        #: Queued job ids in submission order (drain re-sorts).
        self.queue: List[str] = []
        self.batch_slot_job: List[Optional[str]] = [
            None for _ in range(n_batch_slots)
        ]
        self.lc_slot_job: Dict[str, Optional[str]] = {
            name: None for name in sorted(self.lc_services)
        }
        self.next_seq = 1
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.cancelled = 0
        self.timed_out = 0
        #: Bounded-wait accounting across every admitted job.
        self.total_wait_quanta = 0
        self.max_wait_quanta_seen = 0

    def _count(self, name: str, n: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(n)

    # ------------------------------------------------------------------
    # Client-facing operations.
    # ------------------------------------------------------------------

    def _static_rejection(self, spec: JobSpec) -> Optional[str]:
        """Reason code when a spec can never be admitted; else None."""
        if spec.kind not in ("batch", "lc"):
            return "bad_kind"
        tenant_live = sum(
            1 for job in self.jobs.values()
            if job.spec.tenant == spec.tenant
            and job.state in ("queued", "running")
        )
        if tenant_live >= self.limits.max_jobs_per_tenant:
            return "tenant_quota"
        if spec.kind == "batch":
            if spec.name not in self.known_batch_apps:
                return "unknown_app"
            return None
        service = self.lc_services.get(spec.name)
        if service is None:
            return "unknown_service"
        if spec.qos_ms is None or spec.qos_ms <= 0:
            return "bad_qos"
        if spec.qos_ms < service["qos_ms"]:
            # The model cannot promise a tighter tail than its own
            # calibrated target; admitting would guarantee violations.
            return "qos_unachievable"
        if spec.rps is None or spec.rps <= 0:
            return "bad_rps"
        if spec.rps > service["max_qps"]:
            return "rps_exceeds_capacity"
        return None

    def submit(self, spec: JobSpec, tick: int) -> Job:
        """Validate and enqueue one submission; returns its record.

        Statically invalid submissions come back with
        ``state == "rejected"`` and a ``reason`` code.
        """
        if spec.kind == "lc" and spec.qos_ms is None:
            # An omitted QoS target means "the service's calibrated
            # target" — the loosest promise the model can still keep.
            service = self.lc_services.get(spec.name)
            if service is not None:
                spec = replace(spec, qos_ms=service["qos_ms"])
        # Validate before the job enters the ledger — a submission must
        # not count itself toward its own tenant quota.
        reason = self._static_rejection(spec)
        job_id = f"j{self.next_seq:06d}"
        job = Job(job_id, self.next_seq, spec, tick)
        self.next_seq += 1
        self.jobs[job_id] = job
        self.submitted += 1
        self._count("server.jobs_submitted")
        if reason is not None:
            job.state = "rejected"
            job.reason = reason
            job.finished_tick = tick
            self.rejected += 1
            self._count("server.jobs_rejected")
            log.info("job %s rejected at submit: %s", job_id, reason)
            return job
        self.queue.append(job_id)
        log.info(
            "job %s queued (%s %s, tenant %s, priority %d)",
            job_id, spec.kind, spec.name, spec.tenant, spec.priority,
        )
        return job

    def cancel(self, job_id: str, tick: int) -> Optional[Job]:
        """Cancel a queued or running job; returns it (None = unknown).

        Running jobs release their slot immediately; the caller
        unbinds the machine side before the next tick.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return None
        if job.state not in ("queued", "running"):
            return job
        if job.state == "queued":
            self.queue.remove(job_id)
        else:
            self._release_slot(job)
        job.state = "cancelled"
        job.finished_tick = tick
        self.cancelled += 1
        self._count("server.jobs_cancelled")
        log.info("job %s cancelled", job_id)
        return job

    def set_rps(self, job_id: str, rps: float) -> Optional[Job]:
        """Update a live LC job's offered rate; returns it (or None).

        Raises ``ValueError`` for non-LC jobs or rates beyond the
        service's knee.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return None
        if job.spec.kind != "lc":
            raise ValueError("set_rps only applies to LC jobs")
        if job.state not in ("queued", "running"):
            raise ValueError(f"job {job_id} is {job.state}")
        service = self.lc_services[job.spec.name]
        if rps <= 0 or rps > service["max_qps"]:
            raise ValueError(
                f"rps must be in (0, {service['max_qps']:g}]"
            )
        job.rps = float(rps)
        return job

    # ------------------------------------------------------------------
    # Tick-boundary drain.
    # ------------------------------------------------------------------

    def _release_slot(self, job: Job) -> None:
        if job.spec.kind == "batch" and isinstance(job.slot, int):
            self.batch_slot_job[job.slot] = None
        elif job.spec.kind == "lc" and job.slot is not None:
            self.lc_slot_job[str(job.slot)] = None

    def running_jobs(self) -> List[Job]:
        """Currently admitted jobs, in admission (seq) order."""
        return sorted(
            (j for j in self.jobs.values() if j.state == "running"),
            key=lambda j: j.seq,
        )

    def _power_in_use(self) -> float:
        total = 0.0
        for job in self.jobs.values():
            if job.state != "running":
                continue
            if job.spec.kind == "batch":
                total += self.batch_power_w.get(job.spec.name, 0.0)
            else:
                total += self.lc_power_w.get(job.spec.name, 0.0)
        return total

    def _estimate_w(self, spec: JobSpec) -> float:
        if spec.kind == "batch":
            return self.batch_power_w.get(spec.name, 0.0)
        return self.lc_power_w.get(spec.name, 0.0)

    def _capacity_block(self, spec: JobSpec) -> Optional[str]:
        """Why a valid spec cannot be admitted *right now*; else None."""
        if spec.kind == "batch":
            if None not in self.batch_slot_job:
                return "no_free_slot"
            running_batch = sum(
                1 for j in self.batch_slot_job if j is not None
            )
            # Every hosted LC slot permanently reserves a way; each
            # running batch job needs one, and one way must stay free
            # for reconfiguration slack.
            if running_batch + len(self.lc_services) + 1 >= self.llc_ways:
                return "no_free_ways"
        else:
            if self.lc_slot_job.get(spec.name) is not None:
                return "service_bound"
        budget = self.power_budget_w * self.limits.power_fill_fraction
        if self._power_in_use() + self._estimate_w(spec) > budget:
            return "power_envelope"
        return None

    def drain(self, tick: int) -> Dict[str, List[Dict[str, Any]]]:
        """Admit what fits, time out what waited too long.

        Called once per tick, *before* the quantum executes.  Returns
        ``{"admitted": [...], "timed_out": [...]}`` where each admitted
        entry carries the binding the driver must apply
        (``job_id``/``kind``/``name``/``slot``/``rps``).
        """
        admitted: List[Dict[str, Any]] = []
        timed_out: List[Dict[str, Any]] = []
        # Priority first, FIFO (submission seq) within a priority.
        order = sorted(
            self.queue,
            key=lambda jid: (-self.jobs[jid].spec.priority,
                             self.jobs[jid].seq),
        )
        for job_id in order:
            job = self.jobs[job_id]
            block = self._capacity_block(job.spec)
            if block is None:
                self.queue.remove(job_id)
                job.state = "running"
                job.admitted_tick = tick
                job.waited_quanta = tick - job.submitted_tick
                self.total_wait_quanta += job.waited_quanta
                self.max_wait_quanta_seen = max(
                    self.max_wait_quanta_seen, job.waited_quanta
                )
                if job.spec.kind == "batch":
                    slot = self.batch_slot_job.index(None)
                    self.batch_slot_job[slot] = job_id
                    job.slot = slot
                else:
                    self.lc_slot_job[job.spec.name] = job_id
                    job.slot = job.spec.name
                self.admitted += 1
                self._count("server.jobs_admitted")
                admitted.append({
                    "job_id": job_id,
                    "kind": job.spec.kind,
                    "name": job.spec.name,
                    "slot": job.slot,
                    "rps": job.rps,
                })
                log.info(
                    "job %s admitted at tick %d (slot %r, waited %d)",
                    job_id, tick, job.slot, job.waited_quanta,
                )
                continue
            job.waited_quanta = tick - job.submitted_tick
            if job.waited_quanta >= self.limits.max_wait_quanta:
                self.queue.remove(job_id)
                job.state = "rejected"
                job.reason = "wait_timeout"
                job.finished_tick = tick
                self.rejected += 1
                self.timed_out += 1
                self._count("server.jobs_rejected")
                self._count("server.jobs_timed_out")
                timed_out.append({
                    "job_id": job_id,
                    "waited_quanta": job.waited_quanta,
                    "blocked_on": block,
                })
                log.info(
                    "job %s timed out after %d quanta (blocked on %s)",
                    job_id, job.waited_quanta, block,
                )
        return {"admitted": admitted, "timed_out": timed_out}

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """The admission section of the ``status`` response."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "timed_out": self.timed_out,
            "queued": len(self.queue),
            "running": sum(
                1 for j in self.jobs.values() if j.state == "running"
            ),
            "total_wait_quanta": self.total_wait_quanta,
            "max_wait_quanta_seen": self.max_wait_quanta_seen,
            "limits": {
                "max_jobs_per_tenant": self.limits.max_jobs_per_tenant,
                "max_wait_quanta": self.limits.max_wait_quanta,
                "power_fill_fraction": self.limits.power_fill_fraction,
            },
        }

    # ------------------------------------------------------------------
    # Crash-safe snapshots.
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSONable ledger state: ``jobs``, ``queue``, slot bindings
        (``batch_slot_job``/``lc_slot_job``), ``next_seq``, and every
        counter (``submitted``/``admitted``/``rejected``/``cancelled``/
        ``timed_out``/``total_wait_quanta``/``max_wait_quanta_seen``).
        """
        return {
            "version": 1,
            "jobs": [
                self.jobs[jid].to_state() for jid in sorted(self.jobs)
            ],
            "queue": list(self.queue),
            "batch_slot_job": list(self.batch_slot_job),
            "lc_slot_job": dict(self.lc_slot_job),
            "next_seq": self.next_seq,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "timed_out": self.timed_out,
            "total_wait_quanta": self.total_wait_quanta,
            "max_wait_quanta_seen": self.max_wait_quanta_seen,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Restore the ledger captured by :meth:`snapshot`."""
        if state.get("version") != 1:
            raise ValueError(
                "unsupported admission snapshot version "
                f"{state.get('version')!r}"
            )
        self.jobs = {
            entry["job_id"]: Job.from_state(entry)
            for entry in state["jobs"]
        }
        self.queue = [str(jid) for jid in state["queue"]]
        self.batch_slot_job = list(state["batch_slot_job"])
        self.lc_slot_job = dict(state["lc_slot_job"])
        self.next_seq = int(state["next_seq"])
        self.submitted = int(state["submitted"])
        self.admitted = int(state["admitted"])
        self.rejected = int(state["rejected"])
        self.cancelled = int(state["cancelled"])
        self.timed_out = int(state["timed_out"])
        self.total_wait_quanta = int(state["total_wait_quanta"])
        self.max_wait_quanta_seen = int(state["max_wait_quanta_seen"])

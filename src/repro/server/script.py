"""A deterministic scripted client for the scheduler daemon.

:class:`ScriptedClient` is a plain blocking-socket NDJSON client — the
integration harness the kill/resume tests and the CI ``server-smoke``
job drive the daemon with.  It is deliberately synchronous (it lives
*outside* the daemon's async path, so SRV801 does not apply): a script
is a list of request dicts executed strictly in order, and the
transcript — every response and every pushed event, in arrival order —
is the deterministic artifact the tests diff.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Sequence

from repro.server.protocol import encode_line

__all__ = ["ScriptedClient", "run_script"]


class ScriptedClient:
    """One blocking NDJSON connection with push-event accounting."""

    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        self.sock = socket.create_connection((host, port), timeout_s)
        self.reader = self.sock.makefile("rb")
        #: Push events that arrived while waiting for responses.
        self.events: List[Dict[str, Any]] = []

    def __enter__(self) -> "ScriptedClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        try:
            self.reader.close()
        finally:
            self.sock.close()

    def send(self, request: Dict[str, Any]) -> None:
        self.sock.sendall(encode_line(request))

    def read_line(self) -> Optional[Dict[str, Any]]:
        """Next line from the server (response or event); None = EOF."""
        raw = self.reader.readline()
        if not raw:
            return None
        return json.loads(raw.decode("utf-8"))

    def request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and return its response.

        Push events that arrive first are collected into
        :attr:`events` — the protocol guarantees the response for tick
        N follows N's events, so ordering is never ambiguous.
        """
        self.send(request)
        while True:
            line = self.read_line()
            if line is None:
                raise ConnectionError(
                    "server closed the connection mid-request"
                )
            if "event" in line:
                self.events.append(line)
                continue
            return line

    def drain_events(self, n: int, timeout_s: float = 30.0) -> None:
        """Block until ``n`` total events have been collected."""
        self.sock.settimeout(timeout_s)
        while len(self.events) < n:
            line = self.read_line()
            if line is None:
                raise ConnectionError("server closed during drain")
            if "event" in line:
                self.events.append(line)


def run_script(
    commands: Sequence[Dict[str, Any]],
    host: str,
    port: int,
    timeout_s: float = 30.0,
) -> Dict[str, Any]:
    """Execute ``commands`` in order; returns the full transcript.

    The transcript — ``{"responses": [...], "events": [...]}`` — is
    canonical-JSON-stable, so two identical runs (or one run and its
    kill/resume twin) compare byte-for-byte once dumped.
    """
    with ScriptedClient(host, port, timeout_s) as client:
        responses = [client.request(dict(cmd)) for cmd in commands]
        return {"responses": responses, "events": list(client.events)}

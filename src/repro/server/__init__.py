"""Scheduler-as-a-service: an asyncio control plane over the quantum loop.

The :mod:`repro.server` subsystem turns the batch reproduction into a
long-lived daemon (docs/server.md).  A newline-delimited-JSON TCP
protocol — with a minimal HTTP/1.1 status surface on the same port —
accepts live job submissions and queries; behind it a
:class:`~repro.server.admission.JobQueueManager` feeds admitted jobs
into a :class:`~repro.server.driver.QuantumDriver`, which runs the
existing :class:`~repro.experiments.harness.QuantumStepper` machinery
one deadline-budgeted quantum per tick on a virtual-time clock,
publishing every decision to connected ``subscribe`` streams through
the live-telemetry path and persisting crash-safe snapshots so a
killed daemon resumes byte-identically.
"""

from repro.server.admission import (
    AdmissionLimits,
    Job,
    JobQueueManager,
    JobSpec,
)
from repro.server.daemon import SchedulerDaemon, ServerConfig
from repro.server.driver import QuantumDriver
from repro.server.protocol import ProtocolError, encode_line, parse_request

__all__ = [
    "AdmissionLimits",
    "Job",
    "JobQueueManager",
    "JobSpec",
    "ProtocolError",
    "QuantumDriver",
    "SchedulerDaemon",
    "ServerConfig",
    "encode_line",
    "parse_request",
]

"""The asyncio scheduler daemon: sockets in front, quanta behind.

:class:`SchedulerDaemon` binds one TCP port that speaks the protocol
of :mod:`repro.server.protocol`: NDJSON request/response with
``subscribe`` push streams, plus a one-shot read-only HTTP/1.1 surface
(``GET /status``, ``GET /metrics``, ``GET /decisions``) sniffed off
the first request line.

Every connection owns one **outbox** queue carrying both its responses
and its subscription events; a single writer task drains it in enqueue
order.  Decision events are published synchronously inside
``driver.tick()`` — before the tick's own response is enqueued — so a
subscriber always sees ``quantum`` and ``decision`` events for tick N
ahead of the reply that reported N.  That fixed interleaving is what
lets the scripted-client tests diff whole session transcripts.

Ticking is **virtual-time** by default: quanta advance only when a
client sends ``tick``, which is the deterministic mode the golden
streams and kill/resume tests run under.  ``--real-time`` starts a
background pacer that ticks every ``quantum_s`` seconds — explicitly
outside the determinism contract.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.fleet.pool import FleetPool, PoolParams
from repro.logs import get_logger
from repro.server.driver import QuantumDriver, ServerConfig
from repro.server.protocol import (
    ProtocolError,
    encode_line,
    error_response,
    http_response,
    looks_like_http,
    ok_response,
    parse_http_request_line,
    parse_request,
)
from repro.server.session import CONNECTION_OPS, CommandExecutor
from repro.telemetry import Telemetry

log = get_logger("server.daemon")

__all__ = ["SchedulerDaemon", "ServerConfig", "run_daemon"]

#: Outbox depth per connection; a full outbox *drops* events (never
#: responses) so one slow subscriber cannot stall the decision loop.
OUTBOX_CAP = 1024

#: Maximum request-line length; longer lines reject the connection.
MAX_LINE = 1 << 20


class _Connection:
    """Per-connection state: the outbox and its subscription flag."""

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self.outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue(
            maxsize=OUTBOX_CAP
        )
        self.subscribed = False
        self.dropped_events = 0


class SchedulerDaemon:
    """One scheduler daemon instance (build, :meth:`serve`, stop)."""

    def __init__(
        self, config: ServerConfig, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.config = config
        if telemetry is None:
            telemetry = Telemetry()
            telemetry.enable_accuracy_audit()
        self.telemetry = telemetry
        self.driver = QuantumDriver(
            config, telemetry=telemetry, on_event=self._publish_event
        )
        if config.resume and config.state_path is not None and (
            Path(config.state_path).exists()
        ):
            self.driver.resume_from(config.state_path)
        #: Keep-alive what-if pool, shared across every FleetRun the
        #: daemon's lifetime sees; closed on shutdown.
        self.whatif_pool = FleetPool(PoolParams(
            jobs=max(1, config.whatif_jobs), keep_alive=True,
        ))
        self.executor = CommandExecutor(
            self.driver, telemetry=telemetry, whatif_pool=self.whatif_pool
        )
        self._connections: Set[_Connection] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        # asyncio primitives bind the running loop on some supported
        # Pythons, so they are created inside serve(), not here.
        self._stop: Optional["asyncio.Event"] = None
        self._stop_requested = False
        self._tick_lock: Optional["asyncio.Lock"] = None
        self._whatif_lock: Optional["asyncio.Lock"] = None
        self._pacer: Optional["asyncio.Task[None]"] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Event fan-out (called synchronously from inside driver.tick()).
    # ------------------------------------------------------------------

    def _publish_event(self, event: Dict[str, Any]) -> None:
        payload = dict(event)
        payload["event"] = payload.pop("kind", "event")
        line = encode_line(payload)
        for conn in self._connections:
            if not conn.subscribed:
                continue
            try:
                conn.outbox.put_nowait(line)
            except asyncio.QueueFull:
                # Observability, not results: drop rather than stall.
                conn.dropped_events += 1
                self.telemetry.metrics.counter(
                    "server.events_dropped"
                ).inc()

    # ------------------------------------------------------------------
    # Serving.
    # ------------------------------------------------------------------

    async def serve(self) -> None:
        """Bind, serve until ``shutdown`` (or stop()), then clean up."""
        self._stop = asyncio.Event()
        if self._stop_requested:
            self._stop.set()
        self._tick_lock = asyncio.Lock()
        self._whatif_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file is not None:
            self._write_port_file(self.config.port_file, self.port)
        log.info(
            "scheduler daemon listening on %s:%d (mix %d, %s time)",
            self.config.host, self.port, self.config.mix,
            "real" if self.config.real_time else "virtual",
        )
        if self.config.real_time:
            self._pacer = asyncio.ensure_future(self._pace())
        try:
            await self._stop.wait()
        finally:
            if self._pacer is not None:
                self._pacer.cancel()
            self._server.close()
            await self._server.wait_closed()
            for conn in list(self._connections):
                try:
                    conn.outbox.put_nowait(None)
                except asyncio.QueueFull:
                    pass
            self.whatif_pool.close()
            self.driver.write_snapshot()
            log.info("scheduler daemon stopped at quantum %d",
                     self.driver.quantum)

    def stop(self) -> None:
        self._stop_requested = True
        if self._stop is not None:
            self._stop.set()

    def _write_port_file(self, path: str, port: int) -> None:
        # Sync and tiny, but called once from async serve(): routed
        # through Path.write_text via this helper (SRV801).
        Path(path).write_text(f"{port}\n", encoding="utf-8")

    async def _pace(self) -> None:
        """Real-time mode: one quantum per ``quantum_s`` wall seconds."""
        while not self._stop.is_set():
            await asyncio.sleep(self.config.quantum_s)
            if self.driver.stepper.done:
                log.info("pacer: max_quanta reached; stopping")
                self.stop()
                return
            async with self._tick_lock:
                self.driver.tick()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        peername = writer.get_extra_info("peername")
        conn = _Connection(str(peername))
        self._connections.add(conn)
        self.telemetry.metrics.counter("server.connections").inc()
        sender = asyncio.ensure_future(self._drain_outbox(conn, writer))
        try:
            first = await reader.readline()
            if not first:
                return
            if looks_like_http(first):
                await self._handle_http(first, reader, writer, conn)
                return
            await self._handle_line(first, conn)
            while not self._stop.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                await self._handle_line(line, conn)
        finally:
            self._connections.discard(conn)
            try:
                conn.outbox.put_nowait(None)
            except asyncio.QueueFull:
                sender.cancel()
            try:
                await sender
            except asyncio.CancelledError:
                pass
            writer.close()

    async def _drain_outbox(
        self, conn: _Connection, writer: "asyncio.StreamWriter"
    ) -> None:
        """The connection's single writer: strict enqueue order."""
        while True:
            item = await conn.outbox.get()
            if item is None:
                return
            try:
                writer.write(item)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                return

    async def _send(self, conn: _Connection, payload: Dict[str, Any]) -> None:
        await conn.outbox.put(encode_line(payload))

    async def _handle_line(self, raw: bytes, conn: _Connection) -> None:
        if len(raw) > MAX_LINE:
            await self._send(conn, error_response(
                "bad_request", "request line too long"
            ))
            return
        text = raw.decode("utf-8", errors="replace").strip()
        if not text:
            return
        try:
            request = parse_request(text)
        except ProtocolError as exc:
            await self._send(conn, error_response(exc.code, str(exc)))
            return
        self.telemetry.metrics.counter("server.requests").inc()
        op = request["op"]
        if op in CONNECTION_OPS:
            await self._send(conn, self._connection_op(op, request, conn))
            return
        if op == "whatif" and "apps" in request:
            # Fleet-backed probes run off-loop; serialized so the
            # keep-alive pool only ever serves one map at a time.
            async with self._whatif_lock:
                loop = asyncio.get_running_loop()
                response = await loop.run_in_executor(
                    None, self.executor.execute, request
                )
            await self._send(conn, response)
            return
        if op == "tick":
            async with self._tick_lock:
                response = self.executor.execute(request)
            await self._send(conn, response)
            return
        await self._send(conn, self.executor.execute(request))

    def _connection_op(
        self, op: str, request: Dict[str, Any], conn: _Connection
    ) -> Dict[str, Any]:
        if op == "subscribe":
            conn.subscribed = True
            return ok_response("subscribe", request, subscribed=True)
        if op == "unsubscribe":
            conn.subscribed = False
            return ok_response(
                "unsubscribe", request,
                subscribed=False, dropped_events=conn.dropped_events,
            )
        # shutdown
        self.stop()
        return ok_response(
            "shutdown", request, quantum=self.driver.quantum
        )

    # ------------------------------------------------------------------
    # HTTP convenience surface (read-only, one exchange per socket).
    # ------------------------------------------------------------------

    async def _handle_http(
        self,
        first: bytes,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
        conn: _Connection,
    ) -> None:
        try:
            method, path = parse_http_request_line(first)
        except ProtocolError:
            await conn.outbox.put(http_response(
                "400 Bad Request", "text/plain", b"malformed request\n"
            ))
            return
        # Drain (and ignore) the request headers.
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
        if method not in ("GET", "HEAD"):
            await conn.outbox.put(http_response(
                "405 Method Not Allowed", "text/plain",
                b"read-only surface; use the NDJSON protocol to act\n",
            ))
            return
        body, content_type, status = self._http_get(path.split("?")[0])
        if method == "HEAD":
            body = b""
        await conn.outbox.put(http_response(status, content_type, body))

    def _http_get(self, path: str) -> Any:
        if path == "/status":
            payload = self.executor.execute({"op": "status"})
            body = json.dumps(
                payload, sort_keys=True, indent=2
            ).encode("utf-8") + b"\n"
            return body, "application/json", "200 OK"
        if path == "/metrics":
            text = self.executor.prometheus_text()
            return (
                text.encode("utf-8"),
                "text/plain; version=0.0.4",
                "200 OK",
            )
        if path == "/decisions":
            return (
                self._decision_stream_bytes(),
                "application/x-ndjson",
                "200 OK",
            )
        return (
            b"unknown path; try /status /metrics /decisions\n",
            "text/plain",
            "404 Not Found",
        )

    def _decision_stream_bytes(self) -> bytes:
        path = self.config.decisions_path
        if path is not None and Path(path).exists():
            return Path(path).read_bytes()
        tail = self.driver._decision_tail
        if not tail:
            return b""
        return ("\n".join(tail) + "\n").encode("utf-8")


def run_daemon(config: ServerConfig) -> None:
    """Build a daemon and serve until shutdown (the CLI entry point)."""
    daemon = SchedulerDaemon(config)
    try:
        asyncio.run(daemon.serve())
    except KeyboardInterrupt:
        # ^C is a normal way to stop a foreground daemon; the final
        # snapshot was already written if serve() reached its cleanup.
        log.info("interrupted; daemon exiting")

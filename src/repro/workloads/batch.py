"""SPEC CPU2006-like batch workloads.

The paper draws multiprogrammed mixes from 28 SPEC CPU2006 benchmarks.
Those binaries (and a cycle-level simulator to run them) are not
available here, so each benchmark name is mapped to an *archetype* —
memory-bound, integer compute, floating-point compute, frontend-heavy,
or balanced — and its :class:`~repro.sim.perf.AppProfile` coefficients
are drawn deterministically from the archetype's parameter ranges using
a seed derived from the benchmark name.  What matters for reproducing
CuttleSys is preserved: a *population* of applications with shared
latent structure (so collaborative filtering works), diverse per-section
bottlenecks and cache sensitivities (so configuration choice matters),
and a train/test split with no overlap (paper §VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.rng import rng_for
from repro.sim.cache import MissRateCurve
from repro.sim.perf import AppProfile

__all__ = [
    "Archetype", "ARCHETYPES", "SPEC_ARCHETYPE", "SPEC_APPS",
    "batch_profile", "all_batch_profiles", "train_test_split",
    "synthetic_population", "rng_for",
]


@dataclass(frozen=True)
class Archetype:
    """Parameter ranges an application's profile is drawn from."""

    name: str
    base_cpi: Tuple[float, float]
    fe_sens: Tuple[float, float]
    be_sens: Tuple[float, float]
    ls_sens: Tuple[float, float]
    mpki_peak: Tuple[float, float]
    #: Compulsory-miss floor as a fraction of the peak MPKI.
    mpki_floor_frac: Tuple[float, float]
    half_ways: Tuple[float, float]
    mem_blocking: Tuple[float, float]
    activity: Tuple[float, float]

    def draw(self, app_name: str) -> AppProfile:
        """Deterministically instantiate a profile for ``app_name``."""
        rng = rng_for(app_name, salt=f"archetype:{self.name}")

        def pick(lo_hi: Tuple[float, float]) -> float:
            lo, hi = lo_hi
            return float(rng.uniform(lo, hi))

        peak = pick(self.mpki_peak)
        floor = peak * pick(self.mpki_floor_frac)
        return AppProfile(
            name=app_name,
            base_cpi=pick(self.base_cpi),
            fe_sens=pick(self.fe_sens),
            be_sens=pick(self.be_sens),
            ls_sens=pick(self.ls_sens),
            miss_curve=MissRateCurve(
                peak=peak, floor=floor, half_ways=pick(self.half_ways)
            ),
            mem_blocking=pick(self.mem_blocking),
            activity=pick(self.activity),
        )


MEMORY_BOUND = Archetype(
    name="memory_bound",
    base_cpi=(0.60, 0.90),
    fe_sens=(0.05, 0.15),
    be_sens=(0.08, 0.20),
    ls_sens=(0.15, 0.35),
    mpki_peak=(12.0, 40.0),
    mpki_floor_frac=(0.20, 0.40),
    half_ways=(3.0, 9.0),
    mem_blocking=(0.40, 0.60),
    activity=(0.65, 0.90),
)

INT_COMPUTE = Archetype(
    name="int_compute",
    base_cpi=(0.45, 0.70),
    fe_sens=(0.20, 0.45),
    be_sens=(0.25, 0.50),
    ls_sens=(0.05, 0.15),
    mpki_peak=(1.0, 6.0),
    mpki_floor_frac=(0.25, 0.50),
    half_ways=(0.8, 3.0),
    mem_blocking=(0.25, 0.40),
    activity=(0.95, 1.20),
)

FP_COMPUTE = Archetype(
    name="fp_compute",
    base_cpi=(0.50, 0.80),
    fe_sens=(0.08, 0.20),
    be_sens=(0.40, 0.70),
    ls_sens=(0.08, 0.20),
    mpki_peak=(2.0, 9.0),
    mpki_floor_frac=(0.25, 0.45),
    half_ways=(1.5, 4.0),
    mem_blocking=(0.30, 0.45),
    activity=(1.05, 1.30),
)

FRONTEND_HEAVY = Archetype(
    name="frontend_heavy",
    base_cpi=(0.55, 0.85),
    fe_sens=(0.40, 0.70),
    be_sens=(0.10, 0.25),
    ls_sens=(0.05, 0.18),
    mpki_peak=(3.0, 10.0),
    mpki_floor_frac=(0.25, 0.45),
    half_ways=(1.5, 4.5),
    mem_blocking=(0.30, 0.45),
    activity=(0.85, 1.10),
)

BALANCED = Archetype(
    name="balanced",
    base_cpi=(0.50, 0.80),
    fe_sens=(0.15, 0.35),
    be_sens=(0.15, 0.35),
    ls_sens=(0.10, 0.25),
    mpki_peak=(4.0, 14.0),
    mpki_floor_frac=(0.25, 0.45),
    half_ways=(2.0, 6.0),
    mem_blocking=(0.30, 0.50),
    activity=(0.85, 1.15),
)

ARCHETYPES: Tuple[Archetype, ...] = (
    MEMORY_BOUND,
    INT_COMPUTE,
    FP_COMPUTE,
    FRONTEND_HEAVY,
    BALANCED,
)

#: Archetype assignment for each SPEC CPU2006 benchmark used in the
#: paper (§VII-A), following their published microarchitectural
#: characterisations.
SPEC_ARCHETYPE: Dict[str, Archetype] = {
    "perlbench": FRONTEND_HEAVY,
    "bzip2": INT_COMPUTE,
    "gcc": BALANCED,
    "mcf": MEMORY_BOUND,
    "cactusADM": FP_COMPUTE,
    "namd": FP_COMPUTE,
    "soplex": MEMORY_BOUND,
    "hmmer": INT_COMPUTE,
    "libquantum": MEMORY_BOUND,
    "lbm": MEMORY_BOUND,
    "bwaves": MEMORY_BOUND,
    "zeusmp": FP_COMPUTE,
    "leslie3d": MEMORY_BOUND,
    "milc": MEMORY_BOUND,
    "h264ref": INT_COMPUTE,
    "sjeng": INT_COMPUTE,
    "GemsFDTD": MEMORY_BOUND,
    "omnetpp": MEMORY_BOUND,
    "xalancbmk": FRONTEND_HEAVY,
    "sphinx3": MEMORY_BOUND,
    "astar": BALANCED,
    "gromacs": FP_COMPUTE,
    "gamess": FP_COMPUTE,
    "gobmk": FRONTEND_HEAVY,
    "povray": FP_COMPUTE,
    "specrand": INT_COMPUTE,
    "calculix": FP_COMPUTE,
    "wrf": BALANCED,
}

#: The 28 SPEC CPU2006 benchmark names from the paper, in its order.
SPEC_APPS: Tuple[str, ...] = tuple(SPEC_ARCHETYPE)

_PROFILE_CACHE: Dict[str, AppProfile] = {}


def batch_profile(name: str) -> AppProfile:
    """Profile of one SPEC-like benchmark by name (cached, deterministic)."""
    if name not in SPEC_ARCHETYPE:
        raise KeyError(
            f"unknown batch benchmark {name!r}; known: {', '.join(SPEC_APPS)}"
        )
    if name not in _PROFILE_CACHE:
        # Pure memoization: draw(name) is deterministic in its key, so
        # every worker that repopulates this cache computes identical
        # values and fleet outputs cannot diverge.
        _PROFILE_CACHE[name] = SPEC_ARCHETYPE[name].draw(name)  # repro: noqa[FLT502]
    return _PROFILE_CACHE[name]


def all_batch_profiles() -> List[AppProfile]:
    """Profiles of all 28 benchmarks, in :data:`SPEC_APPS` order."""
    return [batch_profile(name) for name in SPEC_APPS]


def train_test_split(
    n_train: int = 16, seed: int = 2020
) -> Tuple[List[str], List[str]]:
    """Split the benchmarks into offline-training and testing sets.

    The paper randomly selects 16 benchmarks whose full profiles are
    characterised offline (the "known" rows of the reconstruction
    matrices); mixes are then built only from the remaining ones so
    training and testing never overlap.
    """
    if not 0 < n_train < len(SPEC_APPS):
        raise ValueError(
            f"n_train must be in (0, {len(SPEC_APPS)}), got {n_train}"
        )
    rng = np.random.default_rng(seed)
    order = list(SPEC_APPS)
    rng.shuffle(order)
    return sorted(order[:n_train]), sorted(order[n_train:])


def synthetic_population(
    n_apps: int, seed: int = 0, prefix: str = "synth"
) -> List[AppProfile]:
    """Generate an arbitrary-size application population.

    Useful for scaling studies beyond the 28 named benchmarks; each app
    is drawn from a seeded-random archetype.
    """
    if n_apps <= 0:
        raise ValueError(f"n_apps must be positive, got {n_apps}")
    rng = np.random.default_rng(seed)
    profiles = []
    for i in range(n_apps):
        archetype = ARCHETYPES[int(rng.integers(len(ARCHETYPES)))]
        profiles.append(archetype.draw(f"{prefix}-{seed}-{i}"))
    return profiles

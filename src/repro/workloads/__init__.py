"""Workload models: TailBench-like interactive services and SPEC-like batch jobs.

These stand in for the paper's TailBench and SPEC CPU2006 suites (see
DESIGN.md for the substitution rationale).  Latency-critical services are
queueing models whose per-query service time comes from the core
performance model; batch jobs are instruction streams characterised by an
:class:`repro.sim.perf.AppProfile`.
"""

from repro.workloads.batch import (
    SPEC_APPS,
    all_batch_profiles,
    batch_profile,
    train_test_split,
)
from repro.workloads.latency_critical import (
    LC_SERVICE_NAMES,
    LCService,
    lc_service,
    make_services,
)
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import Mix, paper_mixes
from repro.workloads.queueing import DiscreteEventQueue, MGkQueue

__all__ = [
    "DiscreteEventQueue",
    "LCService",
    "LC_SERVICE_NAMES",
    "LoadTrace",
    "MGkQueue",
    "Mix",
    "SPEC_APPS",
    "all_batch_profiles",
    "batch_profile",
    "lc_service",
    "make_services",
    "paper_mixes",
    "train_test_split",
]

"""TailBench-like latency-critical services (paper §III, §VII-A).

Five interactive services — Xapian (web search), Masstree (key-value
store), ImgDNN (image recognition), Moses (machine translation), and
Silo (OLTP) — modelled as M/G/k queues whose per-query service time is
derived from the core performance model.  Each service's section
sensitivities follow the paper's Fig. 1 characterisation:

* **Xapian** — tail latency dominated by the load/store queue (needs a
  six-wide LS at high load; lowest-power QoS config {2,2,6}).
* **ImgDNN / Masstree** — need four- or six-wide FE *and* LS ({4,2,4}).
* **Moses** — front-end bound ({6,2,4}).
* **Silo** — comparatively insensitive ({2,2,4}).

All five are nearly insensitive to back-end width, so every best
low-power configuration has BE = 2, as in the paper.

Per-service maximum sustainable load (the knee before saturation on a
16-core machine) matches the paper's measured values: Xapian 22 kQPS,
Masstree 17 kQPS, ImgDNN 8 kQPS, Moses 8 kQPS, Silo 24 kQPS.  Query
*work* (instructions per query) is calibrated so the service saturates
at exactly that QPS, and the QoS target is set with a fixed margin over
the 80 %-load tail latency on the widest core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


from repro.rng import rng_for
from repro.sim.cache import MissRateCurve
from repro.sim.coreconfig import CoreConfig
from repro.sim.perf import AppProfile, PerformanceModel
from repro.workloads.queueing import MGkQueue

#: Utilization at the max-QPS knee; loads are fractions of the knee QPS.
KNEE_UTILIZATION = 0.85

#: QoS = this margin times the p99 at 80 % load on the service's
#: lowest-power QoS-feasible configuration from the paper's Fig. 1 (the
#: anchor config) — TailBench-style targets with a modest slack.
QOS_MARGIN = 1.15

#: Core count the paper's max-QPS calibration used.
CALIBRATION_CORES = 16


@dataclass(frozen=True)
class LCService:
    """A latency-critical service: an app profile plus queueing behaviour."""

    profile: AppProfile
    #: Mean instructions per query.
    work_instructions: float
    #: Squared coefficient of variation of per-query service time.
    service_scv: float
    #: Knee QPS on 16 {6,6,6} cores (100 % load).
    max_qps: float
    #: 99th-percentile latency target, seconds.
    qos_latency_s: float
    #: Optional explicit service-time distribution shape (bimodal query
    #: mixes, deterministic handlers, ...); None = lognormal via SCV.
    service_distribution: "object" = None

    def __post_init__(self) -> None:
        if self.work_instructions <= 0:
            raise ValueError("work_instructions must be positive")
        if self.max_qps <= 0:
            raise ValueError("max_qps must be positive")
        if self.qos_latency_s <= 0:
            raise ValueError("qos_latency_s must be positive")

    @property
    def name(self) -> str:
        """Service name (same as the underlying profile's)."""
        return self.profile.name

    def qps_at_load(self, load: float) -> float:
        """Queries per second at a fractional ``load`` of the knee QPS."""
        if load < 0:
            raise ValueError(f"load must be non-negative, got {load}")
        return load * self.max_qps

    def service_time(
        self,
        perf: PerformanceModel,
        config: CoreConfig,
        cache_ways: float,
        shared_way: bool = False,
        mem_multiplier: float = 1.0,
    ) -> float:
        """Mean seconds to serve one query on a core in ``config``.

        ``mem_multiplier`` inflates the memory-stall portion (bandwidth
        contention, :mod:`repro.sim.memory`).
        """
        bips = perf.bips(
            self.profile, config, cache_ways, shared_way=shared_way,
            mem_multiplier=mem_multiplier,
        )
        return self.work_instructions / (bips * 1e9)

    def queue(
        self,
        perf: PerformanceModel,
        config: CoreConfig,
        cache_ways: float,
        load: float,
        n_cores: int,
        shared_way: bool = False,
        mem_multiplier: float = 1.0,
    ) -> MGkQueue:
        """The M/G/k queue this service forms under the given allocation."""
        return MGkQueue(
            arrival_rate=self.qps_at_load(load),
            service_time_mean=self.service_time(
                perf, config, cache_ways, shared_way=shared_way,
                mem_multiplier=mem_multiplier,
            ),
            service_scv=self.service_scv,
            servers=n_cores,
            distribution=self.service_distribution,
        )

    def tail_latency(
        self,
        perf: PerformanceModel,
        config: CoreConfig,
        cache_ways: float,
        load: float,
        n_cores: int,
        shared_way: bool = False,
        mem_multiplier: float = 1.0,
    ) -> float:
        """99th-percentile latency (seconds) under the given allocation."""
        return self.queue(
            perf, config, cache_ways, load, n_cores, shared_way=shared_way,
            mem_multiplier=mem_multiplier,
        ).p99_latency()

    def utilization(
        self,
        perf: PerformanceModel,
        config: CoreConfig,
        cache_ways: float,
        load: float,
        n_cores: int,
        mem_multiplier: float = 1.0,
    ) -> float:
        """Per-core utilization under the given allocation (may exceed 1)."""
        return self.queue(
            perf, config, cache_ways, load, n_cores,
            mem_multiplier=mem_multiplier,
        ).utilization

    def meets_qos(
        self,
        perf: PerformanceModel,
        config: CoreConfig,
        cache_ways: float,
        load: float,
        n_cores: int,
    ) -> bool:
        """Whether p99 latency is within the QoS target."""
        return (
            self.tail_latency(perf, config, cache_ways, load, n_cores)
            <= self.qos_latency_s
        )


@dataclass(frozen=True)
class _ServiceSpec:
    name: str
    base_cpi: float
    fe_sens: float
    be_sens: float
    ls_sens: float
    mpki: Tuple[float, float, float]  # (peak, floor, half_ways)
    service_scv: float
    max_qps: float
    activity: float
    #: Fig. 1's lowest-power QoS-meeting config at 80 % load; the QoS
    #: target is anchored to this configuration's tail latency.
    qos_anchor: Tuple[int, int, int]


_SPECS: Tuple[_ServiceSpec, ...] = (
    _ServiceSpec("xapian", 0.65, 0.10, 0.02, 0.60, (8.0, 2.5, 3.0), 1.2, 22000.0, 0.95, (2, 2, 6)),
    _ServiceSpec("masstree", 0.55, 0.30, 0.03, 0.40, (12.0, 4.0, 4.0), 0.8, 17000.0, 0.90, (4, 2, 4)),
    _ServiceSpec("imgdnn", 0.70, 0.32, 0.03, 0.32, (5.0, 2.0, 2.0), 0.6, 8000.0, 1.10, (4, 2, 4)),
    _ServiceSpec("moses", 0.75, 0.55, 0.04, 0.15, (6.0, 2.0, 3.0), 1.5, 8000.0, 1.00, (6, 2, 4)),
    _ServiceSpec("silo", 0.50, 0.06, 0.02, 0.12, (7.0, 2.5, 3.0), 0.9, 24000.0, 0.95, (2, 2, 4)),
)

#: Names of the five TailBench-like services.
LC_SERVICE_NAMES: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)

_SERVICE_CACHE: Dict[Tuple[str, PerformanceModel], LCService] = {}


def _build_service(spec: _ServiceSpec, perf: PerformanceModel) -> LCService:
    peak, floor, half_ways = spec.mpki
    profile = AppProfile(
        name=spec.name,
        base_cpi=spec.base_cpi,
        fe_sens=spec.fe_sens,
        be_sens=spec.be_sens,
        ls_sens=spec.ls_sens,
        miss_curve=MissRateCurve(peak=peak, floor=floor, half_ways=half_ways),
        activity=spec.activity,
    )
    widest = CoreConfig.widest()
    bips_widest = perf.bips(profile, widest, cache_ways=4.0)
    # Calibrate per-query work so the knee utilization lands at max QPS
    # on 16 widest cores, as in the paper's saturation sweep (§VII-A).
    work = KNEE_UTILIZATION * CALIBRATION_CORES * bips_widest * 1e9 / spec.max_qps
    provisional = LCService(
        profile=profile,
        work_instructions=work,
        service_scv=spec.service_scv,
        max_qps=spec.max_qps,
        qos_latency_s=1.0,  # placeholder, replaced below
    )
    anchor = CoreConfig(*spec.qos_anchor)
    p99_anchor = provisional.tail_latency(
        perf, anchor, cache_ways=4.0, load=0.8, n_cores=CALIBRATION_CORES
    )
    return LCService(
        profile=profile,
        work_instructions=work,
        service_scv=spec.service_scv,
        max_qps=spec.max_qps,
        qos_latency_s=QOS_MARGIN * p99_anchor,
    )


def make_services(perf: PerformanceModel = None) -> Dict[str, LCService]:
    """Build (and calibrate) all five services against a performance model."""
    perf = perf if perf is not None else PerformanceModel()
    services = {}
    for spec in _SPECS:
        key = (spec.name, perf)
        if key not in _SERVICE_CACHE:
            # Pure memoization: _build_service is deterministic in its
            # key, so per-worker repopulation is byte-identical and
            # fleet outputs cannot diverge.
            _SERVICE_CACHE[key] = _build_service(spec, perf)  # repro: noqa[FLT502]
        services[spec.name] = _SERVICE_CACHE[key]
    return services


def lc_service(name: str, perf: PerformanceModel = None) -> LCService:
    """One calibrated service by name."""
    services = make_services(perf)
    if name not in services:
        raise KeyError(
            f"unknown latency-critical service {name!r}; "
            f"known: {', '.join(LC_SERVICE_NAMES)}"
        )
    return services[name]


def service_variants(
    name: str,
    n_variants: int,
    seed: int = 0,
    perf: PerformanceModel = None,
    jitter: float = 0.2,
) -> Tuple[LCService, ...]:
    """Jittered "historical" variants of a service for latency training.

    The latency matrix's known rows represent previously-seen
    interactive services.  Beyond the other four TailBench services,
    a realistic deployment history contains many services *similar* to
    each archetype (different search engines, key-value stores, ...).
    Variants jitter every sensitivity and cache parameter of the base
    spec by up to ``jitter`` (relative), then go through the same
    work/QoS calibration as first-class services.  A variant is a
    different application — the running service's own row is still
    never in its training set.
    """
    if n_variants < 0:
        raise ValueError("n_variants must be non-negative")
    if not 0 <= jitter < 1:
        raise ValueError("jitter must be in [0, 1)")
    base = next((s for s in _SPECS if s.name == name), None)
    if base is None:
        raise KeyError(f"unknown latency-critical service {name!r}")
    perf = perf if perf is not None else PerformanceModel()
    # rng_for(name, seed=seed) derives the same stream the ad-hoc
    # crc32 expression here used to: variants are unchanged.
    rng = rng_for(name, seed=seed)

    def wiggle(value: float, lo: float = 0.0) -> float:
        return max(lo, value * float(rng.uniform(1 - jitter, 1 + jitter)))

    variants = []
    for v in range(n_variants):
        peak, floor, half = base.mpki
        peak = wiggle(peak, lo=0.5)
        spec = _ServiceSpec(
            name=f"{name}-v{v}",
            base_cpi=wiggle(base.base_cpi, lo=0.1),
            fe_sens=wiggle(base.fe_sens),
            be_sens=wiggle(base.be_sens),
            ls_sens=wiggle(base.ls_sens),
            mpki=(peak, min(wiggle(floor, lo=0.1), peak), wiggle(half, lo=0.5)),
            service_scv=wiggle(base.service_scv, lo=0.1),
            max_qps=wiggle(base.max_qps, lo=100.0),
            activity=min(2.0, wiggle(base.activity, lo=0.2)),
            qos_anchor=base.qos_anchor,
        )
        variants.append(_build_service(spec, perf))
    return tuple(variants)

"""Workload mixes (paper §VII-A).

The paper co-schedules each of the five TailBench services with 10
multiprogrammed 16-application mixes drawn from the SPEC CPU2006
benchmarks *not* used for offline training, for a total of 50 mixes.
Each mix fills 16 cores by sampling a test benchmark per core (with
replacement, as a 12-benchmark pool must fill 16 slots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.rng import rng_for
from repro.workloads.batch import train_test_split
from repro.workloads.latency_critical import LC_SERVICE_NAMES

#: Mixes per latency-critical service in the paper's evaluation.
MIXES_PER_SERVICE = 10

#: Batch applications per mix (one per batch core at t=0).
APPS_PER_MIX = 16


@dataclass(frozen=True)
class Mix:
    """One evaluation colocation: an LC service plus 16 batch apps."""

    lc_name: str
    batch_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.batch_names:
            raise ValueError("a mix needs at least one batch application")

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"xapian/mix03"``."""
        return f"{self.lc_name}({len(self.batch_names)} batch)"


def paper_mixes(
    seed: int = 2020,
    n_train: int = 16,
    mixes_per_service: int = MIXES_PER_SERVICE,
    apps_per_mix: int = APPS_PER_MIX,
    lc_names: Sequence[str] = LC_SERVICE_NAMES,
) -> List[Mix]:
    """The paper's 50 mixes (5 LC services x 10 batch mixes).

    Deterministic given ``seed``; batch apps come only from the test
    half of :func:`repro.workloads.batch.train_test_split` so training
    and evaluation workloads never overlap.
    """
    _, test_apps = train_test_split(n_train=n_train, seed=seed)
    rng = rng_for("paper-mixes", seed=seed)
    mixes = []
    for lc_name in lc_names:
        for _ in range(mixes_per_service):
            picks = rng.choice(test_apps, size=apps_per_mix, replace=True)
            mixes.append(Mix(lc_name=lc_name, batch_names=tuple(picks)))
    return mixes

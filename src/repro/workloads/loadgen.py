"""Input-load traces for latency-critical services (paper §VIII-D).

A :class:`LoadTrace` maps simulation time to a fractional load (relative
to the service's knee QPS).  The paper's dynamic experiments use a
diurnal pattern (Fig. 8a), constant load with a power-budget step
(Fig. 8b), and a load step that forces core relocation (Fig. 8c).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple


@dataclass(frozen=True)
class LoadTrace:
    """A time-varying fractional load, ``load = fn(t_seconds)``."""

    fn: Callable[[float], float]
    description: str = ""

    def load_at(self, t: float) -> float:
        """Load fraction at time ``t`` (clamped to be non-negative)."""
        return max(0.0, float(self.fn(t)))

    def samples(self, times: Sequence[float]) -> Tuple[float, ...]:
        """Load at each time in ``times``."""
        return tuple(self.load_at(t) for t in times)

    @classmethod
    def constant(cls, load: float) -> "LoadTrace":
        """Fixed load forever."""
        if load < 0:
            raise ValueError(f"load must be non-negative, got {load}")
        return cls(fn=lambda t: load, description=f"constant {load:.0%}")

    @classmethod
    def diurnal(
        cls, low: float = 0.2, high: float = 0.8, period: float = 1.0
    ) -> "LoadTrace":
        """Sinusoidal day/night pattern between ``low`` and ``high``.

        The trace starts at ``low`` (t=0 is the trough), peaks at
        ``period/2`` and returns to ``low`` at ``period`` — the
        compressed diurnal pattern of Fig. 8a.
        """
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got {low}, {high}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        mid = (low + high) / 2.0
        amp = (high - low) / 2.0
        return cls(
            fn=lambda t: mid - amp * math.cos(2.0 * math.pi * t / period),
            description=f"diurnal {low:.0%}-{high:.0%} period {period}s",
        )

    @classmethod
    def flash_crowd(
        cls,
        base: float = 0.3,
        peak: float = 1.2,
        start: float = 0.5,
        duration: float = 0.4,
        decay: float = 0.2,
    ) -> "LoadTrace":
        """A flash-crowd spike: base load, a sudden surge, exponential decay.

        The surge may exceed the knee (peak > 1), the scenario that
        forces core relocation.  After ``start + duration`` the load
        decays back to ``base`` with time constant ``decay``.
        """
        if not 0 <= base <= peak:
            raise ValueError("need 0 <= base <= peak")
        if duration <= 0 or decay <= 0:
            raise ValueError("duration and decay must be positive")

        def fn(t: float) -> float:
            if t < start:
                return base
            if t < start + duration:
                return peak
            return base + (peak - base) * math.exp(
                -(t - start - duration) / decay
            )

        return cls(
            fn=fn,
            description=(
                f"flash crowd {base:.0%}->{peak:.0%} at {start}s "
                f"for {duration}s"
            ),
        )

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], dt: float
    ) -> "LoadTrace":
        """Piecewise-constant trace from a sampled load series.

        ``samples[i]`` applies on ``[i*dt, (i+1)*dt)``; the last sample
        holds forever.  Useful for replaying recorded production load.
        """
        if not samples:
            raise ValueError("samples must be non-empty")
        if dt <= 0:
            raise ValueError("dt must be positive")
        if any(s < 0 for s in samples):
            raise ValueError("samples must be non-negative")
        values = tuple(samples)

        def fn(t: float) -> float:
            index = min(int(t / dt), len(values) - 1) if t >= 0 else 0
            return values[index]

        return cls(
            fn=fn,
            description=f"replay of {len(values)} samples at {dt}s",
        )

    def scaled(self, factor: float) -> "LoadTrace":
        """A copy of this trace with every load multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return LoadTrace(
            fn=lambda t: self.fn(t) * factor,
            description=f"{self.description} x{factor:g}",
        )

    @classmethod
    def steps(cls, levels: Sequence[Tuple[float, float]]) -> "LoadTrace":
        """Piecewise-constant trace from ``(start_time, load)`` pairs.

        ``levels`` must be sorted by start time; the first pair's load
        also applies before its start time.
        """
        if not levels:
            raise ValueError("levels must be non-empty")
        starts = [s for s, _ in levels]
        if starts != sorted(starts):
            raise ValueError("levels must be sorted by start time")

        def fn(t: float) -> float:
            current = levels[0][1]
            for start, load in levels:
                if t >= start:
                    current = load
                else:
                    break
            return current

        text = ", ".join(f"{load:.0%}@{start}s" for start, load in levels)
        return cls(fn=fn, description=f"steps [{text}]")

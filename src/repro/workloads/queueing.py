"""Tail-latency models for latency-critical services.

Interactive cloud services are load-balanced across their allocated
cores, so each service behaves as a FIFO M/G/k queue: Poisson query
arrivals, ``k`` identical cores, and a general per-query service-time
distribution whose mean depends on the core/cache configuration.

Two models are provided:

* :class:`MGkQueue` — a fast analytical approximation (Erlang-C waiting
  probability + Allen–Cunneen correction + exponential waiting tail)
  used as the ground truth the scheduler's matrices are built from.
* :class:`DiscreteEventQueue` — an event-driven simulation used to
  validate the approximation (tests assert agreement) and to produce
  noisy "measured" latencies.

Both report the 99th-percentile sojourn time (queueing + service), the
QoS metric of the paper.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

#: Utilization beyond which the analytical model switches to the
#: overload regime (queues grow without bound; latency is dominated by
#: backlog accumulated over the measurement horizon).
_SATURATION_RHO = 0.995


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an arrival must wait in an M/M/k queue (Erlang C).

    ``offered_load`` is ``lambda * E[S]`` in Erlangs.  Computed in log
    space so large server counts stay stable.  Returns 1.0 at or beyond
    saturation.
    """
    if servers <= 0:
        raise ValueError(f"servers must be positive, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be non-negative, got {offered_load}")
    if offered_load == 0:
        return 0.0
    rho = offered_load / servers
    if rho >= 1.0:
        return 1.0
    # log of a^n / n! for n = 0..k
    log_terms = np.cumsum(
        np.concatenate(([0.0], np.log(offered_load) - np.log(np.arange(1, servers + 1))))
    )
    log_top = log_terms[-1] - math.log(1.0 - rho)
    log_max = max(log_top, float(np.max(log_terms[:-1]))) if servers > 1 else log_top
    denom = math.exp(log_top - log_max) + float(
        np.sum(np.exp(log_terms[:-1] - log_max))
    )
    return math.exp(log_top - log_max) / denom


@dataclass(frozen=True)
class MGkQueue:
    """Analytical M/G/k tail-latency model.

    ``service_scv`` is the squared coefficient of variation of the
    service-time distribution (1 for exponential; interactive services
    are typically in [0.5, 2]).
    """

    arrival_rate: float
    service_time_mean: float
    service_scv: float
    servers: int
    #: Horizon over which overload backlog accumulates (the paper
    #: measures tail latency over 100 ms timeslices).
    overload_horizon: float = 0.1
    #: Optional explicit distribution shape; None means lognormal with
    #: the given SCV.
    distribution: "Optional[ServiceDistribution]" = None

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if self.service_time_mean <= 0:
            raise ValueError("service_time_mean must be positive")
        if self.service_scv < 0:
            raise ValueError("service_scv must be non-negative")
        if self.servers <= 0:
            raise ValueError("servers must be positive")

    @property
    def utilization(self) -> float:
        """Offered load per server (rho)."""
        return self.arrival_rate * self.service_time_mean / self.servers

    def _service_quantile(self, q: float) -> float:
        """Quantile of the service-time distribution (lognormal default)."""
        if self.distribution is not None:
            return self.distribution.quantile(q, self.service_time_mean)
        if self.service_scv == 0:
            return self.service_time_mean
        sigma2 = math.log(1.0 + self.service_scv)
        mu = math.log(self.service_time_mean) - sigma2 / 2.0
        # Inverse normal CDF via Acklam-style rational approximation is
        # overkill; for the fixed q=0.99 we use the exact constant.
        z = {0.5: 0.0, 0.95: 1.6448536269514722, 0.99: 2.3263478740408408}[q]
        return math.exp(mu + z * math.sqrt(sigma2))

    def mean_wait(self) -> float:
        """Mean queueing delay (Allen–Cunneen approximation)."""
        rho = self.utilization
        if rho >= _SATURATION_RHO:
            return self._overload_wait()
        p_wait = erlang_c(self.servers, self.arrival_rate * self.service_time_mean)
        mmk_wait = (
            p_wait * self.service_time_mean / (self.servers * (1.0 - rho))
        )
        return mmk_wait * (1.0 + self.service_scv) / 2.0

    def _overload_wait(self) -> float:
        """Waiting time in the overload regime (rho >= saturation).

        Backlog grows linearly: over a horizon H the queue accumulates
        (rho - 1) * H / E[S] unserved queries per server, so the last
        arrivals wait about (rho - 1) * H plus the near-saturation wait.
        """
        rho = self.utilization
        knee_rho = _SATURATION_RHO * 0.99  # strictly inside the stable regime
        offered = knee_rho * self.servers
        p_wait = erlang_c(self.servers, offered)
        knee_wait = (
            p_wait
            * self.service_time_mean
            / (self.servers * (1.0 - knee_rho))
            * (1.0 + self.service_scv)
            / 2.0
        )
        return knee_wait + max(0.0, rho - 1.0) * self.overload_horizon

    def p99_latency(self) -> float:
        """99th-percentile sojourn time (waiting + service).

        The conditional waiting time in an M/G/k queue is approximately
        exponential with rate ``k (1 - rho) / E[S] * 2 / (1 + SCV)``;
        the 99th percentile of the sojourn combines that tail with the
        service-time quantile.
        """
        rho = self.utilization
        s99 = self._service_quantile(0.99)
        if rho >= _SATURATION_RHO:
            return s99 + self._overload_wait() * math.log(100.0)
        if self.arrival_rate == 0:
            return s99
        p_wait = erlang_c(self.servers, self.arrival_rate * self.service_time_mean)
        if p_wait <= 0.01:
            return s99
        theta = (
            self.servers
            * (1.0 - rho)
            / self.service_time_mean
            * 2.0
            / (1.0 + self.service_scv)
        )
        w99 = math.log(100.0 * p_wait) / theta
        return s99 + max(0.0, w99)

    def mean_latency(self) -> float:
        """Mean sojourn time."""
        return self.service_time_mean + self.mean_wait()


@dataclass(frozen=True)
class ServiceDistribution:
    """Shape of a service's per-query service-time distribution.

    Interactive services differ in more than their SCV: search and
    translation workloads are famously *bimodal* — most queries are
    short, a small class is many times longer and dominates the tail.
    Three kinds are supported:

    * ``"lognormal"`` — the default smooth heavy-ish tail, parameterised
      by ``scv``;
    * ``"bimodal"`` — a fraction ``long_fraction`` of queries takes
      ``long_ratio`` times the short time (ratios solved from the SCV
      when not given);
    * ``"deterministic"`` — fixed service time.

    The distribution is *scale-free*: ``mean`` is applied per call, so
    the same shape serves every core configuration.
    """

    kind: str = "lognormal"
    scv: float = 1.0
    long_fraction: float = 0.05
    long_ratio: float = 0.0  # 0 -> solve from scv

    def __post_init__(self) -> None:
        if self.kind not in ("lognormal", "bimodal", "deterministic"):
            raise ValueError(f"unknown distribution kind {self.kind!r}")
        if self.scv < 0:
            raise ValueError("scv must be non-negative")
        if not 0 < self.long_fraction < 1:
            raise ValueError("long_fraction must be in (0, 1)")
        if self.long_ratio < 0:
            raise ValueError("long_ratio must be non-negative")
        if self.kind == "bimodal":
            object.__setattr__(self, "long_ratio", self._solve_ratio())

    def _solve_ratio(self) -> float:
        """Long/short ratio matching the target SCV (bisection)."""
        if self.long_ratio > 0:
            return self.long_ratio
        p = self.long_fraction

        def scv_of(k: float) -> float:
            mean = (1 - p) + p * k
            second = (1 - p) + p * k * k
            return second / mean**2 - 1.0

        lo, hi = 1.0, 2.0
        while scv_of(hi) < self.scv and hi < 1e4:
            hi *= 2.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if scv_of(mid) < self.scv:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def _short_long(self, mean: float) -> "Tuple[float, float]":
        p = self.long_fraction
        k = self.long_ratio
        short = mean / ((1 - p) + p * k)
        return short, short * k

    def quantile(self, q: float, mean: float) -> float:
        """Quantile of the distribution scaled to ``mean``."""
        if not 0 < q < 1:
            raise ValueError("q must be in (0, 1)")
        if self.kind == "deterministic" or self.scv == 0:
            return mean
        if self.kind == "bimodal":
            short, long = self._short_long(mean)
            return long if q > 1 - self.long_fraction else short
        sigma2 = math.log(1.0 + self.scv)
        mu = math.log(mean) - sigma2 / 2.0
        z = {0.5: 0.0, 0.95: 1.6448536269514722,
             0.99: 2.3263478740408408}.get(q)
        if z is None:
            raise ValueError("only q in {0.5, 0.95, 0.99} supported")
        return math.exp(mu + z * math.sqrt(sigma2))

    def sample(
        self, n: int, mean: float, rng: np.random.Generator
    ) -> np.ndarray:
        """``n`` service times scaled to ``mean``."""
        if self.kind == "deterministic" or self.scv == 0:
            return np.full(n, mean)
        if self.kind == "bimodal":
            short, long = self._short_long(mean)
            is_long = rng.random(n) < self.long_fraction
            return np.where(is_long, long, short)
        sigma2 = math.log(1.0 + self.scv)
        mu = math.log(mean) - sigma2 / 2.0
        return rng.lognormal(mean=mu, sigma=math.sqrt(sigma2), size=n)


def mixture_p99(
    fractions: "Sequence[float]", p99s: "Sequence[float]"
) -> float:
    """p99 of a timeslice spent across several queue regimes.

    Used to model profiling schedules that cycle a latency-critical
    service through configurations within one slice (Flicker, §VIII-E):
    a fraction ``f_c`` of queries experiences regime ``c`` whose own
    99th percentile is ``p99s[c]``.  Each regime's sojourn tail is
    approximated as exponential calibrated through its p99
    (``P_c(T > t) = 0.01 ** (t / p99_c)``); the mixture's 99th
    percentile solves ``sum_c f_c P_c(T > t) = 0.01`` by bisection.
    """
    fractions = np.asarray(fractions, dtype=float)
    p99s = np.asarray(p99s, dtype=float)
    if fractions.shape != p99s.shape or fractions.size == 0:
        raise ValueError("fractions and p99s must be equal-length, non-empty")
    if np.any(fractions < 0) or not math.isclose(
        float(fractions.sum()), 1.0, rel_tol=1e-6
    ):
        raise ValueError("fractions must be non-negative and sum to 1")
    if np.any(p99s <= 0):
        raise ValueError("per-regime p99s must be positive")

    def excess(t: float) -> float:
        return float(np.sum(fractions * 0.01 ** (t / p99s))) - 0.01

    lo, hi = 0.0, float(p99s.max())
    if excess(hi) > 0:  # numerical guard; tail mass beyond the max p99
        hi *= 2.0
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if excess(mid) > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


class DiscreteEventQueue:
    """Event-driven M/G/k FIFO simulation with lognormal service times.

    Used to validate :class:`MGkQueue` and to generate noisy per-slice
    latency measurements.  Deterministic given the generator.
    """

    def __init__(
        self,
        arrival_rate: float,
        service_time_mean: float,
        service_scv: float,
        servers: int,
        distribution: "Optional[ServiceDistribution]" = None,
    ) -> None:
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if service_time_mean <= 0:
            raise ValueError("service_time_mean must be positive")
        if servers <= 0:
            raise ValueError("servers must be positive")
        self.arrival_rate = arrival_rate
        self.service_time_mean = service_time_mean
        self.service_scv = service_scv
        self.servers = servers
        self.distribution = distribution

    def _service_samples(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.distribution is not None:
            return self.distribution.sample(n, self.service_time_mean, rng)
        if self.service_scv == 0:
            return np.full(n, self.service_time_mean)
        sigma2 = math.log(1.0 + self.service_scv)
        mu = math.log(self.service_time_mean) - sigma2 / 2.0
        return rng.lognormal(mean=mu, sigma=math.sqrt(sigma2), size=n)

    def simulate(
        self, duration: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Run for ``duration`` seconds; return per-query sojourn times.

        Returns an empty array if no queries arrive.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if self.arrival_rate == 0:
            return np.array([])
        n_expected = self.arrival_rate * duration
        inter = rng.exponential(
            1.0 / self.arrival_rate, size=max(16, int(n_expected * 1.3) + 16)
        )
        arrivals = np.cumsum(inter)
        arrivals = arrivals[arrivals < duration]
        if arrivals.size == 0:
            return np.array([])
        services = self._service_samples(arrivals.size, rng)
        free_at = [0.0] * self.servers
        heapq.heapify(free_at)
        sojourns = np.empty(arrivals.size)
        for i in range(arrivals.size):
            earliest = heapq.heappop(free_at)
            start = max(arrivals[i], earliest)
            finish = start + services[i]
            heapq.heappush(free_at, finish)
            sojourns[i] = finish - arrivals[i]
        return sojourns

    def p99_latency(self, duration: float, rng: np.random.Generator) -> float:
        """Empirical 99th-percentile sojourn over one run."""
        sojourns = self.simulate(duration, rng)
        if sojourns.size == 0:
            return 0.0
        return float(np.percentile(sojourns, 99))

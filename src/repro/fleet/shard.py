"""Work-unit descriptors and deterministic result/telemetry merging.

A *work unit* is one independent cell of simulation work — a socket
arm of a brokered rack study, a (mix, policy, seed) cell of an
experiment grid, one section of the full evaluation.  Units carry a
stable ``unit_id`` and a picklable ``(fn, kwargs)`` pair, so the same
descriptor executes identically in-process (``--jobs 1``) and inside a
worker process (``--jobs N``).

Determinism contract (docs/scaling.md): a unit must derive every
random stream it needs from its *arguments* — via
:func:`repro.rng.rng_for` (see :func:`unit_seed`) or an explicitly
seeded constructor — and must not read or write process-global mutable
state (enforced by the ``FLT501`` lint rule).  Results are merged in
*unit* order, never completion order, so ``--jobs N`` output is
byte-identical to serial output.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.rng import rng_for

__all__ = [
    "FROM_CHECKPOINT",
    "UnitResult",
    "WorkUnit",
    "merge_results",
    "merge_unit_telemetry",
    "telemetry_records",
    "unit_seed",
    "unit_telemetry",
]

#: ``UnitResult.worker`` value for units restored from a checkpoint
#: rather than executed this run.
FROM_CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class WorkUnit:
    """One independent, picklable cell of simulation work.

    ``fn`` must be an importable module-level callable (worker
    processes unpickle it by reference) and ``kwargs`` its keyword
    arguments.  The return value is the unit's *result*; when the run
    is checkpointed it must be JSON-serializable.
    """

    unit_id: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.unit_id:
            raise ValueError("unit_id must be non-empty")

    def run(self) -> Any:
        """Execute the unit in the current process."""
        return self.fn(**dict(self.kwargs))


@dataclass(frozen=True)
class UnitResult:
    """One executed (or restored) unit's outcome.

    ``attempts`` counts submissions to a worker (0 means the value was
    restored from a checkpoint); ``worker`` names the executing slot —
    informational only, and deliberately excluded from every merged
    report so results stay byte-identical across ``--jobs`` settings.
    """

    unit_id: str
    index: int
    value: Any
    attempts: int = 1
    worker: str = "serial"


def unit_seed(unit_id: str, seed: int = 0) -> int:
    """Per-unit integer seed minted from the blessed stream derivation.

    Wraps :func:`repro.rng.rng_for` so every unit of a fleet gets an
    independent, process-stable stream keyed on its id: two units never
    share draws, and adding a unit never shifts another unit's stream.
    """
    return int(rng_for(unit_id, salt="fleet.unit", seed=seed).integers(2**31))


def merge_results(
    units: Sequence[WorkUnit],
    by_id: Mapping[str, UnitResult],
) -> Tuple[UnitResult, ...]:
    """Order results by the fleet's stable unit order (not completion).

    This is the merge half of the determinism contract: whatever order
    workers finished in, downstream consumers always see unit order.
    """
    missing = [u.unit_id for u in units if u.unit_id not in by_id]
    if missing:
        raise KeyError(f"results missing for unit(s): {', '.join(missing)}")
    return tuple(by_id[u.unit_id] for u in units)


# ----------------------------------------------------------------------
# Telemetry merge
# ----------------------------------------------------------------------

def telemetry_records(telemetry: Any) -> List[Dict]:
    """A telemetry session as parsed JSONL records (picklable/JSONable).

    Workers cannot ship a live :class:`~repro.telemetry.Telemetry`
    session across the process boundary (tracers hold open spans and
    monotonic-clock state), so they export it to the archival JSONL
    record form and return that with their unit value.
    """
    from repro.telemetry import read_jsonl, write_jsonl

    buffer = io.StringIO()
    write_jsonl(telemetry, buffer)
    buffer.seek(0)
    return read_jsonl(buffer)


def unit_telemetry(
    results: Sequence[UnitResult], key: str = "telemetry"
) -> List[Tuple[str, List[Dict]]]:
    """Extract per-unit telemetry records from unit result dicts.

    Units that collect telemetry return it under ``key`` inside their
    (dict) value; units without the key contribute nothing.
    """
    pairs: List[Tuple[str, List[Dict]]] = []
    for result in results:
        if isinstance(result.value, dict) and key in result.value:
            pairs.append((result.unit_id, list(result.value[key])))
    return pairs


def merge_unit_telemetry(
    results: Sequence[UnitResult],
    path_or_file: Optional[Any] = None,
    key: str = "telemetry",
) -> List[Dict]:
    """Merge every unit's telemetry into one canonical session log.

    Delegates to :func:`repro.telemetry.exporters.merge_jsonl`, which
    sorts decision records by ``(quantum, unit)`` and sums counters so
    the merged log round-trips like a single-session one.
    """
    from repro.telemetry.exporters import merge_jsonl

    return merge_jsonl(unit_telemetry(results, key=key), path_or_file)

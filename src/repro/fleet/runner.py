"""The :class:`FleetRun` facade: shard, execute, checkpoint, merge.

One ``FleetRun`` drives one fleet of independent work units through a
:class:`~repro.fleet.pool.FleetPool`, checkpointing completed units as
results arrive and merging everything back in stable unit order.  This
is the object the experiment grids (``cluster_study``, ``scalability``,
``full_eval``) and the ``repro fleet`` CLI build.

Telemetry: when a session is attached the runner publishes the
``fleet.*`` counters (units total/executed/resumed, retries, serial
fallbacks) that the ``fleet.pool`` bench case and CI's counter gate
read.

Fault injection: ``FleetParams.inject_abort_after`` kills the run —
*after* the checkpoint is flushed — once that many units complete.
It is the fleet's deterministic crash hook in the :mod:`repro.faults`
tradition: the checkpoint-atomicity tests inject a mid-grid abort,
``--resume``, and assert the final report is byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.pool import FleetPool, PoolParams
from repro.fleet.shard import (
    FROM_CHECKPOINT,
    UnitResult,
    WorkUnit,
    merge_results,
)
from repro.logs import get_logger
from repro.telemetry.live import LiveAggregator

log = get_logger("fleet.runner")

__all__ = ["FleetAborted", "FleetOutcome", "FleetParams", "FleetRun"]


class FleetAborted(RuntimeError):
    """Raised by the ``inject_abort_after`` fault hook."""

    def __init__(self, name: str, completed: int) -> None:
        super().__init__(
            f"fleet {name!r}: injected abort after {completed} "
            "completed unit(s)"
        )
        self.completed = completed


@dataclass(frozen=True)
class FleetParams:
    """Execution/checkpoint knobs of one fleet run."""

    #: Worker processes (1 = in-process serial, the reference output).
    jobs: int = 1
    #: Checkpoint file; ``None`` disables snapshots.
    checkpoint: Optional[Union[str, Path]] = None
    #: Skip units already completed in the checkpoint.
    resume: bool = False
    #: Completed units per snapshot flush (1 = every unit).
    checkpoint_every: int = 1
    #: Worker-death resubmissions per unit.
    max_retries: int = 2
    #: Degrade to serial when worker processes cannot be created.
    serial_fallback: bool = True
    #: multiprocessing start method override (tests; default = fork).
    start_method: Optional[str] = None
    #: Fault hook: abort (after checkpointing) once N units complete.
    inject_abort_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.resume and self.checkpoint is None:
            raise ValueError("resume requires a checkpoint path")
        if (
            self.inject_abort_after is not None
            and self.inject_abort_after < 1
        ):
            raise ValueError("inject_abort_after must be >= 1")


@dataclass(frozen=True)
class FleetOutcome:
    """Everything one fleet run produced, in stable unit order."""

    name: str
    results: Tuple[UnitResult, ...]
    jobs: int
    resumed_units: int
    executed_units: int
    retries: int
    serial_fallbacks: int

    def values(self) -> List[Any]:
        """Unit values in unit order (the merge input)."""
        return [result.value for result in self.results]

    def value_of(self, unit_id: str) -> Any:
        for result in self.results:
            if result.unit_id == unit_id:
                return result.value
        raise KeyError(f"no unit {unit_id!r} in fleet {self.name!r}")

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"fleet {self.name}: {len(self.results)} unit(s) "
            f"({self.executed_units} executed, {self.resumed_units} "
            f"resumed) on {self.jobs} job(s), {self.retries} "
            f"retry(ies), {self.serial_fallbacks} serial fallback(s)"
        )

    def unit_attempts(self) -> Dict[str, int]:
        """Per-unit attempt counts for units that needed more than one.

        Empty on a healthy run (every unit runs once; checkpoint-
        resumed units report 0), which is what keeps reports that
        embed it byte-identical across ``--jobs`` values.
        """
        return {
            result.unit_id: result.attempts
            for result in self.results
            if result.attempts > 1
        }


class FleetRun:
    """Deterministic parallel execution of one named unit fleet."""

    def __init__(
        self,
        name: str,
        units: Sequence[WorkUnit],
        params: FleetParams = FleetParams(),
        seed: int = 0,
        context: Optional[Mapping[str, Any]] = None,
        telemetry: Any = None,
        live: Optional[LiveAggregator] = None,
        pool: Optional[FleetPool] = None,
    ) -> None:
        if not name:
            raise ValueError("fleet name must be non-empty")
        self.name = name
        self.units: Tuple[WorkUnit, ...] = tuple(units)
        if not self.units:
            raise ValueError("a fleet needs at least one work unit")
        ids = [u.unit_id for u in self.units]
        if len(set(ids)) != len(ids):
            raise ValueError("unit ids must be unique within one fleet")
        self.params = params
        self.seed = seed
        #: Extra run configuration folded into the checkpoint
        #: fingerprint (scale knobs like n_slices).
        self.context: Dict[str, Any] = dict(context or {})
        self.telemetry = telemetry
        #: Optional :class:`LiveAggregator`: streams worker events and
        #: folds each unit's telemetry shard in as it completes, so the
        #: merged log exists incrementally instead of only after
        #: ``merge_unit_telemetry`` at end of run.
        self.live = live
        #: Optional shared :class:`FleetPool` (typically keep-alive):
        #: the run executes on the caller's pool instead of building a
        #: one-shot pool, amortising worker-spawn cost across runs.
        #: The pool's own ``PoolParams`` govern execution; this run's
        #: ``jobs``/``max_retries``/``start_method`` knobs are ignored.
        #: The caller keeps ownership — the run never closes it.
        self.pool = pool
        self._store: Optional[CheckpointStore] = None
        if params.checkpoint is not None:
            self._store = CheckpointStore(
                params.checkpoint, fingerprint=self.fingerprint()
            )

    def fingerprint(self) -> Dict[str, Any]:
        """What must match for a checkpoint to be resumable."""
        return {
            "fleet": self.name,
            "seed": self.seed,
            "context": self.context,
            "units": [u.unit_id for u in self.units],
        }

    # ------------------------------------------------------------------

    def execute(self) -> FleetOutcome:
        """Run (or resume) the fleet and merge results in unit order."""
        completed: Dict[str, Any] = {}
        if self._store is not None and self.params.resume:
            completed = self._store.load()
        resumed = len(completed)
        todo = [u for u in self.units if u.unit_id not in completed]
        if self.live is not None:
            # Resumed units never re-execute, so their telemetry shards
            # enter the incremental merge straight from the checkpoint.
            for unit in self.units:
                value = completed.get(unit.unit_id)
                if isinstance(value, dict) and "telemetry" in value:
                    self.live.ingest(unit.unit_id, value["telemetry"])
                if unit.unit_id in completed:
                    self.live.units.setdefault(
                        unit.unit_id,
                        {"state": "done", "events": 0,
                         "worker": "checkpoint"},
                    )
        log.info(
            "fleet %s: %d unit(s), %d resumed, %d to run on %d job(s)",
            self.name, len(self.units), resumed, len(todo),
            self.params.jobs,
        )
        if self.pool is not None:
            pool = self.pool
            jobs = pool.params.jobs
        else:
            pool = FleetPool(PoolParams(
                jobs=self.params.jobs,
                max_retries=self.params.max_retries,
                serial_fallback=self.params.serial_fallback,
                start_method=self.params.start_method,
            ))
            jobs = self.params.jobs
        # A shared pool's tallies accumulate across runs; report this
        # run's contribution only, so outcomes stay byte-identical
        # whether the pool is private or shared.
        base_retries = pool.retries
        base_fallbacks = pool.serial_fallbacks
        executed: Dict[str, UnitResult] = {}
        progress = {"since_save": 0, "done_this_run": 0}

        def run_stats() -> Dict[str, Any]:
            return {
                "jobs": jobs,
                "executed": progress["done_this_run"],
                # Units this run actually executed (vs restored from
                # the checkpoint); `repro fleet status` uses the set to
                # label each completed unit's origin.
                "executed_ids": sorted(executed),
                "resumed": resumed,
                "retries": pool.retries - base_retries,
                "serial_fallbacks": (
                    pool.serial_fallbacks - base_fallbacks
                ),
            }

        def on_result(result: UnitResult) -> None:
            completed[result.unit_id] = result.value
            executed[result.unit_id] = result
            if (
                self.live is not None
                and isinstance(result.value, dict)
                and "telemetry" in result.value
            ):
                self.live.ingest(
                    result.unit_id, result.value["telemetry"]
                )
            progress["since_save"] += 1
            progress["done_this_run"] += 1
            flush_due = (
                progress["since_save"] >= self.params.checkpoint_every
            )
            abort_due = (
                self.params.inject_abort_after is not None
                and progress["done_this_run"]
                >= self.params.inject_abort_after
            )
            if self._store is not None and (flush_due or abort_due):
                self._store.save(completed, stats=run_stats())
                progress["since_save"] = 0
            if abort_due:
                raise FleetAborted(self.name, progress["done_this_run"])

        on_event = (
            self.live.ingest_event if self.live is not None else None
        )
        if todo:
            pool.map(todo, on_result, on_event)
        # Also refresh the stats when units were restored with nothing
        # left to run: `repro fleet status` labels each unit's origin
        # from the *latest* run's `executed_ids`, which would otherwise
        # still describe the run that executed them.
        if self._store is not None and (progress["since_save"] or resumed):
            self._store.save(completed, stats=run_stats())

        by_id: Dict[str, UnitResult] = {}
        for index, unit in enumerate(self.units):
            prior = executed.get(unit.unit_id)
            if prior is not None:
                by_id[unit.unit_id] = UnitResult(
                    unit_id=unit.unit_id, index=index, value=prior.value,
                    attempts=prior.attempts, worker=prior.worker,
                )
            else:
                by_id[unit.unit_id] = UnitResult(
                    unit_id=unit.unit_id, index=index,
                    value=completed[unit.unit_id],
                    attempts=0, worker=FROM_CHECKPOINT,
                )
        outcome = FleetOutcome(
            name=self.name,
            results=merge_results(self.units, by_id),
            jobs=jobs,
            resumed_units=resumed,
            executed_units=len(executed),
            retries=pool.retries - base_retries,
            serial_fallbacks=pool.serial_fallbacks - base_fallbacks,
        )
        self._publish(outcome)
        log.info("%s", outcome.summary())
        return outcome

    # ------------------------------------------------------------------

    def _publish(self, outcome: FleetOutcome) -> None:
        """Fold the run's tallies into an attached telemetry session."""
        if self.telemetry is None:
            return
        metrics = self.telemetry.metrics
        metrics.counter("fleet.units_total").inc(len(outcome.results))
        metrics.counter("fleet.units_executed").inc(
            outcome.executed_units
        )
        metrics.counter("fleet.units_resumed").inc(outcome.resumed_units)
        metrics.counter("fleet.retries").inc(outcome.retries)
        metrics.counter("fleet.serial_fallbacks").inc(
            outcome.serial_fallbacks
        )
        metrics.gauge("fleet.jobs").set(outcome.jobs)
        if self.live is not None:
            metrics.counter("live.dropped_events").inc(
                self.live.dropped_events
            )

"""Atomic checkpoint/resume snapshots of completed fleet units.

The checkpoint file is a single JSON document::

    {
      "schema": 1,
      "fingerprint": {"fleet": ..., "seed": ..., "context": {...},
                       "units": [...]},
      "completed": {"<unit id>": <JSON value>, ...}
    }

Writes are atomic (temp file + fsync + ``os.replace``), so a run
killed mid-write leaves either the previous snapshot or the new one —
never a torn file.  The fingerprint pins the run configuration: a
``--resume`` against a checkpoint written by a different fleet, seed,
scale, or unit set refuses loudly instead of silently mixing results.

Float values round-trip exactly through JSON (``repr`` shortest-round-
trip), so a resumed run's merged report is byte-identical to an
uninterrupted one — the property the checkpoint tests assert.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.logs import get_logger

log = get_logger("fleet.checkpoint")

__all__ = ["CheckpointError", "CheckpointStore", "inspect_checkpoint"]

#: Bumped whenever the file layout changes incompatibly.
SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """Unusable checkpoint: corrupt, mismatched, or unserializable."""


def _read_payload(path: Path) -> Dict[str, Any]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        # Truncated, zero-byte, or otherwise non-JSON content.
        raise CheckpointError(
            f"corrupt checkpoint {path}: {exc}"
        ) from exc
    except OSError as exc:
        # Directory, permission denied, vanished mid-read: all "this
        # file is not a readable checkpoint", not a crash.
        raise CheckpointError(
            f"unreadable checkpoint {path}: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise CheckpointError(
            f"corrupt checkpoint {path}: expected a JSON object"
        )
    return data


def inspect_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Raw payload of a checkpoint file (the ``fleet status`` CLI)."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no such checkpoint: {path}")
    return _read_payload(path)


class CheckpointStore:
    """Owns one checkpoint file and its run fingerprint."""

    def __init__(
        self, path: Union[str, Path], fingerprint: Mapping[str, Any]
    ) -> None:
        self.path = Path(path)
        # Round-trip through JSON so load()'s comparison sees the same
        # normalised types (tuples become lists, ints stay ints).
        try:
            self.fingerprint: Dict[str, Any] = json.loads(
                json.dumps(dict(fingerprint), sort_keys=True)
            )
        except TypeError as exc:
            raise CheckpointError(
                f"fingerprint must be JSON-serializable: {exc}"
            ) from exc

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> Dict[str, Any]:
        """Completed units of a prior run; ``{}`` when none exists."""
        if not self.path.exists():
            return {}
        data = _read_payload(self.path)
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has schema {schema!r}; this "
                f"toolkit reads schema {SCHEMA_VERSION}"
            )
        if data.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} was written by a different run "
                "configuration (fleet/seed/scale/unit set changed); "
                "delete it or drop --resume to start fresh"
            )
        completed = data.get("completed", {})
        if not isinstance(completed, dict):
            raise CheckpointError(
                f"corrupt checkpoint {self.path}: 'completed' must be "
                "an object"
            )
        log.info(
            "loaded checkpoint %s (%d completed unit(s))",
            self.path, len(completed),
        )
        return completed

    def save(
        self,
        completed: Mapping[str, Any],
        stats: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Atomically replace the snapshot with ``completed``.

        ``stats`` (optional) adds execution health — retries, serial
        fallbacks, jobs — for ``repro fleet status``.  Purely additive,
        ignored by :meth:`load`, so the schema version stays put.
        """
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "completed": dict(completed),
        }
        if stats is not None:
            payload["stats"] = dict(stats)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except TypeError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(
                "checkpointed unit values must be JSON-serializable: "
                f"{exc}"
            ) from exc
        log.debug(
            "checkpointed %d unit(s) to %s", len(completed), self.path
        )

"""Deterministic parallel execution of independent simulation work.

``repro.fleet`` shards embarrassingly parallel simulation work —
scheme arms of the brokered rack study, (n_cores, arm) cells of the
scalability grid, sections of the full evaluation — across worker
processes while keeping output *byte-identical* to a serial run.

The determinism contract (docs/scaling.md) has three legs:

1. **Self-contained units.**  A :class:`WorkUnit` is a picklable
   ``(fn, kwargs)`` pair; every random stream it needs derives from its
   arguments via :func:`repro.rng.rng_for` (see :func:`unit_seed`), and
   units never touch process-global mutable state — enforced by the
   ``FLT501`` lint rule.
2. **Stable-order merge.**  Results and telemetry are merged in unit
   order, never completion order (:func:`merge_results`,
   :func:`merge_unit_telemetry`).
3. **Exact value transport.**  Unit values and checkpoints travel as
   JSON, whose float ``repr`` round-trips exactly — so ``--jobs N``,
   ``--jobs 1``, and a killed-then-``--resume``\\ d run all render the
   same bytes.

Entry point: :class:`FleetRun` (or the ``repro fleet`` CLI).
"""

from repro.fleet.checkpoint import (
    CheckpointError,
    CheckpointStore,
    inspect_checkpoint,
)
from repro.fleet.pool import (
    FleetError,
    FleetPool,
    PoolParams,
    UnitFailed,
    WorkerDied,
)
from repro.fleet.runner import (
    FleetAborted,
    FleetOutcome,
    FleetParams,
    FleetRun,
)
from repro.fleet.shard import (
    FROM_CHECKPOINT,
    UnitResult,
    WorkUnit,
    merge_results,
    merge_unit_telemetry,
    telemetry_records,
    unit_seed,
    unit_telemetry,
)

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "FROM_CHECKPOINT",
    "FleetAborted",
    "FleetError",
    "FleetOutcome",
    "FleetParams",
    "FleetPool",
    "FleetRun",
    "PoolParams",
    "UnitFailed",
    "UnitResult",
    "WorkUnit",
    "WorkerDied",
    "inspect_checkpoint",
    "merge_results",
    "merge_unit_telemetry",
    "telemetry_records",
    "unit_seed",
    "unit_telemetry",
]

"""Deterministic process-pool execution of independent work units.

The pool shards :class:`~repro.fleet.shard.WorkUnit` descriptors
across worker processes.  Determinism does not come from controlling
*scheduling* (workers finish in any order) but from the unit contract:
each unit is self-contained and explicitly seeded, and the caller
merges results in stable unit order — so ``jobs=N`` is byte-identical
to ``jobs=1``.

Robustness follows the :mod:`repro.faults` philosophy — contain, then
degrade, never silently corrupt:

* a unit that *raises* is a deterministic failure: it would fail
  identically on retry, so it aborts the run (:class:`UnitFailed`);
* a worker that *dies* (OOM kill, segfault, ``os._exit``) is an
  environment fault: its in-flight unit is resubmitted to a fresh
  worker, up to ``max_retries`` times (:class:`WorkerDied` after);
* when worker processes cannot be created at all (sandboxes, RLIMIT),
  the pool degrades to in-process serial execution — slower, but the
  results are identical by construction.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.fleet.shard import UnitResult, WorkUnit
from repro.logs import get_logger
from repro.telemetry.live import CallbackSink, LiveEmitter, install_emitter

log = get_logger("fleet.pool")

__all__ = [
    "FleetError",
    "FleetPool",
    "PoolParams",
    "UnitFailed",
    "WorkerDied",
]

#: How long shutdown waits for workers to drain before terminating.
_SHUTDOWN_GRACE_S = 2.0


def _discard_event(event: Dict[str, Any]) -> None:
    """Sink for stale live events drained between keep-alive maps."""


class FleetError(RuntimeError):
    """Base class for fleet execution failures."""


class UnitFailed(FleetError):
    """A work unit raised; deterministic failures are not retried."""

    def __init__(self, unit_id: str, error: str) -> None:
        super().__init__(f"unit {unit_id!r} failed: {error}")
        self.unit_id = unit_id
        self.error = error


class WorkerDied(FleetError):
    """A unit's worker died more times than ``max_retries`` allows."""

    def __init__(self, unit_id: str, attempts: int) -> None:
        super().__init__(
            f"unit {unit_id!r} lost its worker {attempts} time(s); "
            "giving up (raise max_retries or run --jobs 1 to debug)"
        )
        self.unit_id = unit_id
        self.attempts = attempts


@dataclass(frozen=True)
class PoolParams:
    """Execution knobs of one :class:`FleetPool`."""

    #: Worker processes; 1 executes in-process with no subprocesses.
    jobs: int = 1
    #: Resubmissions allowed per unit after its worker dies.
    max_retries: int = 2
    #: Degrade to serial when worker processes cannot be created.
    serial_fallback: bool = True
    #: multiprocessing start method; default prefers ``fork`` (cheap,
    #: and unit purity — FLT501 — makes forking safe) over ``spawn``.
    start_method: Optional[str] = None
    #: Result-queue poll interval; bounds worker-death detection lag.
    poll_interval_s: float = 0.05
    #: Bound on the live-event queue.  Backpressure past this *drops*
    #: events (with a counter) rather than ever blocking a worker's
    #: decision loop — events are observability, not results.
    event_queue_cap: int = 1024
    #: Keep worker processes alive across ``map`` calls.  A keep-alive
    #: pool spawns its workers on first use and reuses them until
    #: :meth:`FleetPool.close`, amortising process-spawn cost for
    #: callers that run many small fleets (the server's what-if
    #: evaluations).  The pool is still plain instance state — nothing
    #: global — so the FLT501 no-global-state guarantee holds.
    keep_alive: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.event_queue_cap < 1:
            raise ValueError("event_queue_cap must be >= 1")

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _worker_main(task_q: Any, result_q: Any,
                 event_q: Any = None) -> None:
    """Worker loop: execute units until the ``None`` sentinel arrives.

    Results travel back as ``(index, ok, value, error)``.  A unit
    exception is *reported*, not raised, so one bad unit cannot take
    the worker down with it — worker death is reserved for real
    crashes, which the parent retries.

    When streaming is on, a per-unit :class:`LiveEmitter` is installed
    around ``unit.run()`` so instrumentation anywhere down the call
    stack (the harness's per-quantum hook) can push events through the
    bounded ``event_q``.  ``unit_finished`` travels *before* the result
    so its drop tally is normally drained in time; result-queue puts
    below are control plane, not live events — they must never drop,
    hence the TEL403 suppressions.
    """
    while True:
        item = task_q.get()
        if item is None:
            return
        index, unit = item
        emitter = None
        if event_q is not None:
            emitter = LiveEmitter(
                event_q, unit.unit_id,
                worker=mp.current_process().name,
            )
        prior = install_emitter(emitter)
        if emitter is not None:
            emitter.emit("unit_started")
        ok = False
        value = None
        error = None
        try:
            value = unit.run()
            ok = True
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            error = f"{type(exc).__name__}: {exc}"
        finally:
            install_emitter(prior)
        if emitter is not None:
            emitter.emit("unit_finished", ok=ok, dropped=emitter.dropped)
        if ok:
            result_q.put((index, True, value, None))  # repro: noqa[TEL403]
        else:
            result_q.put((index, False, None, error))  # repro: noqa[TEL403]


class _WorkerSlot:
    """One worker process plus its private task queue."""

    def __init__(self, ctx: Any, slot: int, result_q: Any,
                 event_q: Any = None) -> None:
        self.slot = slot
        self.task_q = ctx.Queue()
        self.inflight: Optional[int] = None
        self.process = ctx.Process(
            target=_worker_main,
            args=(self.task_q, result_q, event_q),
            name=f"fleet-worker-{slot}",
            daemon=True,
        )
        self.process.start()

    @property
    def name(self) -> str:
        return f"worker-{self.slot}"

    def submit(self, index: int, unit: WorkUnit) -> None:
        self.inflight = index
        # Control plane: task delivery must never drop.
        self.task_q.put((index, unit))  # repro: noqa[TEL403]

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        try:
            # Control plane: the shutdown sentinel must never drop.
            self.task_q.put(None)  # repro: noqa[TEL403]
        except (OSError, ValueError) as exc:
            # Benign on the shutdown path, but never silent (ROB601):
            # the queue was already torn down, so the sentinel is moot.
            log.debug(
                "%s: shutdown sentinel skipped, task queue already "
                "closed: %s", self.name, exc,
            )

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()

    def close(self) -> None:
        # cancel_join_thread: never let a stuck feeder thread block
        # parent exit (the queue may hold undelivered tasks).
        self.task_q.cancel_join_thread()
        self.task_q.close()


class FleetPool:
    """Executes work units across processes; results in unit order.

    One pool instance is single-use state-light: ``map`` may be called
    repeatedly, and the ``retries`` / ``serial_fallbacks`` tallies
    accumulate across calls (the runner reads them into telemetry).
    """

    def __init__(self, params: PoolParams = PoolParams()) -> None:
        self.params = params
        #: Units resubmitted after a worker death, total.
        self.retries = 0
        #: Times the pool degraded to serial execution.
        self.serial_fallbacks = 0
        # Keep-alive state: workers persist across map() calls until
        # close().  Always empty on one-shot pools.
        self._ctx: Any = None
        self._workers: List[_WorkerSlot] = []
        self._result_q: Any = None
        self._event_q: Any = None
        self._closed = False

    def __enter__(self) -> "FleetPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut down persistent workers (idempotent; one-shot no-op)."""
        if self._workers:
            workers = self._workers
            self._workers = []
            self._shutdown(workers, self._result_q, self._event_q, None)
            self._ctx = None
            self._result_q = None
            self._event_q = None
        self._closed = True

    def _spawn_persistent(self) -> None:
        """Bring up the long-lived worker set (first keep-alive map)."""
        ctx = mp.get_context(self.params.resolved_start_method())
        result_q = ctx.Queue()
        # Keep-alive workers always get an event queue: later map()
        # calls may or may not stream, and workers are only wired once.
        event_q = ctx.Queue(self.params.event_queue_cap)
        workers: List[_WorkerSlot] = []
        try:
            for slot in range(self.params.jobs):
                workers.append(_WorkerSlot(ctx, slot, result_q, event_q))
        except BaseException:
            for worker in workers:
                worker.kill()
            raise
        self._ctx = ctx
        self._result_q = result_q
        self._event_q = event_q
        self._workers = workers
        log.info(
            "keep-alive pool: spawned %d persistent worker(s)",
            len(workers),
        )

    def _map_persistent(
        self,
        units: List[WorkUnit],
        on_result: Optional[Callable[[UnitResult], None]],
        on_event: Optional[Callable[[Dict[str, Any]], None]],
    ) -> List[UnitResult]:
        if not self._workers:
            try:
                self._spawn_persistent()
            except (OSError, PermissionError, ValueError) as exc:
                if not self.params.serial_fallback:
                    raise
                self.serial_fallbacks += 1
                log.warning(
                    "worker pool unavailable (%s: %s); degrading to "
                    "serial execution", type(exc).__name__, exc,
                )
                if on_event is not None:
                    on_event({"kind": "serial_fallback"})
                return self._run_serial(units, on_result, on_event)
        # Events left over from a map() that did not stream belong to
        # finished units; discard them rather than leak them into this
        # call's stream.
        self._drain_events(self._event_q, _discard_event)
        try:
            return self._schedule(
                units, self._workers, self._result_q, self._ctx,
                on_result, self._event_q, on_event,
            )
        finally:
            self._drain_events(self._event_q, on_event)

    # ------------------------------------------------------------------

    def map(
        self,
        units: Sequence[WorkUnit],
        on_result: Optional[Callable[[UnitResult], None]] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> List[UnitResult]:
        """Execute every unit; returns results in submission order.

        ``on_result`` fires in the *parent* process as each result
        arrives (completion order) — the checkpoint hook.  An exception
        it raises aborts the run after worker shutdown.

        ``on_event`` (optional) turns on live streaming: workers push
        event dicts through a bounded queue and the callback fires in
        the parent, in arrival order, as the scheduler drains it.
        Events are lossy by design (see ``PoolParams.event_queue_cap``)
        and carry no results — dropping all of them changes no output.
        """
        units = list(units)
        ids = [u.unit_id for u in units]
        if len(set(ids)) != len(ids):
            raise ValueError("unit ids must be unique within one fleet")
        if not units:
            return []
        if self._closed:
            raise ValueError("map() called on a closed pool")
        if self.params.keep_alive and self.params.jobs > 1:
            return self._map_persistent(units, on_result, on_event)
        jobs = min(self.params.jobs, len(units))
        if jobs <= 1:
            return self._run_serial(units, on_result, on_event)
        try:
            ctx = mp.get_context(self.params.resolved_start_method())
            result_q = ctx.Queue()
            event_q = (
                ctx.Queue(self.params.event_queue_cap)
                if on_event is not None else None
            )
            workers: List[_WorkerSlot] = []
            try:
                for slot in range(jobs):
                    workers.append(
                        _WorkerSlot(ctx, slot, result_q, event_q)
                    )
            except BaseException:
                for worker in workers:
                    worker.kill()
                raise
        except (OSError, PermissionError, ValueError) as exc:
            if not self.params.serial_fallback:
                raise
            self.serial_fallbacks += 1
            log.warning(
                "worker pool unavailable (%s: %s); degrading to serial "
                "execution", type(exc).__name__, exc,
            )
            if on_event is not None:
                on_event({"kind": "serial_fallback"})
            return self._run_serial(units, on_result, on_event)
        try:
            return self._schedule(
                units, workers, result_q, ctx, on_result,
                event_q, on_event,
            )
        finally:
            self._shutdown(workers, result_q, event_q, on_event)

    # ------------------------------------------------------------------

    def _run_serial(
        self,
        units: Sequence[WorkUnit],
        on_result: Optional[Callable[[UnitResult], None]],
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> List[UnitResult]:
        results: List[UnitResult] = []
        for index, unit in enumerate(units):
            emitter = None
            if on_event is not None:
                # No process boundary: events go straight to the
                # callback through the queue-shaped shim, exercising
                # the exact emission path workers use.
                emitter = LiveEmitter(
                    CallbackSink(on_event), unit.unit_id, worker="serial"
                )
            prior = install_emitter(emitter)
            if emitter is not None:
                emitter.emit("unit_started")
            ok = False
            try:
                value = unit.run()
                ok = True
            except Exception as exc:
                raise UnitFailed(
                    unit.unit_id, f"{type(exc).__name__}: {exc}"
                ) from exc
            finally:
                install_emitter(prior)
                if emitter is not None:
                    emitter.emit(
                        "unit_finished", ok=ok, dropped=emitter.dropped
                    )
            result = UnitResult(
                unit_id=unit.unit_id, index=index, value=value,
                attempts=1, worker="serial",
            )
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results

    @staticmethod
    def _drain_events(
        event_q: Any,
        on_event: Optional[Callable[[Dict[str, Any]], None]],
    ) -> None:
        """Forward every queued live event to the parent-side callback."""
        if event_q is None or on_event is None:
            return
        while True:
            try:
                event = event_q.get_nowait()
            except queue_mod.Empty:
                return
            except (OSError, ValueError):  # queue torn down mid-drain
                return
            on_event(event)

    def _schedule(
        self,
        units: List[WorkUnit],
        workers: List[_WorkerSlot],
        result_q: Any,
        ctx: Any,
        on_result: Optional[Callable[[UnitResult], None]],
        event_q: Any = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> List[UnitResult]:
        pending = deque(range(len(units)))
        attempts = [0] * len(units)
        done: Dict[int, UnitResult] = {}
        while len(done) < len(units):
            self._drain_events(event_q, on_event)
            for worker in workers:
                if worker.inflight is None and pending:
                    index = pending.popleft()
                    attempts[index] += 1
                    worker.submit(index, units[index])
            try:
                index, ok, value, error = result_q.get(
                    timeout=self.params.poll_interval_s
                )
            except queue_mod.Empty:
                self._reap(
                    units, workers, pending, attempts, done, ctx,
                    result_q, event_q, on_event,
                )
                continue
            owner = next(
                (w for w in workers if w.inflight == index), None
            )
            if owner is not None:
                owner.inflight = None
            if index in done:
                # A crashed-after-report worker's unit was resubmitted
                # and both copies answered; units are deterministic, so
                # the duplicate value is identical — drop it.
                continue
            if not ok:
                raise UnitFailed(units[index].unit_id, str(error))
            result = UnitResult(
                unit_id=units[index].unit_id,
                index=index,
                value=value,
                attempts=attempts[index],
                worker=owner.name if owner is not None else "worker-?",
            )
            done[index] = result
            if on_result is not None:
                on_result(result)
        return [done[i] for i in range(len(units))]

    def _reap(
        self,
        units: List[WorkUnit],
        workers: List[_WorkerSlot],
        pending: "deque[int]",
        attempts: List[int],
        done: Dict[int, UnitResult],
        ctx: Any,
        result_q: Any,
        event_q: Any = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        """Detect dead workers; resubmit their units and respawn."""
        for i, worker in enumerate(workers):
            if worker.alive():
                continue
            index = worker.inflight
            worker.close()
            if index is not None and index not in done:
                if attempts[index] > self.params.max_retries:
                    raise WorkerDied(
                        units[index].unit_id, attempts[index]
                    )
                self.retries += 1
                log.warning(
                    "%s died running unit index %d (attempt %d); "
                    "resubmitting to a fresh worker",
                    worker.name, index, attempts[index],
                )
                if on_event is not None:
                    # Parent-side direct call — no queue, cannot drop.
                    on_event({
                        "kind": "unit_retry",
                        "unit": units[index].unit_id,
                        "worker": worker.name,
                        "attempt": attempts[index],
                    })
                pending.appendleft(index)
            workers[i] = _WorkerSlot(ctx, worker.slot, result_q, event_q)

    def _shutdown(
        self,
        workers: List[_WorkerSlot],
        result_q: Any,
        event_q: Any = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        for worker in workers:
            worker.stop()
        deadline = time.monotonic() + _SHUTDOWN_GRACE_S
        for worker in workers:
            worker.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
        for worker in workers:
            if worker.process.is_alive():
                worker.kill()
                worker.process.join(timeout=1.0)
            worker.close()
        # Workers have flushed (or died); whatever made it into the
        # event queue is forwarded before teardown so end-of-unit drop
        # tallies are not themselves dropped on the healthy path.
        self._drain_events(event_q, on_event)
        result_q.cancel_join_thread()
        result_q.close()
        if event_q is not None:
            event_q.cancel_join_thread()
            event_q.close()

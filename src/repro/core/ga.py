"""Genetic-algorithm design-space exploration (Flicker's optimiser).

Flicker [Petrica et al., ISCA'13] searches the per-core configuration
space with a genetic algorithm; the paper compares DDS against it
directly (Fig. 10).  This is a standard discrete GA: tournament
selection, uniform crossover, per-gene mutation, and elitism, over the
same decision vectors and objective as :class:`repro.core.dds.DDSSearch`
so the two explorers are interchangeable in the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.deadline import DecisionBudget
from repro.telemetry.tracer import NULL_TRACER

Objective = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class GAParams:
    """GA knobs, sized to match DDS's evaluation budget."""

    population: int = 50
    generations: int = 40
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.08
    elites: int = 2

    def __post_init__(self) -> None:
        if self.population <= 2:
            raise ValueError("population must exceed 2")
        if self.generations <= 0:
            raise ValueError("generations must be positive")
        if not 1 <= self.tournament <= self.population:
            raise ValueError("tournament size must be in [1, population]")
        if not 0 <= self.crossover_rate <= 1:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0 <= self.mutation_rate <= 1:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elites < self.population:
            raise ValueError("elites must be in [0, population)")


@dataclass
class GAResult:
    """Best point found plus the exploration trace (for Fig. 10a)."""

    best_x: np.ndarray
    best_objective: float
    history: List[float] = field(default_factory=list)
    explored: List[Tuple[np.ndarray, float]] = field(default_factory=list)
    evaluations: int = 0


class GeneticSearch:
    """Discrete GA over joint-configuration decision vectors."""

    #: Telemetry tracer; the shared no-op unless a session attaches one.
    tracer = NULL_TRACER
    #: Decision-budget meter (repro.core.deadline); when a controller
    #: attaches one, every search charges its candidate evaluations
    #: against the current quantum.
    budget: Optional[DecisionBudget] = None

    def __init__(self, params: GAParams = GAParams()) -> None:
        self.params = params

    def search(
        self,
        objective: Objective,
        n_dims: int,
        n_confs: int,
        rng: np.random.Generator,
        fixed: Optional[Sequence[Tuple[int, int]]] = None,
        initial: Optional[np.ndarray] = None,
        record_explored: bool = False,
    ) -> GAResult:
        """Maximise ``objective``; same contract as ``DDSSearch.search``."""
        if n_dims <= 0:
            raise ValueError("n_dims must be positive")
        if n_confs <= 1:
            raise ValueError("n_confs must exceed 1")
        params = self.params
        fixed = list(fixed or [])

        result = GAResult(best_x=np.zeros(n_dims, dtype=int),
                          best_objective=-np.inf)
        batch_eval = getattr(objective, "evaluate_batch", None)

        def apply_fixed(x: np.ndarray) -> np.ndarray:
            for d, v in fixed:
                x[d] = v
            return x

        def evaluate_all(xs: List[np.ndarray]) -> np.ndarray:
            stacked = np.vstack(xs)
            if batch_eval is not None:
                values = np.asarray(batch_eval(stacked), dtype=float)
            else:
                values = np.array([float(objective(x)) for x in stacked])
            result.evaluations += stacked.shape[0]
            if record_explored:
                for x, v in zip(stacked, values):
                    result.explored.append((x.copy(), float(v)))
            return values

        population = [
            apply_fixed(rng.integers(0, n_confs, size=n_dims))
            for _ in range(params.population)
        ]
        if initial is not None:
            population[0] = apply_fixed(np.asarray(initial, dtype=int).copy())
        fitness = evaluate_all(population)

        for _ in range(params.generations):
            order = np.argsort(fitness)[::-1]
            next_pop: List[np.ndarray] = [
                population[i].copy() for i in order[: params.elites]
            ]
            while len(next_pop) < params.population:
                parent_a = self._tournament(population, fitness, rng)
                parent_b = self._tournament(population, fitness, rng)
                child = self._crossover(parent_a, parent_b, rng)
                child = self._mutate(child, n_confs, rng)
                next_pop.append(apply_fixed(child))
            population = next_pop
            fitness = evaluate_all(population)
            result.history.append(float(fitness.max()))

        best = int(np.argmax(fitness))
        result.best_x = population[best]
        result.best_objective = float(fitness[best])
        if self.budget is not None:
            self.budget.charge(result.evaluations, phase="ga.search")
        return result

    def _tournament(
        self,
        population: List[np.ndarray],
        fitness: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        picks = rng.integers(0, len(population), size=self.params.tournament)
        winner = picks[int(np.argmax(fitness[picks]))]
        return population[winner]

    def _crossover(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if rng.random() > self.params.crossover_rate:
            return a.copy()
        take_b = rng.random(a.size) < 0.5
        child = a.copy()
        child[take_b] = b[take_b]
        return child

    def _mutate(
        self, x: np.ndarray, n_confs: int, rng: np.random.Generator
    ) -> np.ndarray:
        flips = rng.random(x.size) < self.params.mutation_rate
        if flips.any():
            x = x.copy()
            x[flips] = rng.integers(0, n_confs, size=int(flips.sum()))
        return x

"""Parallel Dynamically Dimensioned Search (paper §VI, Alg. 2).

DDS [Tolson & Shoemaker 2007] searches a high-dimensional discrete space
by perturbing a shrinking random subset of dimensions of the current
best point: early iterations move many dimensions (global exploration),
late iterations move few (local refinement).  The paper parallelises it
with ``n_threads`` logical searchers that share a global best point at a
per-iteration barrier, each thread group using a different perturbation
radius ``r`` so threads do not explore the same neighbourhood (§VI-B).

The implementation evaluates all threads' candidate points of a step as
one vectorised batch when the objective provides ``evaluate_batch``
(see :class:`repro.core.objective.SystemObjective`) — the moral
equivalent of the paper's multi-threaded C++, and what keeps the search
in the low-millisecond range of Table II.

The decision vector has one dimension per batch job; each dimension's
value is a joint-configuration index in ``[0, n_confs)``.  Out-of-range
perturbations are *reflected* about the violated bound (Alg. 2 lines
14-15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.deadline import DecisionBudget
from repro.telemetry.tracer import NULL_TRACER

Objective = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class DDSParams:
    """The paper's tuned parameters (Fig. 6)."""

    initial_random_points: int = 50
    perturbation_radii: Tuple[float, ...] = (0.2, 0.3, 0.4, 0.5)
    points_per_iteration: int = 10
    max_iter: int = 40
    n_threads: int = 16

    def __post_init__(self) -> None:
        if self.initial_random_points <= 0:
            raise ValueError("initial_random_points must be positive")
        if not self.perturbation_radii:
            raise ValueError("need at least one perturbation radius")
        if any(r <= 0 for r in self.perturbation_radii):
            raise ValueError("perturbation radii must be positive")
        if self.points_per_iteration <= 0:
            raise ValueError("points_per_iteration must be positive")
        if self.max_iter <= 1:
            raise ValueError("max_iter must exceed 1")
        if self.n_threads <= 0:
            raise ValueError("n_threads must be positive")


@dataclass
class DDSResult:
    """Best point found plus the exploration trace (for Fig. 10a)."""

    best_x: np.ndarray
    best_objective: float
    #: Objective of the global best after each iteration.
    history: List[float] = field(default_factory=list)
    #: Every point evaluated, as (decision vector, objective) pairs.
    explored: List[Tuple[np.ndarray, float]] = field(default_factory=list)
    evaluations: int = 0


class DDSSearch:
    """Parallel DDS over discrete decision vectors."""

    #: Telemetry tracer; the shared no-op unless a session attaches one.
    tracer = NULL_TRACER
    #: Decision-budget meter (repro.core.deadline); when a controller
    #: attaches one, every search charges its candidate evaluations
    #: against the current quantum.
    budget: Optional[DecisionBudget] = None

    def __init__(self, params: DDSParams = DDSParams()) -> None:
        self.params = params

    def search(
        self,
        objective: Objective,
        n_dims: int,
        n_confs: int,
        rng: np.random.Generator,
        fixed: Optional[Sequence[Tuple[int, int]]] = None,
        initial: Optional[np.ndarray] = None,
        record_explored: bool = False,
    ) -> DDSResult:
        """Maximise ``objective`` over ``[0, n_confs)**n_dims``.

        ``fixed`` pins (dimension, value) pairs — used to hold the LC
        service's configuration constant while batch dimensions are
        searched.  ``initial`` seeds one starting point (e.g. the
        previous quantum's decision) alongside the random ones.
        """
        with self.tracer.span(
            "dds.search", category="dds", n_dims=n_dims
        ) as span:
            result = self._search(
                objective, n_dims, n_confs, rng, fixed, initial,
                record_explored,
            )
            span.set(evaluations=result.evaluations)
            if self.budget is not None:
                self.budget.charge(result.evaluations, phase="dds.search")
            return result

    def _search(
        self,
        objective: Objective,
        n_dims: int,
        n_confs: int,
        rng: np.random.Generator,
        fixed: Optional[Sequence[Tuple[int, int]]] = None,
        initial: Optional[np.ndarray] = None,
        record_explored: bool = False,
    ) -> DDSResult:
        if n_dims <= 0:
            raise ValueError("n_dims must be positive")
        if n_confs <= 1:
            raise ValueError("n_confs must exceed 1")
        params = self.params
        fixed = list(fixed or [])
        fixed_dims = {d for d, _ in fixed}
        free_dims = np.array(
            [d for d in range(n_dims) if d not in fixed_dims], dtype=int
        )
        result = DDSResult(best_x=np.zeros(n_dims, dtype=int),
                           best_objective=-np.inf)
        batch_eval = getattr(objective, "evaluate_batch", None)

        def apply_fixed(xs: np.ndarray) -> np.ndarray:
            for d, v in fixed:
                xs[..., d] = v
            return xs

        def evaluate_many(xs: np.ndarray) -> np.ndarray:
            if batch_eval is not None:
                values = np.asarray(batch_eval(xs), dtype=float)
            else:
                values = np.array([float(objective(x)) for x in xs])
            result.evaluations += xs.shape[0]
            if record_explored:
                for x, v in zip(xs, values):
                    result.explored.append((x.copy(), float(v)))
            return values

        if free_dims.size == 0:
            x = apply_fixed(np.zeros((1, n_dims), dtype=int))[0]
            value = evaluate_many(x[None, :])[0]
            return DDSResult(best_x=x, best_objective=float(value),
                             history=[float(value)], evaluations=1)

        # Initial random population (Alg. 2 lines 5-6).
        candidates = apply_fixed(
            rng.integers(0, n_confs,
                         size=(params.initial_random_points, n_dims))
        )
        if initial is not None:
            seeded = apply_fixed(
                np.asarray(initial, dtype=int).copy()[None, :]
            )
            candidates = np.vstack([candidates, seeded])
        values = evaluate_many(candidates)
        best = int(np.argmax(values))
        best_x = candidates[best].copy()
        best_val = float(values[best])

        radii = np.array([
            params.perturbation_radii[
                min(
                    t // max(1, params.n_threads // len(params.perturbation_radii)),
                    len(params.perturbation_radii) - 1,
                )
            ]
            for t in range(params.n_threads)
        ])

        for iteration in range(1, params.max_iter + 1):
            # Perturbation probability shrinks with iteration (line 10).
            prob = 1.0 - math.log(iteration) / math.log(params.max_iter)
            prob = max(prob, 1.0 / free_dims.size)
            local_x = np.repeat(best_x[None, :], params.n_threads, axis=0)
            local_val = np.full(params.n_threads, best_val)
            for _ in range(params.points_per_iteration):
                new_x = self._perturb_batch(
                    local_x, free_dims, prob, radii, n_confs, rng
                )
                apply_fixed(new_x)
                new_val = evaluate_many(new_x)
                improved = new_val > local_val
                local_x[improved] = new_x[improved]
                local_val[improved] = new_val[improved]
            # Barrier: thread 0 aggregates (lines 18-21).
            top = int(np.argmax(local_val))
            if local_val[top] > best_val:
                best_val = float(local_val[top])
                best_x = local_x[top].copy()
            result.history.append(best_val)

        result.best_x = best_x
        result.best_objective = best_val
        return result

    @staticmethod
    def _perturb_batch(
        local_x: np.ndarray,
        free_dims: np.ndarray,
        prob: float,
        radii: np.ndarray,
        n_confs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Perturb each thread's point on a random dimension subset.

        Out-of-range values are reflected about the violated bound.
        """
        n_threads = local_x.shape[0]
        new_x = local_x.copy()
        chosen = rng.random((n_threads, free_dims.size)) < prob
        # Every thread must perturb at least one dimension (Alg. 2).
        empty = ~chosen.any(axis=1)
        if empty.any():
            forced = rng.integers(0, free_dims.size, size=int(empty.sum()))
            chosen[np.nonzero(empty)[0], forced] = True
        steps = (
            radii[:, None] * n_confs
            * rng.standard_normal((n_threads, free_dims.size))
        )
        values = new_x[:, free_dims].astype(float)
        values = np.where(chosen, values + steps, values)
        upper = n_confs - 1
        values = np.where(values < 0, -values, values)
        values = np.where(values > upper, 2 * upper - values, values)
        values = np.clip(values, 0, upper)
        new_x[:, free_dims] = np.rint(values).astype(int)
        return new_x

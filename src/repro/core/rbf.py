"""Flicker's estimator: 3MM3 sampling + RBF surrogate fitting (§VIII-E).

Flicker profiles each application on nine core configurations chosen by
a three-level orthogonal design (we use the Taguchi L9 array over the
three sections x three widths), then fits a radial-basis-function
surrogate over the configuration space to predict the rest.  The paper
shows this needs all nine samples: fitted with the two or three samples
CuttleSys gets by, the surrogate extrapolates wildly (errors up to
±600 %, Fig. 9).

The surrogate operates on a smooth feature embedding of configurations
(normalised section widths + log cache ways) with a multiquadric
kernel, the standard choice in the RBF-optimisation literature the
paper cites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.sim.coreconfig import (
    CACHE_ALLOCS,
    N_JOINT_CONFIGS,
    SECTION_WIDTHS,
    CoreConfig,
    JointConfig,
)

#: Taguchi L9 orthogonal array: 9 runs covering 3 factors at 3 levels,
#: each level appearing three times per factor (the 3MM3 design).
_L9_LEVELS = (
    (0, 0, 0), (0, 1, 1), (0, 2, 2),
    (1, 0, 1), (1, 1, 2), (1, 2, 0),
    (2, 0, 2), (2, 1, 0), (2, 2, 1),
)


def l9_sample_configs() -> List[CoreConfig]:
    """The nine core configurations Flicker profiles per application."""
    return [
        CoreConfig(
            fe=SECTION_WIDTHS[a], be=SECTION_WIDTHS[b], ls=SECTION_WIDTHS[c]
        )
        for a, b, c in _L9_LEVELS
    ]


def _features(joint: JointConfig) -> np.ndarray:
    """Smooth embedding of a joint configuration for the RBF kernel."""
    fe, be, ls = joint.core.widths()
    return np.array(
        [
            (fe - 2) / 4.0,
            (be - 2) / 4.0,
            (ls - 2) / 4.0,
            math.log2(joint.cache_ways / CACHE_ALLOCS[0]) / 3.0,
        ]
    )


_ALL_FEATURES = np.vstack(
    [_features(JointConfig.from_index(i)) for i in range(N_JOINT_CONFIGS)]
)


@dataclass
class RBFSurrogate:
    """Interpolates a metric over the 108 joint configurations.

    ``kernel`` is ``"multiquadric"`` (default) or ``"gaussian"``;
    ``ridge`` regularises the interpolation system, and ``log_space``
    fits the log of the metric (appropriate for positive quantities).
    """

    kernel: str = "multiquadric"
    epsilon: float = 1.0
    ridge: float = 1e-8
    log_space: bool = False

    _weights: np.ndarray = None
    _centers: np.ndarray = None

    def __post_init__(self) -> None:
        if self.kernel not in ("multiquadric", "gaussian"):
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")

    def _phi(self, dist2: np.ndarray) -> np.ndarray:
        if self.kernel == "multiquadric":
            return np.sqrt(dist2 + self.epsilon**2)
        return np.exp(-dist2 / (2.0 * self.epsilon**2))

    def fit(
        self, joint_indices: Sequence[int], values: Sequence[float]
    ) -> "RBFSurrogate":
        """Fit on (joint index, measured value) samples."""
        idx = np.asarray(joint_indices, dtype=int)
        y = np.asarray(values, dtype=float)
        if idx.size == 0:
            raise ValueError("need at least one sample")
        if idx.size != y.size:
            raise ValueError("joint_indices and values lengths differ")
        if np.any((idx < 0) | (idx >= N_JOINT_CONFIGS)):
            raise ValueError("joint index out of range")
        if self.log_space:
            if np.any(y <= 0):
                raise ValueError("log-space fit requires positive values")
            y = np.log(y)
        self._centers = _ALL_FEATURES[idx]
        diff = self._centers[:, None, :] - self._centers[None, :, :]
        phi = self._phi(np.sum(diff**2, axis=-1))
        phi = phi + self.ridge * np.eye(idx.size)
        self._weights = np.linalg.solve(phi, y)
        return self

    def predict_all(self) -> np.ndarray:
        """Predicted metric on all 108 joint configurations."""
        if self._weights is None:
            raise RuntimeError("fit() must be called before predict_all()")
        diff = _ALL_FEATURES[:, None, :] - self._centers[None, :, :]
        phi = self._phi(np.sum(diff**2, axis=-1))
        pred = phi @ self._weights
        if self.log_space:
            # Clamp before exponentiation: with very few samples the
            # interpolant extrapolates to huge magnitudes (the Fig. 9
            # failure mode); keep the result finite.
            pred = np.clip(pred, -50.0, 50.0)
            return np.exp(pred)
        return pred

    def predict(self, joint_indices: Sequence[int]) -> np.ndarray:
        """Predicted metric at specific joint configurations."""
        all_pred = self.predict_all()
        return all_pred[np.asarray(joint_indices, dtype=int)]

"""Cluster-level power brokering across CuttleSys machines.

The paper situates CuttleSys *under* a global power manager: each
server's budget is "assigned ... either by the chip-wide power budget,
or by a global power manager [Lo et al.] running datacenter-wide" (§I).
This module supplies that missing layer for multi-machine studies:

:class:`PowerBroker` owns a rack-level budget and re-divides it across
server sockets every decision quantum.  Each socket reports how much
power it *used* and whether it is throttled (cores gated, QoS
pressure); the broker shifts budget from sockets with slack toward
sockets under pressure, subject to a per-socket floor.  The policy is a
simple proportional controller — the point is the interface and the
end-to-end behaviour, not controller sophistication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


from repro.sim.machine import Machine, SliceMeasurement
from repro.workloads.loadgen import LoadTrace


@dataclass
class Socket:
    """One server: a machine, its policy, and its load trace."""

    name: str
    machine: Machine
    policy: object
    trace: LoadTrace
    #: Budget floor as a fraction of an equal split.
    floor_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.floor_fraction <= 1:
            raise ValueError("floor_fraction must be in (0, 1]")


@dataclass(frozen=True)
class BrokerParams:
    """Knobs of the rack-level proportional reallocation."""

    #: Fraction of the observed slack/pressure gap moved per quantum.
    step: float = 0.3
    #: Headroom a socket must keep before its budget is considered slack.
    slack_margin: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.step <= 1:
            raise ValueError("step must be in (0, 1]")
        if self.slack_margin < 0:
            raise ValueError("slack_margin must be non-negative")


@dataclass
class BrokerRun:
    """Everything measured over one brokered multi-socket run."""

    socket_names: Tuple[str, ...]
    #: budgets[t][socket] in watts.
    budgets: List[Dict[str, float]] = field(default_factory=list)
    #: measurements[t][socket].
    measurements: List[Dict[str, SliceMeasurement]] = field(
        default_factory=list
    )

    def total_batch_instructions(self, socket: Optional[str] = None) -> float:
        """Useful work, for one socket or the whole rack."""
        total = 0.0
        for per_socket in self.measurements:
            for name, m in per_socket.items():
                if socket is None or name == socket:
                    total += m.total_batch_instructions
        return total

    def qos_violations(self, qos_by_socket: Dict[str, float]) -> int:
        """Slice-level QoS violations across the rack."""
        count = 0
        for per_socket in self.measurements:
            for name, m in per_socket.items():
                if m.lc_p99 > qos_by_socket[name]:
                    count += 1
        return count

    def budget_series(self, socket: str) -> List[float]:
        """Per-quantum budget of one socket."""
        return [b[socket] for b in self.budgets]


class PowerBroker:
    """Divides a rack budget across sockets, re-balancing each quantum."""

    def __init__(
        self,
        sockets: Sequence[Socket],
        rack_budget_w: float,
        params: BrokerParams = BrokerParams(),
    ) -> None:
        if not sockets:
            raise ValueError("need at least one socket")
        if rack_budget_w <= 0:
            raise ValueError("rack_budget_w must be positive")
        names = [s.name for s in sockets]
        if len(set(names)) != len(names):
            raise ValueError("socket names must be unique")
        self.sockets = list(sockets)
        self.rack_budget_w = rack_budget_w
        self.params = params
        equal = rack_budget_w / len(sockets)
        self._budgets: Dict[str, float] = {s.name: equal for s in sockets}

    @property
    def budgets(self) -> Dict[str, float]:
        """Current per-socket budgets (sums to the rack budget)."""
        return dict(self._budgets)

    def run(self, n_slices: int) -> BrokerRun:
        """Drive every socket for ``n_slices`` quanta with rebalancing."""
        if n_slices <= 0:
            raise ValueError("n_slices must be positive")
        run = BrokerRun(socket_names=tuple(s.name for s in self.sockets))
        estimates = {
            s.name: s.trace.load_at(0.0) for s in self.sockets
        }
        for _ in range(n_slices):
            per_socket: Dict[str, SliceMeasurement] = {}
            for socket in self.sockets:
                budget = self._budgets[socket.name]
                assignment = socket.policy.decide(
                    socket.machine, estimates[socket.name], budget
                )
                load = socket.trace.load_at(socket.machine.time_s)
                measurement = socket.machine.run_slice(assignment, load)
                socket.policy.observe(measurement)
                per_socket[socket.name] = measurement
                estimates[socket.name] = load
            run.budgets.append(dict(self._budgets))
            run.measurements.append(per_socket)
            self._rebalance(per_socket)
        return run

    # ------------------------------------------------------------------

    def _pressure(self, socket: Socket, m: SliceMeasurement) -> float:
        """How much more power this socket could productively use.

        Gated batch cores and near-budget operation signal pressure;
        measured power well under budget signals slack.
        """
        budget = self._budgets[socket.name]
        gated = len(socket.machine.batch_profiles) - len(
            m.assignment.active_batch_indices
        )
        near_budget = m.total_power > budget * (1 - self.params.slack_margin)
        if gated > 0 or near_budget:
            # Want roughly one widest-core's worth per gated job, and at
            # least a 10 % budget bump while running pinned to the cap.
            return max(0.1 * budget, gated * 3.0)
        return 0.0

    def _slack(self, socket: Socket, m: SliceMeasurement) -> float:
        """Watts this socket can give up without hitting its floor."""
        budget = self._budgets[socket.name]
        floor = (
            self.rack_budget_w / len(self.sockets) * socket.floor_fraction
        )
        unused = max(0.0, budget * (1 - self.params.slack_margin)
                     - m.total_power)
        return min(unused, max(0.0, budget - floor))

    def _rebalance(self, per_socket: Dict[str, SliceMeasurement]) -> None:
        pressures = {
            s.name: self._pressure(s, per_socket[s.name]) for s in self.sockets
        }
        slacks = {
            s.name: self._slack(s, per_socket[s.name]) for s in self.sockets
        }
        total_pressure = sum(pressures.values())
        total_slack = sum(slacks.values())
        if total_pressure <= 0 or total_slack <= 0:
            return
        moved = self.params.step * min(total_slack, total_pressure)
        for name, slack in slacks.items():
            self._budgets[name] -= moved * slack / total_slack
        for name, pressure in pressures.items():
            self._budgets[name] += moved * pressure / total_pressure
        # Guard against drift: renormalise to the rack budget.
        scale = self.rack_budget_w / sum(self._budgets.values())
        for name in self._budgets:
            self._budgets[name] *= scale

"""The optimisation objective of §IV-A / §VI-A.

Maximise the geometric mean of batch throughput (Eq. 1) subject to the
power budget (Eq. 2), the LLC way budget (Eq. 3), and the QoS of the
latency-critical service (Eq. 4; handled outside the search by fixing
the LC configuration first).  Constraint violations are folded into the
objective as *soft penalties* so points slightly over budget are not
discarded outright (§VI-A)::

    objective(x) = gmean(BIPS) - penalty_power * excess_power(x)
                               - penalty_cache * excess_ways(x)

(The paper's formula is written with ``maxPower - Power``; as printed
that would reward high power, so we penalise the excess, which is the
evident intent.)

The decision vector ``x`` assigns each batch job a joint-configuration
index in ``[0, 108)``; the LC service's contribution (cores, power,
ways) is folded in as a fixed reservation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.coreconfig import CACHE_ALLOCS, N_CACHE_ALLOCS, N_JOINT_CONFIGS

#: Cache ways of each joint index (shape [108]); used vectorised.
_WAYS_BY_JOINT = np.array(
    [CACHE_ALLOCS[i % N_CACHE_ALLOCS] for i in range(N_JOINT_CONFIGS)]
)


@dataclass(frozen=True)
class SystemObjective:
    """Evaluates candidate decision vectors for the batch jobs.

    ``bips`` and ``power`` are the (reconstructed) per-job metric
    tables, shape [n_jobs x 108].  ``reserved_power`` and
    ``reserved_ways`` account for the LC service and uncore;
    ``time_share`` scales throughput when active jobs outnumber batch
    cores (core relocation).
    """

    bips: np.ndarray
    power: np.ndarray
    max_power: float
    max_ways: float
    reserved_power: float = 0.0
    reserved_ways: float = 0.0
    penalty_power: float = 2.0
    penalty_cache: float = 2.0
    time_share: float = 1.0
    #: Cache ways consumed by each configuration index; ``None`` (the
    #: default for 108-column tables) uses the joint-configuration
    #: mapping.  Pass an explicit array (or zeros) for searches over a
    #: different alphabet, e.g. Flicker's 27 core-only configurations.
    ways_by_config: np.ndarray = None

    def __post_init__(self) -> None:
        if self.bips.shape != self.power.shape:
            raise ValueError("bips and power tables must have the same shape")
        if self.bips.ndim != 2:
            raise ValueError("metric tables must be 2-D [n_jobs x n_confs]")
        if self.max_power <= 0:
            raise ValueError("max_power must be positive")
        if self.max_ways <= 0:
            raise ValueError("max_ways must be positive")
        if self.ways_by_config is None:
            if self.bips.shape[1] != N_JOINT_CONFIGS:
                raise ValueError(
                    "ways_by_config is required for tables that are not "
                    f"[n_jobs x {N_JOINT_CONFIGS}]"
                )
            object.__setattr__(self, "ways_by_config", _WAYS_BY_JOINT)
        else:
            object.__setattr__(
                self,
                "ways_by_config",
                np.asarray(self.ways_by_config, dtype=float),
            )
            if self.ways_by_config.shape != (self.bips.shape[1],):
                raise ValueError(
                    "ways_by_config must have one entry per configuration"
                )

    @property
    def n_jobs(self) -> int:
        """Number of batch jobs the decision vector covers."""
        return self.bips.shape[0]

    @property
    def n_confs(self) -> int:
        """Alphabet size of each decision dimension."""
        return self.bips.shape[1]

    def gmean_bips(self, x: np.ndarray) -> float:
        """Geometric mean of batch throughput for one decision vector."""
        vals = self.bips[np.arange(self.n_jobs), x] * self.time_share
        return float(np.exp(np.mean(np.log(np.maximum(vals, 1e-12)))))

    def total_power(self, x: np.ndarray) -> float:
        """Chip power of one decision vector, including reservations."""
        return float(
            np.sum(self.power[np.arange(self.n_jobs), x]) + self.reserved_power
        )

    def total_ways(self, x: np.ndarray) -> float:
        """Physical LLC ways used, pairing half-way holders (Eq. 3)."""
        ways = self.ways_by_config[x]
        # 0.5 is the exact half-way sentinel from the config table,
        # never the result of arithmetic.
        halves = int(np.sum(ways == 0.5))  # repro: noqa[UNIT301]
        whole = float(np.sum(ways[ways != 0.5]))  # repro: noqa[UNIT301]
        paired = np.ceil(halves / 2.0) if halves else 0.0
        return whole + paired + self.reserved_ways

    def __call__(self, x: np.ndarray) -> float:
        """Soft-penalty objective of one decision vector."""
        x = np.asarray(x, dtype=int)
        if x.shape != (self.n_jobs,):
            raise ValueError(
                f"decision vector must have shape ({self.n_jobs},), got {x.shape}"
            )
        value = self.gmean_bips(x)
        excess_power = max(0.0, self.total_power(x) - self.max_power)
        excess_ways = max(0.0, self.total_ways(x) - self.max_ways)
        return (
            value
            - self.penalty_power * excess_power
            - self.penalty_cache * excess_ways
        )

    def evaluate_batch(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised objective over ``xs`` of shape [k, n_jobs].

        Semantically identical to calling the objective on each row;
        this is what makes the Python DDS/GA loops run in the
        millisecond range the paper reports for its parallel C++.
        """
        xs = np.asarray(xs, dtype=int)
        if xs.ndim != 2 or xs.shape[1] != self.n_jobs:
            raise ValueError(
                f"batch must be [k x {self.n_jobs}], got {xs.shape}"
            )
        cols = np.arange(self.n_jobs)[None, :]
        bips = self.bips[cols, xs] * self.time_share
        gmean = np.exp(np.mean(np.log(np.maximum(bips, 1e-12)), axis=1))
        power = np.sum(self.power[cols, xs], axis=1) + self.reserved_power
        ways = self.ways_by_config[xs]
        # Exact half-way sentinel, as in total_ways above.
        halves = np.sum(ways == 0.5, axis=1)  # repro: noqa[UNIT301]
        whole = np.sum(np.where(ways == 0.5, 0.0, ways), axis=1)  # repro: noqa[UNIT301]
        total_ways = whole + np.ceil(halves / 2.0) + self.reserved_ways
        return (
            gmean
            - self.penalty_power * np.maximum(0.0, power - self.max_power)
            - self.penalty_cache * np.maximum(0.0, total_ways - self.max_ways)
        )

    def is_feasible(self, x: np.ndarray, power_slack: float = 0.0) -> bool:
        """Hard-constraint check (used after the search, §VI-B)."""
        x = np.asarray(x, dtype=int)
        return (
            self.total_power(x) <= self.max_power + power_slack
            and self.total_ways(x) <= self.max_ways + 1e-9
        )

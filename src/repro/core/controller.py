"""The CuttleSys Resource Controller (paper §IV-B, §V, §VI).

Per decision quantum the controller:

1. folds the two 1 ms profiling samples and the previous slice's
   steady-state measurements into its sparse metric matrices,
2. runs three PQ-reconstructions (throughput, tail latency, power) to
   estimate every job on all 108 joint configurations,
3. scans the reconstructed latency row for the latency-critical
   service: lowest cache allocation, then the core configuration with
   the least predicted power that meets QoS (§VI-A); if nothing meets
   QoS it reclaims one core from the batch jobs per timeslice, and
   yields one back when QoS is met with slack,
4. searches the batch jobs' joint-configuration space with parallel DDS
   (or the GA ablation) under soft power/cache penalties, and
5. applies the hard fallback: if the power budget is busted even so,
   gates cores in descending predicted power (§VI-B).

The controller never reads ground truth — only profiling samples and
end-of-slice measurements, like the real system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry

from repro.core.dds import DDSParams, DDSSearch
from repro.core.deadline import (
    DecisionBudget,
    dds_search_cost,
    reduced_dds_params,
)
from repro.core.ga import GAParams, GeneticSearch
from repro.logs import get_logger
from repro.telemetry.provenance import (
    ProvenanceRecorder,
    candidate_provenance,
    classify_candidates,
)
from repro.telemetry.tracer import Tracer, tracer_of
from repro.core.matrices import (
    ObservedMatrix,
    latency_training_rows,
    power_rows,
    throughput_rows,
)
from repro.core.objective import SystemObjective
from repro.core.sgd import PQReconstructor, SGDParams
from repro.sim.coreconfig import (
    CACHE_ALLOCS,
    N_JOINT_CONFIGS,
    CoreConfig,
    JointConfig,
)
from repro.sim.machine import (
    Assignment,
    LCAllocation,
    Machine,
    ProfilingSample,
    SliceMeasurement,
    assignment_from_state,
    assignment_state,
)
from repro.sim.perf import AppProfile
from repro.workloads.latency_critical import LC_SERVICE_NAMES, service_variants

#: Load grid used to bucket latency observations and training rows.
LOAD_GRID: Tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 11))

#: Power readings at or below this magnitude (watts) count as "all
#: cores idle" for stuck-sensor detection: core powers are O(1-10) W,
#: so anything this small is numerical residue, not a live signal.
POWER_READING_EPS_W = 1e-9

log = get_logger("core.controller")


def nearest_load_bucket(load: float) -> float:
    """Snap a fractional load onto :data:`LOAD_GRID`."""
    return min(LOAD_GRID, key=lambda b: abs(b - load))


def _diagnostics_state(diag: Any) -> Optional[Dict[str, Any]]:
    """JSONable view of one reconstruction's SGD diagnostics."""
    if diag is None:
        return None
    return {
        "iterations": int(diag.iterations),
        "rmse": float(diag.observed_rmse),
        "converged": bool(diag.converged),
    }


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the resource controller."""

    initial_lc_cores: int = 16
    min_lc_cores: int = 2
    #: Yield a core back to batch when predicted latency is below
    #: (1 - slack) * QoS even with one core fewer (§VIII-D3: 20 %).
    lc_slack_to_yield: float = 0.2
    #: Fraction of the power budget kept as headroom against
    #: measurement noise and phase drift.
    power_headroom: float = 0.02
    #: QoS guardbands by latency-observation count: with few samples the
    #: reconstruction is uncertain, so candidate configurations must
    #: clear QoS by a margin that relaxes as measurements accumulate.
    qos_guard_sparse: float = 0.35
    qos_guard_medium: float = 0.25
    qos_guard_dense: float = 0.10
    #: Jittered "historical" variants per known service added to the
    #: latency training rows (see workloads.latency_critical.service_variants).
    latency_variants_per_service: int = 3
    #: Runtime observations older than this many quanta are dropped
    #: (phase drift makes stale steady-state samples misleading);
    #: None keeps everything forever.
    observation_max_age: Optional[int] = 30
    sgd: SGDParams = SGDParams()
    dds: DDSParams = DDSParams()
    ga: GAParams = GAParams()
    #: Design-space explorer: "dds" (CuttleSys) or "ga" (ablation).
    explorer: str = "dds"
    seed: int = 0
    #: Master switch for the graceful-degradation paths below.  With it
    #: off the controller behaves like the original reproduction: a
    #: non-finite observation raises out of the ingest path and there is
    #: no safe mode or reconfiguration quarantine (the "unhardened" arm
    #: of experiments/fault_study.py).
    hardened: bool = True
    #: Reject a runtime observation further than this many robust
    #: standard deviations (median absolute deviation, MAD) from the
    #: offline-characterised population at the same configuration.
    outlier_mad_threshold: float = 6.0
    #: Consecutive bad quanta (rejected samples, stuck sensors) before
    #: the controller stops trusting its reconstructions and falls back
    #: to the safe-mode assignment.
    safe_mode_after: int = 3
    #: Clean quanta required before safe mode is exited.
    safe_mode_hold: int = 4
    #: Consecutive failed reconfigurations of one core before it is
    #: quarantined (no further reconfiguration requests).
    quarantine_after: int = 3
    #: How many quanta a quarantined core is left alone before the
    #: controller retries reconfiguring it.
    quarantine_quanta: int = 6
    #: Per-quantum decision-operation budget: SGD refinement iterations
    #: plus search-candidate evaluations, counted in virtual time
    #: (deterministic operation counts, never wall-clock).  None meters
    #: without degrading; a finite budget makes :meth:`decide` walk the
    #: degradation ladder of docs/robustness.md on exhaustion — full
    #: DDS, reduced-sample DDS, last-known-good assignment, static
    #: fair-share.
    decision_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.initial_lc_cores < 1:
            raise ValueError("initial_lc_cores must be at least 1")
        if not 1 <= self.min_lc_cores <= self.initial_lc_cores:
            raise ValueError(
                "min_lc_cores must be in [1, initial_lc_cores]"
            )
        if not 0 < self.lc_slack_to_yield < 1:
            raise ValueError("lc_slack_to_yield must be in (0, 1)")
        if self.explorer not in ("dds", "ga"):
            raise ValueError(f"unknown explorer {self.explorer!r}")
        if self.outlier_mad_threshold <= 0:
            raise ValueError("outlier_mad_threshold must be positive")
        for name in ("safe_mode_after", "safe_mode_hold",
                     "quarantine_after", "quarantine_quanta"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        if self.decision_budget is not None and self.decision_budget < 1:
            raise ValueError("decision_budget must be at least 1")


@dataclass
class StepTimings:
    """Wall-clock overheads of one decision (Table II).

    Since the telemetry refactor these are *derived from tracer
    spans* (``sgd`` + ``lc_scan`` and ``search`` respectively), so the
    controller, Table II, and any exported trace all report the same
    numbers from one measurement path.
    """

    sgd_s: float = 0.0
    search_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total decision overhead excluding the fixed 2 ms profiling."""
        return self.sgd_s + self.search_s


@dataclass(frozen=True)
class DecisionPrediction:
    """What the controller *expected* of the assignment it just made.

    Captured every quantum so the harness can pair predictions with
    the subsequent slice's measurements — turning the Fig. 5 offline
    accuracy experiment into a continuously tracked online metric.
    NaN marks quantities the controller had no prediction for (gated
    jobs, cold-start latency rows).
    """

    #: Per-batch-job predicted BIPS with the time-multiplexing share
    #: applied (comparable to ``SliceMeasurement.batch_bips``).
    bips: Tuple[float, ...]
    #: Predicted p99 per hosted LC service, primary first (seconds).
    p99_s: Tuple[float, ...]
    #: Predicted total chip power (cores + gated residuals + LLC), W.
    power_w: float


@dataclass(frozen=True)
class LCRegimeSnapshot:
    """One LC service's reconstructed latency row behind a decision.

    ``latency_row`` is the reconstructed p99 across all 108 joint
    configurations at the regime (load bucket, core count) the decision
    was made in — None on the cold-start path, where the controller
    runs conservative without a prediction.
    """

    service_idx: int
    #: Load estimate the decision used (pre-bucketing).
    load: float
    #: The :data:`LOAD_GRID` bucket the latency matrices keyed on.
    bucket: float
    #: Core count the service was allocated.
    cores: int
    latency_row: Optional[np.ndarray]
    #: Joint-configuration index actually chosen (None if zero cores).
    chosen_index: Optional[int]


@dataclass(frozen=True)
class ReconstructionSnapshot:
    """The reconstructed matrices behind the most recent decision.

    Captured by :meth:`ResourceController.decide` for the accuracy
    auditor (``repro.telemetry.accuracy``): since the simulator is
    analytical, every entry can be scored against ground truth, turning
    the paper's Fig. 4 offline accuracy study into a per-quantum online
    metric.  Arrays are the raw reconstructions (no time-multiplexing
    share applied), aligned with the machine's batch slots.
    """

    #: Reconstructed batch BIPS, ``(n_batch, N_JOINT_CONFIGS)``.
    batch_bips: np.ndarray
    #: Reconstructed batch core power, ``(n_batch, N_JOINT_CONFIGS)``.
    batch_power: np.ndarray
    #: Per-hosted-LC-service latency regimes, primary first.
    lc: Tuple[LCRegimeSnapshot, ...]


def _matrix_state(matrix: ObservedMatrix) -> Dict[str, Any]:
    """JSONable form of an :class:`ObservedMatrix` for snapshots.

    Values travel as nested lists; float ``repr`` round-trips exactly
    through JSON, so a restored matrix reconstructs bit-identically.
    """
    return {
        "n_rows": matrix.n_rows,
        "n_cols": matrix.n_cols,
        "values": matrix.values.tolist(),
        "mask": matrix.mask.tolist(),
        "age": matrix.age.tolist(),
        "known_rows": matrix.known_rows.tolist(),
    }


def _restore_matrix(matrix: ObservedMatrix, state: Dict[str, Any]) -> None:
    """Overwrite ``matrix`` in place from :func:`_matrix_state` output."""
    if (matrix.n_rows, matrix.n_cols) != (
        int(state["n_rows"]), int(state["n_cols"])
    ):
        raise ValueError("matrix shape mismatch in controller snapshot")
    matrix.values = np.asarray(state["values"], dtype=float)
    matrix.mask = np.asarray(state["mask"], dtype=bool)
    matrix.age = np.asarray(state["age"], dtype=int)
    matrix.known_rows = np.asarray(state["known_rows"], dtype=bool)


def _regime_key(raw: Sequence[Any]) -> Tuple[int, float, int]:
    """A latency-regime key (service, load bucket, cores) from JSON."""
    return int(raw[0]), float(raw[1]), int(raw[2])


class ResourceController:
    """Online decision maker for one machine's jobs."""

    def __init__(
        self,
        machine: Machine,
        train_profiles: Sequence[AppProfile],
        train_services: Sequence,  # Sequence[LCService]
        config: ControllerConfig = ControllerConfig(),
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.machine = machine
        self.config = config
        # The controller always times its phases through a tracer (one
        # shared measurement path for StepTimings, Table II and trace
        # exports); without a session it uses a private one.
        self.telemetry: Optional["Telemetry"] = None
        self.tracer: Tracer = Tracer()
        if telemetry is not None:
            self.attach_telemetry(telemetry)
        self._rng = np.random.default_rng(config.seed)
        self.n_batch = len(machine.batch_profiles)
        self.n_train = len(train_profiles)
        self.n_services = len(machine.lc_services)
        # Initial LC core split: the configured total, divided across
        # the hosted services (all of it to a single service).
        total = min(config.initial_lc_cores, machine.params.n_cores - 1)
        base = max(1, total // self.n_services)
        self.lc_cores_by_service: List[int] = [
            base for _ in range(self.n_services)
        ]
        self.lc_cores_by_service[0] += total - base * self.n_services
        self._last_assignment: Optional[Assignment] = None
        self._last_x: Optional[np.ndarray] = None
        self.timings: List[StepTimings] = []
        #: Predicted outcomes of the most recent :meth:`decide`.
        self.last_prediction: Optional[DecisionPrediction] = None
        #: Reconstructed matrices behind the most recent :meth:`decide`
        #: (None before the first decision and in safe mode, where no
        #: trusted reconstruction backs the assignment).
        self.last_reconstruction: Optional[ReconstructionSnapshot] = None

        # Graceful-degradation state (docs/robustness.md).  The
        # controller counts sample rejections per quantum; runs of bad
        # quanta drive the safe-mode state machine, and per-core
        # reconfiguration-failure streaks drive the quarantine.
        self._rejections_this_quantum = 0
        self._bad_quanta_streak = 0
        self._safe_mode_remaining = 0
        self._last_profile_powers: Optional[Tuple[float, ...]] = None
        self._reconfig_fail_streak = np.zeros(self.n_batch, dtype=int)
        self._quarantine = np.zeros(self.n_batch, dtype=int)
        self._quarantine_config: List[Optional[JointConfig]] = [
            None for _ in range(self.n_batch)
        ]
        #: Which batch slots currently host a live job.  Slots vacated
        #: by :meth:`remove_job` are gated off (their configurations
        #: forced to ``None``) in every assignment until
        #: :meth:`add_job` binds a newcomer; the machine keeps the
        #: vacated profile around but never executes it.
        self._job_active: List[bool] = [True] * self.n_batch
        #: Most recent assignment whose slice came back clean (finite
        #: measurements, QoS met).  The harness reuses it when a policy
        #: exception degrades a quantum.
        self.last_good_assignment: Optional[Assignment] = None

        # Offline characterisation of the known applications (the rows
        # the collaborative filter learns structure from).
        train_bips = throughput_rows(train_profiles, machine.perf)
        train_power = power_rows(train_profiles, machine.power)
        self._bips_matrix = ObservedMatrix(self.n_train + self.n_batch)
        self._power_matrix = ObservedMatrix(
            self.n_train + self.n_batch + self.n_services
        )
        for i in range(self.n_train):
            self._bips_matrix.set_known_row(i, train_bips[i])
            self._power_matrix.set_known_row(i, train_power[i])

        # Latency training rows: known services (plus their historical
        # variants) characterised per load bucket and core count; the
        # running service's own row is never in the training set.
        self._train_services = list(train_services)
        if config.latency_variants_per_service > 0:
            for service in list(self._train_services):
                base_name = service.name.split("-v")[0]
                if base_name in LC_SERVICE_NAMES:
                    self._train_services.extend(
                        service_variants(
                            base_name,
                            config.latency_variants_per_service,
                            seed=config.seed,
                            perf=machine.perf,
                        )
                    )
        self._latency_matrices: Dict[Tuple[int, float, int], ObservedMatrix] = {}
        # Distinct configurations ever measured per (service, bucket,
        # cores) regime: the QoS guard relaxes on accumulated evidence
        # and stays relaxed even after observations expire.
        self._latency_evidence: Dict[Tuple[int, float, int], set] = {}

        self._reconstructor = PQReconstructor(config.sgd)
        if config.explorer == "dds":
            self._searcher = DDSSearch(config.dds)
        else:
            self._searcher = GeneticSearch(config.ga)
        self._reconstructor.tracer = self.tracer
        self._searcher.tracer = self.tracer

        # Virtual-time deadline metering (docs/robustness.md): the
        # reconstructor and searcher charge their operation counts
        # against this budget; exhaustion walks the degradation ladder
        # in decide().  The reduced searcher is rung 1 (DDS only).
        self.budget = DecisionBudget(config.decision_budget)
        self._reconstructor.budget = self.budget
        self._searcher.budget = self.budget
        self._reduced_searcher: Optional[DDSSearch] = None
        if config.explorer == "dds":
            self._reduced_searcher = DDSSearch(reduced_dds_params(config.dds))
            self._reduced_searcher.tracer = self.tracer
            self._reduced_searcher.budget = self.budget
        #: True while the most recent decide() took a degradation rung;
        #: the accuracy auditor attributes that quantum's QoS
        #: violations to the deadline_degraded cause.
        self.deadline_degraded_quantum = False
        #: Degradation rungs taken by the in-flight decide() call, in
        #: order — the provenance record's ``rungs`` section.  Reset at
        #: every decision boundary (and in restore(): runs resume at a
        #: quantum boundary, so no decision is in flight).
        self._rungs_this_quantum: List[str] = []

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        """Route spans/metrics into a :class:`repro.telemetry.Telemetry`.

        The session's tracer replaces the controller's private one so
        phase spans nest inside whatever the harness records (quantum,
        decide, slice), and counters (core reclamations/yields,
        emergency core-offs) land in the session's registry.
        """
        # Telemetry wiring is session plumbing, not simulation state:
        # the harness re-attaches it after every restore(), so the
        # snapshot contract deliberately excludes these rebindings.
        self.telemetry = telemetry  # repro: noqa[SNAP701]
        tracer = tracer_of(telemetry)
        self.tracer = tracer  # repro: noqa[SNAP701]
        self._reconstructor.tracer = tracer  # repro: noqa[SNAP701]
        self._searcher.tracer = tracer  # repro: noqa[SNAP701]
        # attach_telemetry runs from __init__ before the searchers are
        # built, then again whenever a session attaches later.
        reduced = getattr(self, "_reduced_searcher", None)
        if reduced is not None:
            reduced.tracer = tracer

    def _count(self, name: str, n: int = 1) -> None:
        """Increment a session counter, if a session is attached."""
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(n)

    # ------------------------------------------------------------------
    # Decision provenance (repro.telemetry.provenance).
    # ------------------------------------------------------------------

    def _provenance_recorder(self) -> Optional[ProvenanceRecorder]:
        """The attached session's flight recorder, if recording."""
        if self.telemetry is None:
            return None
        if not getattr(self.telemetry, "enabled", True):
            return None
        return getattr(self.telemetry, "provenance", None)

    def _budget_meter(
        self,
        full_cost: Optional[int] = None,
        reduced_cost: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The deadline meter's readings at this point in the decision."""
        meter: Dict[str, Any] = {
            "limit": self.budget.limit,
            "spent": int(self.budget.spent),
            "remaining": self.budget.remaining(),
        }
        if full_cost is not None:
            meter["full_search_cost"] = int(full_cost)
        if reduced_cost is not None:
            meter["reduced_search_cost"] = int(reduced_cost)
        return meter

    def _emit_provenance(self, record: Dict[str, Any]) -> None:
        """Stamp and store one quantum's provenance record.

        The quantum index comes from the harness (which marks each
        boundary on the recorder) and falls back to the budget meter's
        lifetime quantum counter — snapshot state, so standalone
        ``decide()`` loops and resumed runs index identically.
        """
        recorder = self._provenance_recorder()
        if recorder is None:
            return
        quantum = recorder.quantum
        if quantum is None:
            quantum = self.budget.quanta - 1
        full: Dict[str, Any] = {
            "type": "provenance",
            "quantum": int(quantum),
            "rungs": list(self._rungs_this_quantum),
            "safety": {
                "safe_mode": bool(self._safe_mode_remaining > 0),
                "quarantined_jobs": int(
                    np.count_nonzero(self._quarantine > 0)
                ),
            },
            **record,
        }
        if recorder.record(full):
            self._count("provenance.records")
        else:
            self._count("provenance.dropped")

    # ------------------------------------------------------------------
    # Matrix bookkeeping.
    # ------------------------------------------------------------------

    def _batch_row(self, job: int) -> int:
        return self.n_train + job

    def _lc_power_row(self, service_idx: int = 0) -> int:
        return self.n_train + self.n_batch + service_idx

    @property
    def lc_cores(self) -> int:
        """Primary service's current core allocation (back-compat)."""
        return self.lc_cores_by_service[0]

    def _latency_matrix(
        self, bucket: float, n_cores: int, service_idx: int = 0
    ) -> ObservedMatrix:
        key = (service_idx, bucket, n_cores)
        if key not in self._latency_matrices:
            service = self.machine.lc_services[service_idx]
            rows, _ = latency_training_rows(
                self._train_services,
                [bucket],
                self.machine.perf,
                n_cores,
                exclude=(service.name, bucket),
            )
            matrix = ObservedMatrix(rows.shape[0] + 1)
            for i in range(rows.shape[0]):
                matrix.set_known_row(i, rows[i])
            self._latency_matrices[key] = matrix
        return self._latency_matrices[key]

    def reset_job(self, job: int) -> None:
        """Forget everything about batch slot ``job`` (job churn).

        Called when a job completes and a new application takes its
        core: the slot's observed matrix entries are cleared so the
        newcomer is treated as previously unseen — it gets its two
        profiling samples next quantum and is reconstructed from the
        known-application population, exactly the arrival story of §V.
        """
        if not 0 <= job < self.n_batch:
            raise ValueError(f"batch job index out of range: {job}")
        row = self._batch_row(job)
        for matrix in (self._bips_matrix, self._power_matrix):
            matrix.clear_row(row)
        if self._last_x is not None:
            # Restart the newcomer's search from a safe narrow config.
            self._last_x[job] = 0

    def remove_job(self, job: int) -> None:
        """Vacate batch slot ``job`` between quanta (live cancellation).

        The slot's learned state is forgotten and the slot is gated off
        in every subsequent assignment: the search still proposes a
        configuration for it, but :meth:`decide` forces it to ``None``
        so the vacated core contributes neither throughput nor dynamic
        power.  Idempotent: removing an already-vacant slot is a no-op.
        """
        if not 0 <= job < self.n_batch:
            raise ValueError(f"batch job index out of range: {job}")
        if not self._job_active[job]:
            return
        self.reset_job(job)
        self._job_active[job] = False
        self._count("controller.jobs_removed")
        log.info("batch slot %d vacated; gating it off", job)

    def add_job(self, job: int) -> None:
        """Bind a newcomer to vacant batch slot ``job`` between quanta.

        The caller replaces the slot's application on the machine
        first (:meth:`Machine.replace_batch_job`); this method clears
        the slot's learned state — the newcomer is profiled from
        scratch next quantum, the §V arrival story — and lifts the
        gate.  Raises if the slot is still occupied.
        """
        if not 0 <= job < self.n_batch:
            raise ValueError(f"batch job index out of range: {job}")
        if self._job_active[job]:
            raise ValueError(f"batch slot {job} already hosts a job")
        self._job_active[job] = True
        self.reset_job(job)
        self._count("controller.jobs_added")
        log.info("batch slot %d bound to a new job", job)

    def active_jobs(self) -> List[bool]:
        """Per-slot occupancy (True = slot hosts a live job)."""
        return list(self._job_active)

    def _apply_job_mask(self, assignment: Assignment) -> Assignment:
        """Force vacant slots' configurations off in ``assignment``.

        Used by the decision paths that reuse cached assignments
        (safe mode, last-known-good, fair share), which may predate a
        :meth:`remove_job`.  Gating only ever removes load, so every
        power/way feasibility argument still holds.
        """
        if all(self._job_active):
            return assignment
        return replace(
            assignment,
            batch_configs=tuple(
                cfg if self._job_active[j] else None
                for j, cfg in enumerate(assignment.batch_configs)
            ),
        )

    def _age_observations(self) -> None:
        """Advance observation ages and expire stale ones (phase drift)."""
        matrices = [self._bips_matrix, self._power_matrix]
        matrices.extend(self._latency_matrices.values())
        for matrix in matrices:
            matrix.tick()
            if self.config.observation_max_age is not None:
                matrix.expire(self.config.observation_max_age)

    # ------------------------------------------------------------------
    # Observation sanitisation (hardened mode; docs/robustness.md).
    # ------------------------------------------------------------------

    def _sample_ok(self, matrix: ObservedMatrix, col: int,
                   value: float, mad_check: bool = True) -> bool:
        """Whether a runtime observation is credible enough to ingest.

        Rejects non-finite and negative values outright, then applies a
        MAD-based outlier test against the offline-characterised
        (known-row) population at the same configuration: a sample more
        than ``outlier_mad_threshold`` robust standard deviations from
        the training median — with a floor of half the median, so
        heterogeneous-but-legitimate applications are not rejected — is
        treated as corrupted.

        ``mad_check=False`` skips the population test; tail-latency
        samples use it because a saturated service legitimately posts
        p99s tens of times above the historical median, and rejecting
        them would hide exactly the QoS violations the reclaim ladder
        must react to.
        """
        if not np.isfinite(value) or value < 0:
            return False
        if not mad_check:
            return True
        known = matrix.values[matrix.known_rows, col]
        if known.size < 4:
            return True
        med = float(np.median(known))
        mad_sigma = float(np.median(np.abs(known - med))) * 1.4826
        scale = max(mad_sigma, abs(med) * 0.5, 1e-12)
        return abs(value - med) <= self.config.outlier_mad_threshold * scale

    def _observe(self, matrix: ObservedMatrix, row: int, col: int,
                 value: float, mad_check: bool = True) -> bool:
        """Ingest one runtime observation, sanitised when hardened.

        Returns True if the observation entered the matrix.  Unhardened
        controllers keep the original behaviour: the matrix itself
        raises on non-finite values (the failure mode the fault study's
        unhardened arm exhibits).
        """
        if self.config.hardened and not self._sample_ok(
            matrix, col, value, mad_check=mad_check
        ):
            self._rejections_this_quantum += 1
            self._count("faults.detected.bad_sample")
            log.debug(
                "rejected observation %.4g at config %d (non-finite or "
                "outlier)", value, col,
            )
            return False
        matrix.observe(row, col, value)
        return True

    def _detect_stuck_sensor(self, sample: ProfilingSample) -> bool:
        """Flag bit-identical consecutive power samples (frozen sensor).

        Profiling noise makes exact repeats of every power reading
        across consecutive quanta vanishingly unlikely; equality means
        the sensor path is stuck and this quantum's power samples must
        not be ingested.  On a noise-free machine that premise fails —
        honest repeats are the norm — so detection is disabled there.
        """
        if self.machine.params.profiling_noise <= 0:
            return False
        powers = (
            tuple(float(p) for p in sample.batch_power_hi)
            + tuple(float(p) for p in sample.batch_power_lo)
            + (float(sample.lc_power_hi), float(sample.lc_power_lo))
        )
        stuck = (
            self._last_profile_powers is not None
            and powers == self._last_profile_powers
            and any(abs(p) > POWER_READING_EPS_W for p in powers)
        )
        self._last_profile_powers = powers
        return stuck

    def ingest_profiling(self, sample: ProfilingSample) -> None:
        """Fold the two 1 ms samples into the matrices (Fig. 3, step 1).

        Hardened controllers sanitise each sample (non-finite and
        MAD-outlier values are rejected and counted) and skip power
        ingestion entirely when the power sensor path reports
        bit-identical readings two quanta running (stuck sensor).
        """
        power_ok = True
        if self.config.hardened and self._detect_stuck_sensor(sample):
            power_ok = False
            self._rejections_this_quantum += 1
            self._count("faults.detected.stuck_sensor")
            log.warning(
                "power sensors returned bit-identical samples two quanta "
                "running; discarding this quantum's power samples"
            )
        for j in range(self.n_batch):
            row = self._batch_row(j)
            self._observe(self._bips_matrix, row, sample.hi_joint_index,
                          sample.batch_bips_hi[j])
            self._observe(self._bips_matrix, row, sample.lo_joint_index,
                          sample.batch_bips_lo[j])
            if power_ok:
                self._observe(self._power_matrix, row,
                              sample.hi_joint_index,
                              sample.batch_power_hi[j])
                self._observe(self._power_matrix, row,
                              sample.lo_joint_index,
                              sample.batch_power_lo[j])
        if power_ok:
            self._observe(self._power_matrix, self._lc_power_row(0),
                          sample.hi_joint_index, sample.lc_power_hi)
            self._observe(self._power_matrix, self._lc_power_row(0),
                          sample.lo_joint_index, sample.lc_power_lo)
            for idx, (hi, lo) in enumerate(
                zip(sample.extra_lc_power_hi, sample.extra_lc_power_lo),
                start=1,
            ):
                self._observe(
                    self._power_matrix, self._lc_power_row(idx),
                    sample.hi_joint_index, hi,
                )
                self._observe(
                    self._power_matrix, self._lc_power_row(idx),
                    sample.lo_joint_index, lo,
                )

    def _detect_failed_reconfigs(self, ran: Assignment) -> None:
        """Diff what ran against what was requested; quarantine repeat
        offenders.

        A core whose measured configuration kept its old section widths
        despite a requested change failed to reconfigure.  After
        ``quarantine_after`` consecutive failures the controller stops
        requesting changes for that core for ``quarantine_quanta``
        quanta (retry-with-quarantine), pinning it at its last observed
        configuration instead of thrashing a broken actuator.
        """
        requested = self._last_assignment
        if requested is None or len(requested.batch_configs) != len(
            ran.batch_configs
        ):
            return
        for j, (req, got) in enumerate(
            zip(requested.batch_configs, ran.batch_configs)
        ):
            if req is None or got is None:
                continue
            if req.core != got.core:
                self._count("faults.detected.reconfig_failed")
                self._reconfig_fail_streak[j] += 1
                self._quarantine_config[j] = got
                if (
                    self._reconfig_fail_streak[j]
                    >= self.config.quarantine_after
                    and self._quarantine[j] == 0
                ):
                    self._quarantine[j] = self.config.quarantine_quanta
                    self._count("faults.detected.core_quarantined")
                    log.warning(
                        "core %d failed %d consecutive reconfigurations; "
                        "quarantined for %d quanta at %s",
                        j, int(self._reconfig_fail_streak[j]),
                        self.config.quarantine_quanta, got.label,
                    )
            else:
                self._reconfig_fail_streak[j] = 0

    def _measurement_clean(self, measurement: SliceMeasurement) -> bool:
        """Whether a slice is good enough to refresh last-known-good."""
        values = [
            measurement.lc_p99, measurement.total_power,
            *measurement.batch_bips, *measurement.batch_power,
            *measurement.extra_lc_p99,
        ]
        if not all(math.isfinite(v) for v in values):
            return False
        if measurement.assignment.lc_cores > 0 and (
            measurement.lc_p99 > self.machine.lc_service.qos_latency_s
        ):
            return False
        for p99, service in zip(
            measurement.extra_lc_p99, self.machine.lc_services[1:]
        ):
            if p99 > service.qos_latency_s:
                return False
        return True

    def ingest_measurement(self, measurement: SliceMeasurement) -> None:
        """Fold the previous steady state back in (matrix update, §IV-B).

        Hardened controllers additionally diff the assignment that
        actually ran against the one they requested (failed-
        reconfiguration detection feeding the quarantine) and refresh
        the last-known-good assignment cache from clean slices.
        """
        assignment = measurement.assignment
        if self.config.hardened:
            self._detect_failed_reconfigs(assignment)
            if self._measurement_clean(measurement):
                self.last_good_assignment = assignment
        batch_cores = self.machine.params.n_cores - assignment.total_lc_cores
        active = assignment.active_batch_indices
        share = min(1.0, batch_cores / len(active)) if active else 0.0
        for j in active:
            joint = assignment.batch_configs[j]
            if share <= 0:
                continue
            row = self._batch_row(j)
            bips = measurement.batch_bips[j] / share
            power = measurement.batch_power[j] / share
            if bips > 0:
                self._observe(self._bips_matrix, row, joint.index, bips)
            if power > 0:
                self._observe(self._power_matrix, row, joint.index, power)

        lc_blocks = [
            (0, assignment.lc_cores, assignment.lc_config,
             measurement.lc_load, measurement.lc_p99,
             measurement.lc_core_power),
        ]
        for idx, alloc in enumerate(assignment.extra_lc, start=1):
            lc_blocks.append(
                (
                    idx,
                    alloc.cores,
                    alloc.config,
                    measurement.extra_lc_loads[idx - 1],
                    measurement.extra_lc_p99[idx - 1],
                    measurement.extra_lc_core_power[idx - 1],
                )
            )
        for idx, cores, config, lc_load, p99, core_power in lc_blocks:
            if cores <= 0 or config is None or p99 <= 0:
                continue
            bucket = nearest_load_bucket(lc_load)
            matrix = self._latency_matrix(bucket, cores, idx)
            if self._observe(matrix, matrix.n_rows - 1, config.index, p99,
                             mad_check=False):
                key = (idx, bucket, cores)
                self._latency_evidence.setdefault(key, set()).add(
                    config.index
                )
            if core_power > 0:
                self._observe(
                    self._power_matrix, self._lc_power_row(idx),
                    config.index, core_power,
                )

    # ------------------------------------------------------------------
    # Decision.
    # ------------------------------------------------------------------

    def decide(
        self,
        load: float,
        max_power: float,
        extra_loads: Sequence[float] = (),
    ) -> Assignment:
        """Pick the next quantum's assignment from current knowledge.

        ``extra_loads`` carries the load estimate of each LC service
        beyond the first on multi-service machines.
        """
        if max_power <= 0:
            raise ValueError("max_power must be positive")
        if len(extra_loads) != self.n_services - 1:
            raise ValueError(
                f"expected {self.n_services - 1} extra loads, "
                f"got {len(extra_loads)}"
            )
        self.deadline_degraded_quantum = False
        self.budget.begin_quantum()
        self._rungs_this_quantum = []
        recorder = self._provenance_recorder()
        self._age_observations()

        if self.config.hardened:
            self._tick_quarantine()
            if self._update_safe_mode():
                assignment = self._apply_job_mask(
                    self._safe_mode_assignment()
                )
                self._emit_provenance({
                    "mode": "safe_mode",
                    "budget": self._budget_meter(),
                })
                return assignment

        with self.tracer.span("sgd", category="controller") as sgd_span:
            bips_hat = self._reconstructor.reconstruct(self._bips_matrix)
            bips_diag = _diagnostics_state(
                self._reconstructor.last_diagnostics
            )
            power_hat = self._reconstructor.reconstruct(self._power_matrix)
            power_diag = _diagnostics_state(
                self._reconstructor.last_diagnostics
            )

        with self.tracer.span("lc_scan", category="controller") as lc_span:
            loads = [load, *extra_loads]
            selections = []
            predicted_p99 = []
            lc_snapshots: List[LCRegimeSnapshot] = []
            lc_entries: List[Dict[str, Any]] = []
            # The paper relocates at most one core per timeslice; with
            # several services the most recently violating one wins it.
            reclaim_available = True
            for idx in range(self.n_services):
                previous_cores = self.lc_cores_by_service[idx]
                (joint, cores, watts, reclaimed, p99_hat,
                 latency_row) = self._select_lc(
                    loads[idx],
                    power_hat[self._lc_power_row(idx)],
                    service_idx=idx,
                    allow_reclaim=reclaim_available,
                )
                if reclaimed:
                    reclaim_available = False
                    self._count("controller.core_reclamations")
                    log.info(
                        "service %d reclaims a core (now %d): QoS "
                        "predicted unreachable at load %.2f",
                        idx, cores, loads[idx],
                    )
                elif cores < previous_cores:
                    self._count("controller.core_yields")
                    log.info(
                        "service %d yields a core back to batch (now %d)",
                        idx, cores,
                    )
                selections.append((joint, cores, watts))
                predicted_p99.append(p99_hat)
                lc_snapshots.append(LCRegimeSnapshot(
                    service_idx=idx,
                    load=loads[idx],
                    bucket=nearest_load_bucket(loads[idx]),
                    cores=cores,
                    latency_row=latency_row,
                    chosen_index=joint.index if cores > 0 else None,
                ))
                lc_entries.append({
                    "service": idx,
                    "load": float(loads[idx]),
                    "cores": int(cores),
                    "config": int(joint.index) if cores > 0 else None,
                    "reclaimed": bool(reclaimed),
                })
            lc_joint, lc_cores, lc_power = selections[0]
        timings = StepTimings(sgd_s=sgd_span.duration_s + lc_span.duration_s)

        batch_bips = bips_hat[self.n_train:self.n_train + self.n_batch]
        batch_power = power_hat[self.n_train:self.n_train + self.n_batch]
        # Reconstructions are fresh arrays each quantum, so the
        # snapshot can hold views without copying.
        self.last_reconstruction = ReconstructionSnapshot(
            batch_bips=batch_bips,
            batch_power=batch_power,
            lc=tuple(lc_snapshots),
        )

        # Degradation ladder (docs/robustness.md): the reconstructions
        # above already charged the budget; price the search before
        # running it and step down a rung when it does not fit.  The
        # prices quoted here land in the provenance record's budget
        # section so `repro explain` can show why a rung was taken.
        searcher = self._searcher
        search_label = self.config.explorer
        full_cost: Optional[int] = None
        reduced_cost: Optional[int] = None
        if self.budget.limited and self._reduced_searcher is not None:
            full_cost = dds_search_cost(
                self.config.dds, self._last_x is not None
            )
            if not self.budget.can_afford(full_cost):
                reduced_cost = dds_search_cost(
                    self._reduced_searcher.params, self._last_x is not None
                )
                if self.budget.can_afford(reduced_cost):
                    searcher = self._reduced_searcher
                    search_label = "reduced_dds"
                    self._degradation_rung("reduced_dds")
                elif (
                    self.last_good_assignment is not None
                    or self._last_assignment is not None
                ):
                    assignment = self._apply_job_mask(
                        self._deadline_last_good_assignment()
                    )
                    self._emit_provenance({
                        "mode": "last_good",
                        "budget": self._budget_meter(
                            full_cost, reduced_cost
                        ),
                        "reconstruction": {
                            "bips": bips_diag, "power": power_diag,
                        },
                        "lc": lc_entries,
                    })
                    return assignment
                else:
                    assignment = self._apply_job_mask(
                        self._deadline_fair_share_assignment()
                    )
                    self._emit_provenance({
                        "mode": "fair_share",
                        "budget": self._budget_meter(
                            full_cost, reduced_cost
                        ),
                        "reconstruction": {
                            "bips": bips_diag, "power": power_diag,
                        },
                        "lc": lc_entries,
                    })
                    return assignment

        total_lc_cores = sum(cores for _, cores, _ in selections)
        batch_cores = self.machine.params.n_cores - total_lc_cores
        time_share = min(1.0, batch_cores / self.n_batch)
        reserved_power = (
            sum(watts * cores for _, cores, watts in selections)
            + self.machine.power.llc_power()
        )
        reserved_ways = sum(
            joint.cache_ways for joint, cores, _ in selections if cores > 0
        )
        target_power = max_power * (1.0 - self.config.power_headroom)
        objective = SystemObjective(
            bips=batch_bips,
            power=batch_power * time_share,
            max_power=target_power,
            max_ways=self.machine.params.llc_ways,
            reserved_power=reserved_power,
            reserved_ways=reserved_ways,
            time_share=time_share,
        )

        with self.tracer.span(
            "search", category="controller", explorer=self.config.explorer
        ) as search_span:
            # record_explored only stores the candidate trace for the
            # provenance summary; it changes neither the RNG stream nor
            # the evaluation count, so recorded and bare runs decide
            # identically.
            result = searcher.search(
                objective,
                n_dims=self.n_batch,
                n_confs=N_JOINT_CONFIGS,
                rng=self._rng,
                initial=self._last_x,
                record_explored=recorder is not None,
            )
        timings.search_s = search_span.duration_s
        # Wall-clock phase timings are diagnostics outside the
        # determinism contract (render_scalability drops them too), so
        # snapshot/restore deliberately lets them reset on resume.
        self.timings.append(timings)  # repro: noqa[SNAP701]

        x = result.best_x
        self._last_x = x.copy()
        configs: List[Optional[JointConfig]] = [
            JointConfig.from_index(int(i)) for i in x
        ]
        with self.tracer.span("power_fallback", category="controller"):
            active_before = sum(1 for c in configs if c is not None)
            configs = self._power_fallback(
                configs, batch_power * time_share, reserved_power,
                target_power,
            )
            gated = active_before - sum(1 for c in configs if c is not None)
            if gated > 0:
                self._count("controller.emergency_core_off", gated)
                log.info(
                    "power fallback gated %d batch job(s) to meet "
                    "%.1f W", gated, target_power,
                )
        if self.config.hardened:
            # Quarantined cores are not asked to change their section
            # widths; they keep their last observed configuration (the
            # cache-way choice still applies — partition registers are
            # a separate, working actuator).
            for j in range(self.n_batch):
                pinned = self._quarantine_config[j]
                if (
                    self._quarantine[j] > 0
                    and pinned is not None
                    and configs[j] is not None
                    and configs[j].core != pinned.core
                ):
                    configs[j] = JointConfig(
                        pinned.core, configs[j].cache_ways
                    )
        if not all(self._job_active):
            # Vacant slots never execute: gate them off no matter what
            # the search proposed for them.
            configs = [
                cfg if self._job_active[j] else None
                for j, cfg in enumerate(configs)
            ]
        assignment = Assignment(
            lc_cores=lc_cores,
            lc_config=lc_joint if lc_cores > 0 else None,
            batch_configs=tuple(configs),
            extra_lc=tuple(
                LCAllocation(cores=cores, config=joint)
                for joint, cores, _ in selections[1:]
            ),
        )
        self.last_prediction = self._predict_assignment(
            assignment, batch_bips, batch_power, predicted_p99,
            reserved_power, batch_cores, time_share,
        )
        self.lc_cores_by_service = [cores for _, cores, _ in selections]
        self._last_assignment = assignment
        if recorder is not None:
            chosen_power, chosen_ways, _, _ = classify_candidates(
                objective, x[None, :]
            )
            self._emit_provenance({
                "mode": (
                    "reduced_dds" if search_label == "reduced_dds"
                    else "normal"
                ),
                "budget": self._budget_meter(full_cost, reduced_cost),
                "reconstruction": {"bips": bips_diag, "power": power_diag},
                "lc": lc_entries,
                "power": {
                    "max_power_w": float(max_power),
                    "target_power_w": float(target_power),
                    "headroom_fraction": float(self.config.power_headroom),
                    "reserved_power_w": float(reserved_power),
                },
                "search": {
                    "searcher": search_label,
                    "evaluations": int(result.evaluations),
                    **candidate_provenance(
                        objective, result.explored, recorder.top_k
                    ),
                },
                "power_fallback": {"cores_disabled": int(gated)},
                # The chosen point is the search's winner *before* the
                # power fallback and quarantine pinning, whose effects
                # are recorded in their own sections.
                "chosen": {
                    "objective": float(result.best_objective),
                    "power_w": float(chosen_power[0]),
                    "ways": float(chosen_ways[0]),
                },
            })
        return assignment

    # ------------------------------------------------------------------
    # Graceful degradation (hardened mode; docs/robustness.md).
    # ------------------------------------------------------------------

    def _tick_quarantine(self) -> None:
        """Advance quarantine timers; release served-out cores."""
        for j in range(self.n_batch):
            if self._quarantine[j] > 0:
                self._quarantine[j] -= 1
                if self._quarantine[j] == 0:
                    self._reconfig_fail_streak[j] = 0
                    self._count("faults.recovered.quarantine_released")
                    log.info(
                        "core %d released from quarantine; "
                        "reconfigurations will be retried", j,
                    )

    def _update_safe_mode(self) -> bool:
        """Advance the safe-mode state machine; True = stay degraded.

        A quantum is *bad* when sanitisation rejected at least one
        observation since the previous decision (corrupted samples,
        stuck sensors).  ``safe_mode_after`` consecutive bad quanta
        mean the matrices can no longer be trusted, so the controller
        stops optimising and serves the safe-mode assignment until
        ``safe_mode_hold`` clean quanta have passed.
        """
        bad = self._rejections_this_quantum > 0
        self._rejections_this_quantum = 0
        self._bad_quanta_streak = self._bad_quanta_streak + 1 if bad else 0
        if self._safe_mode_remaining > 0:
            if bad:
                self._safe_mode_remaining = self.config.safe_mode_hold
            else:
                self._safe_mode_remaining -= 1
            if self._safe_mode_remaining > 0:
                return True
            self._count("faults.recovered.safe_mode_exited")
            log.info(
                "%d clean quanta: exiting safe mode, resuming normal "
                "decisions", self.config.safe_mode_hold,
            )
            return False
        if self._bad_quanta_streak >= self.config.safe_mode_after:
            self._safe_mode_remaining = self.config.safe_mode_hold
            self._count("faults.detected.safe_mode_entered")
            log.warning(
                "%d consecutive bad quanta: entering safe mode "
                "(narrowest batch configurations, QoS-priority LC)",
                self._bad_quanta_streak,
            )
            return True
        return False

    @property
    def in_safe_mode(self) -> bool:
        """Whether the controller is currently serving safe mode."""
        return self._safe_mode_remaining > 0

    def _safe_mode_assignment(self) -> Assignment:
        """The distrust-everything fallback decision.

        QoS priority: every LC service keeps its current cores on the
        conservative widest configuration with the full cache
        allocation; batch jobs run the narrowest core with the minimum
        cache share (lowest power draw without gating work outright).
        If the LLC cannot cover every allocation, batch jobs are gated
        from the tail until it can.
        """
        p = self.machine.params
        conservative = JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1])
        narrow = JointConfig(CoreConfig.narrowest(), CACHE_ALLOCS[0])
        lc_cores = self.lc_cores_by_service[0]
        lc_ways = conservative.cache_ways * sum(
            1 for c in self.lc_cores_by_service if c > 0
        )
        # Two half-way batch jobs share one physical way.
        budget_jobs = max(0, int((p.llc_ways - lc_ways) * 2))
        configs: List[Optional[JointConfig]] = [
            narrow if j < budget_jobs else None
            for j in range(self.n_batch)
        ]
        assignment = Assignment(
            lc_cores=lc_cores,
            lc_config=conservative if lc_cores > 0 else None,
            batch_configs=tuple(configs),
            extra_lc=tuple(
                LCAllocation(cores=cores, config=conservative)
                for cores in self.lc_cores_by_service[1:]
            ),
        )
        # No trusted reconstruction backs this decision: pair it with
        # no prediction rather than a stale one.
        self.last_prediction = None
        self.last_reconstruction = None
        self._last_assignment = assignment
        return assignment

    # ------------------------------------------------------------------
    # Deadline degradation ladder (docs/robustness.md).
    # ------------------------------------------------------------------

    def _degradation_rung(self, rung: str) -> None:
        """Record one degradation-ladder step taken this quantum."""
        self.deadline_degraded_quantum = True
        self._rungs_this_quantum.append(rung)
        self._count("controller.degradation.rungs")
        self._count(f"controller.degradation.{rung}")
        log.warning(
            "decision budget exhausted (%d of %s operations spent): "
            "taking degradation rung %s",
            self.budget.spent, self.budget.limit, rung,
        )

    def _deadline_last_good_assignment(self) -> Assignment:
        """Degradation rung 2: re-serve the last assignment known good.

        Falls back to the most recently *requested* assignment when no
        slice has come back clean yet.  No trusted reconstruction backs
        the decision, so the prediction and reconstruction snapshots
        are cleared — the accuracy auditor counts the quantum as
        unaudited and attributes its QoS violations to the deadline.
        """
        self._degradation_rung("last_good")
        assignment = self.last_good_assignment
        if assignment is None:
            assignment = self._last_assignment
        if assignment is None:  # pragma: no cover - guarded by decide()
            raise RuntimeError("no previous assignment to degrade to")
        self.last_prediction = None
        self.last_reconstruction = None
        self._last_assignment = assignment
        self.lc_cores_by_service = [
            cores for cores, _ in assignment.lc_allocations()
        ]
        return assignment

    def _deadline_fair_share_assignment(self) -> Assignment:
        """Degradation rung 3: a static fair-share assignment.

        Taken when the budget cannot even fund the reduced search and
        no previous assignment exists (cold start under extreme
        pressure).  Every LC service keeps its cores on the
        conservative widest configuration; the LLC ways left after the
        LC reservation are split evenly across the batch jobs on the
        narrowest core, gating the tail if the cache cannot cover
        everyone.
        """
        self._degradation_rung("fair_share")
        p = self.machine.params
        conservative = JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1])
        lc_ways = conservative.cache_ways * sum(
            1 for c in self.lc_cores_by_service if c > 0
        )
        free_ways = max(0.0, p.llc_ways - lc_ways)
        share = free_ways / max(1, self.n_batch)
        fair_ways = CACHE_ALLOCS[0]
        for candidate in CACHE_ALLOCS:
            if candidate <= share:
                fair_ways = max(fair_ways, candidate)
        fair = JointConfig(CoreConfig.narrowest(), fair_ways)
        # Half-way shares are the exact sentinel 0.5, never computed;
        # two half-way holders share one physical way.
        if fair.cache_ways == 0.5:  # repro: noqa[UNIT301]
            budget_jobs = int(free_ways * 2)
        else:
            budget_jobs = int(free_ways // fair.cache_ways)
        configs: List[Optional[JointConfig]] = [
            fair if j < budget_jobs else None
            for j in range(self.n_batch)
        ]
        lc_cores = self.lc_cores_by_service[0]
        assignment = Assignment(
            lc_cores=lc_cores,
            lc_config=conservative if lc_cores > 0 else None,
            batch_configs=tuple(configs),
            extra_lc=tuple(
                LCAllocation(cores=cores, config=conservative)
                for cores in self.lc_cores_by_service[1:]
            ),
        )
        self.last_prediction = None
        self.last_reconstruction = None
        self._last_assignment = assignment
        return assignment

    def _predict_assignment(
        self,
        assignment: Assignment,
        batch_bips: np.ndarray,
        batch_power: np.ndarray,
        predicted_p99: Sequence[float],
        reserved_power: float,
        batch_cores: int,
        time_share: float,
    ) -> DecisionPrediction:
        """Bundle the decision's predicted BIPS/p99/power for telemetry.

        Mirrors the machine's measurement accounting (time-multiplexing
        share, gated-core residuals) so the prediction is directly
        comparable to the next :class:`SliceMeasurement`.
        """
        bips_pred = []
        power_pred = 0.0
        active = 0
        for j, cfg in enumerate(assignment.batch_configs):
            if cfg is None:
                bips_pred.append(math.nan)
            else:
                active += 1
                bips_pred.append(float(batch_bips[j, cfg.index]) * time_share)
                power_pred += float(batch_power[j, cfg.index]) * time_share
        gated_cores = batch_cores - min(batch_cores, active)
        power_pred += (
            gated_cores * self.machine.power.gated_core_power()
            + reserved_power
        )
        return DecisionPrediction(
            bips=tuple(bips_pred),
            p99_s=tuple(predicted_p99),
            power_w=power_pred,
        )

    def _select_lc(
        self,
        load: float,
        lc_power_row: np.ndarray,
        service_idx: int = 0,
        allow_reclaim: bool = True,
    ) -> Tuple[JointConfig, int, float, bool, float, Optional[np.ndarray]]:
        """Choose one LC service's configuration and core count.

        Returns ``(config, cores, power, reclaimed, predicted_p99,
        latency_row)`` (§VI-A, §VIII-D3); ``allow_reclaim`` arbitrates
        the one-core-per-timeslice relocation budget among multiple
        services.  ``predicted_p99`` is the reconstructed tail latency
        of the chosen configuration and ``latency_row`` the full
        reconstructed row it was read from (both NaN/None on the
        cold-start path, where the controller runs conservative
        without a prediction — the accuracy auditor skips such
        regimes).
        """
        service = self.machine.lc_services[service_idx]
        bucket = nearest_load_bucket(load)
        qos = service.qos_latency_s
        lc_cores = self.lc_cores_by_service[service_idx]
        conservative = JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1])

        if not self._has_latency_observation(bucket, lc_cores, service_idx):
            # Cold start at this (load, core count): run wide with the
            # full cache allocation; predictions become available once
            # one slice has been measured.
            return conservative, lc_cores, float(
                lc_power_row[conservative.index]
            ), False, math.nan, None

        # Memoise the per-core-count latency reconstructions: the scan,
        # the downgrade fallback and the final prediction record all
        # read the same rows, and each reconstruction costs real time.
        latency_cache: Dict[int, np.ndarray] = {}

        def predict(n_cores: int) -> np.ndarray:
            if n_cores not in latency_cache:
                latency_cache[n_cores] = self._predict_latency(
                    bucket, n_cores, service_idx
                )
            return latency_cache[n_cores]

        def best_config(
            n_cores: int, guard: Optional[float] = None
        ) -> Optional[JointConfig]:
            """Least predicted power among QoS-meeting configurations.

            The QoS bar carries a guardband that shrinks as latency
            observations accumulate (reconstruction from one or two
            samples is uncertain); ties break toward smaller cache
            allocations, freeing ways for the batch jobs (§VI-A).
            """
            latency = predict(n_cores)
            if guard is None:
                guard = self._qos_guard(bucket, n_cores, service_idx)
            target = qos * (1.0 - guard)
            best = None
            best_key = (np.inf, np.inf)
            for index in range(N_JOINT_CONFIGS):
                if latency[index] > target:
                    continue
                joint = JointConfig.from_index(index)
                key = (lc_power_row[index], joint.cache_ways)
                if key < best_key:
                    best = joint
                    best_key = key
            return best

        reclaimed = False
        choice = best_config(lc_cores)
        if choice is None:
            # Nothing clears the guarded bar.  The guard exists to veto
            # risky downgrades, not to trigger reclamation: if raw QoS
            # is still predicted reachable, take the *safest
            # power-improving step* — among configurations meeting raw
            # QoS and predicted cheaper than running wide, the one with
            # the lowest predicted latency.  Measuring it relaxes the
            # guard for the next quantum.  Only when even raw QoS is
            # unreachable does the controller reclaim one core per
            # timeslice (§VI-A).
            choice = self._safest_downgrade(
                bucket, lc_cores, lc_power_row, qos, service_idx,
                latency=predict(lc_cores),
            )
            if choice is None:
                if allow_reclaim:
                    lc_cores = min(
                        lc_cores + 1, self.machine.params.n_cores - 1
                    )
                    reclaimed = True
                choice = conservative
        elif (
            lc_cores > self.config.min_lc_cores
            and self._latency_observations(bucket, lc_cores, service_idx) >= 2
        ):
            # Yield a core back if QoS would still hold with slack AND
            # total LC power would not grow: fewer cores usually means a
            # wider (hungrier) per-core configuration, which can cost
            # more watts than the freed core is worth.  Yields are
            # rate-limited by hysteresis (the current regime must have
            # been measured at least twice) so each new core count is
            # validated before descending further.
            latency_fewer = predict(lc_cores - 1)
            slack_target = qos * (1.0 - self.config.lc_slack_to_yield)
            fewer_choice = best_config(lc_cores - 1)
            if (
                fewer_choice is not None
                and latency_fewer[fewer_choice.index] <= slack_target
                and lc_power_row[fewer_choice.index] * (lc_cores - 1)
                < lc_power_row[choice.index] * lc_cores
            ):
                lc_cores -= 1
                choice = fewer_choice
        lc_power = float(lc_power_row[choice.index])
        latency_row = predict(lc_cores)
        predicted_p99 = float(latency_row[choice.index])
        return choice, lc_cores, lc_power, reclaimed, predicted_p99, latency_row

    def _safest_downgrade(
        self,
        bucket: float,
        n_cores: int,
        lc_power_row: np.ndarray,
        qos: float,
        service_idx: int = 0,
        latency: Optional[np.ndarray] = None,
    ) -> Optional[JointConfig]:
        """Lowest-latency config that meets raw QoS and saves power."""
        if latency is None:
            latency = self._predict_latency(bucket, n_cores, service_idx)
        wide_power = lc_power_row[
            JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1]).index
        ]
        best = None
        best_key = (np.inf, np.inf)
        for index in range(N_JOINT_CONFIGS):
            if latency[index] > qos or lc_power_row[index] >= wide_power:
                continue
            key = (latency[index], lc_power_row[index])
            if key < best_key:
                best = JointConfig.from_index(index)
                best_key = key
        return best

    def _latency_observations(
        self, bucket: float, n_cores: int, service_idx: int = 0
    ) -> int:
        """Measurements of one running service at this (load, cores)."""
        key = (service_idx, bucket, n_cores)
        if key not in self._latency_matrices:
            return 0
        matrix = self._latency_matrices[key]
        return matrix.observed_count(matrix.n_rows - 1)

    def _has_latency_observation(
        self, bucket: float, n_cores: int, service_idx: int = 0
    ) -> bool:
        """Whether the service has any measurement at this regime."""
        return self._latency_observations(bucket, n_cores, service_idx) > 0

    def _qos_guard(
        self, bucket: float, n_cores: int, service_idx: int = 0
    ) -> float:
        """Safety margin on QoS, by how much latency evidence exists.

        Uses the *lifetime* measurement count for this regime: the
        guard relaxes with accumulated evidence and stays relaxed even
        after individual observations age out of the matrices.
        """
        observed = max(
            self._latency_observations(bucket, n_cores, service_idx),
            len(self._latency_evidence.get((service_idx, bucket, n_cores), ())),
        )
        if observed < 2:
            return self.config.qos_guard_sparse
        if observed < 4:
            return self.config.qos_guard_medium
        return self.config.qos_guard_dense

    def _predict_latency(
        self, bucket: float, n_cores: int, service_idx: int = 0
    ) -> np.ndarray:
        """Reconstructed p99 of the running service across 108 configs.

        When the service has never been measured at this (load, cores)
        regime but has at another core count, predictions are
        *transferred*: the known services' rows teach how latency moves
        between core counts (a per-configuration log-ratio), which is
        applied to the reconstructed row of the observed regime.  This
        is what lets core reclamation/yielding reason about a regime
        before entering it (§VIII-D3).
        """
        matrix = self._latency_matrix(bucket, n_cores, service_idx)
        row = matrix.n_rows - 1
        if matrix.observed_count(row) > 0:
            full = self._reconstructor.reconstruct(matrix)
            return full[row]
        observed_counts = [
            m
            for (s_idx, b, m), mat in self._latency_matrices.items()
            if s_idx == service_idx
            and b == bucket
            and m != n_cores
            and mat.observed_count(mat.n_rows - 1) > 0
        ]
        if observed_counts:
            source = min(observed_counts, key=lambda m: abs(m - n_cores))
            base = self._predict_latency(bucket, source, service_idx)
            ratio = self._core_count_ratio(
                bucket, source, n_cores, service_idx
            )
            return base * ratio
        # Nothing measured at this load at all: fall back to the known
        # services' geometric-mean latency profile.
        known = np.log(matrix.values[:-1])
        return np.exp(known.mean(axis=0))

    def _core_count_ratio(
        self,
        bucket: float,
        from_cores: int,
        to_cores: int,
        service_idx: int = 0,
    ) -> np.ndarray:
        """Known-row latency ratio between two core counts, per config."""
        from_rows = self._latency_matrix(
            bucket, from_cores, service_idx
        ).values[:-1]
        to_rows = self._latency_matrix(bucket, to_cores, service_idx).values[:-1]
        return np.exp(
            np.log(to_rows).mean(axis=0) - np.log(from_rows).mean(axis=0)
        )

    def _power_fallback(
        self,
        configs: List[Optional[JointConfig]],
        power_table: np.ndarray,
        reserved_power: float,
        max_power: float,
    ) -> List[Optional[JointConfig]]:
        """Gate cores in descending predicted power if still over budget."""
        def predicted_total() -> float:
            total = reserved_power
            for j, cfg in enumerate(configs):
                if cfg is not None:
                    total += power_table[j, cfg.index]
                else:
                    total += self.machine.power.gated_core_power()
            return total

        while predicted_total() > max_power:
            active = [j for j, cfg in enumerate(configs) if cfg is not None]
            if not active:
                break
            hungriest = max(
                active, key=lambda j: power_table[j, configs[j].index]
            )
            configs[hungriest] = None
        return configs

    # ------------------------------------------------------------------
    # Crash-safe snapshots (docs/robustness.md).
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSONable mutable state for crash-safe checkpoints.

        Captures every piece of state that shapes future decisions:
        the sampled metric matrices, the latency-evidence ledger, the
        RNG stream, the safe-mode and quarantine machines, the
        last-known-good cache and the deadline meter.  Wall-clock
        ``timings`` and the per-quantum prediction snapshots are
        excluded: timings sit outside the determinism contract, and a
        completed quantum's prediction/reconstruction is never read
        again once the next decision starts.  Restoring into a freshly
        constructed controller replays the run bit-exactly.
        """
        return {
            "version": 1,
            "rng": self._rng.bit_generator.state,
            "lc_cores_by_service": list(self.lc_cores_by_service),
            "last_assignment": assignment_state(self._last_assignment),
            "last_good_assignment": assignment_state(
                self.last_good_assignment
            ),
            "last_x": (
                [int(v) for v in self._last_x]
                if self._last_x is not None
                else None
            ),
            "rejections_this_quantum": int(self._rejections_this_quantum),
            "bad_quanta_streak": int(self._bad_quanta_streak),
            "safe_mode_remaining": int(self._safe_mode_remaining),
            "last_profile_powers": (
                list(self._last_profile_powers)
                if self._last_profile_powers is not None
                else None
            ),
            "reconfig_fail_streak": [
                int(v) for v in self._reconfig_fail_streak
            ],
            "quarantine": [int(v) for v in self._quarantine],
            "quarantine_config": [
                cfg.index if cfg is not None else None
                for cfg in self._quarantine_config
            ],
            "job_active": [bool(v) for v in self._job_active],
            "bips_matrix": _matrix_state(self._bips_matrix),
            "power_matrix": _matrix_state(self._power_matrix),
            "latency_matrices": [
                {
                    "key": list(key),
                    "matrix": _matrix_state(self._latency_matrices[key]),
                }
                for key in sorted(self._latency_matrices)
            ],
            "latency_evidence": [
                {
                    "key": list(key),
                    "configs": sorted(
                        int(c) for c in self._latency_evidence[key]
                    ),
                }
                for key in sorted(self._latency_evidence)
            ],
            "budget": self.budget.state(),
            "deadline_degraded_quantum": bool(self.deadline_degraded_quantum),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore the state captured by :meth:`snapshot`.

        The controller must have been constructed against the same
        machine, training set, and configuration as the snapshotted one
        (that part of its state is deterministic); only the mutable
        runtime state is overwritten.
        """
        if state.get("version") != 1:
            raise ValueError(
                "unsupported controller snapshot version "
                f"{state.get('version')!r}"
            )
        self._rng.bit_generator.state = state["rng"]
        self.lc_cores_by_service = [
            int(v) for v in state["lc_cores_by_service"]
        ]
        self._last_assignment = assignment_from_state(
            state["last_assignment"]
        )
        self.last_good_assignment = assignment_from_state(
            state["last_good_assignment"]
        )
        last_x = state["last_x"]
        self._last_x = (
            np.asarray(last_x, dtype=int) if last_x is not None else None
        )
        self._rejections_this_quantum = int(state["rejections_this_quantum"])
        self._bad_quanta_streak = int(state["bad_quanta_streak"])
        self._safe_mode_remaining = int(state["safe_mode_remaining"])
        powers = state["last_profile_powers"]
        self._last_profile_powers = (
            tuple(float(v) for v in powers) if powers is not None else None
        )
        self._reconfig_fail_streak = np.asarray(
            state["reconfig_fail_streak"], dtype=int
        )
        self._quarantine = np.asarray(state["quarantine"], dtype=int)
        self._quarantine_config = [
            JointConfig.from_index(int(i)) if i is not None else None
            for i in state["quarantine_config"]
        ]
        # Pre-occupancy snapshots (before live job add/remove existed)
        # carry no mask: every slot was live by construction.
        self._job_active = [
            bool(v)
            for v in state.get("job_active", [True] * self.n_batch)
        ]
        _restore_matrix(self._bips_matrix, state["bips_matrix"])
        _restore_matrix(self._power_matrix, state["power_matrix"])
        self._latency_matrices = {}
        for entry in state["latency_matrices"]:
            shape = entry["matrix"]
            matrix = ObservedMatrix(
                int(shape["n_rows"]), int(shape["n_cols"])
            )
            _restore_matrix(matrix, entry["matrix"])
            self._latency_matrices[_regime_key(entry["key"])] = matrix
        self._latency_evidence = {
            _regime_key(entry["key"]): {int(c) for c in entry["configs"]}
            for entry in state["latency_evidence"]
        }
        self.budget.restore(state["budget"])
        self.deadline_degraded_quantum = bool(
            state["deadline_degraded_quantum"]
        )
        # A completed quantum's prediction snapshots are never read
        # after the next decide() begins; a resumed run starts at a
        # quantum boundary, so they restart empty — as does the
        # per-decision provenance rung trail (no decision in flight).
        self.last_prediction = None
        self.last_reconstruction = None
        self._rungs_this_quantum = []

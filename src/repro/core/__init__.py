"""CuttleSys proper: inference, search, and the resource controller.

The paper's contribution is the combination of

* **PQ-reconstruction with SGD** (:mod:`repro.core.sgd`) — collaborative
  filtering that infers each job's throughput / tail latency / power on
  all 108 configurations from two profiling samples plus an offline
  training set,
* **parallel Dynamically Dimensioned Search** (:mod:`repro.core.dds`) —
  a high-dimensional stochastic search that picks a per-job joint
  configuration maximising batch throughput under power, cache and QoS
  constraints, and
* the **Resource / Configuration controllers**
  (:mod:`repro.core.controller`, :mod:`repro.core.runtime`) that close
  the loop every 100 ms decision quantum.

Baseline estimators/search algorithms used in the paper's comparisons
(Flicker's RBF surrogate and genetic algorithm) live in
:mod:`repro.core.rbf` and :mod:`repro.core.ga`.
"""

from repro.core.controller import ControllerConfig, ResourceController
from repro.core.dds import DDSParams, DDSResult, DDSSearch
from repro.core.ga import GAParams, GAResult, GeneticSearch
from repro.core.matrices import ObservedMatrix, TruthTables
from repro.core.objective import SystemObjective
from repro.core.oracle import OracleReconfigPolicy
from repro.core.rbf import RBFSurrogate, l9_sample_configs
from repro.core.runtime import CuttleSysPolicy
from repro.core.sgd import PQReconstructor, SGDParams

__all__ = [
    "ControllerConfig",
    "CuttleSysPolicy",
    "DDSParams",
    "DDSResult",
    "DDSSearch",
    "GAParams",
    "GAResult",
    "GeneticSearch",
    "ObservedMatrix",
    "OracleReconfigPolicy",
    "PQReconstructor",
    "RBFSurrogate",
    "ResourceController",
    "SGDParams",
    "SystemObjective",
    "TruthTables",
    "l9_sample_configs",
]

"""Deterministic decision-deadline accounting (docs/robustness.md).

CuttleSys's premise is that reconstruction + search fit inside the
100 ms decision quantum, but nothing in the original design bounds what
happens when they do not.  :class:`DecisionBudget` meters the decision
loop in *virtual time* — deterministic operation counts (SGD refinement
iterations, DDS/GA candidate evaluations) rather than wall-clock, so
deadline behaviour replays bit-exactly across hosts and ``--jobs``
settings and the DET103 wall-clock lint stays clean.

On exhaustion the controller walks a degradation ladder (full DDS →
reduced-sample DDS → last-known-good assignment → static fair-share);
the rung taken each quantum is recorded under the
``controller.degradation.*`` counters and attributed by the accuracy
auditor as the ``deadline_degraded`` QoS-violation cause.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dds import DDSParams


class DecisionBudget:
    """Per-quantum operation budget for one controller's decision loop.

    ``limit`` is the number of metered operations (SGD iterations plus
    search-candidate evaluations) one decision quantum may spend; None
    meters without ever degrading.  The budget is charged by the
    reconstructor and the searcher through their ``budget`` hook — the
    same wiring pattern as their telemetry ``tracer`` — so nested uses
    (e.g. latency reconstructions inside the LC scan) are captured
    without the controller enumerating call sites.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("decision budget must be at least 1 operation")
        self.limit = limit
        #: Operations charged in the current quantum.
        self.spent = 0
        #: Operations charged over the budget's lifetime.
        self.total_spent = 0
        #: Quanta started (``begin_quantum`` calls).
        self.quanta = 0
        #: Lifetime operations per phase label (``charge(..., phase=)``).
        #: Purely additive attribution for the virtual-cost profiler;
        #: the ``spent``/``total_spent`` arithmetic is unchanged.
        self.spent_by_phase: Dict[str, int] = {}

    @property
    def limited(self) -> bool:
        """Whether exhaustion is possible (a finite limit is set)."""
        return self.limit is not None

    def begin_quantum(self) -> None:
        """Reset the per-quantum meter at a decision boundary."""
        self.spent = 0
        self.quanta += 1

    def charge(self, units: int, phase: Optional[str] = None) -> None:
        """Record ``units`` operations against the current quantum.

        ``phase`` attributes the charge to a named hot-path phase
        (``sgd.reconstruct``, ``dds.search``, ...) without altering the
        deadline arithmetic itself.
        """
        if units < 0:
            raise ValueError("cannot charge a negative operation count")
        self.spent += units
        self.total_spent += units
        if phase is not None:
            self.spent_by_phase[phase] = (
                self.spent_by_phase.get(phase, 0) + units
            )

    def can_afford(self, units: int) -> bool:
        """Whether ``units`` more operations fit in this quantum."""
        if self.limit is None:
            return True
        return self.spent + units <= self.limit

    def remaining(self) -> Optional[int]:
        """Operations left this quantum (None when unlimited)."""
        if self.limit is None:
            return None
        return max(0, self.limit - self.spent)

    def state(self) -> Dict[str, Any]:
        """JSONable meter state for controller snapshots."""
        return {
            "spent": self.spent,
            "total_spent": self.total_spent,
            "quanta": self.quanta,
            "by_phase": {
                phase: self.spent_by_phase[phase]
                for phase in sorted(self.spent_by_phase)
            },
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore the meter from :meth:`state` (limit comes from config).

        ``by_phase`` is tolerated as absent so pre-phase snapshots stay
        loadable.
        """
        self.spent = int(state["spent"])
        self.total_spent = int(state["total_spent"])
        self.quanta = int(state["quanta"])
        self.spent_by_phase = {
            str(phase): int(units)
            for phase, units in dict(state.get("by_phase", {})).items()
        }


def dds_search_cost(params: "DDSParams", seeded: bool) -> int:
    """Exact candidate-evaluation count of one DDS search.

    The initial random population, the optional seeded point (the
    previous quantum's decision), then ``max_iter`` barrier iterations
    of ``points_per_iteration`` steps across ``n_threads`` logical
    searchers.  Deterministic by construction — DDS never early-exits —
    so the ladder can price a search before running it.
    """
    return (
        params.initial_random_points
        + (1 if seeded else 0)
        + params.max_iter * params.points_per_iteration * params.n_threads
    )


def reduced_dds_params(params: "DDSParams") -> "DDSParams":
    """The reduced-sample search of degradation rung 1.

    A deterministic ~70x shrink of the configured search (default
    6450 → 91 evaluations): fewer random starts, fewer logical
    threads, shallower iteration schedule.  Floors keep every field
    inside :class:`~repro.core.dds.DDSParams` validation range.
    """
    return replace(
        params,
        initial_random_points=max(1, params.initial_random_points // 5),
        points_per_iteration=max(1, params.points_per_iteration // 2),
        max_iter=max(2, params.max_iter // 10),
        n_threads=max(1, params.n_threads // 4),
    )

"""Reconstruction matrices: ground truth, observations, and training rows.

CuttleSys maintains three application × configuration matrices —
throughput (BIPS, batch jobs), tail latency (LC services), and power —
whose rows are either *known* applications characterised offline on all
108 joint configurations, or currently-running applications observed on
just a couple of configurations (two profiling samples plus whatever
steady states they have visited).  :class:`ObservedMatrix` is the sparse
container the controller fills at runtime; :class:`TruthTables`
pre-computes the noise-free ground truth the oracle baselines and the
accuracy experiments (Fig. 5) compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.coreconfig import N_JOINT_CONFIGS, JointConfig
from repro.sim.perf import AppProfile, PerformanceModel
from repro.sim.power import PowerModel
from repro.workloads.latency_critical import LCService


@dataclass
class ObservedMatrix:
    """A sparse ratings matrix: known rows plus runtime observations.

    ``values`` is dense with ``mask`` marking which entries are
    observed; unobserved entries hold zeros and are ignored by the
    reconstruction.  Known (offline-characterised) rows are fully
    observed.
    """

    n_rows: int
    n_cols: int = N_JOINT_CONFIGS
    values: np.ndarray = field(init=False)
    mask: np.ndarray = field(init=False)
    #: Quanta since each observation was taken (0 = this quantum).
    age: np.ndarray = field(init=False)
    #: Rows installed as offline characterisations (never expire).
    known_rows: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.n_rows <= 0 or self.n_cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        self.values = np.zeros((self.n_rows, self.n_cols))
        self.mask = np.zeros((self.n_rows, self.n_cols), dtype=bool)
        self.age = np.zeros((self.n_rows, self.n_cols), dtype=int)
        self.known_rows = np.zeros(self.n_rows, dtype=bool)

    def set_known_row(self, row: int, values: np.ndarray) -> None:
        """Install a fully-characterised (training) row."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n_cols,):
            raise ValueError(
                f"expected a row of {self.n_cols} values, got {values.shape}"
            )
        self.values[row] = values
        self.mask[row] = True
        self.age[row] = 0
        self.known_rows[row] = True

    def observe(self, row: int, col: int, value: float) -> None:
        """Record one runtime measurement (later samples overwrite)."""
        if not np.isfinite(value):
            raise ValueError(f"observation must be finite, got {value}")
        self.values[row, col] = value
        self.mask[row, col] = True
        self.age[row, col] = 0

    def observed_count(self, row: int) -> int:
        """Number of observed entries in ``row``."""
        return int(np.sum(self.mask[row]))

    def tick(self) -> None:
        """One decision quantum passes: age every runtime observation."""
        self.age[self.mask] += 1

    def expire(self, max_age: int) -> int:
        """Drop runtime observations older than ``max_age`` quanta.

        Offline-characterised (known) rows never expire.  Under phase
        drift, stale steady-state samples describe behaviour the job no
        longer exhibits; expiring them keeps the reconstruction anchored
        to recent reality.  Returns the number of entries dropped.
        """
        if max_age < 0:
            raise ValueError("max_age must be non-negative")
        stale = self.mask & (self.age > max_age)
        stale[self.known_rows] = False
        dropped = int(np.sum(stale))
        self.mask[stale] = False
        self.values[stale] = 0.0
        self.age[stale] = 0
        return dropped

    def clear_row(self, row: int) -> None:
        """Forget every runtime observation in ``row`` (job churn)."""
        self.values[row] = 0.0
        self.mask[row] = False
        self.age[row] = 0
        self.known_rows[row] = False

    def copy(self) -> "ObservedMatrix":
        """Deep copy (used to snapshot before what-if reconstructions)."""
        out = ObservedMatrix(self.n_rows, self.n_cols)
        out.values = self.values.copy()
        out.mask = self.mask.copy()
        out.age = self.age.copy()
        out.known_rows = self.known_rows.copy()
        return out


def throughput_rows(
    profiles: Sequence[AppProfile], perf: PerformanceModel
) -> np.ndarray:
    """Noise-free BIPS of each profile across all joint configurations."""
    return np.vstack([perf.bips_row(p) for p in profiles])


def power_rows(
    profiles: Sequence[AppProfile], power: PowerModel
) -> np.ndarray:
    """Noise-free core power of each profile across joint configurations."""
    return np.vstack([power.power_row(p) for p in profiles])


def latency_row(
    service: LCService,
    perf: PerformanceModel,
    load: float,
    n_cores: int,
) -> np.ndarray:
    """p99 latency of one service across all 108 joint configurations."""
    row = np.empty(N_JOINT_CONFIGS)
    for i in range(N_JOINT_CONFIGS):
        joint = JointConfig.from_index(i)
        row[i] = service.tail_latency(
            perf, joint.core, joint.cache_ways, load, n_cores
        )
    return row


def latency_training_rows(
    services: Sequence[LCService],
    loads: Sequence[float],
    perf: PerformanceModel,
    n_cores: int,
    exclude: Optional[Tuple[str, float]] = None,
) -> Tuple[np.ndarray, List[Tuple[str, float]]]:
    """Offline latency characterisations of (service, load) combinations.

    The latency matrix's "known applications" are previously-seen
    services at a grid of loads.  ``exclude`` removes one (name, load)
    pair so a service under test never trains on its own exact row.
    Returns the matrix and the (name, load) key per row.
    """
    rows = []
    keys = []
    for service in services:
        for load in loads:
            if exclude is not None and (
                service.name == exclude[0] and abs(load - exclude[1]) < 1e-9
            ):
                continue
            rows.append(latency_row(service, perf, load, n_cores))
            keys.append((service.name, load))
    if not rows:
        raise ValueError("latency training set is empty")
    return np.vstack(rows), keys


@dataclass(frozen=True)
class TruthTables:
    """Noise-free per-job metric tables for one machine/workload.

    ``batch_bips``/``batch_power`` are [n_batch x 108]; ``lc_latency``
    and ``lc_power`` are dictionaries keyed by (load, n_cores) filled
    lazily by :meth:`for_machine`-style helpers in the experiments.
    """

    batch_bips: np.ndarray
    batch_power: np.ndarray

    @classmethod
    def build(
        cls,
        profiles: Sequence[AppProfile],
        perf: PerformanceModel,
        power: PowerModel,
    ) -> "TruthTables":
        """Compute both batch tables in one pass."""
        return cls(
            batch_bips=throughput_rows(profiles, perf),
            batch_power=power_rows(profiles, power),
        )

"""CuttleSys as a schedulable policy (the full loop of Fig. 3).

A *policy* is anything the experiment harness can drive one decision
quantum at a time: it observes the machine (profiling samples, previous
slice measurements) and produces an :class:`~repro.sim.machine.Assignment`.
:class:`CuttleSysPolicy` wraps the
:class:`~repro.core.controller.ResourceController`; the baselines in
:mod:`repro.baselines` implement the same protocol.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core.controller import (
    ControllerConfig,
    DecisionPrediction,
    ResourceController,
)
from repro.sim.machine import Assignment, Machine, SliceMeasurement
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import make_services

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.harness import PolicyRun
    from repro.telemetry import Telemetry
    from repro.workloads.loadgen import LoadTrace


@runtime_checkable
class Policy(Protocol):
    """What the experiment harness drives each decision quantum."""

    #: Display name used in experiment tables.
    name: str
    #: Fraction of a slice's useful batch work lost to profiling and
    #: reconfiguration (Table II-style overhead, folded into results).
    overhead_fraction: float

    def decide(self, machine: Machine, load: float, max_power: float) -> Assignment:
        """Produce the next quantum's assignment."""
        ...

    def observe(self, measurement: SliceMeasurement) -> None:
        """Receive the end-of-slice measurements."""
        ...


class CuttleSysPolicy:
    """The paper's system: SGD reconstruction + DDS search per quantum.

    Overhead accounting: 2 ms of profiling per 100 ms quantum (the jobs
    keep running, but in the two extreme sampling configurations) plus
    the reconfiguration transient — about 2 % of batch throughput,
    consistent with Table II.
    """

    name = "cuttlesys"
    overhead_fraction = 0.021

    def __init__(self, controller: ResourceController) -> None:
        self.controller = controller

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        """Route controller and machine spans/metrics into a session."""
        self.controller.attach_telemetry(telemetry)
        self.controller.machine.attach_telemetry(telemetry)

    @property
    def last_prediction(self) -> Optional[DecisionPrediction]:
        """Predicted BIPS/p99/power of the most recent decision."""
        return self.controller.last_prediction

    @property
    def last_good_assignment(self) -> Optional[Assignment]:
        """Last assignment whose slice came back clean (degraded-path reuse)."""
        return self.controller.last_good_assignment

    @classmethod
    def for_machine(
        cls,
        machine: Machine,
        seed: int = 0,
        config: Optional[ControllerConfig] = None,
        train_profiles: Optional[Sequence] = None,
        train_services: Optional[Sequence] = None,
    ) -> "CuttleSysPolicy":
        """Build a policy with the paper's defaults for ``machine``.

        The offline training set defaults to the 16 SPEC-like
        benchmarks of :func:`repro.workloads.batch.train_test_split`
        and all five LC services (the running one is excluded from its
        own latency rows inside the controller).
        """
        if config is None:
            config = ControllerConfig(seed=seed)
        elif seed != 0 and config.seed != seed:
            config = replace(config, seed=seed)
        if train_profiles is None:
            train_names, _ = train_test_split()
            train_profiles = [batch_profile(name) for name in train_names]
        if train_services is None:
            train_services = list(make_services(machine.perf).values())
        controller = ResourceController(
            machine, train_profiles, train_services, config
        )
        return cls(controller)

    def decide(
        self,
        machine: Machine,
        load: float,
        max_power: float,
        extra_loads: Sequence[float] = (),
    ) -> Assignment:
        """One quantum: profile, reconstruct, scan LC, search batch.

        ``extra_loads`` carries the load estimates of LC services
        beyond the first on multi-service machines.
        """
        sample = machine.profile(
            load,
            lc_cores=self.controller.lc_cores,
            extra_loads=extra_loads,
            extra_lc_cores=self.controller.lc_cores_by_service[1:],
        )
        self.controller.ingest_profiling(sample)
        return self.controller.decide(load, max_power, extra_loads=extra_loads)

    def observe(self, measurement: SliceMeasurement) -> None:
        """Fold the steady-state measurements back into the matrices."""
        self.controller.ingest_measurement(measurement)

    def on_job_replaced(self, job: int) -> None:
        """A batch job completed; treat its replacement as unseen (§V)."""
        self.controller.reset_job(job)

    def snapshot(self) -> Dict[str, Any]:
        """Serialize the policy's mutable state (controller matrices,
        RNG, guard streaks, budget meter) for crash-safe resume."""
        return {"controller": self.controller.snapshot()}

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`snapshot` at a quantum
        boundary; the resumed run is byte-identical to an
        uninterrupted one."""
        self.controller.restore(state["controller"])

    def run(
        self,
        machine: Machine,
        trace: "LoadTrace",
        power_cap_fraction: float,
        n_slices: int,
    ) -> "PolicyRun":
        """Convenience wrapper around the experiment harness."""
        from repro.experiments.harness import run_policy

        return run_policy(
            machine,
            self,
            trace,
            power_cap_fraction=power_cap_fraction,
            n_slices=n_slices,
        )

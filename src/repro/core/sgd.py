"""PQ-reconstruction with Stochastic Gradient Descent (paper §V, Alg. 1).

The sparse application × configuration matrix ``R`` is factored as
``R ~ baseline + Q @ P.T`` and trained on the observed entries only; the
product fills in every missing entry — the Netflix-style recommender
formulation the paper adopts, with applications as users and joint
configurations as items.

Structure, following the paper and the BellKor line of work it cites:

* a **baseline** of per-configuration means plus a shrunk per-application
  bias (two profiling samples pin the bias down well);
* **factors initialised by SVD** of the fully-characterised training
  rows' residuals — the paper constructs Q and P from an SVD — with
  sparse rows *folded in* by ridge projection onto that basis;
* **SGD refinement** over the observed entries (Alg. 1), either the
  literal per-entry serial loop or the lock-free parallel variant
  (HOGWILD-style: an epoch's updates are computed from the same stale
  state and applied at once, trading a bounded ~1 % accuracy difference
  for a large speedup, §V).

Values are reconstructed in log space by default: throughput, power and
tail latency are positive and multiplicative in structure, which makes
their log matrices close to low-rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.deadline import DecisionBudget
from repro.core.matrices import ObservedMatrix
from repro.telemetry.tracer import NULL_TRACER


@dataclass(frozen=True)
class SGDParams:
    """Hyper-parameters of the reconstruction (paper §V, §VIII-A2)."""

    #: Latent dimensionality of the interaction factors.
    rank: int = 3
    #: SGD refinement learning rate (eta in Alg. 1).
    learning_rate: float = 0.02
    #: L2 regularisation (lambda in Alg. 1).
    regularization: float = 0.05
    #: Maximum SGD refinement epochs.
    max_iter: int = 20
    #: Stop refinement when observed RMSE improves less than this.
    tol: float = 1e-5
    #: Lock-free parallel refinement (True) or literal Alg. 1 (False).
    parallel: bool = True
    #: Reconstruct log-metrics (positive, multiplicative quantities).
    log_space: bool = True
    #: Shrinkage added to the per-row observation count when estimating
    #: the application bias (ridge prior toward the population).
    bias_shrinkage: float = 0.2
    #: Ridge strength (relative to the design's scale) of the fold-in.
    fold_in_ridge: float = 0.1
    #: A row is a basis ("anchor") row when at least this fraction of
    #: its entries is observed.
    anchor_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise ValueError("rank must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.regularization < 0:
            raise ValueError("regularization must be non-negative")
        if self.max_iter < 0:
            raise ValueError("max_iter must be non-negative")
        if self.bias_shrinkage < 0:
            raise ValueError("bias_shrinkage must be non-negative")
        if self.fold_in_ridge <= 0:
            raise ValueError("fold_in_ridge must be positive")
        if not 0 < self.anchor_fraction <= 1:
            raise ValueError("anchor_fraction must be in (0, 1]")


@dataclass(frozen=True)
class SGDDiagnostics:
    """What the last reconstruction did (for the overhead experiments)."""

    iterations: int
    observed_rmse: float
    converged: bool


class PQReconstructor:
    """Reconstructs missing entries of an :class:`ObservedMatrix`."""

    #: Telemetry tracer; the shared no-op unless a session attaches one.
    tracer = NULL_TRACER
    #: Decision-budget meter (repro.core.deadline); when a controller
    #: attaches one, every reconstruction charges its refinement
    #: iterations against the current quantum.
    budget: Optional[DecisionBudget] = None

    def __init__(self, params: SGDParams = SGDParams()) -> None:
        self.params = params
        self.last_diagnostics: Optional[SGDDiagnostics] = None

    def reconstruct(self, matrix: ObservedMatrix) -> np.ndarray:
        """Return the dense reconstruction; observed entries are kept.

        Observed entries are copied through verbatim — the controller
        always trusts measurements over predictions (§IV-B).
        """
        with self.tracer.span(
            "sgd.reconstruct", category="sgd", n_rows=matrix.n_rows
        ) as span:
            result = self._reconstruct(matrix)
            if self.last_diagnostics is not None:
                span.set(iterations=self.last_diagnostics.iterations)
                if self.budget is not None:
                    self.budget.charge(
                        self.last_diagnostics.iterations,
                        phase="sgd.reconstruct",
                    )
            return result

    def _reconstruct(self, matrix: ObservedMatrix) -> np.ndarray:
        mask = matrix.mask
        if not mask.any():
            raise ValueError("cannot reconstruct a matrix with no observations")
        values = matrix.values
        if self.params.log_space:
            if np.any(values[mask] <= 0):
                raise ValueError(
                    "log-space reconstruction requires positive observations"
                )
            work = np.zeros_like(values)
            np.log(values, where=mask, out=work)
        else:
            work = np.where(mask, values, 0.0)

        anchors = self._anchor_rows(mask)
        baseline, centred = self._baseline(work, mask, anchors)
        q, p = self._init_factors(centred, mask, anchors)
        diagnostics = self._refine(centred, mask, q, p)
        self.last_diagnostics = diagnostics

        estimate = baseline + q @ p.T
        if self.params.log_space:
            estimate = np.exp(np.clip(estimate, -60.0, 60.0))
        return np.where(mask, values, estimate)

    # ------------------------------------------------------------------

    def _anchor_rows(self, mask: np.ndarray) -> np.ndarray:
        """Rows observed densely enough to serve as the training basis."""
        row_frac = mask.sum(axis=1) / mask.shape[1]
        return np.nonzero(row_frac >= self.params.anchor_fraction)[0]

    def _baseline(
        self, work: np.ndarray, mask: np.ndarray, anchors: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-configuration mean + shrunk per-application bias.

        Column means come from the anchor (offline-characterised) rows
        when available, so sparse runtime rows do not contaminate the
        population profile at the two heavily-sampled columns.
        """
        if anchors.size >= 2:
            basis_mask = mask[anchors]
            basis_work = work[anchors]
        else:
            basis_mask = mask
            basis_work = work
        col_count = basis_mask.sum(axis=0)
        col_mean = np.divide(
            basis_work.sum(axis=0),
            np.maximum(col_count, 1),
            out=np.zeros(work.shape[1]),
            where=col_count > 0,
        )
        global_mean = basis_work[basis_mask].mean()
        col_mean = np.where(col_count > 0, col_mean, global_mean)
        col_centred = np.where(mask, work - col_mean[None, :], 0.0)
        row_count = mask.sum(axis=1)
        row_bias = col_centred.sum(axis=1) / np.maximum(
            row_count + self.params.bias_shrinkage, 1e-9
        )
        baseline = col_mean[None, :] + row_bias[:, None]
        centred = np.where(mask, col_centred - row_bias[:, None], 0.0)
        return baseline, centred

    def _init_factors(
        self, centred: np.ndarray, mask: np.ndarray, anchors: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """SVD of the anchor rows' residuals, ridge fold-in of the rest."""
        params = self.params
        n_rows, n_cols = centred.shape
        rank = min(params.rank, n_cols)

        if anchors.size >= 2:
            rank = min(rank, anchors.size)
            _, _, vt = np.linalg.svd(centred[anchors], full_matrices=False)
            p = vt[:rank].T
        else:
            # Degenerate case (no offline-characterised rows): fall
            # back to a small random basis, as in the original Alg. 1.
            rng = np.random.default_rng(params.seed)
            p = rng.normal(0.0, 1.0 / np.sqrt(n_cols), size=(n_cols, rank))

        q = np.zeros((n_rows, rank))
        for i in range(n_rows):
            obs = np.nonzero(mask[i])[0]
            if obs.size == 0:
                continue
            design = p[obs]
            gram = design.T @ design
            ridge = params.fold_in_ridge * (np.trace(gram) / rank + 1e-12)
            q[i] = np.linalg.solve(
                gram + ridge * np.eye(rank), design.T @ centred[i, obs]
            )
        return q, p

    def _refine(
        self,
        centred: np.ndarray,
        mask: np.ndarray,
        q: np.ndarray,
        p: np.ndarray,
    ) -> SGDDiagnostics:
        """SGD epochs over the observed entries (Alg. 1)."""
        params = self.params
        rng = np.random.default_rng(params.seed)
        rows_idx, cols_idx = np.nonzero(mask)
        n_observed = rows_idx.size

        def rmse() -> float:
            residual = np.where(mask, centred - q @ p.T, 0.0)
            return float(np.sqrt(np.sum(residual**2) / n_observed))

        last_rmse = rmse()
        iterations = 0
        converged = False
        for iterations in range(1, params.max_iter + 1):
            if params.parallel:
                self._epoch_parallel(centred, mask, q, p)
            else:
                self._epoch_serial(centred, rows_idx, cols_idx, q, p, rng)
            current = rmse()
            if last_rmse - current < params.tol:
                converged = True
                last_rmse = min(last_rmse, current)
                break
            last_rmse = current
        return SGDDiagnostics(
            iterations=iterations, observed_rmse=last_rmse, converged=converged
        )

    def _epoch_serial(
        self,
        centred: np.ndarray,
        rows_idx: np.ndarray,
        cols_idx: np.ndarray,
        q: np.ndarray,
        p: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """One pass of per-entry SGD updates in random order (Alg. 1)."""
        eta = self.params.learning_rate
        lam = self.params.regularization
        order = rng.permutation(rows_idx.size)
        for k in order:
            i = rows_idx[k]
            j = cols_idx[k]
            err = centred[i, j] - q[i] @ p[j]
            q_i = q[i].copy()
            q[i] += eta * (err * p[j] - lam * q_i)
            p[j] += eta * (err * q_i - lam * p[j])

    def _epoch_parallel(
        self,
        centred: np.ndarray,
        mask: np.ndarray,
        q: np.ndarray,
        p: np.ndarray,
    ) -> None:
        """One lock-free epoch: all updates computed from stale factors.

        Every observed entry's gradient uses the factor state from the
        start of the epoch, mirroring HOGWILD workers reading stale
        parameters; the accumulated updates are then applied at once.
        """
        eta = self.params.learning_rate
        lam = self.params.regularization
        err = np.where(mask, centred - q @ p.T, 0.0)
        counts_row = np.maximum(mask.sum(axis=1, keepdims=True), 1)
        counts_col = np.maximum(mask.sum(axis=0)[:, None], 1)
        q += eta * (err @ p / counts_row - lam * q)
        p += eta * (err.T @ q / counts_col - lam * p)

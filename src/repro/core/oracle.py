"""Perfect-inference CuttleSys: the reconfigurable-hardware oracle.

Identical decision structure to :class:`~repro.core.runtime.CuttleSysPolicy`
— least-power QoS-meeting LC configuration, then DDS over the batch
jobs — but fed the machine's *true* metric tables instead of SGD
reconstructions, with no profiling overhead.  Two uses:

* an upper bound on what any inference scheme could achieve on this
  hardware (the "oracle reconfigurable" of the ablation study: the gap
  between this and CuttleSys is the cost of imperfect inference);
* a reference scheduler for the DVFS/asymmetric hardware comparisons,
  isolating the hardware mechanism from the runtime.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.dds import DDSParams, DDSSearch
from repro.core.matrices import latency_row, power_rows
from repro.core.objective import SystemObjective
from repro.sim.coreconfig import (
    CACHE_ALLOCS,
    N_JOINT_CONFIGS,
    CoreConfig,
    JointConfig,
)
from repro.sim.machine import Assignment, Machine, SliceMeasurement


class OracleReconfigPolicy:
    """CuttleSys's decision pipeline on ground-truth tables."""

    name = "oracle-reconfig"
    overhead_fraction = 0.0

    def __init__(
        self,
        lc_cores: int = 16,
        dds: DDSParams = DDSParams(),
        seed: int = 0,
    ) -> None:
        self.lc_cores = lc_cores
        self._searcher = DDSSearch(dds)
        self._rng = np.random.default_rng(seed)
        self._last_x: Optional[np.ndarray] = None

    def decide(self, machine: Machine, load: float, max_power: float) -> Assignment:
        """True-table LC scan + DDS over the batch jobs."""
        n_jobs = len(machine.batch_profiles)
        lc_joint, lc_watts = self._select_lc(machine, load)
        reserved = lc_watts * self.lc_cores + machine.power.llc_power()

        bips = np.vstack(
            [
                [
                    machine.true_batch_bips(j, JointConfig.from_index(i))
                    for i in range(N_JOINT_CONFIGS)
                ]
                for j in range(n_jobs)
            ]
        )
        power = power_rows(machine.batch_profiles, machine.power)
        objective = SystemObjective(
            bips=bips,
            power=power,
            max_power=max_power,
            max_ways=machine.params.llc_ways,
            reserved_power=reserved,
            reserved_ways=lc_joint.cache_ways,
        )
        result = self._searcher.search(
            objective,
            n_dims=n_jobs,
            n_confs=N_JOINT_CONFIGS,
            rng=self._rng,
            initial=self._last_x,
        )
        x = result.best_x
        self._last_x = x.copy()
        configs: List[Optional[JointConfig]] = [
            JointConfig.from_index(int(i)) for i in x
        ]
        # Hard fallback, same as the runtime: gate hungriest-first.
        def total() -> float:
            acc = reserved
            for j, cfg in enumerate(configs):
                acc += (
                    machine.power.gated_core_power()
                    if cfg is None
                    else power[j, cfg.index]
                )
            return acc

        while total() > max_power:
            active = [j for j, cfg in enumerate(configs) if cfg is not None]
            if not active:
                break
            victim = max(active, key=lambda j: power[j, configs[j].index])
            configs[victim] = None

        return Assignment(
            lc_cores=self.lc_cores,
            lc_config=lc_joint,
            batch_configs=tuple(configs),
        )

    def observe(self, measurement: SliceMeasurement) -> None:
        """Oracle carries no state."""

    def _select_lc(
        self, machine: Machine, load: float
    ) -> Tuple[JointConfig, float]:
        latency = latency_row(
            machine.lc_service, machine.perf, load, self.lc_cores
        )
        qos = machine.lc_service.qos_latency_s
        best, best_watts = None, np.inf
        for i in range(N_JOINT_CONFIGS):
            if latency[i] <= qos:
                joint = JointConfig.from_index(i)
                watts = machine.true_lc_power(joint, load, self.lc_cores)
                if watts < best_watts:
                    best, best_watts = joint, watts
        if best is None:
            best = JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1])
            best_watts = machine.true_lc_power(best, load, self.lc_cores)
        return best, best_watts
